"""IEEE-binary16 edge cases of the fp16-faithful execution units.

These tests *pin* the fp16 semantics ``docs/nn.md`` documents: numpy
``float16`` is the reference implementation, so every claim here is
checked both against the machine and against the binary16 facts it
relies on (saturation threshold, subnormal range, NaN rules, and the
non-associativity of rounded addition).
"""

import numpy as np
import pytest

from repro.pimexec import Operand, PimCommand, PimExecMachine, PimOpcode
from repro.pimexec.regfile import BankExecUnit

F16 = np.float16
#: Largest finite binary16 value.
F16_MAX = 65504.0
#: Smallest positive *normal* binary16 value (2^-14).
F16_TINY = 2.0 ** -14
#: Smallest positive subnormal binary16 value (2^-24).
F16_DENORM_MIN = 2.0 ** -24


def _unit(lanes=4):
    return BankExecUnit(lanes, dtype="fp16")


def _add(dst, src0, src1):
    return PimCommand(PimOpcode.ADD, dst=dst, src0=src0, src1=src1)


class TestOverflow:
    def test_add_overflows_to_inf(self):
        unit = _unit()
        unit.store_page(0, 0, [60000.0, -60000.0, 1.0, F16_MAX])
        unit.store_page(0, 1, [60000.0, -60000.0, 1.0, F16_MAX / 2])
        unit.grf_a[0] = unit.load_page(0, 0)
        unit.grf_a[1] = unit.load_page(0, 1)
        unit.execute(
            _add(Operand.grf_b(0), Operand.grf_a(0), Operand.grf_a(1))
        )
        with np.errstate(over="ignore"):
            reference = F16(
                [60000.0, -60000.0, 1.0, F16_MAX]
            ) + F16([60000.0, -60000.0, 1.0, F16_MAX / 2])
        assert np.array_equal(unit.grf_b[0], reference)
        assert unit.grf_b[0][0] == np.inf
        assert unit.grf_b[0][1] == -np.inf
        assert np.isfinite(unit.grf_b[0][2])

    def test_mac_chain_saturates_and_stays_inf(self):
        """Once an accumulator overflows, further MACs keep it inf."""
        unit = _unit(lanes=2)
        unit.store_page(0, 0, [30000.0, 1.0])
        unit.srf[0] = 4.0
        mac = PimCommand(
            PimOpcode.MAC,
            dst=Operand.grf_b(0),
            src0=Operand.bank(),
            src1=Operand.srf(0),
        )
        reference = np.zeros(2, dtype=F16)
        page = F16([30000.0, 1.0])
        with np.errstate(over="ignore"):
            for _ in range(3):
                unit.execute(mac, 0, 0)
                reference = reference + page * np.full(2, F16(4.0))
        assert np.array_equal(unit.grf_b[0], reference)
        assert unit.grf_b[0][0] == np.inf  # 30000*4 > 65504
        assert unit.grf_b[0][1] == F16(12.0)


class TestSubnormals:
    def test_gradual_underflow_preserves_subnormals(self):
        """numpy float16 does NOT flush subnormals to zero — a MUL
        whose exact result is below the smallest normal (2^-14) keeps
        its subnormal value, down to 2^-24."""
        unit = _unit()
        unit.store_page(0, 0, [F16_TINY, F16_DENORM_MIN * 2, 1.0, 0.0])
        unit.grf_a[0] = unit.load_page(0, 0)
        unit.srf[0] = 0.5
        unit.execute(
            PimCommand(
                PimOpcode.MUL,
                dst=Operand.grf_b(0),
                src0=Operand.grf_a(0),
                src1=Operand.srf(0),
            )
        )
        result = unit.grf_b[0]
        assert result[0] == F16(F16_TINY / 2)  # subnormal, not 0
        assert 0.0 < float(result[0]) < F16_TINY
        assert result[1] == F16(F16_DENORM_MIN)  # smallest subnormal
        assert result[2] == F16(0.5)

    def test_underflow_below_denorm_min_rounds_to_zero(self):
        unit = _unit(lanes=1)
        unit.grf_a[0] = np.array([F16_DENORM_MIN], dtype=F16)
        unit.srf[0] = 0.25
        unit.execute(
            PimCommand(
                PimOpcode.MUL,
                dst=Operand.grf_b(0),
                src0=Operand.grf_a(0),
                src1=Operand.srf(0),
            )
        )
        assert unit.grf_b[0][0] == F16(0.0)

    def test_store_page_rounds_float64_to_binary16(self):
        unit = _unit(lanes=2)
        unit.store_page(0, 0, [1.0 + 2.0 ** -12, 1e-9])
        page = unit.load_page(0, 0)
        # 1 + 2^-12 is below half an ulp at 1.0 (2^-11): rounds to 1
        assert page[0] == F16(1.0)
        assert page[1] == F16(0.0) or 0 < page[1] < F16_TINY

class TestNanPropagation:
    def test_nan_propagates_through_a_mac_chain(self):
        unit = _unit(lanes=3)
        unit.store_page(0, 0, [1.0, np.nan, 2.0])
        unit.srf[0] = 3.0
        mac = PimCommand(
            PimOpcode.MAC,
            dst=Operand.grf_b(0),
            src0=Operand.bank(),
            src1=Operand.srf(0),
        )
        for _ in range(4):
            unit.execute(mac, 0, 0)
        result = unit.grf_b[0]
        assert not np.isnan(result[0]) and not np.isnan(result[2])
        assert np.isnan(result[1])  # poisoned lane stays poisoned

    def test_inf_minus_inf_is_nan(self):
        unit = _unit(lanes=1)
        unit.grf_a[0] = np.array([np.inf], dtype=F16)
        unit.grf_a[1] = np.array([-np.inf], dtype=F16)
        unit.execute(
            _add(Operand.grf_b(0), Operand.grf_a(0), Operand.grf_a(1))
        )
        assert np.isnan(unit.grf_b[0][0])

    def test_zero_times_inf_is_nan_under_mad(self):
        unit = _unit(lanes=1)
        unit.grf_a[0] = np.array([0.0], dtype=F16)
        unit.grf_a[1] = np.array([np.inf], dtype=F16)
        unit.srf[1] = 1.0  # MAD's implicit addend (SRF_M)
        unit.execute(
            PimCommand(
                PimOpcode.MAD,
                dst=Operand.grf_b(0),
                src0=Operand.grf_a(0),
                src1=Operand.grf_a(1),
            )
        )
        assert np.isnan(unit.grf_b[0][0])


class TestAccumulationOrder:
    """Binary16 addition is not associative; the reference ordering is
    *slot order* (the column walk), which these tests pin.

    ``2048 + 1 + 1`` in binary16: the ulp at 2048 is 2, so each
    ``+ 1`` rounds away (ties-to-even) and the left-to-right sum stays
    2048.0 — while ``1 + 1 + 2048`` gives 2050.0.  A kernel that
    reorders the walk would produce the second value and fail the
    bit-exact check.
    """

    VALUES = [2048.0, 1.0, 1.0]

    def test_binary16_addition_is_order_sensitive(self):
        forward = F16(0.0)
        for value in self.VALUES:
            forward = F16(value) + forward
        backward = F16(0.0)
        for value in reversed(self.VALUES):
            backward = F16(value) + backward
        assert forward == F16(2048.0)
        assert backward == F16(2050.0)
        assert forward != backward

    @pytest.mark.parametrize("order", ["slot", "reversed"])
    def test_machine_reduction_follows_the_walk_order(self, order):
        machine = PimExecMachine(dtype="fp16")
        values = (
            self.VALUES if order == "slot" else self.VALUES[::-1]
        )
        for slot, value in enumerate(values):
            for ch in range(machine.n_channels):
                for bank in range(machine.banks_per_channel):
                    machine.write_bank(
                        ch, bank, 0, slot, [value] * machine.lanes
                    )
        machine.load_kernel(
            [
                PimCommand(
                    PimOpcode.ADD,
                    dst=Operand.grf_b(0),
                    src0=Operand.bank(),
                    src1=Operand.grf_b(0),
                ),
                PimCommand(
                    PimOpcode.JUMP, target=0, count=len(values) - 1
                ),
                PimCommand(PimOpcode.EXIT),
            ]
        )
        machine.run_kernel([(0, slot) for slot in range(len(values))])
        expected = F16(2048.0 if order == "slot" else 2050.0)
        for ch, index, unit in machine.iter_units():
            assert np.all(unit.grf_b[0] == expected)

    def test_fp64_hides_the_order_sensitivity(self):
        """The same sum in the idealized fp64 mode is order-blind —
        which is exactly why fp16-faithful mode exists."""
        total_forward = np.float64(0.0)
        total_backward = np.float64(0.0)
        for value in self.VALUES:
            total_forward += np.float64(value)
        for value in reversed(self.VALUES):
            total_backward += np.float64(value)
        assert total_forward == total_backward == 2050.0
