"""Transformer kernel library: bit-exactness, modes, and twins."""

import numpy as np
import pytest

from repro.memsys import MemSysConfig, Op
from repro.nn import (
    NN_KERNEL_NAMES,
    Layout,
    build_nn_kernel,
    gemm_kernel,
    run_nn_kernel,
    softmax_kernel,
)

#: Small shapes so the whole matrix runs in seconds.
SMALL = {
    "gemm": dict(k=4, n=4),
    "softmax": dict(c=5),
    "layernorm": dict(c=5),
    "attention": dict(d_head=2, n_heads=2),
    "ffn": dict(d_model=4, d_ff=8),
}


class TestBitExactness:
    @pytest.mark.parametrize("name", NN_KERNEL_NAMES)
    @pytest.mark.parametrize("dtype", ["fp16", "fp64"])
    def test_kernel_matches_reference(self, name, dtype):
        comparison = run_nn_kernel(
            build_nn_kernel(name, dtype=dtype, **SMALL[name])
        )
        assert comparison.correct
        assert np.array_equal(
            comparison.output, comparison.expected, equal_nan=True
        )
        assert comparison.output.dtype == (
            np.float16 if dtype == "fp16" else np.float64
        )

    def test_gemm_matches_plain_numpy_in_fp64(self):
        """In fp64 the tiled recipe reproduces A @ B to float64
        round-off (the paged accumulation order differs from BLAS)."""
        rng = np.random.default_rng(5)
        a = rng.standard_normal((128, 6))
        b = rng.standard_normal((6, 3))
        kernel = gemm_kernel(m=128, k=6, n=3, dtype="fp64", a=a, b=b)
        comparison = run_nn_kernel(kernel)
        assert comparison.correct
        np.testing.assert_allclose(
            comparison.output, a @ b, rtol=1e-12, atol=1e-12
        )

    def test_softmax_rows_sum_to_about_one(self):
        comparison = run_nn_kernel(softmax_kernel(c=7, dtype="fp16"))
        sums = comparison.output.astype(np.float64).sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, atol=2e-2)

    def test_fp16_and_fp64_outputs_differ(self):
        outputs = {
            dtype: run_nn_kernel(
                build_nn_kernel("gemm", dtype=dtype, k=8, n=4)
            ).output.astype(np.float64)
            for dtype in ("fp16", "fp64")
        }
        err = np.abs(outputs["fp16"] - outputs["fp64"]).max()
        assert 0.0 < err < 0.05


class TestBankGroups:
    @pytest.mark.parametrize("name", ["gemm", "softmax", "ffn"])
    def test_bank_group_mode_is_bit_identical_but_slower(self, name):
        shape = dict(SMALL[name])
        # pin the row count so both modes solve the same problem
        shape["m" if name in ("gemm", "softmax") else "seq_len"] = 128
        per_bank = run_nn_kernel(
            build_nn_kernel(name, dtype="fp16", **shape)
        )
        grouped = run_nn_kernel(
            build_nn_kernel(
                name, dtype="fp16", bank_groups=True, **shape
            )
        )
        assert per_bank.correct and grouped.correct
        assert np.array_equal(
            per_bank.output, grouped.output, equal_nan=True
        )
        assert grouped.pim.n_pim > per_bank.pim.n_pim
        assert grouped.pim.makespan_ns > per_bank.pim.makespan_ns

    def test_layout_halves_units_in_group_mode(self):
        config = MemSysConfig()
        per_bank = Layout(config)
        grouped = Layout(config, bank_groups=True)
        assert grouped.units == per_bank.units // 2
        assert grouped.rows_per_tile == per_bank.rows_per_tile // 2
        assert grouped.data_bank(1) == 2  # unit 1 -> even bank 2


class TestLayout:
    def test_tiles_untile_round_trip_with_padding(self):
        layout = Layout(MemSysConfig())
        matrix = np.arange(150.0 * 3).reshape(150, 3)
        tiles = layout.tiles(matrix)
        assert tiles.shape[0] == 2  # 150 rows pad to 2 x 128
        assert np.array_equal(layout.untile(tiles, 150), matrix)
        # padding is zeros
        assert float(np.abs(tiles[1, :, :, :]).sum()) == float(
            np.abs(matrix[128:]).sum()
        )

    def test_capacity_guard(self):
        layout = Layout(MemSysConfig())
        with pytest.raises(ValueError, match="slots per bank"):
            layout.check_capacity(layout.capacity_slots + 1)


class TestTwinsAndValidation:
    def test_host_twin_moves_every_logical_operand(self):
        kernel = gemm_kernel(m=128, k=4, n=4, dtype="fp16")
        twin = kernel.host_trace()
        lanes = Layout(kernel.config).lanes
        reads = sum(1 for r in twin if r.op is Op.READ)
        writes = sum(1 for r in twin if r.op is Op.WRITE)
        assert reads == (128 * 4) // lanes + -(-(4 * 4) // lanes)
        assert writes == (128 * 4) // lanes

    def test_unknown_kernel_name(self):
        with pytest.raises(KeyError, match="available"):
            build_nn_kernel("conv2d")

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            gemm_kernel(dtype="bf16")

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            gemm_kernel(k=0)
        with pytest.raises(ValueError):
            softmax_kernel(c=0)

    def test_explicit_operands_must_match_shape(self):
        with pytest.raises(ValueError, match="shape"):
            gemm_kernel(m=8, k=2, n=2, a=np.zeros((3, 3)))

    def test_composed_attention_chains_through_bank_state(self):
        """The second GEMM must consume the softmax-normalized score
        pages, not stale ones: corrupting a score page after softmax
        would break bit-exactness, so exactness here proves the
        chain."""
        comparison = run_nn_kernel(
            build_nn_kernel("attention", dtype="fp16", **SMALL["attention"])
        )
        assert comparison.correct
        assert comparison.output.shape == (128, 4)  # seq x d_model
