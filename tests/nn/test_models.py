"""Transformer-layer workload generator: grammar, arrivals, replay."""

import numpy as np
import pytest

from repro.memsys import MemorySystem, MemSysConfig, Op
from repro.nn import (
    TransformerLayerSpec,
    transformer_layer_program,
    transformer_layer_trace,
)

SPEC = TransformerLayerSpec(d_model=8, n_heads=2, seq_len=8, d_ff=16)


class TestSpec:
    def test_defaults(self):
        spec = TransformerLayerSpec()
        assert spec.d_head == 16
        assert spec.ff_width == 4 * spec.d_model

    def test_validation(self):
        with pytest.raises(ValueError, match="divisible"):
            TransformerLayerSpec(d_model=10, n_heads=3)
        with pytest.raises(ValueError):
            TransformerLayerSpec(seq_len=0)
        with pytest.raises(ValueError):
            TransformerLayerSpec(d_ff=0)


class TestGrammar:
    def test_trace_parses_into_the_program_dialect(self):
        program = transformer_layer_program(SPEC)
        counts = program.counts()
        # host transactions, staging registers, broadcasts, PIM ops
        assert set(counts) == {"sb", "gpr", "ab", "pim"}
        assert counts["ab"] > 0 and counts["pim"] > 0

    def test_every_lowering_record_is_timestamped(self):
        program = transformer_layer_program(SPEC, interarrival_ns=2.0)
        assert program.timestamped
        requests = program.to_requests(MemSysConfig())
        assert all(r.timestamp is not None for r in requests)
        times = [r.timestamp for r in requests]
        assert times == sorted(times)

    def test_untimestamped_variant(self):
        program = transformer_layer_program(SPEC, interarrival_ns=None)
        assert not program.timestamped

    def test_trace_carries_all_request_kinds(self):
        requests = transformer_layer_program(SPEC).to_requests(
            MemSysConfig()
        )
        kinds = {r.op for r in requests}
        assert kinds == {Op.READ, Op.WRITE, Op.AB, Op.PIM}

    def test_record_count_scales_with_the_layer(self):
        small = len(transformer_layer_program(SPEC))
        large = len(
            transformer_layer_program(
                TransformerLayerSpec(
                    d_model=16, n_heads=2, seq_len=16, d_ff=32
                )
            )
        )
        assert large > 2 * small

    def test_bad_channel_rejected(self):
        with pytest.raises(ValueError, match="channel"):
            transformer_layer_trace(SPEC, channel=9)

    def test_bad_interarrival_mode_rejected(self):
        with pytest.raises(ValueError, match="interarrival"):
            transformer_layer_trace(SPEC, interarrival="burst")


class TestArrivals:
    def test_poisson_is_seeded_and_deterministic(self):
        kwargs = dict(interarrival_ns=3.0, interarrival="poisson")
        assert transformer_layer_trace(
            SPEC, seed=4, **kwargs
        ) == transformer_layer_trace(SPEC, seed=4, **kwargs)
        assert transformer_layer_trace(
            SPEC, seed=4, **kwargs
        ) != transformer_layer_trace(SPEC, seed=5, **kwargs)

    def test_poisson_gaps_are_bursty_not_fixed(self):
        fixed = transformer_layer_program(SPEC, interarrival_ns=3.0)
        poisson = transformer_layer_program(
            SPEC, interarrival_ns=3.0, interarrival="poisson"
        )
        config = MemSysConfig()
        t_fixed = np.diff(
            [r.timestamp for r in fixed.to_requests(config)]
        )
        t_poisson = np.diff(
            [r.timestamp for r in poisson.to_requests(config)]
        )
        assert np.allclose(t_fixed, 3.0)
        assert t_poisson.std() > 0.5  # exponential spread
        # same mean rate, within sampling noise
        assert abs(t_poisson.mean() - 3.0) < 1.0


class TestReplay:
    @pytest.mark.parametrize("mode", ["fixed", "poisson"])
    def test_both_engines_replay_identically(self, mode):
        config = MemSysConfig()
        program = transformer_layer_program(
            SPEC, config, interarrival_ns=4.0, interarrival=mode
        )
        event = MemorySystem(config).replay(
            program.to_requests(config), engine="event"
        )
        fast = MemorySystem(config).replay(
            program.to_requests(config), engine="fast"
        )
        assert event.makespan_ns == fast.makespan_ns
        assert event.summary() == fast.summary()
        assert event.row_hits == fast.row_hits
        assert event.row_conflicts == fast.row_conflicts

    def test_line_rate_replay_also_works(self):
        config = MemSysConfig()
        program = transformer_layer_program(
            SPEC, config, interarrival_ns=None
        )
        stats = MemorySystem(config).replay(
            program.to_requests(config)
        )
        assert stats.n_requests == len(program)
