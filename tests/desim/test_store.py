"""Unit tests for Store / FilterStore mailboxes."""

import pytest

from repro.desim import FilterStore, Store


class TestStoreBasics:
    def test_put_then_get_fifo(self, sim):
        store = Store(sim)
        got = []

        def producer():
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(5.0)
            yield store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 5.0)]

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append(("put1", sim.now))
            yield store.put(2)  # blocked until a get
            log.append(("put2", sim.now))

        def consumer():
            yield sim.timeout(3.0)
            item = yield store.get()
            log.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put1", 0.0) in log
        assert ("got", 1, 3.0) in log
        assert ("put2", 3.0) in log

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_level_and_counts(self, sim):
        store = Store(sim)

        def producer():
            yield store.put("x")
            yield store.put("y")

        sim.process(producer())
        sim.run()
        assert store.level == 2
        assert store.total_puts == 2
        assert store.total_gets == 0

    def test_multiple_consumers_fifo(self, sim):
        store = Store(sim)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        def producer():
            yield sim.timeout(1.0)
            yield store.put("first")
            yield store.put("second")

        sim.process(consumer("c1"))
        sim.process(consumer("c2"))
        sim.process(producer())
        sim.run()
        assert got == [("c1", "first"), ("c2", "second")]

    def test_occupancy_time_average(self, sim):
        store = Store(sim)

        def scenario():
            yield store.put("x")
            yield sim.timeout(4.0)
            yield store.get()
            yield sim.timeout(4.0)

        sim.process(scenario())
        sim.run()
        assert store.occupancy.time_average(sim.now) == pytest.approx(0.5)

    def test_consumer_wait_tally(self, sim):
        store = Store(sim)

        def consumer():
            yield store.get()

        def producer():
            yield sim.timeout(7.0)
            yield store.put("v")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert store.waits.mean == pytest.approx(7.0)


class TestFilterStore:
    def test_get_matching_selects_by_predicate(self, sim):
        store = FilterStore(sim)
        got = []

        def producer():
            yield store.put({"id": 1})
            yield store.put({"id": 2})
            yield store.put({"id": 3})

        def consumer():
            item = yield store.get_matching(lambda m: m["id"] == 2)
            got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [{"id": 2}]
        assert store.level == 2  # 1 and 3 remain

    def test_matching_blocks_until_item_arrives(self, sim):
        store = FilterStore(sim)
        got = []

        def consumer():
            item = yield store.get_matching(lambda x: x > 10)
            got.append((item, sim.now))

        def producer():
            yield store.put(1)
            yield sim.timeout(2.0)
            yield store.put(50)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(50, 2.0)]

    def test_plain_get_still_fifo(self, sim):
        store = FilterStore(sim)
        got = []

        def producer():
            yield store.put("a")
            yield store.put("b")

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]

    def test_mixed_filter_and_plain_consumers(self, sim):
        store = FilterStore(sim)
        got = {}

        def plain():
            got["plain"] = yield store.get()

        def filtered():
            got["filtered"] = yield store.get_matching(
                lambda x: x == "special"
            )

        def producer():
            yield sim.timeout(1.0)
            yield store.put("ordinary")
            yield store.put("special")

        sim.process(plain())
        sim.process(filtered())
        sim.process(producer())
        sim.run()
        assert got == {"plain": "ordinary", "filtered": "special"}
