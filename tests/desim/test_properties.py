"""Property-based tests (hypothesis) for the DES engine invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.desim import (
    RandomStreams,
    Resource,
    Simulator,
    StateTimer,
    Store,
    Tally,
    TimeWeighted,
)

delays = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestTimeMonotonicity:
    @given(st.lists(delays, min_size=1, max_size=50))
    def test_callbacks_fire_in_nondecreasing_time(self, ds):
        sim = Simulator()
        seen = []
        for d in ds:
            sim.timeout(d).add_callback(lambda e: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(ds)

    @given(st.lists(delays, min_size=1, max_size=30))
    def test_final_clock_is_max_delay(self, ds):
        sim = Simulator()
        for d in ds:
            sim.timeout(d)
        sim.run()
        assert sim.now == max(ds)

    @given(st.lists(delays, min_size=2, max_size=20), delays)
    def test_run_until_partitions_events(self, ds, horizon):
        sim = Simulator()
        fired = []
        for d in ds:
            sim.timeout(d, value=d).add_callback(
                lambda e: fired.append(e.value)
            )
        sim.run(until=horizon)
        assert sorted(fired) == sorted(d for d in ds if d <= horizon)
        assert sim.now == horizon


class TestResourceConservation:
    @given(
        st.integers(min_value=1, max_value=5),
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
    )
    def test_grants_equal_requests_and_capacity_never_exceeded(
        self, capacity, holds
    ):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        max_in_use = [0]
        completions = [0]

        def user(hold):
            with res.request() as req:
                yield req
                max_in_use[0] = max(max_in_use[0], res.count)
                yield sim.timeout(hold)
            completions[0] += 1

        for h in holds:
            sim.process(user(h))
        sim.run()
        assert completions[0] == len(holds)
        assert max_in_use[0] <= capacity
        assert res.count == 0
        assert res.queued == 0
        assert res.wait_times.count == len(holds)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_unit_resource_serializes_total_time(self, holds):
        """With capacity 1 and all requests at t=0, completion time is the
        sum of the hold times (no overlap, no lost time)."""
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def user(hold):
            with res.request() as req:
                yield req
                yield sim.timeout(hold)

        for h in holds:
            sim.process(user(h))
        sim.run()
        assert sim.now == math.fsum(holds) or abs(
            sim.now - math.fsum(holds)
        ) < 1e-9


class TestStoreConservation:
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    def test_items_delivered_exactly_once_in_order(self, items):
        sim = Simulator()
        store = Store(sim)
        received = []

        def producer():
            for it in items:
                yield store.put(it)

        def consumer():
            for _ in items:
                received.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items
        assert store.level == 0

    @given(
        st.lists(st.integers(), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=5),
    )
    def test_bounded_store_conserves_items(self, items, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        received = []

        def producer():
            for it in items:
                yield store.put(it)

        def consumer():
            while len(received) < len(items):
                yield sim.timeout(1.0)
                received.append((yield store.get()))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == items


class TestStatisticsIdentities:
    @given(
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=2,
            max_size=200,
        )
    )
    def test_tally_matches_numpy(self, xs):
        t = Tally()
        t.record_many(xs)
        np.testing.assert_allclose(t.mean, np.mean(xs), rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(
            t.variance, np.var(xs, ddof=1), rtol=1e-6, atol=1e-6
        )
        assert t.minimum == min(xs)
        assert t.maximum == max(xs)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_time_weighted_integral_additivity(self, steps):
        """Integral over [0, T] equals the sum of piecewise areas."""
        tw = TimeWeighted(initial=0.0)
        now = 0.0
        expected = 0.0
        value = 0.0
        for dt, v in steps:
            expected += value * dt
            now += dt
            tw.update(v, now)
            value = v
        np.testing.assert_allclose(
            tw.integral(), expected, rtol=1e-9, atol=1e-9
        )

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_state_timer_fractions_partition_unity(self, transitions):
        st_timer = StateTimer("a", now=0.0)
        now = 0.0
        for state, dt in transitions:
            now += dt
            st_timer.transition(state, now)
        end = now + 1.0
        total = sum(st_timer.totals(end).values())
        np.testing.assert_allclose(total, end, rtol=1e-9)


class TestRngDeterminism:
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    @settings(max_examples=25)
    def test_streams_reproducible(self, seed, name):
        a = RandomStreams(seed).stream(name).random(4)
        b = RandomStreams(seed).stream(name).random(4)
        assert np.array_equal(a, b)
