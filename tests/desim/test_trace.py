"""Unit tests for the tracer."""

from repro.desim import Tracer


class TestTracer:
    def test_records_in_order(self):
        tr = Tracer()
        tr.record(1.0, "a", {"x": 1})
        tr.record(2.0, "b", {"y": 2})
        recs = list(tr)
        assert [r.kind for r in recs] == ["a", "b"]
        assert recs[0].time == 1.0

    def test_kind_filter(self):
        tr = Tracer(kinds={"keep"})
        tr.record(1.0, "keep", {})
        tr.record(2.0, "drop", {})
        assert len(tr) == 1
        assert tr.of_kind("drop") == []

    def test_ring_buffer_bound(self):
        tr = Tracer(max_records=3)
        for i in range(5):
            tr.record(float(i), "k", {"i": i})
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [r.fields["i"] for r in tr] == [2, 3, 4]

    def test_to_rows_flattens(self):
        tr = Tracer()
        tr.record(1.5, "evt", {"node": 3})
        rows = tr.to_rows()
        assert rows == [{"time": 1.5, "kind": "evt", "node": 3}]

    def test_clear(self):
        tr = Tracer(max_records=1)
        tr.record(0.0, "a", {})
        tr.record(1.0, "b", {})
        tr.clear()
        assert len(tr) == 0
        assert tr.dropped == 0

    def test_fields_copied(self):
        tr = Tracer()
        payload = {"mutable": 1}
        tr.record(0.0, "a", payload)
        payload["mutable"] = 2
        assert list(tr)[0].fields["mutable"] == 1
