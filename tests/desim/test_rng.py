"""Unit tests for random streams and distributions."""

import numpy as np
import pytest

from repro.desim import (
    Bernoulli,
    Deterministic,
    DiscreteChoice,
    Erlang,
    Exponential,
    Geometric,
    RandomStreams,
    Uniform,
    as_distribution,
)


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        s = RandomStreams(7)
        assert s.stream("a") is s.stream("a")

    def test_reproducible_across_factories(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        s = RandomStreams(7)
        a = s.stream("x").random(5)
        b = s.stream("y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_namespaced_equals_prefixed(self):
        parent = RandomStreams(3)
        child = parent.spawn("lwp.4")
        a = child.stream("memory").random(3)
        b = RandomStreams(3).stream("lwp.4.memory").random(3)
        assert np.array_equal(a, b)


class TestDistributions:
    def test_deterministic(self, rng):
        d = Deterministic(4.2)
        assert d.sample(rng) == 4.2
        assert d.mean == 4.2
        assert np.all(d.sample_many(rng, 5) == 4.2)

    def test_exponential_mean(self, rng):
        d = Exponential(mean=10.0)
        xs = d.sample_many(rng, 50_000)
        assert float(xs.mean()) == pytest.approx(10.0, rel=0.05)
        assert d.mean == 10.0

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_uniform_bounds_and_mean(self, rng):
        d = Uniform(2.0, 6.0)
        xs = d.sample_many(rng, 10_000)
        assert xs.min() >= 2.0 and xs.max() < 6.0
        assert d.mean == 4.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 1.0)

    def test_erlang_mean_and_lower_cv(self, rng):
        d = Erlang(k=4, mean=8.0)
        xs = d.sample_many(rng, 50_000)
        assert float(xs.mean()) == pytest.approx(8.0, rel=0.05)
        # CV^2 of Erlang-k is 1/k
        cv2 = float(xs.var() / xs.mean() ** 2)
        assert cv2 == pytest.approx(0.25, rel=0.1)

    def test_erlang_validation(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)
        with pytest.raises(ValueError):
            Erlang(2, -1.0)

    def test_geometric_support_and_mean(self, rng):
        d = Geometric(0.25)
        xs = d.sample_many(rng, 50_000)
        assert xs.min() >= 1.0
        assert float(xs.mean()) == pytest.approx(4.0, rel=0.05)

    def test_geometric_validation(self):
        with pytest.raises(ValueError):
            Geometric(0.0)
        with pytest.raises(ValueError):
            Geometric(1.5)

    def test_bernoulli(self, rng):
        d = Bernoulli(0.3)
        xs = d.sample_many(rng, 50_000)
        assert set(np.unique(xs)) <= {0.0, 1.0}
        assert float(xs.mean()) == pytest.approx(0.3, abs=0.01)

    def test_discrete_choice(self, rng):
        d = DiscreteChoice([1.0, 10.0], [0.9, 0.1])
        assert d.mean == pytest.approx(1.9)
        xs = d.sample_many(rng, 20_000)
        assert float(xs.mean()) == pytest.approx(1.9, rel=0.05)

    def test_discrete_choice_validation(self):
        with pytest.raises(ValueError):
            DiscreteChoice([], [])
        with pytest.raises(ValueError):
            DiscreteChoice([1.0, 2.0], [0.5, 0.6])
        with pytest.raises(ValueError):
            DiscreteChoice([1.0, 2.0], [1.0])

    def test_as_distribution_coercion(self):
        d = as_distribution(3.0)
        assert isinstance(d, Deterministic)
        assert d.mean == 3.0
        e = Exponential(1.0)
        assert as_distribution(e) is e
        with pytest.raises(TypeError):
            as_distribution("nope")  # type: ignore[arg-type]
