"""Unit tests for the simulation kernel (run/step/clock semantics)."""

import pytest

from repro.desim import (
    EmptySchedule,
    SchedulingError,
    Simulator,
    Tracer,
)


class TestClock:
    def test_starts_at_start_time(self):
        assert Simulator().now == 0.0
        assert Simulator(start_time=10.0).now == 10.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_event_time(self, sim):
        sim.timeout(7.0)
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_len_counts_pending(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        assert len(sim) == 2
        sim.run()
        assert len(sim) == 0

    def test_step_empty_raises(self, sim):
        with pytest.raises(EmptySchedule):
            sim.step()

    def test_schedule_into_past_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SchedulingError):
            sim.schedule(ev, delay=-0.5)


class TestRunUntilTime:
    def test_run_until_number_advances_clock_exactly(self, sim):
        sim.timeout(3.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_events_at_horizon_are_processed(self, sim):
        fired = []
        sim.timeout(10.0).add_callback(lambda e: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == [10.0]

    def test_events_beyond_horizon_untouched(self, sim):
        fired = []
        sim.timeout(10.1).add_callback(lambda e: fired.append(sim.now))
        sim.run(until=10.0)
        assert fired == []
        assert len(sim) == 1

    def test_run_until_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run(until=5.0)
        with pytest.raises(SchedulingError):
            sim.run(until=2.0)

    def test_run_can_resume(self, sim):
        log = []

        def ticker():
            while True:
                yield sim.timeout(1.0)
                log.append(sim.now)

        sim.process(ticker())
        sim.run(until=3.0)
        assert log == [1.0, 2.0, 3.0]
        sim.run(until=5.0)
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]


class TestRunUntilEvent:
    def test_returns_event_value(self, sim):
        def proc():
            yield sim.timeout(2.0)
            return "finished"

        p = sim.process(proc())
        assert sim.run(until=p) == "finished"
        assert sim.now == 2.0

    def test_later_events_left_pending(self, sim):
        sim.timeout(100.0)

        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        sim.run(until=p)
        assert sim.now == 1.0
        assert len(sim) >= 1

    def test_already_processed_event_returns_immediately(self, sim):
        t = sim.timeout(1.0, value="v")
        sim.run()
        assert sim.run(until=t) == "v"

    def test_failed_until_event_raises(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("died")

        p = sim.process(proc())
        with pytest.raises(RuntimeError, match="died"):
            sim.run(until=p)

    def test_starved_until_event_raises_runtime_error(self, sim):
        ev = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(RuntimeError, match="ran out of events"):
            sim.run(until=ev)


class TestRunToExhaustion:
    def test_run_drains_all_events(self, sim):
        def proc():
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert sim.now == 10.0
        assert len(sim) == 0


class TestTracing:
    def test_trace_records_through_simulator(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        sim.trace("custom.kind", detail=1)
        assert len(tracer) == 1
        rec = list(tracer)[0]
        assert rec.kind == "custom.kind"
        assert rec.fields["detail"] == 1

    def test_trace_noop_without_tracer(self, sim):
        sim.trace("ignored", x=1)  # must not raise

    def test_repr(self, sim):
        assert "Simulator" in repr(sim)


class TestAbsoluteTimeEvents:
    def test_at_fires_at_exact_time(self, sim):
        seen = []

        def proc():
            yield sim.at(7.25)
            seen.append(sim.now)

        sim.process(proc())
        sim.run()
        assert seen == [7.25]

    def test_at_value_passes_through(self, sim):
        def proc():
            value = yield sim.at(1.0, "payload")
            return value

        process = sim.process(proc())
        sim.run()
        assert process.value == "payload"

    def test_at_in_the_past_raises(self, sim):
        def proc():
            yield sim.timeout(5.0)
            sim.at(4.0)

        sim.process(proc())
        with pytest.raises(SchedulingError, match="past"):
            sim.run()

    def test_at_is_bit_exact_where_timeout_is_not(self):
        """The motivating case: now + (when - now) can round away from
        `when`; sim.at never does."""
        sim = Simulator(start_time=1.5)
        target = float(2**53 - 1)  # 1.5 + (target - 1.5) rounds to 2^53
        assert sim.now + (target - sim.now) != target
        times = []

        def proc():
            yield sim.at(target)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [target]
