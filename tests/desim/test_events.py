"""Unit tests for desim event primitives."""

import pytest

from repro.desim import (
    AllOf,
    AnyOf,
    Event,
    SchedulingError,
    Simulator,
    Timeout,
)


class TestEventLifecycle:
    def test_new_event_is_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.ok is None

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SchedulingError):
            _ = ev.value

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok is True
        assert ev.value == 42

    def test_succeed_twice_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SchedulingError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        ev.defuse()
        with pytest.raises(SchedulingError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_callbacks_run_on_processing(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("payload")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["payload"]

    def test_add_callback_after_processed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        sim.run()
        assert ev.processed
        with pytest.raises(SchedulingError):
            ev.add_callback(lambda e: None)

    def test_unhandled_failure_surfaces_from_run(self, sim):
        ev = sim.event()
        ev.fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            sim.run()

    def test_defused_failure_does_not_surface(self, sim):
        ev = sim.event()
        ev.fail(ValueError("handled"))
        ev.defuse()
        sim.run()  # no raise

    def test_trigger_copies_outcome(self, sim):
        src = sim.event()
        dst = sim.event()
        src.succeed("v")
        dst.trigger(src)
        assert dst.value == "v"


class TestTimeout:
    def test_timeout_fires_at_delay(self, sim):
        times = []
        t = sim.timeout(5.0, value="done")
        t.add_callback(lambda e: times.append((sim.now, e.value)))
        sim.run()
        assert times == [(5.0, "done")]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.timeout(-1.0)

    def test_zero_delay_allowed(self, sim):
        t = sim.timeout(0.0)
        sim.run()
        assert t.processed

    def test_timeouts_process_in_time_order(self, sim):
        order = []
        for delay in (3.0, 1.0, 2.0):
            sim.timeout(delay, value=delay).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_fifo_order(self, sim):
        order = []
        for tag in "abc":
            sim.timeout(1.0, value=tag).add_callback(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == ["a", "b", "c"]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        t1 = sim.timeout(1.0, value=1)
        t2 = sim.timeout(2.0, value=2)
        done = AllOf(sim, [t1, t2])
        sim.run()
        assert done.triggered
        assert done.value == {t1: 1, t2: 2}

    def test_all_of_completion_time(self, sim):
        t1 = sim.timeout(1.0)
        t2 = sim.timeout(5.0)
        done = sim.all_of([t1, t2])
        fired = []
        done.add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_any_of_fires_on_first(self, sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(9.0, value="slow")
        first = sim.any_of([t1, t2])
        fired = []
        first.add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]
        assert t1 in first.value

    def test_empty_all_of_succeeds_immediately(self, sim):
        done = sim.all_of([])
        assert done.triggered
        assert done.value == {}

    def test_condition_propagates_failure(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        bad.fail(RuntimeError("sub-event died"))
        cond = AllOf(sim, [good, bad])
        with pytest.raises(RuntimeError, match="sub-event died"):
            sim.run()
        assert cond.triggered
        assert cond.ok is False

    def test_condition_rejects_foreign_events(self, sim):
        other = Simulator()
        t = other.timeout(1.0)
        with pytest.raises(SchedulingError):
            AnyOf(sim, [t])

    def test_condition_with_already_processed_event(self, sim):
        t1 = sim.timeout(1.0, value="x")
        sim.run()
        assert t1.processed
        t2 = sim.timeout(1.0, value="y")
        done = AllOf(sim, [t1, t2])
        sim.run()
        assert done.triggered
        assert done.value[t1] == "x"


class TestReprs:
    def test_event_repr_states(self, sim):
        ev = sim.event()
        assert "pending" in repr(ev)
        ev.succeed()
        assert "ok" in repr(ev)

    def test_timeout_repr(self, sim):
        assert "5.0" in repr(Timeout(sim, 5.0))
