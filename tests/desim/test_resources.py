"""Unit tests for Resource / PriorityResource service centers."""

import pytest

from repro.desim import PriorityResource, Resource, SchedulingError


class TestBasicAcquisition:
    def test_immediate_grant_under_capacity(self, sim):
        res = Resource(sim, capacity=2)
        granted = []

        def user():
            req = res.request()
            yield req
            granted.append(sim.now)
            yield sim.timeout(5.0)
            res.release(req)

        sim.process(user())
        sim.process(user())
        sim.run()
        assert granted == [0.0, 0.0]

    def test_fifo_queueing(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(tag, hold):
            req = res.request()
            yield req
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            res.release(req)

        sim.process(user("a", 3.0))
        sim.process(user("b", 2.0))
        sim.process(user("c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 3.0), ("c", 5.0)]

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_count_and_queued(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(10.0)
            res.release(req)

        def waiter():
            req = res.request()
            yield req
            res.release(req)

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.count == 1
        assert res.queued == 1
        sim.run()
        assert res.count == 0
        assert res.queued == 0

    def test_release_ungranted_raises(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5.0)
            res.release(req)

        def impatient():
            yield sim.timeout(1.0)
            req = res.request()  # queued, not granted
            with pytest.raises(SchedulingError):
                res.release(req)
            res.cancel(req)

        sim.process(holder())
        sim.process(impatient())
        sim.run()

    def test_double_release_raises(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(SchedulingError):
                res.release(req)

        sim.process(user())
        sim.run()

    def test_context_manager_releases(self, sim):
        res = Resource(sim, capacity=1)
        times = []

        def user():
            with res.request() as req:
                yield req
                yield sim.timeout(2.0)
            times.append(sim.now)

        sim.process(user())
        sim.process(user())
        sim.run()
        assert times == [2.0, 4.0]

    def test_cancel_waiting_request(self, sim):
        res = Resource(sim, capacity=1)
        served = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(10.0)
            res.release(req)

        def quitter():
            yield sim.timeout(1.0)
            req = res.request()
            yield sim.timeout(2.0)  # give up before grant
            res.cancel(req)

        def patient():
            yield sim.timeout(1.5)
            req = res.request()
            yield req
            served.append(sim.now)
            res.release(req)

        sim.process(holder())
        sim.process(quitter())
        sim.process(patient())
        sim.run()
        # quitter cancelled, so patient is served right when holder releases
        assert served == [10.0]


class TestStatistics:
    def test_utilization_single_user(self, sim):
        res = Resource(sim, capacity=1)

        def user():
            req = res.request()
            yield req
            yield sim.timeout(4.0)
            res.release(req)

        sim.process(user())
        sim.run()
        sim.run(until=8.0)
        assert res.utilization(sim.now) == pytest.approx(0.5)

    def test_wait_times_tally(self, sim):
        res = Resource(sim, capacity=1)

        def user(hold):
            req = res.request()
            yield req
            yield sim.timeout(hold)
            res.release(req)

        sim.process(user(3.0))
        sim.process(user(1.0))
        sim.run()
        assert res.wait_times.count == 2
        assert res.wait_times.mean == pytest.approx(1.5)  # (0 + 3)/2

    def test_total_requests_counted(self, sim):
        res = Resource(sim, capacity=2)

        def user():
            with res.request() as req:
                yield req

        for _ in range(5):
            sim.process(user())
        sim.run()
        assert res.total_requests == 5

    def test_queue_length_time_average(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(10.0)
            res.release(req)

        def waiter():
            with res.request() as req:
                yield req

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        # one waiter queued for the full 10 of 10 time units
        assert res.queue_length.time_average(sim.now) == pytest.approx(1.0)


class TestPriorityResource:
    def test_priority_order_beats_fifo(self, sim):
        res = PriorityResource(sim, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5.0)
            res.release(req)

        def user(tag, prio, delay):
            yield sim.timeout(delay)
            req = res.request(priority=prio)
            yield req
            order.append(tag)
            res.release(req)

        sim.process(holder())
        sim.process(user("low", 10, 1.0))
        sim.process(user("high", 0, 2.0))  # arrives later, higher priority
        sim.run()
        assert order == ["high", "low"]

    def test_equal_priority_fifo(self, sim):
        res = PriorityResource(sim, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5.0)
            res.release(req)

        def user(tag, delay):
            yield sim.timeout(delay)
            req = res.request(priority=1)
            yield req
            order.append(tag)
            res.release(req)

        sim.process(holder())
        sim.process(user("first", 1.0))
        sim.process(user("second", 2.0))
        sim.run()
        assert order == ["first", "second"]

    def test_cancel_in_priority_queue(self, sim):
        res = PriorityResource(sim, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield sim.timeout(5.0)
            res.release(req)

        def quitter():
            yield sim.timeout(1.0)
            req = res.request(priority=0)
            yield sim.timeout(1.0)
            res.cancel(req)

        def patient():
            yield sim.timeout(1.5)
            req = res.request(priority=5)
            yield req
            order.append(sim.now)
            res.release(req)

        sim.process(holder())
        sim.process(quitter())
        sim.process(patient())
        sim.run()
        assert order == [5.0]
