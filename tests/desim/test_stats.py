"""Unit tests for the statistics collectors."""

import math

import numpy as np
import pytest

from repro.desim import (
    BatchMeans,
    Counter,
    StateTimer,
    Tally,
    TimeWeighted,
    t_quantile,
)


class TestTally:
    def test_empty_tally_nans(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)
        assert math.isnan(t.minimum)

    def test_basic_moments(self):
        t = Tally("x")
        t.record_many([1.0, 2.0, 3.0, 4.0])
        assert t.count == 4
        assert t.mean == pytest.approx(2.5)
        assert t.variance == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert t.minimum == 1.0
        assert t.maximum == 4.0
        assert t.total == 10.0

    def test_welford_matches_numpy_large(self, rng):
        data = rng.normal(1e6, 3.0, size=10_000)
        t = Tally()
        t.record_many(data)
        assert t.mean == pytest.approx(float(np.mean(data)), rel=1e-12)
        assert t.std == pytest.approx(float(np.std(data, ddof=1)), rel=1e-9)

    def test_single_observation(self):
        t = Tally()
        t.record(5.0)
        assert t.mean == 5.0
        assert math.isnan(t.variance)

    def test_confidence_interval_contains_mean(self, rng):
        t = Tally()
        t.record_many(rng.normal(10.0, 1.0, size=500))
        lo, hi = t.confidence_interval(0.99)
        assert lo < t.mean < hi
        assert hi - lo < 1.0

    def test_ci_undefined_below_two(self):
        t = Tally()
        t.record(1.0)
        lo, hi = t.confidence_interval()
        assert math.isnan(lo) and math.isnan(hi)

    def test_merge_equals_combined(self, rng):
        a_data = rng.normal(0, 1, 100)
        b_data = rng.normal(5, 2, 200)
        a, b, combined = Tally(), Tally(), Tally()
        a.record_many(a_data)
        b.record_many(b_data)
        combined.record_many(np.concatenate([a_data, b_data]))
        merged = a.merge(b)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum

    def test_merge_with_empty(self):
        a = Tally()
        a.record_many([1.0, 2.0])
        merged = a.merge(Tally())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)

    def test_to_dict_roundtrip_fields(self):
        t = Tally("svc")
        t.record(2.0)
        d = t.to_dict()
        assert d["name"] == "svc"
        assert d["count"] == 1


class TestTimeWeighted:
    def test_integral_piecewise_constant(self):
        tw = TimeWeighted(initial=2.0)
        tw.update(4.0, 5.0)   # 2.0 for [0,5)
        tw.update(0.0, 10.0)  # 4.0 for [5,10)
        assert tw.integral() == pytest.approx(2 * 5 + 4 * 5)
        assert tw.time_average(10.0) == pytest.approx(3.0)

    def test_integral_with_open_interval(self):
        tw = TimeWeighted(initial=1.0)
        tw.update(3.0, 2.0)
        assert tw.integral(4.0) == pytest.approx(1 * 2 + 3 * 2)

    def test_time_backwards_raises(self):
        tw = TimeWeighted()
        tw.update(1.0, 5.0)
        with pytest.raises(ValueError):
            tw.update(2.0, 4.0)

    def test_add_delta(self):
        tw = TimeWeighted(initial=1.0)
        tw.add(2.0, 1.0)
        assert tw.value == 3.0

    def test_min_max_tracking(self):
        tw = TimeWeighted(initial=5.0)
        tw.update(-1.0, 1.0)
        tw.update(10.0, 2.0)
        assert tw.minimum == -1.0
        assert tw.maximum == 10.0

    def test_empty_window_nan(self):
        tw = TimeWeighted()
        assert math.isnan(tw.time_average(0.0))


class TestCounter:
    def test_increment_and_rate(self):
        c = Counter("ops")
        c.increment()
        c.increment(4)
        assert c.count == 5
        assert c.rate(10.0) == pytest.approx(0.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)


class TestBatchMeans:
    def test_batches_formed(self):
        bm = BatchMeans(batch_size=2)
        for x in [1.0, 3.0, 5.0, 7.0, 9.0]:
            bm.record(x)
        assert bm.complete_batches == 2
        assert bm.mean == pytest.approx((2.0 + 6.0) / 2)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            BatchMeans(0)

    def test_ci_narrows_with_batches(self, rng):
        bm = BatchMeans(batch_size=50)
        for x in rng.normal(3.0, 1.0, 5000):
            bm.record(x)
        lo, hi = bm.confidence_interval(0.95)
        assert lo < 3.0 < hi


class TestStateTimer:
    def test_totals_accumulate(self):
        st = StateTimer("idle", now=0.0)
        st.transition("busy", 2.0)
        st.transition("idle", 5.0)
        st.transition("busy", 7.0)
        totals = st.totals(10.0)
        assert totals["idle"] == pytest.approx(2.0 + 2.0)
        assert totals["busy"] == pytest.approx(3.0 + 3.0)

    def test_fraction(self):
        st = StateTimer("idle")
        st.transition("busy", 4.0)
        assert st.fraction("idle", 10.0) == pytest.approx(0.4)
        assert st.fraction("busy", 10.0) == pytest.approx(0.6)

    def test_fractions_sum_to_one(self):
        st = StateTimer("a")
        st.transition("b", 1.0)
        st.transition("c", 4.0)
        fracs = [st.fraction(s, 8.0) for s in ("a", "b", "c")]
        assert sum(fracs) == pytest.approx(1.0)

    def test_time_backwards_raises(self):
        st = StateTimer("idle", now=5.0)
        with pytest.raises(ValueError):
            st.transition("busy", 4.0)

    def test_total_open_interval(self):
        st = StateTimer("busy")
        assert st.total("busy", now=3.0) == pytest.approx(3.0)
        assert st.total("idle", now=3.0) == 0.0


class TestTQuantile:
    def test_matches_scipy(self):
        from scipy import stats

        assert t_quantile(0.95, 9) == pytest.approx(
            float(stats.t.ppf(0.975, 9))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            t_quantile(1.5, 10)
        with pytest.raises(ValueError):
            t_quantile(0.95, 0)
