"""Unit tests for generator-driven processes."""

import pytest

from repro.desim import Interrupt, SchedulingError, Simulator


class TestBasicExecution:
    def test_process_runs_and_returns_value(self, sim):
        def proc():
            yield sim.timeout(3.0)
            return "result"

        p = sim.process(proc())
        sim.run()
        assert p.triggered
        assert p.value == "result"
        assert sim.now == 3.0

    def test_process_receives_event_values(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="hello")
            return got

        p = sim.process(proc())
        sim.run()
        assert p.value == "hello"

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            yield sim.timeout(3.0)

        sim.process(proc())
        sim.run()
        assert sim.now == 6.0

    def test_process_is_yieldable(self, sim):
        """A process event can be awaited by another process (join)."""

        def child():
            yield sim.timeout(4.0)
            return "child-val"

        def parent():
            value = yield sim.process(child())
            return value

        p = sim.process(parent())
        sim.run()
        assert p.value == "child-val"

    def test_two_processes_interleave(self, sim):
        log = []

        def worker(name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                log.append((name, sim.now))

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 3.0))
        sim.run()
        # at t=6.0 both fire; b's timeout was scheduled earlier (t=3 vs
        # t=4), so insertion order puts b first
        assert log == [
            ("a", 2.0),
            ("b", 3.0),
            ("a", 4.0),
            ("b", 6.0),
            ("a", 6.0),
            ("b", 9.0),
        ]

    def test_creation_order_preserved_at_same_time(self, sim):
        log = []

        def worker(tag):
            log.append(tag)
            yield sim.timeout(0.0)

        for tag in "xyz":
            sim.process(worker(tag))
        sim.run()
        assert log == ["x", "y", "z"]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_raises(self, sim):
        def proc():
            yield 42  # type: ignore[misc]

        sim.process(proc())
        with pytest.raises(TypeError, match="must yield Event"):
            sim.run()

    def test_yielding_foreign_event_raises(self, sim):
        other = Simulator()

        def proc():
            yield other.timeout(1.0)

        sim.process(proc())
        with pytest.raises(SchedulingError, match="different simulator"):
            sim.run()

    def test_yield_already_processed_event_continues_immediately(self, sim):
        ev = sim.timeout(1.0, value="early")

        def proc():
            yield sim.timeout(5.0)  # ev processed long before
            got = yield ev
            return (got, sim.now)

        p = sim.process(proc())
        sim.run()
        assert p.value == ("early", 5.0)


class TestFailures:
    def test_exception_in_process_fails_process_event(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise ValueError("model bug")

        sim.process(proc())
        with pytest.raises(ValueError, match="model bug"):
            sim.run()

    def test_waiter_receives_thrown_exception(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child died")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return f"caught: {exc}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "caught: child died"

    def test_failed_event_thrown_into_process(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except RuntimeError:
                return "handled"

        p = sim.process(proc())
        ev.fail(RuntimeError("injected"))
        sim.run()
        assert p.value == "handled"

    def test_unhandled_event_failure_propagates_through_process(self, sim):
        ev = sim.event()

        def proc():
            yield ev

        sim.process(proc())
        ev.fail(RuntimeError("no handler"))
        with pytest.raises(RuntimeError, match="no handler"):
            sim.run()


class TestInterrupts:
    def test_interrupt_wakes_process(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", sim.now, i.cause)

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(5.0)
            p.interrupt(cause="wake up")

        sim.process(interrupter())
        sim.run()
        assert p.value == ("interrupted", 5.0, "wake up")

    def test_interrupt_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(1.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SchedulingError):
            p.interrupt()

    def test_interrupted_process_can_rewait(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                yield sim.timeout(2.0)
                return sim.now

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(5.0)
            p.interrupt()

        sim.process(interrupter())
        sim.run()
        assert p.value == 7.0

    def test_uncaught_interrupt_fails_process(self, sim):
        def sleeper():
            yield sim.timeout(100.0)

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt()

        sim.process(interrupter())
        with pytest.raises(Interrupt):
            sim.run()

    def test_alive_property(self, sim):
        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.alive
        sim.run()
        assert not p.alive
