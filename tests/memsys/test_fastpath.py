"""Engine-equivalence suite: event engine vs. the event-free fast path.

Every combination of interleaving scheme x scheduling policy x access
pattern (plus PIM all-bank traces) is replayed through both engines and
the resulting :class:`MemSysStats` must agree: integer counters and
bit-exact core times exactly, derived float aggregates within float
tolerance (the fast path computes means by vectorized summation instead
of streaming Welford updates, which differs only in the last ulps).
"""

import dataclasses
import math

import pytest

from repro.desim import Simulator
from repro.desim.trace import Tracer
from repro.memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    PackedTrace,
    SCHEMES,
    synthesize_trace,
)

SCHEME_NAMES = sorted(SCHEMES)
POLICY_NAMES = ("fcfs", "frfcfs")
PATTERN_NAMES = ("sequential", "strided", "random")
REL = 1e-9


def fresh(trace):
    return [MemRequest(r.op, r.addr) for r in trace]


def pim_all_bank_trace(config, n):
    """All-bank PIM commands round-robining channels, sweeping rows."""
    amap = config.address_map()
    pages = config.timing.pages_per_row
    requests = []
    for i in range(n):
        k = i // config.n_channels
        coords = Coordinates(
            channel=i % config.n_channels,
            row=(k // pages) % config.rows_per_bank,
            column=k % pages,
        )
        requests.append(MemRequest(Op.PIM, amap.encode(coords)))
    return requests


def replay_both(config, trace):
    """Replay one trace through both engines on fresh systems."""
    event_stats = MemorySystem(config).replay(fresh(trace), engine="event")
    fast_system = MemorySystem(config)
    fast_stats = fast_system.replay(fresh(trace), engine="fast")
    return event_stats, fast_stats, fast_system


def assert_stats_equivalent(event_stats, fast_stats, rel=REL):
    """Stat-for-stat comparison; ``rel=None`` demands bit-exactness."""

    def check(actual, expected, key):
        if isinstance(expected, int):
            assert actual == expected, key
        elif math.isnan(expected):
            assert math.isnan(actual), key
        elif rel is None:
            assert actual == expected, key
        else:
            assert actual == pytest.approx(expected, rel=rel), key

    event_dict = dataclasses.asdict(event_stats)
    fast_dict = dataclasses.asdict(fast_stats)
    event_channels = event_dict.pop("per_channel")
    fast_channels = fast_dict.pop("per_channel")
    for key, expected in event_dict.items():
        check(fast_dict[key], expected, key)
    # the core quantities are reproduced bit-for-bit, not just closely
    assert fast_stats.makespan_ns == event_stats.makespan_ns
    assert (
        fast_stats.sustained_bits_per_sec
        == event_stats.sustained_bits_per_sec
    )
    assert len(fast_channels) == len(event_channels)
    for expected_row, actual_row in zip(event_channels, fast_channels):
        for key, expected in expected_row.items():
            check(actual_row[key], expected, key)


class TestEngineEquivalence:
    @pytest.mark.parametrize("scheme", SCHEME_NAMES)
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_scheme_policy_pattern_grid(self, scheme, policy, pattern):
        config = MemSysConfig(scheme=scheme, policy=policy)
        trace = synthesize_trace(
            pattern, 1500, config, seed=11, write_fraction=0.25
        )
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_pim_all_bank(self, policy):
        config = MemSysConfig(n_channels=2, policy=policy)
        trace = pim_all_bank_trace(config, 1024)
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-vectorized"
        assert_stats_equivalent(event_stats, fast_stats)

    def test_mixed_host_and_pim_trace(self):
        config = MemSysConfig(n_channels=1)
        host = synthesize_trace("sequential", 512, config)
        pim = pim_all_bank_trace(config, 512)
        trace = [
            r for pair in zip(host, pim) for r in pair
        ]
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        # mixed streams reset all-bank state: only the exact tier applies
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats)

    def test_small_and_sub_queue_depth_traces(self):
        config = MemSysConfig()
        for n in (1, 3, config.queue_depth, config.queue_depth + 1):
            trace = synthesize_trace("sequential", n, config)
            event_stats, fast_stats, _ = replay_both(config, trace)
            assert_stats_equivalent(event_stats, fast_stats)

    def test_queue_depth_one(self):
        config = MemSysConfig(queue_depth=1, n_channels=2)
        trace = synthesize_trace("random", 600, config, seed=9)
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    def test_explicit_precharge(self):
        config = MemSysConfig(
            n_channels=1, bankgroups=1, banks_per_group=1,
            precharge_ns=7.5,
        )
        trace = synthesize_trace("random", 800, config, seed=2)
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize(
        "pattern", ("sequential", "strided", "random")
    )
    def test_closed_page_policy(self, policy, pattern):
        config = MemSysConfig(policy=policy, row_policy="closed")
        trace = synthesize_trace(
            pattern, 1200, config, seed=5, write_fraction=0.25
        )
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        # no hits exist to hoist: the closed form stays exact
        assert fast_system.last_replay_engine == "fast-vectorized"
        assert fast_stats.row_hits == 0
        assert fast_stats.row_conflicts == 0
        assert_stats_equivalent(event_stats, fast_stats)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_closed_page_pim_all_bank(self, policy):
        config = MemSysConfig(
            n_channels=2, policy=policy, row_policy="closed"
        )
        trace = pim_all_bank_trace(config, 512)
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-vectorized"
        assert fast_stats.row_hits == 0
        assert_stats_equivalent(event_stats, fast_stats)

    def test_ab_broadcast_stream_uses_exact_tier(self):
        """Register-broadcast traffic always runs the exact tier and
        matches the event engine bit-for-bit."""
        config = MemSysConfig(n_channels=2)
        host = synthesize_trace("sequential", 300, config)
        trace = []
        for i, request in enumerate(host):
            trace.append(request)
            if i % 3 == 0:
                trace.append(MemRequest(Op.AB, request.addr))
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats, rel=None)


class TestTierSelection:
    def test_streaming_uses_vectorized_tier(self):
        config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
        system = MemorySystem(config)
        system.replay(
            synthesize_trace("sequential", 2048, config), engine="fast"
        )
        assert system.last_replay_engine == "fast-vectorized"

    def test_random_frfcfs_uses_exact_tier(self):
        config = MemSysConfig(
            n_channels=2, scheme="channel-interleaved", policy="frfcfs"
        )
        system = MemorySystem(config)
        system.replay(
            synthesize_trace("random", 2048, config, seed=1),
            engine="fast",
        )
        assert system.last_replay_engine == "fast-exact"

    def test_exact_tier_is_bit_identical(self):
        """The exact tier replicates the event calendar's scheduling
        order, so even float aggregates match bit-for-bit."""
        config = MemSysConfig(policy="frfcfs")
        trace = synthesize_trace(
            "random", 2000, config, seed=4, write_fraction=0.3
        )
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats, rel=None)


class TestEngineSelection:
    def test_auto_picks_fast_on_private_sim(self):
        config = MemSysConfig()
        system = MemorySystem(config)
        system.replay(synthesize_trace("sequential", 64, config))
        assert system.last_replay_engine.startswith("fast")

    def test_auto_picks_event_on_advanced_private_clock(self):
        """A private sim whose clock already moved (e.g. via submit +
        run) must fall back to the event engine, not raise."""
        config = MemSysConfig()
        system = MemorySystem(config)
        system.submit(MemRequest(Op.READ, 0))
        system.sim.run()
        assert system.sim.now > 0.0
        stats = system.replay(synthesize_trace("sequential", 64, config))
        assert system.last_replay_engine == "event"
        assert stats.n_requests == 65  # the submitted request counts too

    def test_auto_picks_event_on_shared_sim(self):
        config = MemSysConfig()
        system = MemorySystem(config, sim=Simulator())
        system.replay(synthesize_trace("sequential", 64, config))
        assert system.last_replay_engine == "event"

    def test_auto_picks_event_with_tracer(self):
        config = MemSysConfig()
        system = MemorySystem(config)
        system.sim.tracer = Tracer()
        system.replay(synthesize_trace("sequential", 64, config))
        assert system.last_replay_engine == "event"

    def test_unknown_engine_rejected(self):
        config = MemSysConfig()
        with pytest.raises(ValueError, match="unknown engine"):
            MemorySystem(config).replay(
                synthesize_trace("sequential", 16, config),
                engine="warp",
            )

    def test_fast_engine_requires_fresh_clock(self):
        sim = Simulator()

        def ticker():
            yield sim.timeout(5.0)

        sim.process(ticker())
        sim.run()
        config = MemSysConfig()
        system = MemorySystem(config, sim=sim)
        with pytest.raises(RuntimeError, match="fresh simulator clock"):
            system.replay(
                synthesize_trace("sequential", 16, config),
                engine="fast",
            )

    def test_second_replay_rejected_on_fast_engine(self):
        config = MemSysConfig()
        system = MemorySystem(config)
        system.replay(
            synthesize_trace("sequential", 16, config), engine="fast"
        )
        with pytest.raises(RuntimeError, match="fresh MemorySystem"):
            system.replay(
                synthesize_trace("sequential", 16, config),
                engine="fast",
            )


class TestFastPathSideEffects:
    def test_request_fields_written_back(self):
        """Object traces get the same per-request runtime fields from
        both engines, in both fast tiers."""
        for pattern, expected_tier in (
            ("sequential", "fast-vectorized"),
            ("random", "fast-exact"),
        ):
            config = MemSysConfig(
                scheme="channel-interleaved", policy="frfcfs"
            )
            trace = synthesize_trace(pattern, 2048, config, seed=8)
            event_trace = fresh(trace)
            MemorySystem(config).replay(event_trace, engine="event")
            fast_trace = fresh(trace)
            fast_system = MemorySystem(config)
            fast_system.replay(fast_trace, engine="fast")
            assert fast_system.last_replay_engine == expected_tier
            for event_req, fast_req in zip(event_trace, fast_trace):
                assert fast_req.coords == event_req.coords
                assert fast_req.arrival == event_req.arrival
                assert fast_req.start_service == event_req.start_service
                assert fast_req.finish == event_req.finish
                assert fast_req.outcome == event_req.outcome
                assert fast_req.bits == event_req.bits

    def test_queue_length_extremes_match_event_engine(self):
        """The vectorized tier's queue-occupancy min/max bookkeeping
        (not part of MemSysStats) must agree with the event engine."""
        config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
        for n in (4, config.queue_depth, 2048):
            trace = synthesize_trace("sequential", n, config)
            event_system = MemorySystem(config)
            event_system.replay(fresh(trace), engine="event")
            fast_system = MemorySystem(config)
            fast_system.replay(fresh(trace), engine="fast")
            assert fast_system.last_replay_engine == "fast-vectorized"
            for event_ctrl, fast_ctrl in zip(
                event_system.controllers, fast_system.controllers
            ):
                assert (
                    fast_ctrl.queue_len.maximum
                    == event_ctrl.queue_len.maximum
                )
                assert (
                    fast_ctrl.queue_len.minimum
                    == event_ctrl.queue_len.minimum
                )

    def test_bank_state_matches_event_engine(self):
        config = MemSysConfig()
        trace = synthesize_trace("random", 500, config, seed=6)
        event_system = MemorySystem(config)
        event_system.replay(fresh(trace), engine="event")
        fast_system = MemorySystem(config)
        fast_system.replay(fresh(trace), engine="fast")
        for event_ctrl, fast_ctrl in zip(
            event_system.controllers, fast_system.controllers
        ):
            for event_bank, fast_bank in zip(
                event_ctrl.banks, fast_ctrl.banks
            ):
                assert fast_bank.open_row == event_bank.open_row
                assert fast_bank.hits == event_bank.hits
                assert fast_bank.misses == event_bank.misses
                assert fast_bank.conflicts == event_bank.conflicts

    def test_packed_trace_replay_matches_object_replay(self):
        config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
        objects = synthesize_trace(
            "sequential", 1024, config, write_fraction=0.5, seed=3
        )
        packed = PackedTrace.from_requests(objects)
        object_stats = MemorySystem(config).replay(
            fresh(objects), engine="fast"
        )
        packed_stats = MemorySystem(config).replay(packed, engine="fast")
        assert dataclasses.asdict(packed_stats) == dataclasses.asdict(
            object_stats
        )

    def test_packed_trace_through_event_engine(self):
        config = MemSysConfig()
        packed = synthesize_trace(
            "sequential", 256, config, packed=True
        )
        system = MemorySystem(config)
        stats = system.replay(packed, engine="event")
        assert system.last_replay_engine == "event"
        assert stats.n_requests == 256


def ab_all_bank_trace(config, n):
    """All-bank broadcast commands with the same geometry as
    :func:`pim_all_bank_trace` — the lockstep ``unit_mode="vectorized"``
    machines emit exactly this shape when staging register files."""
    return [
        MemRequest(Op.AB, request.addr)
        for request in pim_all_bank_trace(config, n)
    ]


def replay_both_timed(config, trace):
    """Like :func:`replay_both` but keeping arrival timestamps —
    ``fresh`` strips them, which would hide the backpressure tier."""

    def copy():
        return [
            MemRequest(r.op, r.addr, timestamp=r.timestamp)
            for r in trace
        ]

    event_stats = MemorySystem(config).replay(copy(), engine="event")
    fast_system = MemorySystem(config)
    fast_stats = fast_system.replay(copy(), engine="fast")
    return event_stats, fast_stats, fast_system


class TestAbCertificate:
    """Admission and decline cases for the AB fastpath certificate."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_pure_ab_stream_admitted(self, policy):
        config = MemSysConfig(n_channels=2, policy=policy)
        trace = ab_all_bank_trace(config, 512)
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-vectorized"
        assert fast_stats.n_requests == 512
        assert_stats_equivalent(event_stats, fast_stats)

    def test_ab_prefix_then_pim_admitted(self):
        """The broadcast-then-execute shape every lockstep kernel run
        produces: GRF/SRF staging broadcasts followed by the all-bank
        compute stream stays on the closed-form tier."""
        config = MemSysConfig(n_channels=2)
        trace = ab_all_bank_trace(config, 64) + pim_all_bank_trace(
            config, 512
        )
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-vectorized"
        assert fast_stats.n_requests == 64 + 512
        assert_stats_equivalent(event_stats, fast_stats)

    def test_ab_interleaved_with_pim_admitted(self):
        """AB and PIM may interleave freely: both are all-bank ops, so
        the certificate holds with no host traffic in the channel."""
        config = MemSysConfig(n_channels=2)
        ab = ab_all_bank_trace(config, 256)
        pim = pim_all_bank_trace(config, 256)
        trace = [r for pair in zip(ab, pim) for r in pair]
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-vectorized"
        assert_stats_equivalent(event_stats, fast_stats)

    def test_slow_timestamped_ab_stream_admitted(self):
        """Timestamped arrivals slower than service keep the queue
        empty, so the backpressure certificate passes."""
        config = MemSysConfig(n_channels=2)
        trace = [
            MemRequest(r.op, r.addr, timestamp=i * 1000.0)
            for i, r in enumerate(ab_all_bank_trace(config, 256))
        ]
        event_stats, fast_stats, fast_system = replay_both_timed(
            config, trace
        )
        assert fast_system.last_replay_engine == "fast-vectorized"
        assert_stats_equivalent(event_stats, fast_stats)

    def test_burst_timestamped_ab_stream_declined(self):
        """All arrivals at t=0 overflow the queue: the backpressure
        certificate fails and the exact tier reproduces the event
        calendar bit-for-bit."""
        config = MemSysConfig(n_channels=2)
        trace = [
            MemRequest(r.op, r.addr, timestamp=0.0)
            for r in ab_all_bank_trace(config, 256)
        ]
        event_stats, fast_stats, fast_system = replay_both_timed(
            config, trace
        )
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats, rel=None)

    def test_per_bank_refresh_ab_stream_declined(self):
        """Per-bank refresh staggers the banks out of lockstep, which
        an all-bank closed form cannot express: exact tier, bit-exact."""
        config = MemSysConfig(
            n_channels=2,
            trefi_ns=3900.0,
            trfc_ns=350.0,
            refresh_granularity="per-bank",
        )
        trace = ab_all_bank_trace(config, 512)
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats, rel=None)

    def test_host_traffic_poisons_the_certificate(self):
        """A single host read inside an otherwise pure AB channel must
        decline the whole channel — no silent approximation."""
        config = MemSysConfig(n_channels=2)
        trace = ab_all_bank_trace(config, 256)
        host = synthesize_trace("sequential", 1, config)
        trace.insert(128, host[0])
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats, rel=None)
