"""Tests for the bit-field address map and interleaving schemes."""

import pytest

from repro.memsys import AddressMap, Coordinates, SCHEMES


class TestValidation:
    def test_rejects_bad_order(self):
        with pytest.raises(ValueError, match="permutation"):
            AddressMap(order=("channel", "bank", "row", "column", "row"))

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            AddressMap(row_bits=-1)

    def test_unknown_scheme_lists_available(self):
        with pytest.raises(KeyError, match="row-major"):
            AddressMap.from_scheme("nope")

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            AddressMap().decode(-1)

    def test_encode_rejects_overflowing_field(self):
        amap = AddressMap(channel_bits=1)
        with pytest.raises(ValueError, match="channel"):
            amap.encode(Coordinates(channel=2))


class TestGeometry:
    def test_counts_and_capacity(self):
        amap = AddressMap(
            channel_bits=2, bankgroup_bits=1, bank_bits=1,
            row_bits=10, column_bits=3, offset_bits=5,
        )
        assert amap.counts() == {
            "channel": 4, "bankgroup": 2, "bank": 2,
            "row": 1024, "column": 8,
        }
        assert amap.mapped_bits == 22
        assert amap.capacity_bytes == 1 << 22
        assert amap.transaction_bytes == 32

    def test_str_shows_field_layout(self):
        text = str(AddressMap())
        assert text == "[Ch:1][Bg:1][Ba:1][Ro:14][Co:3][Off:5]"
        # bankgroup and bank must be distinguishable in the layout
        assert "Bg:" in text and "Ba:" in text


class TestBijectivity:
    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_roundtrip_random_sample(self, scheme, rng):
        amap = AddressMap.from_scheme(
            scheme, channel_bits=2, bankgroup_bits=2, bank_bits=2,
            row_bits=8, column_bits=3, offset_bits=5,
        )
        n_mapped = amap.mapped_bits - amap.offset_bits
        samples = rng.integers(0, 1 << n_mapped, size=2048)
        for sample in samples:
            addr = int(sample) << amap.offset_bits
            assert amap.encode(amap.decode(addr)) == addr

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_decode_is_injective_over_small_space(self, scheme):
        amap = AddressMap.from_scheme(
            scheme, channel_bits=1, bankgroup_bits=1, bank_bits=1,
            row_bits=3, column_bits=2, offset_bits=0,
        )
        seen = {
            amap.decode(addr) for addr in range(amap.capacity_bytes)
        }
        assert len(seen) == amap.capacity_bytes

    def test_high_bits_wrap(self):
        amap = AddressMap()
        addr = 123 << amap.offset_bits
        assert amap.decode(addr + amap.capacity_bytes) == amap.decode(addr)


class TestInterleaving:
    def test_channel_interleaved_spreads_consecutive_transactions(self):
        amap = AddressMap.from_scheme("channel-interleaved", channel_bits=2)
        step = amap.transaction_bytes
        channels = [amap.decode(i * step).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_major_keeps_consecutive_transactions_in_one_row(self):
        amap = AddressMap.from_scheme("row-major", column_bits=3)
        step = amap.transaction_bytes
        coords = [amap.decode(i * step) for i in range(8)]
        assert {c.row for c in coords} == {0}
        assert [c.column for c in coords] == list(range(8))

    def test_bank_interleaved_spreads_banks_within_channel(self):
        amap = AddressMap.from_scheme(
            "bank-interleaved", bankgroup_bits=1, bank_bits=1
        )
        step = amap.transaction_bytes
        coords = [amap.decode(i * step) for i in range(4)]
        assert {c.channel for c in coords} == {0}
        assert len({c.flat_bank(2) for c in coords}) == 4
