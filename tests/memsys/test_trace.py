"""Tests for the trace format and synthetic trace generation."""

import pytest

from repro.memsys import (
    MemRequest,
    MemSysConfig,
    Op,
    TRACE_PATTERNS,
    format_trace,
    parse_trace,
    synthesize_trace,
    write_trace,
)


class TestParse:
    def test_ops_and_addresses(self):
        reqs = parse_trace("R 0x20\nW 64\nP 0x0\n")
        assert [r.op for r in reqs] == [Op.READ, Op.WRITE, Op.PIM]
        assert [r.addr for r in reqs] == [0x20, 64, 0]

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nR 0x20  # inline comment\n   \n"
        assert len(parse_trace(text)) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            parse_trace("X 0x20")

    def test_bad_address_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace("R 0x20\nR zzz")

    def test_negative_address_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace("R 0x20\nR -0x20")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="OP ADDRESS"):
            parse_trace("R 0x20 0x40")


class TestRoundTrip:
    def test_parse_write_parse(self, tmp_path):
        original = [
            MemRequest(Op.READ, 0x1A00),
            MemRequest(Op.WRITE, 0x1A20),
            MemRequest(Op.PIM, 0),
        ]
        path = write_trace(tmp_path / "t" / "a.trace", original)
        assert path.exists()
        reparsed = parse_trace(path)
        assert len(reparsed) == len(original)
        assert all(
            a.same_payload(b) for a, b in zip(original, reparsed)
        )
        # and a second lap through text stays fixed
        assert format_trace(reparsed) == format_trace(original)

    def test_parse_reads_path_objects_but_not_path_strings(self, tmp_path):
        path = write_trace(
            tmp_path / "b.trace", [MemRequest(Op.READ, 32)]
        )
        assert parse_trace(path)[0].addr == 32
        # a str is always content, so a path-as-string is a format error
        with pytest.raises(ValueError, match="OP ADDRESS"):
            parse_trace(str(path))


class TestSynthesize:
    @pytest.mark.parametrize("pattern", TRACE_PATTERNS)
    def test_patterns_produce_aligned_valid_requests(self, pattern):
        config = MemSysConfig()
        reqs = synthesize_trace(pattern, 256, config, seed=7)
        assert len(reqs) == 256
        capacity = config.address_map().capacity_bytes
        granule = config.transaction_bytes
        for req in reqs:
            assert req.op is Op.READ
            assert 0 <= req.addr < capacity
            assert req.addr % granule == 0

    def test_write_fraction(self):
        reqs = synthesize_trace(
            "sequential", 500, write_fraction=0.5, seed=1
        )
        writes = sum(r.op is Op.WRITE for r in reqs)
        assert 150 < writes < 350

    def test_unknown_pattern(self):
        with pytest.raises(KeyError, match="unknown pattern"):
            synthesize_trace("fibonacci", 10)

    def test_deterministic_for_seed(self):
        a = synthesize_trace("random", 100, seed=3)
        b = synthesize_trace("random", 100, seed=3)
        assert all(x.same_payload(y) for x, y in zip(a, b))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthesize_trace("sequential", 0)
