"""Tests for the trace format and synthetic trace generation."""

import numpy as np
import pytest

from repro.memsys import (
    MemRequest,
    MemSysConfig,
    Op,
    PackedTrace,
    TRACE_PATTERNS,
    format_trace,
    iter_trace,
    parse_trace,
    synthesize_trace,
    write_trace,
)


class TestParse:
    def test_ops_and_addresses(self):
        reqs = parse_trace("R 0x20\nW 64\nP 0x0\n")
        assert [r.op for r in reqs] == [Op.READ, Op.WRITE, Op.PIM]
        assert [r.addr for r in reqs] == [0x20, 64, 0]

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nR 0x20  # inline comment\n   \n"
        assert len(parse_trace(text)) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            parse_trace("X 0x20")

    def test_bad_address_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace("R 0x20\nR zzz")

    def test_negative_address_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace("R 0x20\nR -0x20")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="OP ADDRESS"):
            parse_trace("R 0x20 12.5 extra")

    def test_third_column_must_be_a_timestamp(self):
        # three tokens are valid syntax (timestamped trace), but the
        # third must parse as a decimal timestamp
        with pytest.raises(ValueError, match="bad timestamp"):
            parse_trace("R 0x20 0x40")

    def test_truncated_line_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 3.*OP ADDRESS"):
            parse_trace("R 0x20\nW 0x40\nR\n")

    def test_mnemonic_case_and_whitespace_tolerated(self):
        reqs = parse_trace("  r 0x20\n\tw 64\n")
        assert [r.op for r in reqs] == [Op.READ, Op.WRITE]

    def test_ab_broadcast_mnemonic_round_trips(self):
        reqs = parse_trace("A 0x40\n")
        assert reqs[0].op is Op.AB
        assert parse_trace(format_trace(reqs))[0].op is Op.AB

    def test_malformed_mnemonic_reports_all_known_ops(self):
        with pytest.raises(ValueError, match=r"\['R', 'W', 'P', 'A'\]"):
            parse_trace("Q 0x20")


class TestRoundTrip:
    def test_parse_write_parse(self, tmp_path):
        original = [
            MemRequest(Op.READ, 0x1A00),
            MemRequest(Op.WRITE, 0x1A20),
            MemRequest(Op.PIM, 0),
        ]
        path = write_trace(tmp_path / "t" / "a.trace", original)
        assert path.exists()
        reparsed = parse_trace(path)
        assert len(reparsed) == len(original)
        assert all(
            a.same_payload(b) for a, b in zip(original, reparsed)
        )
        # and a second lap through text stays fixed
        assert format_trace(reparsed) == format_trace(original)

    def test_parse_reads_path_objects_but_not_path_strings(self, tmp_path):
        path = write_trace(
            tmp_path / "b.trace", [MemRequest(Op.READ, 32)]
        )
        assert parse_trace(path)[0].addr == 32
        # a str is always content, so a path-as-string is a format error
        with pytest.raises(ValueError, match="OP ADDRESS"):
            parse_trace(str(path))


class TestSynthesize:
    @pytest.mark.parametrize("pattern", TRACE_PATTERNS)
    def test_patterns_produce_aligned_valid_requests(self, pattern):
        config = MemSysConfig()
        reqs = synthesize_trace(pattern, 256, config, seed=7)
        assert len(reqs) == 256
        capacity = config.address_map().capacity_bytes
        granule = config.transaction_bytes
        for req in reqs:
            assert req.op is Op.READ
            assert 0 <= req.addr < capacity
            assert req.addr % granule == 0

    def test_write_fraction(self):
        reqs = synthesize_trace(
            "sequential", 500, write_fraction=0.5, seed=1
        )
        writes = sum(r.op is Op.WRITE for r in reqs)
        assert 150 < writes < 350

    def test_unknown_pattern(self):
        with pytest.raises(KeyError, match="unknown pattern"):
            synthesize_trace("fibonacci", 10)

    def test_deterministic_for_seed(self):
        a = synthesize_trace("random", 100, seed=3)
        b = synthesize_trace("random", 100, seed=3)
        assert all(x.same_payload(y) for x, y in zip(a, b))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthesize_trace("sequential", 0)

    def test_packed_output_matches_list_output(self):
        config = MemSysConfig()
        objects = synthesize_trace(
            "random", 300, config, seed=5, write_fraction=0.4
        )
        packed = synthesize_trace(
            "random", 300, config, seed=5, write_fraction=0.4,
            packed=True,
        )
        assert isinstance(packed, PackedTrace)
        assert len(packed) == len(objects)
        assert all(
            a.same_payload(b) for a, b in zip(packed, objects)
        )


class TestPackedTrace:
    def test_round_trip_through_requests(self):
        original = [
            MemRequest(Op.READ, 0x1A00),
            MemRequest(Op.WRITE, 0x1A20),
            MemRequest(Op.PIM, 0),
        ]
        packed = PackedTrace.from_requests(original)
        assert len(packed) == 3
        rebuilt = packed.to_requests()
        assert all(
            a.same_payload(b) for a, b in zip(original, rebuilt)
        )
        assert packed == PackedTrace.from_requests(rebuilt)

    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            PackedTrace(
                np.zeros(2, np.uint8), np.zeros(3, np.int64)
            )
        with pytest.raises(ValueError, match="op code"):
            PackedTrace(
                np.array([9], np.uint8), np.array([0], np.int64)
            )
        with pytest.raises(ValueError, match="non-negative"):
            PackedTrace(
                np.array([0], np.uint8), np.array([-8], np.int64)
            )

    def test_text_round_trip(self, tmp_path):
        packed = synthesize_trace(
            "random", 64, seed=1, write_fraction=0.5, packed=True
        )
        path = write_trace(tmp_path / "packed.trace", packed)
        assert parse_trace(path, packed=True) == packed


class TestLazyStreaming:
    def test_iter_trace_is_lazy(self):
        """The parser must pull lines on demand, not slurp them."""
        consumed = []

        def lines():
            for i in range(100):
                consumed.append(i)
                yield f"R {32 * i:#x}"

        stream = iter_trace(lines())
        first = next(stream)
        assert first.addr == 0
        assert len(consumed) == 1

    def test_iter_trace_streams_files_line_by_line(self, tmp_path):
        path = write_trace(
            tmp_path / "big.trace",
            (MemRequest(Op.READ, 32 * i) for i in range(1000)),
        )
        addrs = [r.addr for r in iter_trace(path)]
        assert addrs == [32 * i for i in range(1000)]

    def test_write_trace_accepts_generators(self, tmp_path):
        path = write_trace(
            tmp_path / "gen.trace",
            (MemRequest(Op.WRITE, 64 * i) for i in range(10)),
        )
        reqs = parse_trace(path)
        assert [r.addr for r in reqs] == [64 * i for i in range(10)]
        assert all(r.op is Op.WRITE for r in reqs)

    def test_iter_trace_reports_line_numbers(self):
        stream = iter_trace("R 0x20\nX 0x40\n")
        next(stream)
        with pytest.raises(ValueError, match="unknown trace op"):
            next(stream)


class TestTimestamps:
    """The optional third trace column: arrival timestamps in ns."""

    def test_parse_timestamped_lines(self):
        reqs = parse_trace("R 0x20 0.0\nW 64 12.5\nP 0x0 100\n")
        assert [r.timestamp for r in reqs] == [0.0, 12.5, 100.0]

    def test_round_trip_is_lossless(self, tmp_path):
        original = [
            MemRequest(Op.READ, 0x1A00, 0.0),
            MemRequest(Op.WRITE, 0x1A20, 0.1 + 0.2),  # non-trivial float
            MemRequest(Op.PIM, 0, 1e9 / 3),
        ]
        path = write_trace(tmp_path / "timed.trace", original)
        reparsed = parse_trace(path)
        assert all(
            a.same_payload(b) for a, b in zip(original, reparsed)
        )
        assert [r.timestamp for r in reparsed] == [
            r.timestamp for r in original
        ]
        assert format_trace(reparsed) == format_trace(original)

    def test_untimestamped_lines_have_no_timestamp(self):
        assert parse_trace("R 0x20\n")[0].timestamp is None

    def test_mixed_presence_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2.*mixes"):
            parse_trace("R 0x20 1.0\nW 0x40\n")
        with pytest.raises(ValueError, match="line 2.*mixes"):
            parse_trace("R 0x20\nW 0x40 1.0\n")

    def test_decreasing_timestamp_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2.*decreases"):
            parse_trace("R 0x20 5.0\nW 0x40 4.0\n")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match="non-negative finite"):
            parse_trace("R 0x20 -1.0\n")

    @pytest.mark.parametrize("literal", ("nan", "inf"))
    def test_non_finite_timestamp_rejected(self, literal):
        with pytest.raises(ValueError, match="non-negative finite"):
            parse_trace(f"R 0x20 {literal}\n")

    def test_packed_infinite_timestamp_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            PackedTrace(
                np.array([0, 0], dtype=np.uint8),
                np.array([0, 32], dtype=np.int64),
                np.array([0.0, np.inf]),
            )

    def test_equal_timestamps_allowed(self):
        reqs = parse_trace("R 0x20 7.0\nW 0x40 7.0\n")
        assert [r.timestamp for r in reqs] == [7.0, 7.0]

    def test_packed_trace_carries_times(self):
        packed = PackedTrace(
            np.array([0, 1], dtype=np.uint8),
            np.array([0x20, 0x40], dtype=np.int64),
            np.array([1.0, 2.0]),
        )
        reqs = packed.to_requests()
        assert [r.timestamp for r in reqs] == [1.0, 2.0]
        assert PackedTrace.from_requests(reqs) == packed
        assert "timed" in repr(packed)

    def test_packed_trace_time_validation(self):
        ops = np.array([0, 0], dtype=np.uint8)
        addrs = np.array([0, 32], dtype=np.int64)
        with pytest.raises(ValueError, match="non-decreasing"):
            PackedTrace(ops, addrs, np.array([2.0, 1.0]))
        with pytest.raises(ValueError, match="non-negative"):
            PackedTrace(ops, addrs, np.array([-1.0, 1.0]))
        with pytest.raises(ValueError, match="matching"):
            PackedTrace(ops, addrs, np.array([1.0]))

    def test_packed_equality_distinguishes_timed(self):
        ops = np.array([0], dtype=np.uint8)
        addrs = np.array([32], dtype=np.int64)
        assert PackedTrace(ops, addrs) != PackedTrace(
            ops, addrs, np.array([0.0])
        )

    def test_from_requests_rejects_mixed(self):
        with pytest.raises(ValueError, match="mixes"):
            PackedTrace.from_requests(
                [MemRequest(Op.READ, 0, 1.0), MemRequest(Op.READ, 32)]
            )

    def test_synthesize_interarrival(self):
        config = MemSysConfig()
        reqs = synthesize_trace(
            "sequential", 5, config, interarrival_ns=2.5, start_ns=10.0
        )
        assert [r.timestamp for r in reqs] == [
            10.0, 12.5, 15.0, 17.5, 20.0,
        ]
        packed = synthesize_trace(
            "sequential", 5, config, interarrival_ns=2.5,
            start_ns=10.0, packed=True,
        )
        assert packed.times is not None
        assert packed.times.tolist() == [10.0, 12.5, 15.0, 17.5, 20.0]

    def test_synthesize_rejects_negative_interarrival(self):
        with pytest.raises(ValueError, match="interarrival_ns"):
            synthesize_trace("sequential", 4, interarrival_ns=-1.0)
        with pytest.raises(ValueError, match="start_ns"):
            synthesize_trace(
                "sequential", 4, interarrival_ns=1.0, start_ns=-5.0
            )

    def test_request_timestamp_validation(self):
        with pytest.raises(ValueError, match="timestamp"):
            MemRequest(Op.READ, 0, -1.0)
        with pytest.raises(ValueError, match="timestamp"):
            MemRequest(Op.READ, 0, float("nan"))
        with pytest.raises(ValueError, match="timestamp"):
            MemRequest(Op.READ, 0, float("inf"))
