"""Tests for the trace format and synthetic trace generation."""

import numpy as np
import pytest

from repro.memsys import (
    MemRequest,
    MemSysConfig,
    Op,
    PackedTrace,
    TRACE_PATTERNS,
    format_trace,
    iter_trace,
    parse_trace,
    synthesize_trace,
    write_trace,
)


class TestParse:
    def test_ops_and_addresses(self):
        reqs = parse_trace("R 0x20\nW 64\nP 0x0\n")
        assert [r.op for r in reqs] == [Op.READ, Op.WRITE, Op.PIM]
        assert [r.addr for r in reqs] == [0x20, 64, 0]

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nR 0x20  # inline comment\n   \n"
        assert len(parse_trace(text)) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            parse_trace("X 0x20")

    def test_bad_address_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace("R 0x20\nR zzz")

    def test_negative_address_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_trace("R 0x20\nR -0x20")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="OP ADDRESS"):
            parse_trace("R 0x20 0x40")

    def test_truncated_line_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 3.*OP ADDRESS"):
            parse_trace("R 0x20\nW 0x40\nR\n")

    def test_mnemonic_case_and_whitespace_tolerated(self):
        reqs = parse_trace("  r 0x20\n\tw 64\n")
        assert [r.op for r in reqs] == [Op.READ, Op.WRITE]

    def test_ab_broadcast_mnemonic_round_trips(self):
        reqs = parse_trace("A 0x40\n")
        assert reqs[0].op is Op.AB
        assert parse_trace(format_trace(reqs))[0].op is Op.AB

    def test_malformed_mnemonic_reports_all_known_ops(self):
        with pytest.raises(ValueError, match=r"\['R', 'W', 'P', 'A'\]"):
            parse_trace("Q 0x20")


class TestRoundTrip:
    def test_parse_write_parse(self, tmp_path):
        original = [
            MemRequest(Op.READ, 0x1A00),
            MemRequest(Op.WRITE, 0x1A20),
            MemRequest(Op.PIM, 0),
        ]
        path = write_trace(tmp_path / "t" / "a.trace", original)
        assert path.exists()
        reparsed = parse_trace(path)
        assert len(reparsed) == len(original)
        assert all(
            a.same_payload(b) for a, b in zip(original, reparsed)
        )
        # and a second lap through text stays fixed
        assert format_trace(reparsed) == format_trace(original)

    def test_parse_reads_path_objects_but_not_path_strings(self, tmp_path):
        path = write_trace(
            tmp_path / "b.trace", [MemRequest(Op.READ, 32)]
        )
        assert parse_trace(path)[0].addr == 32
        # a str is always content, so a path-as-string is a format error
        with pytest.raises(ValueError, match="OP ADDRESS"):
            parse_trace(str(path))


class TestSynthesize:
    @pytest.mark.parametrize("pattern", TRACE_PATTERNS)
    def test_patterns_produce_aligned_valid_requests(self, pattern):
        config = MemSysConfig()
        reqs = synthesize_trace(pattern, 256, config, seed=7)
        assert len(reqs) == 256
        capacity = config.address_map().capacity_bytes
        granule = config.transaction_bytes
        for req in reqs:
            assert req.op is Op.READ
            assert 0 <= req.addr < capacity
            assert req.addr % granule == 0

    def test_write_fraction(self):
        reqs = synthesize_trace(
            "sequential", 500, write_fraction=0.5, seed=1
        )
        writes = sum(r.op is Op.WRITE for r in reqs)
        assert 150 < writes < 350

    def test_unknown_pattern(self):
        with pytest.raises(KeyError, match="unknown pattern"):
            synthesize_trace("fibonacci", 10)

    def test_deterministic_for_seed(self):
        a = synthesize_trace("random", 100, seed=3)
        b = synthesize_trace("random", 100, seed=3)
        assert all(x.same_payload(y) for x, y in zip(a, b))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            synthesize_trace("sequential", 0)

    def test_packed_output_matches_list_output(self):
        config = MemSysConfig()
        objects = synthesize_trace(
            "random", 300, config, seed=5, write_fraction=0.4
        )
        packed = synthesize_trace(
            "random", 300, config, seed=5, write_fraction=0.4,
            packed=True,
        )
        assert isinstance(packed, PackedTrace)
        assert len(packed) == len(objects)
        assert all(
            a.same_payload(b) for a, b in zip(packed, objects)
        )


class TestPackedTrace:
    def test_round_trip_through_requests(self):
        original = [
            MemRequest(Op.READ, 0x1A00),
            MemRequest(Op.WRITE, 0x1A20),
            MemRequest(Op.PIM, 0),
        ]
        packed = PackedTrace.from_requests(original)
        assert len(packed) == 3
        rebuilt = packed.to_requests()
        assert all(
            a.same_payload(b) for a, b in zip(original, rebuilt)
        )
        assert packed == PackedTrace.from_requests(rebuilt)

    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            PackedTrace(
                np.zeros(2, np.uint8), np.zeros(3, np.int64)
            )
        with pytest.raises(ValueError, match="op code"):
            PackedTrace(
                np.array([9], np.uint8), np.array([0], np.int64)
            )
        with pytest.raises(ValueError, match="non-negative"):
            PackedTrace(
                np.array([0], np.uint8), np.array([-8], np.int64)
            )

    def test_text_round_trip(self, tmp_path):
        packed = synthesize_trace(
            "random", 64, seed=1, write_fraction=0.5, packed=True
        )
        path = write_trace(tmp_path / "packed.trace", packed)
        assert parse_trace(path, packed=True) == packed


class TestLazyStreaming:
    def test_iter_trace_is_lazy(self):
        """The parser must pull lines on demand, not slurp them."""
        consumed = []

        def lines():
            for i in range(100):
                consumed.append(i)
                yield f"R {32 * i:#x}"

        stream = iter_trace(lines())
        first = next(stream)
        assert first.addr == 0
        assert len(consumed) == 1

    def test_iter_trace_streams_files_line_by_line(self, tmp_path):
        path = write_trace(
            tmp_path / "big.trace",
            (MemRequest(Op.READ, 32 * i) for i in range(1000)),
        )
        addrs = [r.addr for r in iter_trace(path)]
        assert addrs == [32 * i for i in range(1000)]

    def test_write_trace_accepts_generators(self, tmp_path):
        path = write_trace(
            tmp_path / "gen.trace",
            (MemRequest(Op.WRITE, 64 * i) for i in range(10)),
        )
        reqs = parse_trace(path)
        assert [r.addr for r in reqs] == [64 * i for i in range(10)]
        assert all(r.op is Op.WRITE for r in reqs)

    def test_iter_trace_reports_line_numbers(self):
        stream = iter_trace("R 0x20\nX 0x40\n")
        next(stream)
        with pytest.raises(ValueError, match="unknown trace op"):
            next(stream)
