"""The FR-FCFS per-bank open-row table must never change selections.

``ChannelController._select`` skips the queue scan when the open-row
table says no queued request hits.  These tests replay traces against
a *reference* controller whose ``_select`` always runs the full scan
(the pre-table implementation) and require bit-identical statistics,
so an open-row table that ever under-counts hits — skipping a scan
that would have hoisted one — cannot land silently.
"""

import numpy as np
import pytest

from repro.memsys import (
    MemRequest,
    MemorySystem,
    MemSysConfig,
    Op,
    synthesize_trace,
)
from repro.memsys.controller import ChannelController


def _reference_select(self):
    """The pre-table FR-FCFS selection: always scan the queue."""
    candidate = self._refresh_candidate
    if candidate is not None:
        self._refresh_candidate = None
        return candidate
    if self.policy == "frfcfs":
        ab = Op.AB
        banks = self.banks
        for request in self.pending:
            if request.op is ab:
                break
            index = request.bank_index
            if index is None:
                continue
            if banks[index].open_row == request.coords.row:
                return request
    return self.pending[0]


def _stats_pair(trace_builder, config, engine, monkeypatch):
    table = MemorySystem(config).replay(
        trace_builder(), engine=engine
    ).summary()
    with monkeypatch.context() as patch:
        patch.setattr(ChannelController, "_select", _reference_select)
        reference = MemorySystem(config).replay(
            trace_builder(), engine=engine
        ).summary()
    return table, reference


@pytest.mark.parametrize("engine", ["event", "fast"])
@pytest.mark.parametrize(
    "pattern", ["random", "sequential", "strided", "blocked_reuse"]
)
def test_selection_matches_reference_scan(
    pattern, engine, monkeypatch
):
    config = MemSysConfig()
    table, reference = _stats_pair(
        lambda: synthesize_trace(pattern, 3_000, config, seed=7),
        config,
        engine,
        monkeypatch,
    )
    assert table == reference


@pytest.mark.parametrize("granularity", ["per-rank", "per-bank"])
def test_selection_matches_reference_under_refresh(
    granularity, monkeypatch
):
    config = MemSysConfig(
        trefi_ns=500.0, trfc_ns=60.0, refresh_granularity=granularity
    )
    table, reference = _stats_pair(
        lambda: synthesize_trace(
            "random", 2_000, config, seed=11, write_fraction=0.3
        ),
        config,
        "event",
        monkeypatch,
    )
    assert table == reference


def test_selection_matches_reference_with_pim_and_ab(monkeypatch):
    """Mixed host/PIM/AB streams exercise the all-bank rescans."""
    config = MemSysConfig()
    amap = config.address_map()

    def build():
        rng = np.random.default_rng(3)
        requests = []
        host = synthesize_trace("random", 600, config, seed=3)
        for i, request in enumerate(host):
            requests.append(request)
            if i % 7 == 0:
                row = int(rng.integers(0, config.rows_per_bank))
                coords = amap.decode(0)
                addr = amap.encode(
                    coords.__class__(
                        channel=i % config.n_channels, row=row
                    )
                )
                requests.append(
                    MemRequest(Op.PIM if i % 14 else Op.AB, addr)
                )
        return requests

    config_stats = MemorySystem(config).replay(
        build(), engine="event"
    ).summary()
    with monkeypatch.context() as patch:
        patch.setattr(ChannelController, "_select", _reference_select)
        reference = MemorySystem(config).replay(
            build(), engine="event"
        ).summary()
    assert config_stats == reference


def test_hit_count_reaches_zero_after_replay():
    config = MemSysConfig()
    system = MemorySystem(config)
    system.replay(synthesize_trace("random", 1_000, config, seed=1))
    for controller in system.controllers:
        assert controller._queued_hits == 0
        assert all(not queue for queue in controller._bank_queue)
