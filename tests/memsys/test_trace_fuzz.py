"""Fuzz-style malformed-input suite for the memory-trace parser.

The robustness contract: for *any* text input — truncated, garbled,
dialect-mixed, or randomly mutated — :func:`repro.memsys.parse_trace`
either succeeds or raises :class:`~repro.errors.TraceFormatError`
(a ``ValueError``) carrying the 1-based line number.  It must never
leak an ``IndexError``, ``UnboundLocalError``, ``AttributeError``, or
any other accidental exception from its internals.
"""

import random

import pytest

from repro.errors import TraceFormatError
from repro.memsys import MemSysConfig
from repro.memsys.trace import (
    format_trace,
    parse_trace,
    synthesize_trace,
)

#: A small valid timestamped trace to mutate.
VALID = (
    "R 0x00000100 10.0\n"
    "W 0x00000140 20.0\n"
    "P 0x00000180 30.0\n"
    "A 0x000001c0 40.0\n"
)


def _attempt(text):
    """Parse; malformed input must surface as TraceFormatError only."""
    try:
        parse_trace(text, packed=True)
    except TraceFormatError as error:
        assert isinstance(error, ValueError)
        assert "line" in str(error)
        return error
    return None


class TestMalformedLines:
    @pytest.mark.parametrize(
        "line",
        [
            "R",  # missing address
            "R 0x100 1.0 extra",  # too many tokens
            "FLY 0x100",  # unknown mnemonic
            "R banana",  # non-numeric address
            "R -0x100",  # negative address
            "R 0x100 banana",  # non-numeric timestamp
            "R 0x100 -1.0",  # negative timestamp
            "R 0x100 nan",  # non-finite timestamp
            "R 0x100 inf",
            "R 0x100 1e999",  # overflows to inf
        ],
    )
    def test_bad_line_is_a_typed_error(self, line):
        error = _attempt(line + "\n")
        assert error is not None
        assert error.lineno == 1

    def test_decreasing_timestamps_rejected(self):
        error = _attempt("R 0x100 10.0\nW 0x140 5.0\n")
        assert error is not None
        assert error.lineno == 2

    def test_mixed_timed_and_untimed_rejected(self):
        error = _attempt("R 0x100 10.0\nW 0x140\n")
        assert error is not None
        assert "timestamp" in str(error)

    def test_wrong_dialect_program_trace(self):
        # an HBM-PIMulator program trace fed to the memory parser:
        # typed error, not a crash
        program = 'W GRF_A 0 "0x1"\nPIM MAC GRF_A BANK GRF_A\nAB W\n'
        assert _attempt(program) is not None


class TestTruncation:
    def test_every_prefix_parses_or_raises_typed(self):
        # character-level truncation sweeps the parser through every
        # partial-token state
        for cut in range(len(VALID)):
            _attempt(VALID[:cut])

    def test_truncated_final_line_variants(self):
        for cut in range(1, len("P 0x00000200 50.0")):
            text = VALID + "P 0x00000200 50.0"[:cut] + "\n"
            _attempt(text)


class TestRandomMutation:
    @pytest.mark.parametrize("seed", range(20))
    def test_byte_mutations_never_crash(self, seed):
        rng = random.Random(seed)
        text = list(VALID)
        for _ in range(rng.randrange(1, 6)):
            pos = rng.randrange(len(text))
            text[pos] = chr(rng.randrange(32, 127))
        _attempt("".join(text))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_token_soup_never_crashes(self, seed):
        rng = random.Random(1000 + seed)
        tokens = [
            "R", "W", "P", "A", "0x100", "-5", "1.0", "nan",
            "@3.0", '"0x1"', "#", "GRF_A", "banana", "",
        ]
        lines = []
        for _ in range(rng.randrange(1, 12)):
            lines.append(
                " ".join(
                    rng.choice(tokens)
                    for _ in range(rng.randrange(0, 5))
                )
            )
        _attempt("\n".join(lines) + "\n")

    @pytest.mark.parametrize("seed", range(10))
    def test_line_shuffles_of_valid_trace(self, seed):
        # shuffling timestamped lines usually breaks monotonicity —
        # the parser must call that out, never crash
        rng = random.Random(seed)
        lines = VALID.strip().split("\n")
        rng.shuffle(lines)
        _attempt("\n".join(lines) + "\n")


class TestRoundTripStaysClean:
    def test_synthesized_trace_round_trips(self):
        config = MemSysConfig(n_channels=2)
        requests = synthesize_trace(
            "random", 100, config, seed=0, interarrival_ns=10.0
        )
        text = format_trace(requests)
        parsed = parse_trace(text)
        assert len(parsed) == 100

    def test_comments_and_blanks_survive_anywhere(self):
        noisy = "# header\n\n" + VALID.replace(
            "\n", "  # tail comment\n\n"
        )
        assert len(parse_trace(noisy)) == 4
