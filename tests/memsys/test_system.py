"""Integration tests: controllers, scheduling, and the analytic cross-check."""

import math

import pytest

from repro.arch.dram import (
    DramMacroTiming,
    effective_access_time_ns,
    macro_bandwidth_bits_per_sec,
)
from repro.memsys import (
    ChannelController,
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    synthesize_trace,
)


def single_macro(**kw) -> MemSysConfig:
    return MemSysConfig(
        n_channels=1, bankgroups=1, banks_per_group=1, **kw
    )


def interleaved_two_row_trace(config: MemSysConfig, n: int):
    """Pages of rows 1 and 2 of one bank, strictly alternating."""
    amap = config.address_map()
    pages = [
        amap.encode(Coordinates(row=row, column=col))
        for col in range(config.timing.pages_per_row)
        for row in (1, 2)
    ]
    return [MemRequest(Op.READ, pages[i % len(pages)]) for i in range(n)]


class TestConfigValidation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            MemSysConfig(n_channels=3)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            MemSysConfig(policy="lifo")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError, match="scheme"):
            MemSysConfig(scheme="diagonal")

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(ValueError, match="queue_depth"):
            MemSysConfig(queue_depth=0)
        with pytest.raises(ValueError, match="queue_depth"):
            MemSysConfig(queue_depth=-3)

    def test_rejects_negative_precharge(self):
        with pytest.raises(ValueError, match="precharge_ns"):
            MemSysConfig(precharge_ns=-1.0)

    def test_rejects_unknown_row_policy(self):
        with pytest.raises(ValueError, match="row_policy"):
            MemSysConfig(row_policy="adaptive")

    def test_controller_rejects_bad_depth(self, sim):
        from repro.memsys import Bank

        with pytest.raises(ValueError):
            ChannelController(sim, 0, [Bank()], queue_depth=0)

    def test_controller_rejects_bad_banks_per_group(self, sim):
        from repro.memsys import Bank

        with pytest.raises(ValueError, match="banks_per_group"):
            ChannelController(sim, 0, [Bank()], banks_per_group=2)

    def test_standalone_controller_separates_bankgroups(self, sim):
        """A directly-built controller must not alias bankgroups."""
        from repro.memsys import Bank

        banks = [Bank(name=f"b{i}") for i in range(4)]
        controller = ChannelController(sim, 0, banks, banks_per_group=2)
        first = MemRequest(Op.READ, 0)
        first.coords = Coordinates(bankgroup=0, bank=0, row=1)
        second = MemRequest(Op.READ, 0)
        second.coords = Coordinates(bankgroup=1, bank=0, row=2)
        controller.enqueue(first)
        controller.enqueue(second)
        sim.run()
        assert banks[0].open_row == 1
        assert banks[2].open_row == 2  # group 1 starts at flat index 2

    def test_empty_replay_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(single_macro()).replay([])

    def test_second_replay_rejected(self):
        """Counters are cumulative, so reuse must fail loudly."""
        config = single_macro()
        system = MemorySystem(config)
        system.replay(synthesize_trace("sequential", 16, config))
        with pytest.raises(RuntimeError, match="fresh MemorySystem"):
            system.replay(synthesize_trace("sequential", 16, config))


class TestAnalyticCrossCheck:
    def test_streaming_frfcfs_matches_macro_bandwidth(self):
        """The headline check: simulated sustained bandwidth of a
        streaming trace lands within 5% of the closed form."""
        config = single_macro()
        stats = MemorySystem(config).replay(
            synthesize_trace("sequential", 2048, config)
        )
        analytic = macro_bandwidth_bits_per_sec(config.timing)
        assert stats.sustained_bits_per_sec == pytest.approx(
            analytic, rel=0.05
        )

    def test_random_trace_matches_hit_ratio_model(self):
        config = single_macro()
        stats = MemorySystem(config).replay(
            synthesize_trace("random", 2048, config, seed=5)
        )
        predicted = config.timing.page_bits / (
            effective_access_time_ns(
                config.timing, stats.row_hit_rate
            )
            * 1e-9
        )
        assert stats.sustained_bits_per_sec == pytest.approx(
            predicted, rel=0.10
        )

    def test_custom_timing_tracks_analytic(self):
        timing = DramMacroTiming(
            row_bits=4096, page_bits=512,
            row_access_ns=30.0, page_access_ns=3.0,
        )
        config = single_macro(timing=timing, rows_per_bank=1024)
        stats = MemorySystem(config).replay(
            synthesize_trace("sequential", 1024, config)
        )
        analytic = macro_bandwidth_bits_per_sec(timing)
        assert stats.sustained_bits_per_sec == pytest.approx(
            analytic, rel=0.05
        )


class TestScheduling:
    def test_frfcfs_beats_fcfs_row_hit_rate(self):
        trace = interleaved_two_row_trace(single_macro(), 512)
        rates = {}
        for policy in ("fcfs", "frfcfs"):
            config = single_macro(policy=policy)
            stats = MemorySystem(config).replay(
                [MemRequest(r.op, r.addr) for r in trace]
            )
            rates[policy] = stats.row_hit_rate
        assert rates["fcfs"] == pytest.approx(0.0)
        assert rates["frfcfs"] > 0.8
        assert rates["frfcfs"] > rates["fcfs"]

    def test_fcfs_preserves_arrival_order(self):
        config = single_macro(policy="fcfs", queue_depth=8)
        trace = interleaved_two_row_trace(config, 64)
        tagged = [MemRequest(r.op, r.addr) for r in trace]
        MemorySystem(config).replay(tagged)
        finishes = [r.finish for r in tagged]
        assert finishes == sorted(finishes)


class TestSystemBehavior:
    def test_channel_interleaving_scales_bandwidth(self):
        flat = MemSysConfig(n_channels=2, scheme="row-major")
        spread = MemSysConfig(n_channels=2, scheme="channel-interleaved")
        bw = {}
        for name, config in (("flat", flat), ("spread", spread)):
            stats = MemorySystem(config).replay(
                synthesize_trace("sequential", 1024, config)
            )
            bw[name] = stats.sustained_bits_per_sec
        assert bw["spread"] > 1.5 * bw["flat"]

    def test_pim_all_bank_moves_all_banks_data(self):
        config = MemSysConfig(
            n_channels=1, bankgroups=2, banks_per_group=2
        )
        amap = config.address_map()
        system = MemorySystem(config)
        trace = [
            MemRequest(
                Op.PIM,
                amap.encode(Coordinates(row=i // 8, column=i % 8)),
            )
            for i in range(256)
        ]
        stats = system.replay(trace)
        per_request = config.banks_per_channel * config.timing.page_bits
        assert stats.total_bits == 256 * per_request
        # lockstep all-bank streaming reclaims ~n_banks x one macro
        analytic = macro_bandwidth_bits_per_sec(config.timing)
        assert stats.sustained_bits_per_sec == pytest.approx(
            config.banks_per_channel * analytic, rel=0.05
        )

    def test_closed_page_policy_flattens_every_access_to_a_miss(self):
        config = single_macro(row_policy="closed")
        stats = MemorySystem(config).replay(
            synthesize_trace("sequential", 128, config)
        )
        assert stats.row_hits == 0
        assert stats.row_conflicts == 0
        assert stats.row_misses == 128
        # every access pays a fresh activation: 22 ns per request
        assert stats.makespan_ns == pytest.approx(128 * 22.0)

    def test_closed_page_equals_open_on_no_reuse_traffic(self):
        """With one access per row, the two policies cost the same."""
        config_open = single_macro()
        config_closed = single_macro(row_policy="closed")
        amap = config_open.address_map()
        trace = [
            MemRequest(Op.READ, amap.encode(Coordinates(row=i)))
            for i in range(64)
        ]
        open_stats = MemorySystem(config_open).replay(
            [MemRequest(r.op, r.addr) for r in trace]
        )
        closed_stats = MemorySystem(config_closed).replay(
            [MemRequest(r.op, r.addr) for r in trace]
        )
        assert (
            closed_stats.makespan_ns == open_stats.makespan_ns
        )

    def test_ab_broadcast_served_at_page_rate_without_bank_state(self):
        config = single_macro()
        system = MemorySystem(config)
        requests = [
            MemRequest(Op.AB, 0),
            MemRequest(Op.AB, 0),
            MemRequest(Op.AB, 0),
        ]
        stats = system.replay(requests)
        # one column access each, no activations anywhere
        assert stats.makespan_ns == pytest.approx(
            3 * config.timing.page_access_ns
        )
        assert stats.row_hits + stats.row_misses == 0
        assert all(r.outcome == "broadcast" for r in requests)
        assert stats.total_bits == 3 * config.timing.page_bits
        bank = system.controllers[0].banks[0]
        assert bank.open_row is None and bank.accesses == 0

    def test_frfcfs_does_not_reorder_across_ab_broadcast(self):
        """A younger row hit must not overtake a register broadcast."""
        config = single_macro(queue_depth=8)
        amap = config.address_map()
        system = MemorySystem(config)
        trace = [
            MemRequest(Op.READ, amap.encode(Coordinates(row=1))),
            MemRequest(Op.AB, 0),
            MemRequest(Op.READ, amap.encode(Coordinates(row=1))),
        ]
        system.replay(trace, engine="event")
        # service order is arrival order: the hit waits for the AB
        assert trace[1].finish <= trace[2].start_service
        assert trace[2].outcome == "hit"

    def test_pim_broadcast_reaches_every_channel(self):
        config = MemSysConfig(n_channels=2)
        system = MemorySystem(config)
        requests = system.pim_broadcast(row=5)
        system.sim.run()
        assert len(requests) == 2
        assert {r.coords.channel for r in requests} == {0, 1}
        assert all(not math.isnan(r.finish) for r in requests)

    def test_request_timestamps_and_outcomes(self):
        config = single_macro(queue_depth=4)
        trace = synthesize_trace("sequential", 32, config)
        MemorySystem(config).replay(trace)
        for req in trace:
            assert req.arrival <= req.start_service <= req.finish
            assert req.outcome in {"hit", "miss", "conflict"}
            assert req.bits == config.timing.page_bits

    def test_replay_accepts_iterators(self):
        config = single_macro()
        stats = MemorySystem(config).replay(
            iter(synthesize_trace("sequential", 32, config))
        )
        assert stats.n_requests == 32

    def test_stats_reduction_shapes(self):
        config = MemSysConfig()
        stats = MemorySystem(config).replay(
            synthesize_trace("random", 256, config, seed=2)
        )
        assert stats.n_requests == 256
        assert (
            stats.row_hits + stats.row_misses + stats.row_conflicts
            == 256
        )
        assert 0.0 <= stats.row_hit_rate <= 1.0
        assert stats.mean_queue_latency_ns > 0
        assert 0.0 < stats.channel_utilization <= 1.0
        # a per-channel average can never exceed the queue depth
        assert 0.0 < stats.mean_queue_length <= config.queue_depth
        assert len(stats.per_channel) == config.n_channels
        assert len(stats.to_rows()) == config.n_channels
        assert stats.summary()["requests"] == 256

    def test_shared_simulator_clock(self, sim):
        config = single_macro()
        system = MemorySystem(config, sim=sim)
        assert system.sim is sim
        system.submit(MemRequest(Op.READ, 0))
        sim.run()
        assert sim.now == pytest.approx(22.0)  # activate + one page
