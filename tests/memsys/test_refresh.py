"""Refresh (tREFI/tRFC) and timestamped-arrival modeling.

Covers the :class:`RefreshSchedule` fence arithmetic, the config
surface, the physical effects (bandwidth overhead ~ tRFC/tREFI, row
closures, per-bank masking), and — most importantly — the engine
equivalence grid over (refresh on/off x granularity) x
(timestamped/line-rate) x policy x pattern: every combination must
produce identical statistics from the event engine and the fast path,
whichever tier serves it.
"""

import dataclasses
import math

import pytest

from repro.memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    RefreshSchedule,
    synthesize_trace,
)

#: HBM2-class refresh timings (ns).
TREFI, TRFC = 3900.0, 350.0
REL = 1e-9


def fresh(trace):
    return [MemRequest(r.op, r.addr, r.timestamp) for r in trace]


def replay_both(config, trace):
    event_stats = MemorySystem(config).replay(fresh(trace), engine="event")
    fast_system = MemorySystem(config)
    fast_stats = fast_system.replay(fresh(trace), engine="fast")
    return event_stats, fast_stats, fast_system


def assert_stats_equivalent(event_stats, fast_stats, rel=REL):
    """Stat-for-stat comparison; ``rel=None`` demands bit-exactness."""

    def check(actual, expected, key):
        if isinstance(expected, int):
            assert actual == expected, key
        elif math.isnan(expected):
            assert math.isnan(actual), key
        elif rel is None:
            assert actual == expected, key
        else:
            assert actual == pytest.approx(expected, rel=rel), key

    event_dict = dataclasses.asdict(event_stats)
    fast_dict = dataclasses.asdict(fast_stats)
    event_channels = event_dict.pop("per_channel")
    fast_channels = fast_dict.pop("per_channel")
    for key, expected in event_dict.items():
        check(fast_dict[key], expected, key)
    # the core quantities are reproduced bit-for-bit, not just closely
    assert fast_stats.makespan_ns == event_stats.makespan_ns
    assert (
        fast_stats.sustained_bits_per_sec
        == event_stats.sustained_bits_per_sec
    )
    assert len(fast_channels) == len(event_channels)
    for expected_row, actual_row in zip(event_channels, fast_channels):
        for key, expected in expected_row.items():
            check(actual_row[key], expected, key)


def pim_all_bank_trace(config, n):
    amap = config.address_map()
    pages = config.timing.pages_per_row
    requests = []
    for i in range(n):
        k = i // config.n_channels
        coords = Coordinates(
            channel=i % config.n_channels,
            row=(k // pages) % config.rows_per_bank,
            column=k % pages,
        )
        requests.append(MemRequest(Op.PIM, amap.encode(coords)))
    return requests


class TestRefreshSchedule:
    def test_epoch_counts_boundaries(self):
        schedule = RefreshSchedule(100.0, 30.0, "per-rank", 4)
        assert schedule.epoch(0.0) == 0
        assert schedule.epoch(99.9) == 0
        assert schedule.epoch(100.0) == 1
        assert schedule.epoch(250.0) == 2

    def test_rank_fence_inside_and_outside_blackout(self):
        schedule = RefreshSchedule(100.0, 30.0, "per-rank", 4)
        assert schedule.rank_fence(50.0) == 50.0  # before first boundary
        assert schedule.rank_fence(100.0) == 130.0
        assert schedule.rank_fence(129.0) == 130.0
        assert schedule.rank_fence(130.0) == 130.0  # blackout end open
        assert schedule.rank_fence(131.0) == 131.0

    def test_bank_fence_staggers_slices(self):
        schedule = RefreshSchedule(200.0, 30.0, "per-bank", 4)
        # bank 0: [200, 230); bank 1: [230, 260); bank 2: [260, 290)
        assert schedule.bank_fence(210.0, 0) == 230.0
        assert schedule.bank_fence(210.0, 1) == 210.0
        assert schedule.bank_fence(240.0, 1) == 260.0
        assert schedule.bank_fence(240.0, 0) == 240.0

    def test_all_bank_fence_waits_out_the_sweep(self):
        schedule = RefreshSchedule(200.0, 30.0, "per-bank", 4)
        assert schedule.all_bank_fence(205.0) == 200.0 + 4 * 30.0
        assert schedule.all_bank_fence(321.0) == 321.0

    def test_validation(self):
        with pytest.raises(ValueError, match="trefi_ns"):
            RefreshSchedule(0.0, 0.0, "per-rank", 4)
        with pytest.raises(ValueError, match="trfc_ns"):
            RefreshSchedule(100.0, 100.0, "per-rank", 4)
        with pytest.raises(ValueError, match="granularity"):
            RefreshSchedule(100.0, 10.0, "per-chip", 4)
        with pytest.raises(ValueError, match="rolling sweep"):
            RefreshSchedule(100.0, 30.0, "per-bank", 4)


class TestConfigSurface:
    def test_defaults_disable_refresh(self):
        config = MemSysConfig()
        assert not config.refresh_enabled
        assert config.refresh_schedule() is None

    def test_enabled_schedule_matches_geometry(self):
        config = MemSysConfig(trefi_ns=TREFI, trfc_ns=TRFC)
        schedule = config.refresh_schedule()
        assert schedule is not None
        assert schedule.n_banks == config.banks_per_channel

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="trefi_ns"):
            MemSysConfig(trefi_ns=-1.0)
        with pytest.raises(ValueError, match="trfc_ns > 0"):
            MemSysConfig(trfc_ns=10.0)
        with pytest.raises(ValueError, match="refresh_granularity"):
            MemSysConfig(
                trefi_ns=TREFI, trfc_ns=TRFC,
                refresh_granularity="per-chip",
            )
        with pytest.raises(ValueError, match="trfc_ns"):
            MemSysConfig(trefi_ns=100.0, trfc_ns=100.0)
        with pytest.raises(ValueError, match="rolling sweep"):
            MemSysConfig(
                trefi_ns=1000.0, trfc_ns=300.0,
                refresh_granularity="per-bank",
            )


class TestRefreshPhysics:
    def test_per_rank_overhead_tracks_blackout_fraction(self):
        base = MemSysConfig(n_channels=1)
        ideal = MemorySystem(base).replay(
            synthesize_trace("sequential", 8000, base)
        )
        refreshed = MemSysConfig(
            n_channels=1, trefi_ns=TREFI, trfc_ns=TRFC
        )
        stats = MemorySystem(refreshed).replay(
            synthesize_trace("sequential", 8000, refreshed)
        )
        overhead = (
            1 - stats.sustained_bits_per_sec / ideal.sustained_bits_per_sec
        )
        blackout = TRFC / TREFI
        assert 0.5 * blackout < overhead < 2.0 * blackout

    def test_refresh_closes_rows(self):
        """A row re-accessed across a boundary pays a fresh activation."""
        config = MemSysConfig(
            n_channels=1, bankgroups=1, banks_per_group=1,
            trefi_ns=100.0, trfc_ns=10.0,
        )
        amap = config.address_map()
        addr = amap.encode(Coordinates(row=3, column=0))
        # same page over and over: without refresh one miss, then hits
        trace = [MemRequest(Op.READ, addr, 60.0 * i) for i in range(4)]
        stats = MemorySystem(config).replay(trace, engine="event")
        # arrivals at 0, 60, 120, 180: boundaries at 100 (before the
        # 120 access) and nothing else in range -> 2 misses total
        assert stats.row_misses == 2
        assert stats.row_hits == 2

    def test_per_bank_masking_beats_per_rank_on_spread_traffic(self):
        base = MemSysConfig(n_channels=1, scheme="bank-interleaved")
        ideal = MemorySystem(base).replay(
            synthesize_trace("random", 8000, base, seed=0)
        )
        rates = {}
        for granularity in ("per-rank", "per-bank"):
            config = MemSysConfig(
                n_channels=1,
                scheme="bank-interleaved",
                trefi_ns=TREFI,
                trfc_ns=TRFC,
                refresh_granularity=granularity,
            )
            stats = MemorySystem(config).replay(
                synthesize_trace("random", 8000, config, seed=0)
            )
            rates[granularity] = stats.sustained_bits_per_sec
        assert rates["per-bank"] > rates["per-rank"]
        # per-bank hides nearly the whole blackout on spread traffic
        assert (
            rates["per-bank"] > 0.97 * ideal.sustained_bits_per_sec
        )

    def test_timestamped_trace_sustains_offered_load(self):
        config = MemSysConfig(n_channels=1)
        spacing = 4 * config.timing.page_access_ns
        trace = synthesize_trace(
            "sequential", 4000, config, interarrival_ns=spacing
        )
        stats = MemorySystem(config).replay(trace)
        offered = config.timing.page_bits / (spacing * 1e-9)
        assert stats.sustained_bits_per_sec == pytest.approx(
            offered, rel=0.05
        )

    def test_leading_idle_counts_in_makespan(self):
        config = MemSysConfig(n_channels=1)
        trace = synthesize_trace(
            "sequential", 16, config,
            interarrival_ns=5.0, start_ns=1000.0,
        )
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert event_stats.makespan_ns > 1000.0
        assert_stats_equivalent(event_stats, fast_stats)


class TestEngineEquivalenceGrid:
    """(refresh x granularity) x (timestamped/line-rate) x policy x
    pattern: both engines must agree on every combination."""

    @pytest.mark.parametrize("granularity", ("per-rank", "per-bank"))
    @pytest.mark.parametrize("policy", ("fcfs", "frfcfs"))
    @pytest.mark.parametrize(
        "pattern", ("sequential", "strided", "random")
    )
    def test_refresh_line_rate(self, granularity, policy, pattern):
        config = MemSysConfig(
            policy=policy,
            trefi_ns=TREFI,
            trfc_ns=TRFC,
            refresh_granularity=granularity,
        )
        trace = synthesize_trace(
            pattern, 1500, config, seed=11, write_fraction=0.25
        )
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    @pytest.mark.parametrize("policy", ("fcfs", "frfcfs"))
    @pytest.mark.parametrize(
        "pattern", ("sequential", "strided", "random")
    )
    @pytest.mark.parametrize("interarrival", (1.0, 6.0, 30.0))
    def test_timestamped(self, policy, pattern, interarrival):
        config = MemSysConfig(policy=policy)
        trace = synthesize_trace(
            pattern, 1200, config, seed=5,
            write_fraction=0.25, interarrival_ns=interarrival,
        )
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    @pytest.mark.parametrize("granularity", ("per-rank", "per-bank"))
    @pytest.mark.parametrize("interarrival", (2.0, 20.0))
    def test_timestamped_with_refresh(self, granularity, interarrival):
        config = MemSysConfig(
            trefi_ns=TREFI,
            trfc_ns=TRFC,
            refresh_granularity=granularity,
        )
        trace = synthesize_trace(
            "random", 1000, config, seed=9,
            interarrival_ns=interarrival,
        )
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats, rel=None)

    @pytest.mark.parametrize(
        "scheme", ("bank-interleaved", "channel-interleaved")
    )
    def test_refresh_scheme_spot_checks(self, scheme):
        config = MemSysConfig(
            scheme=scheme, trefi_ns=TREFI, trfc_ns=TRFC
        )
        trace = synthesize_trace("random", 1200, config, seed=3)
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    @pytest.mark.parametrize("granularity", ("per-rank", "per-bank"))
    def test_refresh_pim_all_bank(self, granularity):
        config = MemSysConfig(
            n_channels=2,
            trefi_ns=TREFI,
            trfc_ns=TRFC,
            refresh_granularity=granularity,
        )
        trace = pim_all_bank_trace(config, 600)
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    @pytest.mark.parametrize("granularity", ("per-rank", "per-bank"))
    def test_refresh_closed_page(self, granularity):
        config = MemSysConfig(
            row_policy="closed",
            trefi_ns=TREFI,
            trfc_ns=TRFC,
            refresh_granularity=granularity,
        )
        trace = synthesize_trace("strided", 1000, config, seed=2)
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    def test_refresh_ab_broadcast_stream(self):
        config = MemSysConfig(
            n_channels=2,
            trefi_ns=TREFI,
            trfc_ns=TRFC,
            refresh_granularity="per-bank",
        )
        host = synthesize_trace("sequential", 300, config)
        trace = []
        for i, request in enumerate(host):
            trace.append(request)
            if i % 3 == 0:
                trace.append(MemRequest(Op.AB, request.addr))
        event_stats, fast_stats, fast_system = replay_both(config, trace)
        assert fast_system.last_replay_engine == "fast-exact"
        assert_stats_equivalent(event_stats, fast_stats, rel=None)

    def test_tight_refresh_interval(self):
        """Fences that bind on almost every epoch stay equivalent."""
        config = MemSysConfig(n_channels=1, trefi_ns=100.0, trfc_ns=30.0)
        trace = synthesize_trace("sequential", 900, config)
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)

    def test_timestamped_pim_stream(self):
        config = MemSysConfig(n_channels=2)
        trace = pim_all_bank_trace(config, 400)
        for index, request in enumerate(trace):
            request.timestamp = 3.0 * index
        event_stats, fast_stats, _ = replay_both(config, trace)
        assert_stats_equivalent(event_stats, fast_stats)


class TestTierSelection:
    def test_refresh_streaming_vectorizes(self):
        config = MemSysConfig(
            n_channels=2, scheme="channel-interleaved",
            trefi_ns=TREFI, trfc_ns=TRFC,
        )
        system = MemorySystem(config)
        system.replay(
            synthesize_trace("sequential", 4096, config), engine="fast"
        )
        assert system.last_replay_engine == "fast-vectorized"

    def test_per_bank_refresh_takes_exact_tier(self):
        config = MemSysConfig(
            trefi_ns=TREFI, trfc_ns=TRFC,
            refresh_granularity="per-bank",
        )
        system = MemorySystem(config)
        system.replay(
            synthesize_trace("sequential", 512, config), engine="fast"
        )
        assert system.last_replay_engine == "fast-exact"

    def test_fcfs_random_vectorizes_via_arrival_fixed_point(self):
        config = MemSysConfig(policy="fcfs")
        system = MemorySystem(config)
        system.replay(
            synthesize_trace("random", 2048, config, seed=1),
            engine="fast",
        )
        assert system.last_replay_engine == "fast-vectorized"

    def test_sparse_timestamped_fcfs_random_vectorizes(self):
        """Timestamped arrivals subsume the line-rate certificate:
        backpressure-free random traffic stays in the closed form."""
        config = MemSysConfig(policy="fcfs")
        system = MemorySystem(config)
        system.replay(
            synthesize_trace(
                "random", 2048, config, seed=1, interarrival_ns=40.0
            ),
            engine="fast",
        )
        assert system.last_replay_engine == "fast-vectorized"

    def test_backpressured_timestamps_fall_back(self):
        """Arrivals faster than service overflow the queue: the
        backpressure certificate fails and the exact tier serves."""
        config = MemSysConfig(n_channels=1, policy="fcfs")
        system = MemorySystem(config)
        system.replay(
            synthesize_trace(
                "random", 1024, config, seed=1, interarrival_ns=0.5
            ),
            engine="fast",
        )
        assert system.last_replay_engine == "fast-exact"


class TestMixedTimestampValidation:
    def test_mixed_presence_rejected_at_replay(self):
        config = MemSysConfig()
        trace = [
            MemRequest(Op.READ, 0, 1.0),
            MemRequest(Op.READ, 64),
        ]
        with pytest.raises(ValueError, match="mixes"):
            MemorySystem(config).replay(trace)

    def test_decreasing_timestamps_rejected_at_replay(self):
        config = MemSysConfig()
        trace = [
            MemRequest(Op.READ, 0, 5.0),
            MemRequest(Op.READ, 64, 1.0),
        ]
        with pytest.raises(ValueError, match="decreases"):
            MemorySystem(config).replay(trace)

    @pytest.mark.parametrize("engine", ("event", "fast"))
    def test_write_back_matches_between_engines(self, engine):
        """Per-request runtime fields agree for timestamped traces."""
        config = MemSysConfig()
        trace = synthesize_trace(
            "sequential", 512, config, interarrival_ns=6.0
        )
        event_trace = fresh(trace)
        MemorySystem(config).replay(event_trace, engine="event")
        fast_trace = fresh(trace)
        MemorySystem(config).replay(fast_trace, engine="fast")
        for event_req, fast_req in zip(event_trace, fast_trace):
            assert fast_req.arrival == event_req.arrival
            assert fast_req.start_service == event_req.start_service
            assert fast_req.finish == event_req.finish
            assert fast_req.outcome == event_req.outcome
