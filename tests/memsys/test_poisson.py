"""Bursty (Poisson) arrival synthesis and its replay semantics."""

import numpy as np
import pytest

from repro.memsys import (
    INTERARRIVALS,
    MemorySystem,
    MemSysConfig,
    arrival_times,
    synthesize_trace,
)


class TestArrivalTimes:
    def test_fixed_cadence(self):
        times = arrival_times(4, 2.5, start_ns=1.0)
        assert times.tolist() == [1.0, 3.5, 6.0, 8.5]

    def test_poisson_is_seeded(self):
        a = arrival_times(100, 3.0, mode="poisson", seed=9)
        b = arrival_times(100, 3.0, mode="poisson", seed=9)
        c = arrival_times(100, 3.0, mode="poisson", seed=10)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_poisson_gaps_have_the_requested_mean(self):
        times = arrival_times(20_000, 5.0, mode="poisson", seed=1)
        gaps = np.diff(times)
        assert abs(gaps.mean() - 5.0) < 0.2
        # exponential: std ~= mean (far from the fixed cadence's 0)
        assert abs(gaps.std() - 5.0) < 0.3

    def test_non_decreasing_and_offset(self):
        times = arrival_times(
            500, 2.0, mode="poisson", seed=3, start_ns=100.0
        )
        assert float(times.min()) >= 100.0
        assert bool(np.all(np.diff(times) >= 0))

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            arrival_times(5, 1.0, mode="uniform")
        with pytest.raises(ValueError, match="n must"):
            arrival_times(0, 1.0)
        with pytest.raises(ValueError, match="interarrival_ns"):
            arrival_times(5, -1.0)
        assert INTERARRIVALS == ("fixed", "poisson")


class TestSynthesis:
    def test_packed_and_object_traces_agree(self):
        config = MemSysConfig()
        packed = synthesize_trace(
            "random", 64, config, seed=2,
            interarrival_ns=3.0, interarrival="poisson", packed=True,
        )
        objects = synthesize_trace(
            "random", 64, config, seed=2,
            interarrival_ns=3.0, interarrival="poisson",
        )
        assert [r.timestamp for r in objects] == packed.times.tolist()
        assert [r.addr for r in objects] == packed.addrs.tolist()

    def test_poisson_differs_from_fixed_but_addresses_match(self):
        config = MemSysConfig()
        fixed = synthesize_trace(
            "sequential", 32, config, interarrival_ns=2.0, packed=True
        )
        poisson = synthesize_trace(
            "sequential", 32, config,
            interarrival_ns=2.0, interarrival="poisson", packed=True,
        )
        assert np.array_equal(fixed.addrs, poisson.addrs)
        assert not np.array_equal(fixed.times, poisson.times)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="interarrival"):
            synthesize_trace(
                "random", 8, interarrival_ns=1.0, interarrival="pareto"
            )

    def test_mode_without_a_rate_is_rejected(self):
        """Asking for bursty arrivals but omitting the rate would
        silently emit a line-rate trace — reject the combination."""
        with pytest.raises(ValueError, match="interarrival_ns"):
            synthesize_trace("random", 8, interarrival="poisson")


class TestReplay:
    @pytest.mark.parametrize(
        "pattern", ["sequential", "random", "strided"]
    )
    def test_both_engines_honor_poisson_timestamps(self, pattern):
        config = MemSysConfig()
        trace = synthesize_trace(
            pattern, 1_500, config, seed=6,
            write_fraction=0.2,
            interarrival_ns=6.0, interarrival="poisson",
        )
        event = MemorySystem(config).replay(
            [type(r)(r.op, r.addr, r.timestamp) for r in trace],
            engine="event",
        )
        fast = MemorySystem(config).replay(trace, engine="fast")
        # makespan and integer counters are bit-exact in every tier;
        # the vectorized tier's Tally means may differ by an ulp
        # (numpy pairwise sums vs sequential accumulation)
        assert event.makespan_ns == fast.makespan_ns
        assert event.n_requests == fast.n_requests
        assert (event.row_hits, event.row_misses, event.row_conflicts) == (
            fast.row_hits, fast.row_misses, fast.row_conflicts
        )
        for key, expected in event.summary().items():
            assert fast.summary()[key] == pytest.approx(
                expected, rel=1e-12
            ), key

    def test_bursty_arrivals_stretch_the_makespan(self):
        """Slower offered load dominates the makespan: the trace ends
        no earlier than its last arrival."""
        config = MemSysConfig()
        trace = synthesize_trace(
            "sequential", 400, config, seed=0,
            interarrival_ns=50.0, interarrival="poisson",
        )
        stats = MemorySystem(config).replay(trace)
        last_arrival = trace[-1].timestamp
        assert stats.makespan_ns >= last_arrival
