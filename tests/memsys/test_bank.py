"""Tests for the per-bank row-buffer state machine."""

import math

import pytest

from repro.arch.dram import DramMacroTiming
from repro.memsys import Bank


class TestStateMachine:
    def test_first_access_is_a_miss_paying_activation(self):
        bank = Bank()
        access = bank.access(7)
        assert access.outcome == "miss"
        assert access.latency_ns == pytest.approx(20.0 + 2.0)
        assert bank.open_row == 7

    def test_same_row_hits_at_page_rate(self):
        bank = Bank()
        bank.access(7)
        access = bank.access(7)
        assert access.outcome == "hit"
        assert access.latency_ns == pytest.approx(2.0)

    def test_row_switch_is_a_conflict(self):
        bank = Bank(precharge_ns=10.0)
        bank.access(7)
        access = bank.access(8)
        assert access.outcome == "conflict"
        assert access.latency_ns == pytest.approx(10.0 + 20.0 + 2.0)
        assert bank.open_row == 8

    def test_precharge_closes_the_row(self):
        bank = Bank()
        bank.access(7)
        bank.precharge()
        assert bank.open_row is None
        assert bank.access(7).outcome == "miss"

    def test_is_hit_does_not_mutate(self):
        bank = Bank()
        bank.access(3)
        assert bank.is_hit(3)
        assert not bank.is_hit(4)
        assert bank.accesses == 1


class TestCounters:
    def test_hit_rate(self):
        bank = Bank()
        bank.access(1)              # miss
        for _ in range(7):
            bank.access(1)          # hits
        bank.access(2)              # conflict
        assert bank.hits == 7
        assert bank.misses == 1
        assert bank.conflicts == 1
        assert bank.row_hit_rate == pytest.approx(7 / 9)

    def test_empty_hit_rate_nan(self):
        assert math.isnan(Bank().row_hit_rate)

    def test_closed_policy_every_access_is_a_miss(self):
        bank = Bank(row_policy="closed")
        miss_ns = (
            bank.timing.row_access_ns + bank.timing.page_access_ns
        )
        for row in (5, 5, 7, 5):  # repeats would hit under open policy
            access = bank.access(row)
            assert access.outcome == "miss"
            assert access.latency_ns == miss_ns
        assert bank.open_row is None
        assert bank.hits == 0 and bank.conflicts == 0
        assert bank.misses == 4
        assert not bank.is_hit(5)

    def test_rejects_unknown_row_policy(self):
        with pytest.raises(ValueError, match="row_policy"):
            Bank(row_policy="adaptive")

    def test_rejects_negative_precharge(self):
        with pytest.raises(ValueError):
            Bank(precharge_ns=-1.0)

    def test_custom_timing(self):
        timing = DramMacroTiming(
            row_bits=1024, page_bits=128,
            row_access_ns=10.0, page_access_ns=1.0,
        )
        bank = Bank(timing)
        assert bank.access(0).latency_ns == pytest.approx(11.0)
        assert bank.access(0).latency_ns == pytest.approx(1.0)
