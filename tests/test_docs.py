"""The documentation tree stays link-consistent.

Runs the same checker CI's docs job runs (``tools/check_docs.py``), so
a broken relative link or heading anchor in README/docs fails the
tier-1 suite before it reaches CI.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_docs_tree_exists():
    names = {path.name for path in check_docs.doc_files(REPO_ROOT)}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "trace-formats.md" in names
    assert "experiments.md" in names


def test_no_broken_links_or_anchors():
    problems = check_docs.check_tree(REPO_ROOT)
    assert problems == []


def test_checker_flags_broken_links(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "see [missing](docs/nope.md) and [ok](docs/real.md) and "
        "[bad anchor](docs/real.md#nowhere)\n"
    )
    (tmp_path / "docs" / "real.md").write_text("# Real Heading\n")
    problems = check_docs.check_tree(tmp_path)
    assert len(problems) == 2
    assert any("nope.md" in p for p in problems)
    assert any("nowhere" in p for p in problems)


def test_checker_accepts_anchors_and_externals(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "a.md").write_text(
        "# Some Heading!\n[self](#some-heading) "
        "[ext](https://example.com/x) \n"
        "```\n[not a link in code](nope.md)\n```\n"
    )
    (tmp_path / "README.md").write_text(
        "[doc](docs/a.md#some-heading)\n"
    )
    assert check_docs.check_tree(tmp_path) == []
