"""The windowed time-series document and its cross-engine bit-identity.

Every series in ``repro.telemetry/timeseries-v2`` is a deterministic
numpy reduction of the latency recorder's arrays, and those arrays are
bit-identical across the event engine, both fast-path tiers, and the
farm's merged shards — so whole documents must agree to the last bit
(``repr`` equality after dropping the ``engine`` label) over the
scheme x policy x refresh x arrival matrix.  That equivalence matrix is
the load-bearing test here; the rest pins window geometry, the exact
queue-depth/occupancy derivations, the error paths, and the
``validate_timeseries`` schema check.
"""

import json
import math

import numpy as np
import pytest

from repro.farm import FarmConfig, replay_farm
from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
from repro.telemetry import (
    TIMESERIES_SCHEMA,
    ReplayTelemetry,
    build_timeseries,
    validate_timeseries,
    write_timeseries,
)

N = 300

#: (trefi_ns, trfc_ns, granularity) refresh regimes, mirroring
#: tests/telemetry/test_equivalence.py.
REFRESH = (
    ("off", dict()),
    ("per-rank", dict(trefi_ns=3900.0, trfc_ns=350.0)),
    (
        "per-bank",
        dict(
            trefi_ns=3900.0,
            trfc_ns=80.0,
            refresh_granularity="per-bank",
        ),
    ),
)

#: Supervisor policy for the farm leg of the matrix: deterministic
#: in-process shard replays, no backoff sleeps.
FARM = dict(
    mode="inprocess", engine="fast",
    backoff_base_s=0.0, backoff_cap_s=0.0,
)


def record(config, trace, engine):
    """One recorded replay; ``engine`` may pin the exact fast tier."""
    telemetry = ReplayTelemetry()
    if engine == "exact":
        from repro.memsys.fastpath import replay_fast

        system = MemorySystem(config)
        system._replayed = True
        stats = replay_fast(system, trace, telemetry, force_exact=True)
        telemetry._finish(system, stats)
        assert telemetry.engine == "fast-exact"
    else:
        MemorySystem(config).replay(
            trace, engine=engine, telemetry=telemetry
        )
    return telemetry


def recorded_replay(config, trace, engine="auto"):
    return record(config, trace, engine)


def strip_engine(document):
    return {k: v for k, v in document.items() if k != "engine"}


class TestCrossEngineEquivalence:
    """The acceptance matrix: documents bit-identical across engines."""

    @pytest.mark.parametrize(
        "refresh_name,refresh",
        REFRESH,
        ids=[name for name, _ in REFRESH],
    )
    @pytest.mark.parametrize("arrival", ("line-rate", "timestamped"))
    @pytest.mark.parametrize(
        "scheme", ("row-major", "channel-interleaved")
    )
    @pytest.mark.parametrize("policy", ("fcfs", "frfcfs"))
    def test_series_matrix(
        self, refresh_name, refresh, arrival, scheme, policy
    ):
        config = MemSysConfig(scheme=scheme, policy=policy, **refresh)
        kwargs = dict(seed=11, write_fraction=0.25, packed=True)
        if arrival == "timestamped":
            kwargs["interarrival_ns"] = 6.0
        trace = synthesize_trace("random", N, config, **kwargs)
        documents = {}
        for engine in ("event", "fast", "exact"):
            documents[engine] = build_timeseries(
                record(config, trace, engine)
            )
        # the farm leg: sharded when the trace allows it, the exact
        # single-process fallback otherwise (line-rate traces) — the
        # merged recorder arrays are bit-identical either way
        farmed = ReplayTelemetry()
        replay_farm(trace, config, FarmConfig(**FARM), telemetry=farmed)
        documents["farm"] = build_timeseries(farmed)
        reference = repr(strip_engine(documents["event"]))
        for engine, document in documents.items():
            assert validate_timeseries(document) == [], engine
            assert repr(strip_engine(document)) == reference, (
                f"time series diverges on the {engine} path "
                f"({scheme}/{policy}/{refresh_name}/{arrival})"
            )

    def test_engine_labels_differ_but_nothing_else(self):
        config = MemSysConfig(scheme="channel-interleaved")
        trace = synthesize_trace(
            "random", N, config, seed=3, packed=True,
            interarrival_ns=40.0, interarrival="poisson",
        )
        event = build_timeseries(record(config, trace, "event"))
        farmed = ReplayTelemetry()
        replay_farm(trace, config, FarmConfig(**FARM), telemetry=farmed)
        farm = build_timeseries(farmed)
        assert event["engine"] == "event"
        assert farm["engine"] == "farm"
        assert json.dumps(strip_engine(event)) == json.dumps(
            strip_engine(farm)
        )


class TestBuildTimeseries:
    def replay(self, pattern="random", n=512, **config_kwargs):
        config = MemSysConfig(**config_kwargs)
        return recorded_replay(
            config, synthesize_trace(pattern, n, config, seed=0)
        )

    def test_default_window_geometry(self):
        telemetry = self.replay()
        document = build_timeseries(telemetry)
        assert validate_timeseries(document) == []
        assert document["schema"] == TIMESERIES_SCHEMA
        assert document["n_windows"] == 64
        assert document["n_requests"] == 512
        assert document["window_ns"] * 64 == pytest.approx(
            document["makespan_ns"]
        )
        edges = document["t_start_ns"]
        assert edges[0] == 0.0
        assert all(b > a for a, b in zip(edges, edges[1:]))
        for key, series in document["series"].items():
            assert len(series) == 64, key

    def test_explicit_window_ns(self):
        telemetry = self.replay()
        makespan = telemetry.makespan_ns
        document = build_timeseries(telemetry, window_ns=makespan)
        assert document["n_windows"] == 1
        narrow = build_timeseries(telemetry, window_ns=makespan / 7.5)
        assert narrow["n_windows"] == math.ceil(
            makespan / (makespan / 7.5)
        )
        assert narrow["window_ns"] == makespan / 7.5

    def test_explicit_n_windows(self):
        document = build_timeseries(self.replay(), n_windows=8)
        assert document["n_windows"] == 8
        assert len(document["series"]["offered_per_s"]) == 8

    def test_rate_series_conserve_request_count(self):
        document = build_timeseries(self.replay(n=400), n_windows=16)
        window_s = document["window_ns"] * 1e-9
        for key in ("offered_per_s", "served_per_s"):
            total = sum(document["series"][key]) * window_s
            assert total == pytest.approx(400), key

    def test_queue_depth_max_dominates_mean(self):
        document = build_timeseries(self.replay(), n_windows=32)
        means = document["series"]["queue_depth_mean"]
        maxes = document["series"]["queue_depth_max"]
        assert any(m > 0 for m in maxes), "saturated queues must wait"
        assert all(
            hi >= lo - 1e-12 for lo, hi in zip(means, maxes)
        )

    def test_row_hit_rate_bounded_or_nan(self):
        document = build_timeseries(
            self.replay(pattern="sequential"), n_windows=16
        )
        rates = document["series"]["row_hit_rate"]
        assert all(
            math.isnan(r) or 0.0 <= r <= 1.0 for r in rates
        )
        assert any(
            not math.isnan(r) and r > 0 for r in rates
        ), "sequential traffic hits open rows"

    def test_refresh_series_off_and_on(self):
        off = build_timeseries(self.replay(), n_windows=16)
        assert off["series"]["refresh_overhead_fraction"] == [0.0] * 16
        refreshed = build_timeseries(
            self.replay(
                pattern="sequential", n=4096,
                trefi_ns=390.0, trfc_ns=35.0,
            ),
            n_windows=16,
        )
        blackout = refreshed["series"]["refresh_overhead_fraction"]
        assert any(f > 0 for f in blackout)
        assert all(0.0 <= f <= 1.0 + 1e-12 for f in blackout)

    def test_ab_stall_visible_on_pimexec_streams(self):
        from repro.pimexec import PimExecMachine, build_kernel

        kernel = build_kernel("vector-sum", n=1024)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        machine.reset_requests()
        kernel.execute(machine)
        telemetry = ReplayTelemetry()
        machine.replay(telemetry=telemetry)
        document = build_timeseries(telemetry, n_windows=16)
        assert validate_timeseries(document) == []
        assert any(
            f > 0 for f in document["series"]["ab_stall_fraction"]
        ), "AB register broadcasts must occupy the barrier track"
        host_only = build_timeseries(self.replay(), n_windows=16)
        assert host_only["series"]["ab_stall_fraction"] == [0.0] * 16

    def test_per_channel_and_per_bank_tracks(self):
        config = MemSysConfig(n_channels=2)
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=4)
        )
        document = build_timeseries(telemetry, n_windows=8)
        channels = document["channels"]
        assert [entry["channel"] for entry in channels] == [0, 1]
        window_s = document["window_ns"] * 1e-9
        per_channel = sum(
            sum(entry["served_per_s"]) * window_s for entry in channels
        )
        assert per_channel == pytest.approx(400)
        for entry in channels:
            assert [b["bank"] for b in entry["banks"]] == list(
                range(config.banks_per_channel)
            )
            assert all(
                0.0 <= f <= 1.0 + 1e-12
                for f in entry["busy_fraction"]
            )

    def test_requires_a_captured_replay(self):
        with pytest.raises(RuntimeError, match="captured replay"):
            build_timeseries(ReplayTelemetry())
        config = MemSysConfig()
        no_latency = ReplayTelemetry(latency=False)
        MemorySystem(config).replay(
            synthesize_trace("sequential", 32, config),
            telemetry=no_latency,
        )
        with pytest.raises(RuntimeError, match="captured replay"):
            build_timeseries(no_latency)

    def test_rejects_bad_window_arguments(self):
        telemetry = self.replay(n=64)
        with pytest.raises(ValueError, match="window_ns"):
            build_timeseries(telemetry, window_ns=0.0)
        with pytest.raises(ValueError, match="window_ns"):
            build_timeseries(telemetry, window_ns=-5.0)
        with pytest.raises(ValueError, match="n_windows"):
            build_timeseries(telemetry, n_windows=0)

    def test_write_timeseries_round_trips(self, tmp_path):
        telemetry = self.replay(n=64)
        path = write_timeseries(
            telemetry, tmp_path / "deep" / "series.json", n_windows=4
        )
        assert path.exists()
        document = json.loads(path.read_text())
        assert validate_timeseries(document) == []
        assert document["n_windows"] == 4
        # the method forms build/write the identical document
        assert telemetry.timeseries(n_windows=4) == document
        path2 = telemetry.write_timeseries(
            tmp_path / "again.json", n_windows=4
        )
        assert json.loads(path2.read_text()) == document


class TestValidateTimeseries:
    def good(self, n_windows=8):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("sequential", 64, config)
        )
        return build_timeseries(telemetry, n_windows=n_windows)

    def test_good_document_is_clean(self):
        assert validate_timeseries(self.good()) == []

    def test_rejects_non_object(self):
        assert validate_timeseries([1]) == [
            "document must be an object, got list"
        ]

    def test_flags_wrong_schema(self):
        document = self.good()
        document["schema"] = "bogus/v9"
        assert any(
            "schema" in p for p in validate_timeseries(document)
        )

    def test_flags_bad_window_ns(self):
        for bad in (0.0, -1.0, float("inf"), "wide", True):
            document = self.good()
            document["window_ns"] = bad
            assert any(
                "window_ns" in p
                for p in validate_timeseries(document)
            ), bad

    def test_flags_bad_n_windows(self):
        for bad in (0, -3, 1.5, "many", True):
            document = self.good()
            document["n_windows"] = bad
            assert any(
                "n_windows" in p
                for p in validate_timeseries(document)
            ), bad

    def test_flags_series_length_mismatch(self):
        document = self.good()
        document["series"]["offered_per_s"].append(0.0)
        problems = validate_timeseries(document)
        assert any(
            "offered_per_s" in p and "length" in p for p in problems
        )

    def test_flags_missing_series(self):
        document = self.good()
        del document["series"]["queue_depth_max"]
        assert any(
            "queue_depth_max" in p
            for p in validate_timeseries(document)
        )

    def test_flags_non_finite_and_negative_values(self):
        document = self.good()
        document["series"]["served_per_s"][0] = float("nan")
        assert any(
            "NaN" in p for p in validate_timeseries(document)
        )
        document = self.good()
        document["series"]["served_per_s"][0] = float("inf")
        assert any(
            "finite" in p for p in validate_timeseries(document)
        )
        document = self.good()
        document["series"]["served_per_s"][0] = -1.0
        assert any(
            ">= 0" in p for p in validate_timeseries(document)
        )

    def test_nan_allowed_only_in_row_hit_rate(self):
        document = self.good()
        document["series"]["row_hit_rate"][0] = float("nan")
        assert validate_timeseries(document) == []

    def test_flags_non_increasing_t_start(self):
        document = self.good()
        document["t_start_ns"][1] = document["t_start_ns"][0]
        assert any(
            "strictly increasing" in p
            for p in validate_timeseries(document)
        )

    def test_flags_channel_and_bank_shape(self):
        document = self.good()
        document["channels"] = []
        assert any(
            "channels" in p for p in validate_timeseries(document)
        )
        document = self.good()
        del document["channels"][0]["channel"]
        assert any(
            "channel id" in p for p in validate_timeseries(document)
        )
        document = self.good()
        del document["channels"][0]["banks"][0]["bank"]
        assert any(
            "bank id" in p for p in validate_timeseries(document)
        )
        document = self.good()
        document["channels"][0]["busy_fraction"] = "busy"
        assert any(
            "busy_fraction" in p
            for p in validate_timeseries(document)
        )
