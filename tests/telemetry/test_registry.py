"""The unified metrics registry and its exact percentile arithmetic."""

import json
import math

import numpy as np
import pytest

from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
from repro.telemetry import (
    SCHEMA,
    MetricsRegistry,
    exact_percentile,
    latency_summary,
    memsys_metrics,
    pimexec_metrics,
)


class TestExactPercentile:
    def test_nearest_rank_is_an_observed_value(self):
        values = np.array([10.0, 40.0, 20.0, 30.0, 50.0])
        for q in (1, 20, 50, 95, 99, 100):
            assert exact_percentile(values, q) in values

    def test_matches_the_nearest_rank_definition(self):
        values = np.arange(1.0, 101.0)  # 1..100
        # rank = ceil(q/100 * 100) = q for integer q
        assert exact_percentile(values, 50) == 50.0
        assert exact_percentile(values, 95) == 95.0
        assert exact_percentile(values, 99) == 99.0
        assert exact_percentile(values, 100) == 100.0

    def test_single_element(self):
        assert exact_percentile(np.array([7.0]), 50) == 7.0
        assert exact_percentile(np.array([7.0]), 99) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(exact_percentile(np.empty(0), 50))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            exact_percentile(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            exact_percentile(np.array([1.0]), 101)

    def test_bit_identical_inputs_give_bit_identical_output(self):
        rng = np.random.default_rng(0)
        a = rng.random(997)
        b = a.copy()
        for q in (50, 95, 99):
            assert exact_percentile(a, q) == exact_percentile(b, q)


class TestLatencySummary:
    def test_shape_and_values(self):
        summary = latency_summary(np.arange(1.0, 101.0))
        assert summary == {
            "count": 100, "mean": 50.5, "min": 1.0,
            "p50": 50.0, "p95": 95.0, "p99": 99.0, "max": 100.0,
        }

    def test_empty_summary_is_all_nan(self):
        summary = latency_summary(np.empty(0))
        assert summary["count"] == 0
        for key in ("mean", "min", "p50", "p95", "p99", "max"):
            assert math.isnan(summary[key])

    def test_percentiles_are_ordered(self):
        rng = np.random.default_rng(3)
        summary = latency_summary(rng.exponential(100.0, size=5000))
        assert (
            summary["min"] <= summary["p50"] <= summary["p95"]
            <= summary["p99"] <= summary["max"]
        )


class TestMetricsRegistry:
    def test_empty_registry_is_falsy_but_not_none(self):
        registry = MetricsRegistry()
        assert len(registry) == 0
        assert not registry  # __len__ makes it falsy: use `is None`

    def test_counter_gauge_histogram_entries(self):
        registry = MetricsRegistry(source="unit-test")
        registry.counter("requests", 42, engine="fast")
        registry.gauge("rate", 1.5)
        summary = registry.histogram("lat", [1.0, 2.0, 3.0], kind="q")
        assert len(registry) == 3
        assert summary["count"] == 3
        snapshot = registry.snapshot()
        assert snapshot["schema"] == SCHEMA
        assert snapshot["source"] == "unit-test"
        assert snapshot["counters"] == [
            {"name": "requests", "tags": {"engine": "fast"}, "value": 42}
        ]
        assert snapshot["gauges"][0]["value"] == 1.5
        histogram = snapshot["histograms"][0]
        assert histogram["tags"] == {"kind": "q"}
        assert histogram["p50"] == 2.0

    def test_tags_are_stringified_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("c", 1, zebra=2, alpha=1)
        tags = registry.counters[0]["tags"]
        assert tags == {"alpha": "1", "zebra": "2"}
        assert list(tags) == ["alpha", "zebra"]

    def test_summary_histogram_records_verbatim(self):
        registry = MetricsRegistry()
        summary = latency_summary(np.array([5.0, 15.0]))
        registry.summary_histogram("pre", summary, src="x")
        entry = registry.histograms[0]
        assert entry["count"] == 2
        assert entry["p99"] == 15.0

    def test_merge(self):
        a, b = MetricsRegistry("a"), MetricsRegistry("b")
        a.counter("x", 1)
        b.gauge("y", 2.0)
        b.histogram("z", [1.0])
        assert a.merge(b) is a
        assert len(a) == 3

    def test_write_round_trips(self, tmp_path):
        registry = MetricsRegistry(source="io")
        registry.counter("n", 7)
        path = registry.write(tmp_path / "deep" / "metrics.json")
        assert path.exists()
        document = json.loads(path.read_text())
        assert document == registry.snapshot()


class TestAdapters:
    def test_memsys_metrics_reflects_a_replay(self):
        config = MemSysConfig()
        system = MemorySystem(config)
        stats = system.replay(
            synthesize_trace("sequential", 512, config)
        )
        registry = memsys_metrics(
            stats, system=system, scheme=config.scheme
        )
        by_name = {}
        for entry in registry.counters + registry.gauges:
            by_name.setdefault(entry["name"], []).append(entry)
        assert by_name["memsys.requests"][0]["value"] == 512
        assert by_name["memsys.requests"][0]["tags"]["scheme"] == config.scheme
        assert "memsys.row_hit_rate" in by_name
        # per-channel rows, one per configured channel
        assert len(by_name["memsys.channel.requests"]) == config.n_channels
        # system= adds the controller collector gauges
        assert len(by_name["memsys.channel.busy_fraction"]) == config.n_channels

    def test_memsys_metrics_appends_into_given_registry(self):
        config = MemSysConfig()
        stats = MemorySystem(config).replay(
            synthesize_trace("sequential", 64, config)
        )
        registry = MetricsRegistry(source="mine")
        out = memsys_metrics(stats, registry)
        assert out is registry
        assert registry.source == "mine"

    def test_pimexec_metrics_includes_sequencer_counters(self):
        from repro.pimexec import build_kernel, compare_host_pim

        comparison = compare_host_pim(build_kernel("vector-sum", n=1024))
        registry = pimexec_metrics(
            comparison.pim,
            machine=comparison.machine,
            kernel="vector-sum",
        )
        counters = {e["name"]: e for e in registry.counters}
        assert counters["pimexec.pim_commands"]["value"] > 0
        assert counters["pimexec.broadcasts"]["value"] > 0
        seq = [
            e for e in registry.counters
            if e["name"] == "pimexec.sequencer.instructions"
        ]
        assert seq, "machine= must add sequencer counters"
        assert sum(int(e["value"]) for e in seq) > 0
        # the memsys sub-record rides along
        assert "memsys.requests" in counters
