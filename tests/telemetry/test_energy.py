"""The energy-accounting document and its cross-engine bit-identity.

Every number in ``repro.telemetry/energy-v1`` is a deterministic numpy
reduction of the latency recorder's arrays plus the replay's config,
and those arrays are bit-identical across the event engine, both
fast-path tiers, both execution-unit tiers, and the farm's merged
shards — so whole documents must agree to the last bit (``repr``
equality after dropping the ``engine`` label) over the
engine x unit-tier x farm x refresh x dtype matrix.  That matrix is the
load-bearing test here; the rest pins the coefficient-validation error
paths (negative/NaN -> typed :class:`~repro.errors.ConfigError`), the
grid-independence of totals, the power-series agreement with
``timeseries-v2``, the metrics adapter, and ``validate_energy``.
"""

import json
import math

import pytest

from repro.errors import ConfigError
from repro.farm import FarmConfig, replay_farm
from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
from repro.pimexec import PimExecMachine, build_kernel
from repro.telemetry import (
    ENERGY_CLASSES,
    ENERGY_SCHEMA,
    EnergyCoefficients,
    ReplayTelemetry,
    build_energy,
    build_timeseries,
    energy_metrics,
    validate_energy,
    write_energy,
)

N = 300

#: (trefi_ns, trfc_ns, granularity) refresh regimes, mirroring
#: tests/telemetry/test_timeseries.py.
REFRESH = (
    ("off", dict()),
    ("per-rank", dict(trefi_ns=3900.0, trfc_ns=350.0)),
    (
        "per-bank",
        dict(
            trefi_ns=3900.0,
            trfc_ns=80.0,
            refresh_granularity="per-bank",
        ),
    ),
)

#: Supervisor policy for the farm leg of the matrix: deterministic
#: in-process shard replays, no backoff sleeps.
FARM = dict(
    mode="inprocess", engine="fast",
    backoff_base_s=0.0, backoff_cap_s=0.0,
)


def record(config, trace, engine):
    """One recorded replay; ``engine`` may pin the exact fast tier."""
    telemetry = ReplayTelemetry()
    if engine == "exact":
        from repro.memsys.fastpath import replay_fast

        system = MemorySystem(config)
        system._replayed = True
        stats = replay_fast(system, trace, telemetry, force_exact=True)
        telemetry._finish(system, stats)
        assert telemetry.engine == "fast-exact"
    else:
        MemorySystem(config).replay(
            trace, engine=engine, telemetry=telemetry
        )
    return telemetry


def recorded_replay(config, trace, engine="auto"):
    return record(config, trace, engine)


def strip_engine(document):
    return {k: v for k, v in document.items() if k != "engine"}


class TestCrossEngineEquivalence:
    """The acceptance matrix: documents bit-identical across engines."""

    @pytest.mark.parametrize(
        "refresh_name,refresh",
        REFRESH,
        ids=[name for name, _ in REFRESH],
    )
    @pytest.mark.parametrize("arrival", ("line-rate", "timestamped"))
    def test_host_stream_matrix(self, refresh_name, refresh, arrival):
        config = MemSysConfig(
            scheme="channel-interleaved", policy="frfcfs", **refresh
        )
        kwargs = dict(seed=11, write_fraction=0.25, packed=True)
        if arrival == "timestamped":
            kwargs["interarrival_ns"] = 6.0
        trace = synthesize_trace("random", N, config, **kwargs)
        documents = {}
        for engine in ("event", "fast", "exact"):
            documents[engine] = build_energy(
                record(config, trace, engine)
            )
        # the farm leg: sharded when the trace allows it, the exact
        # single-process fallback otherwise (line-rate traces) — the
        # merged recorder arrays are bit-identical either way
        farmed = ReplayTelemetry()
        replay_farm(trace, config, FarmConfig(**FARM), telemetry=farmed)
        documents["farm"] = build_energy(farmed)
        reference = repr(strip_engine(documents["event"]))
        for engine, document in documents.items():
            assert validate_energy(document) == [], engine
            assert repr(strip_engine(document)) == reference, (
                f"energy accounting diverges on the {engine} path "
                f"({refresh_name}/{arrival})"
            )
        if refresh_name == "off":
            assert documents["event"]["breakdown_pj"]["refresh"] == 0.0

    @pytest.mark.parametrize(
        "refresh_name,refresh",
        REFRESH,
        ids=[name for name, _ in REFRESH],
    )
    @pytest.mark.parametrize("dtype", ("fp16", "fp64"))
    def test_pim_stream_matrix(self, refresh_name, refresh, dtype):
        """Unit tier x replay engine x dtype on an all-bank stream."""
        kernel = build_kernel(
            "vector-sum", n=1024, config=MemSysConfig(**refresh)
        )
        documents = {}
        for unit_mode in ("scalar", "vectorized"):
            for engine in ("event", "fast"):
                machine = PimExecMachine(
                    kernel.config, dtype=dtype, unit_mode=unit_mode
                )
                kernel.setup(machine)
                machine.reset_requests()
                kernel.execute(machine)
                telemetry = ReplayTelemetry()
                machine.replay(engine=engine, telemetry=telemetry)
                documents[f"{unit_mode}/{engine}"] = build_energy(
                    telemetry
                )
        reference = repr(strip_engine(documents["scalar/event"]))
        for tier, document in documents.items():
            assert validate_energy(document) == [], tier
            assert repr(strip_engine(document)) == reference, (
                f"energy accounting diverges on the {tier} tier "
                f"({refresh_name}/{dtype})"
            )
        breakdown = documents["scalar/event"]["breakdown_pj"]
        assert breakdown["pim_compute"] > 0
        assert breakdown["broadcast"] > 0

    def test_engine_labels_differ_but_nothing_else(self):
        config = MemSysConfig(scheme="channel-interleaved")
        trace = synthesize_trace(
            "random", N, config, seed=3, packed=True,
            interarrival_ns=40.0, interarrival="poisson",
        )
        event = build_energy(record(config, trace, "event"))
        farmed = ReplayTelemetry()
        replay_farm(trace, config, FarmConfig(**FARM), telemetry=farmed)
        farm = build_energy(farmed)
        assert event["engine"] == "event"
        assert farm["engine"] == "farm"
        assert json.dumps(strip_engine(event)) == json.dumps(
            strip_engine(farm)
        )


class TestEnergyCoefficients:
    def test_defaults_keep_the_structural_orderings(self):
        c = EnergyCoefficients()
        # off-chip column burst ~10x an in-bank PIM access, the
        # hwp_dram / lwp_mem gap arch/energy.py encodes
        assert c.rd_pj / c.pim_cmd_pj == pytest.approx(10.0)
        assert c.wr_pj > c.rd_pj
        assert c.pim_lane_pj < c.pim_cmd_pj
        assert c.background_busy_mw > c.background_idle_mw

    @pytest.mark.parametrize(
        "field",
        [f for f in EnergyCoefficients().to_dict()],
    )
    def test_rejects_negative(self, field):
        with pytest.raises(ConfigError, match=field):
            EnergyCoefficients(**{field: -1.0})

    @pytest.mark.parametrize("bad", (float("nan"), float("inf")))
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ConfigError, match="finite"):
            EnergyCoefficients(act_pj=bad)

    @pytest.mark.parametrize("bad", ("900", None, True, [1.0]))
    def test_rejects_non_numbers(self, bad):
        with pytest.raises(ConfigError, match="number"):
            EnergyCoefficients(rd_pj=bad)

    def test_config_error_is_a_value_error(self):
        # the CLI maps ValueError subclasses to exit code 2
        with pytest.raises(ValueError):
            EnergyCoefficients(pre_pj=float("nan"))

    def test_to_dict_round_trips(self):
        c = EnergyCoefficients(act_pj=1.5, background_idle_mw=0.0)
        assert EnergyCoefficients(**c.to_dict()) == c

    def test_custom_coefficients_flow_into_the_document(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 128, config, seed=0)
        )
        base = build_energy(telemetry)
        doubled = build_energy(
            telemetry,
            coefficients=EnergyCoefficients(
                rd_pj=2 * EnergyCoefficients().rd_pj
            ),
        )
        assert doubled["coefficients"]["rd_pj"] == pytest.approx(
            2 * base["coefficients"]["rd_pj"]
        )
        assert doubled["breakdown_pj"]["read"] == pytest.approx(
            2 * base["breakdown_pj"]["read"]
        )
        for name in ENERGY_CLASSES:
            if name != "read":
                assert doubled["breakdown_pj"][name] == pytest.approx(
                    base["breakdown_pj"][name]
                )
        assert validate_energy(doubled) == []


class TestBuildEnergy:
    def replay(self, pattern="random", n=512, **config_kwargs):
        config = MemSysConfig(**config_kwargs)
        return recorded_replay(
            config, synthesize_trace(pattern, n, config, seed=0)
        )

    def test_document_shape(self):
        document = build_energy(self.replay())
        assert validate_energy(document) == []
        assert document["schema"] == ENERGY_SCHEMA
        assert document["n_requests"] == 512
        assert set(document["breakdown_pj"]) == set(ENERGY_CLASSES)
        assert document["total_pj"] == pytest.approx(
            math.fsum(document["breakdown_pj"].values())
        )
        assert document["pj_per_bit"] > 0
        assert document["mean_power_w"] > 0
        assert document["requests_per_s_per_w"] > 0
        assert len(document["series"]["power_w"]) == document[
            "n_windows"
        ]

    def test_totals_are_grid_independent(self):
        telemetry = self.replay()
        reference = build_energy(telemetry, n_windows=1)
        for grid in (
            dict(n_windows=7),
            dict(n_windows=64),
            dict(window_ns=telemetry.makespan_ns / 7.5),
        ):
            document = build_energy(telemetry, **grid)
            assert document["total_pj"] == pytest.approx(
                reference["total_pj"], rel=1e-12
            ), grid
            assert document["breakdown_pj"] == pytest.approx(
                reference["breakdown_pj"], rel=1e-9
            ), grid
            assert document["series"]["energy_pj_to_date"][-1] == (
                pytest.approx(document["total_pj"], rel=1e-6)
            )

    def test_power_series_matches_timeseries_v2(self):
        # the v2 time series embeds the same power/energy tracks, on
        # its own grid, via the window_energy_pj hook — the numbers
        # must be identical, not merely close
        telemetry = self.replay()
        timeseries = build_timeseries(telemetry, n_windows=16)
        document = build_energy(telemetry, n_windows=16)
        assert (
            timeseries["series"]["power_w"]
            == document["series"]["power_w"]
        )
        assert (
            timeseries["series"]["energy_pj_to_date"]
            == document["series"]["energy_pj_to_date"]
        )

    def test_mean_power_consistent_with_total(self):
        document = build_energy(self.replay(), n_windows=4)
        # 1 pJ over 1 ns is 1 mW
        assert document["mean_power_w"] == pytest.approx(
            document["total_pj"] / document["makespan_ns"] * 1e-3
        )

    def test_refresh_energy_scales_with_granularity(self):
        per_rank = build_energy(
            self.replay(
                pattern="sequential", n=4096,
                trefi_ns=390.0, trfc_ns=35.0,
            )
        )
        assert per_rank["breakdown_pj"]["refresh"] > 0
        off = build_energy(self.replay())
        assert off["breakdown_pj"]["refresh"] == 0.0

    def test_requires_a_captured_replay(self):
        with pytest.raises(RuntimeError, match="captured replay"):
            build_energy(ReplayTelemetry())
        config = MemSysConfig()
        no_latency = ReplayTelemetry(latency=False)
        MemorySystem(config).replay(
            synthesize_trace("sequential", 32, config),
            telemetry=no_latency,
        )
        with pytest.raises(RuntimeError, match="captured replay"):
            build_energy(no_latency)

    def test_rejects_bad_window_arguments(self):
        telemetry = self.replay(n=64)
        with pytest.raises(ValueError, match="window_ns"):
            build_energy(telemetry, window_ns=0.0)
        with pytest.raises(ValueError, match="window_ns"):
            build_energy(telemetry, window_ns=-5.0)
        with pytest.raises(ValueError, match="n_windows"):
            build_energy(telemetry, n_windows=0)

    def test_rejects_bad_coefficients_end_to_end(self):
        telemetry = self.replay(n=64)
        with pytest.raises(ConfigError):
            build_energy(
                telemetry,
                coefficients=EnergyCoefficients(act_pj=-2.0),
            )

    def test_write_energy_round_trips(self, tmp_path):
        telemetry = self.replay(n=64)
        path = write_energy(
            telemetry, tmp_path / "deep" / "energy.json", n_windows=4
        )
        assert path.exists()
        document = json.loads(path.read_text())
        assert validate_energy(document) == []
        assert document["n_windows"] == 4
        # the method forms build/write the identical document
        assert telemetry.energy(n_windows=4) == document
        path2 = telemetry.write_energy(
            tmp_path / "again.json", n_windows=4
        )
        assert json.loads(path2.read_text()) == document


class TestEnergyMetrics:
    def test_counters_and_gauges(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 128, config, seed=0)
        )
        document = build_energy(telemetry)
        snapshot = energy_metrics(document, run="r1").snapshot()
        counters = {
            (c["name"], c["tags"].get("class"), c["tags"].get("channel")):
            c["value"]
            for c in snapshot["counters"]
        }
        assert counters[("energy_total_pj", None, None)] == (
            pytest.approx(document["total_pj"])
        )
        for name in ENERGY_CLASSES:
            assert counters[("energy_breakdown_pj", name, None)] == (
                pytest.approx(document["breakdown_pj"][name])
            )
        for entry in document["channels"]:
            key = (
                "energy_channel_event_pj",
                None,
                str(entry["channel"]),
            )
            assert counters[key] == pytest.approx(entry["event_pj"])
        gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
        assert gauges["energy_pj_per_bit"] == pytest.approx(
            document["pj_per_bit"]
        )
        assert gauges["energy_mean_power_w"] == pytest.approx(
            document["mean_power_w"]
        )
        assert gauges["energy_requests_per_s_per_w"] == pytest.approx(
            document["requests_per_s_per_w"]
        )
        # every counter/gauge carries the caller's tags
        for metric in snapshot["counters"] + snapshot["gauges"]:
            assert metric["tags"]["run"] == "r1"


class TestValidateEnergy:
    def good(self, n_windows=8):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("sequential", 64, config)
        )
        return build_energy(telemetry, n_windows=n_windows)

    def test_good_document_is_clean(self):
        assert validate_energy(self.good()) == []

    def test_rejects_non_object(self):
        assert validate_energy([1]) == [
            "document must be an object, got list"
        ]

    def test_flags_wrong_schema(self):
        document = self.good()
        document["schema"] = "bogus/v9"
        assert any("schema" in p for p in validate_energy(document))

    def test_flags_coefficient_key_drift(self):
        document = self.good()
        del document["coefficients"]["act_pj"]
        assert any(
            "coefficients" in p for p in validate_energy(document)
        )
        document = self.good()
        document["coefficients"]["extra_pj"] = 1.0
        assert any(
            "coefficients" in p for p in validate_energy(document)
        )
        document = self.good()
        document["coefficients"]["rd_pj"] = float("nan")
        assert any(
            "coefficients.rd_pj" in p
            for p in validate_energy(document)
        )

    def test_flags_missing_breakdown_class(self):
        document = self.good()
        del document["breakdown_pj"]["refresh"]
        assert any(
            "refresh" in p for p in validate_energy(document)
        )

    def test_flags_books_that_do_not_cross_foot(self):
        document = self.good()
        document["breakdown_pj"]["read"] += 1.0
        assert any(
            "sums to" in p for p in validate_energy(document)
        )

    def test_flags_decreasing_energy_to_date(self):
        document = self.good()
        series = document["series"]["energy_pj_to_date"]
        series[1] = series[0] - 1.0
        assert any(
            "non-decreasing" in p for p in validate_energy(document)
        )

    def test_flags_to_date_total_mismatch(self):
        document = self.good()
        document["series"]["energy_pj_to_date"] = [
            0.0
        ] * document["n_windows"]
        assert any(
            "ends at" in p for p in validate_energy(document)
        )

    def test_flags_series_length_mismatch(self):
        document = self.good()
        document["series"]["power_w"].append(0.0)
        assert any(
            "power_w" in p and "length" in p
            for p in validate_energy(document)
        )

    def test_flags_bad_n_windows(self):
        for bad in (0, -3, 1.5, "many", True):
            document = self.good()
            document["n_windows"] = bad
            assert any(
                "n_windows" in p for p in validate_energy(document)
            ), bad

    def test_flags_channel_and_bank_shape(self):
        document = self.good()
        document["channels"] = []
        assert any(
            "channels" in p for p in validate_energy(document)
        )
        document = self.good()
        del document["channels"][0]["channel"]
        assert any(
            "channel id" in p for p in validate_energy(document)
        )
        document = self.good()
        del document["channels"][0]["banks"][0]["bank"]
        assert any(
            "bank id" in p for p in validate_energy(document)
        )
