"""The phase profiler and the engines' self-profiling hooks."""

import time

import pytest

from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace
from repro.telemetry import MetricsRegistry, PhaseProfiler, ReplayTelemetry


class TestPhaseProfiler:
    def test_phase_context_manager_times_and_accumulates(self):
        profiler = PhaseProfiler()
        with profiler.phase("work"):
            time.sleep(0.002)
        with profiler.phase("work"):
            time.sleep(0.002)
        assert profiler.phases.keys() == {"work"}
        assert profiler.phases["work"] >= 0.004
        assert profiler.total_seconds == profiler.phases["work"]

    def test_phase_charges_even_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError):
            with profiler.phase("boom"):
                raise ValueError("x")
        assert "boom" in profiler.phases

    def test_add_rejects_negative(self):
        profiler = PhaseProfiler()
        with pytest.raises(ValueError):
            profiler.add("p", -1.0)

    def test_insertion_order_preserved(self):
        profiler = PhaseProfiler()
        for name in ("decode", "certificate", "tier-execute"):
            profiler.add(name, 0.001)
        assert list(profiler.phases) == [
            "decode", "certificate", "tier-execute"
        ]

    def test_metrics_into(self):
        profiler = PhaseProfiler()
        profiler.add("decode", 0.25)
        registry = profiler.metrics_into(
            MetricsRegistry(), engine="fast-vectorized"
        )
        entry = registry.gauges[0]
        assert entry["name"] == "profile.phase_seconds"
        assert entry["value"] == 0.25
        assert entry["tags"] == {
            "engine": "fast-vectorized", "phase": "decode"
        }


class TestEngineSelfProfiling:
    def phases_of(self, config, trace, engine):
        telemetry = ReplayTelemetry(latency=False)
        MemorySystem(config).replay(
            trace, engine=engine, telemetry=telemetry
        )
        return telemetry.profiler.phases

    def test_fast_path_phases(self):
        config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
        phases = self.phases_of(
            config,
            synthesize_trace("sequential", 2000, config, packed=True),
            "fast",
        )
        assert {"decode", "certificate", "tier-execute", "stats-gather"} <= (
            phases.keys()
        )
        assert all(seconds >= 0 for seconds in phases.values())

    def test_event_engine_phases(self):
        config = MemSysConfig()
        phases = self.phases_of(
            config,
            # packed input: the event engine charges unpacking to decode
            synthesize_trace("sequential", 500, config, packed=True),
            "event",
        )
        assert {"decode", "tier-execute", "stats-gather"} <= phases.keys()
        # the event engine runs no certificates
        assert "certificate" not in phases

    def test_profiling_is_coarse_not_per_request(self):
        """A handful of timer pairs per replay: the phase dict stays
        tiny no matter the trace length."""
        config = MemSysConfig()
        phases = self.phases_of(
            config,
            synthesize_trace("random", 3000, config, seed=0),
            "fast",
        )
        assert len(phases) <= 8
