"""Cross-engine per-request latency equivalence.

The fast path is certified bit-exact against the event engine at the
aggregate-statistics level; the telemetry layer strengthens the claim
to *per-request* resolution: for the same trace and configuration the
recorded ``arrival`` / ``start_service`` / ``finish`` instants — and
the routing/outcome context — must be **bit-identical**
(``np.array_equal``, no tolerance) whichever engine served the replay,
across the refresh x arrival x scheme x policy matrix, including PIM
all-bank traffic, AB broadcasts, and full pimexec program streams.
"""

import numpy as np
import pytest

from repro.memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    synthesize_trace,
)
from repro.telemetry import ReplayTelemetry

N = 300

#: (trefi_ns, trfc_ns, granularity) refresh regimes.
REFRESH = (
    ("off", dict()),
    ("per-rank", dict(trefi_ns=3900.0, trfc_ns=350.0)),
    (
        "per-bank",
        dict(
            trefi_ns=3900.0,
            trfc_ns=80.0,
            refresh_granularity="per-bank",
        ),
    ),
)

RECORDED_FIELDS = (
    "arrival",
    "start_service",
    "finish",
    "channel",
    "bank",
    "row",
    "op_code",
    "outcome_code",
)


def fresh(trace):
    return [MemRequest(r.op, r.addr, r.timestamp) for r in trace]


def record_both(config, trace):
    """Replay through both engines; return the two recorders."""
    event = ReplayTelemetry()
    MemorySystem(config).replay(
        fresh(trace), engine="event", telemetry=event
    )
    fast = ReplayTelemetry()
    system = MemorySystem(config)
    system.replay(fresh(trace), engine="fast", telemetry=fast)
    assert event.engine == "event"
    assert fast.engine.startswith("fast-")
    return event, fast


def assert_bit_identical(event, fast):
    for field in RECORDED_FIELDS:
        a = getattr(event.recorder, field)
        b = getattr(fast.recorder, field)
        assert np.array_equal(a, b), (
            f"{field} diverges between engines "
            f"(event vs {fast.engine})"
        )
    # identical arrays must yield identical percentile documents
    assert event.percentiles() == fast.percentiles()


@pytest.mark.parametrize(
    "refresh_name,refresh", REFRESH, ids=[name for name, _ in REFRESH]
)
@pytest.mark.parametrize("arrival", ("line-rate", "timestamped"))
@pytest.mark.parametrize(
    "scheme", ("row-major", "channel-interleaved")
)
@pytest.mark.parametrize("policy", ("fcfs", "frfcfs"))
def test_per_request_latency_matrix(
    refresh_name, refresh, arrival, scheme, policy
):
    config = MemSysConfig(scheme=scheme, policy=policy, **refresh)
    kwargs = dict(seed=11, write_fraction=0.25)
    if arrival == "timestamped":
        kwargs["interarrival_ns"] = 6.0
    trace = synthesize_trace("random", N, config, **kwargs)
    event, fast = record_both(config, trace)
    assert event.recorder.n == fast.recorder.n == N
    assert_bit_identical(event, fast)


def test_pim_all_bank_traffic():
    config = MemSysConfig()
    amap = config.address_map()
    pages = config.timing.pages_per_row
    trace = [
        MemRequest(
            Op.PIM,
            amap.encode(
                Coordinates(
                    channel=i % config.n_channels,
                    row=(i // config.n_channels // pages)
                    % config.rows_per_bank,
                    column=(i // config.n_channels) % pages,
                )
            ),
        )
        for i in range(128)
    ]
    event, fast = record_both(config, trace)
    assert (event.recorder.bank == -1).all()
    assert_bit_identical(event, fast)


def test_pimexec_program_stream():
    """A full machine-generated stream (AB broadcasts + PIM + host)."""
    from repro.pimexec import PimExecMachine, build_kernel

    kernel = build_kernel("vector-sum", n=2048)
    machine = PimExecMachine(kernel.config)
    kernel.setup(machine)
    machine.reset_requests()
    kernel.execute(machine)

    event = ReplayTelemetry()
    machine.replay(engine="event", telemetry=event)
    fast = ReplayTelemetry()
    machine.replay(engine="fast", telemetry=fast)
    assert event.recorder.n == fast.recorder.n > 0
    # the stream carries AB broadcasts (outcome code 3)
    assert (event.recorder.outcome_code == 3).any()
    assert_bit_identical(event, fast)


@pytest.mark.parametrize("pattern", ("sequential", "strided"))
def test_vectorized_tier_agrees_with_event(pattern):
    """Patterns the closed form certifies: the vectorized tier's
    solved instants must equal the calendar's, not just its stats."""
    config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
    trace = synthesize_trace(pattern, 2000, config)
    event, fast = record_both(config, trace)
    assert fast.engine == "fast-vectorized"
    assert_bit_identical(event, fast)
