"""The per-request latency recorder and the ReplayTelemetry handle."""

import numpy as np
import pytest

from repro.memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    synthesize_trace,
)
from repro.telemetry import (
    ALL_BANKS,
    OUTCOME_NAMES,
    LatencyRecorder,
    ReplayTelemetry,
)


def replay(config, trace, engine="auto", **kwargs):
    telemetry = ReplayTelemetry(**kwargs)
    stats = MemorySystem(config).replay(
        trace, engine=engine, telemetry=telemetry
    )
    return stats, telemetry


class TestLatencyRecorder:
    def test_uncaptured_recorder_raises(self):
        recorder = LatencyRecorder()
        assert not recorder.captured
        with pytest.raises(RuntimeError, match="no replay captured"):
            recorder.n
        with pytest.raises(RuntimeError):
            recorder.percentiles()

    def test_single_shot_capture_guard(self):
        config = MemSysConfig()
        trace = synthesize_trace("sequential", 64, config)
        _, telemetry = replay(config, trace)
        with pytest.raises(RuntimeError, match="already captured"):
            MemorySystem(config).replay(
                synthesize_trace("sequential", 64, config),
                telemetry=telemetry,
            )

    @pytest.mark.parametrize("engine", ("event", "fast"))
    def test_durations_are_consistent(self, engine):
        config = MemSysConfig()
        trace = synthesize_trace("random", 500, config, seed=1)
        stats, telemetry = replay(config, trace, engine=engine)
        recorder = telemetry.recorder
        assert recorder.n == 500
        np.testing.assert_array_equal(
            recorder.queue_wait,
            recorder.start_service - recorder.arrival,
        )
        np.testing.assert_array_equal(
            recorder.total_latency,
            recorder.queue_wait + recorder.service_time,
        )
        assert (recorder.queue_wait >= 0).all()
        assert (recorder.service_time > 0).all()
        assert recorder.finish.max() <= stats.makespan_ns

    def test_routing_context_matches_the_config(self):
        config = MemSysConfig()
        trace = synthesize_trace("random", 300, config, seed=2)
        _, telemetry = replay(config, trace)
        recorder = telemetry.recorder
        assert set(np.unique(recorder.channel)) <= set(
            range(config.n_channels)
        )
        assert recorder.bank.min() >= 0  # no all-bank ops in this trace
        assert recorder.bank.max() < config.banks_per_channel
        assert recorder.row.max() < config.rows_per_bank
        assert set(np.unique(recorder.outcome_code)) <= {0, 1, 2}

    def test_all_bank_ops_record_the_pseudo_bank(self):
        config = MemSysConfig()
        amap = config.address_map()
        trace = [
            MemRequest(
                Op.PIM,
                amap.encode(
                    Coordinates(channel=i % config.n_channels, row=i)
                ),
            )
            for i in range(32)
        ]
        _, telemetry = replay(config, trace)
        assert (telemetry.recorder.bank == ALL_BANKS).all()

    def test_percentile_values_are_observed_samples(self):
        config = MemSysConfig()
        trace = synthesize_trace("random", 400, config, seed=3)
        _, telemetry = replay(config, trace)
        recorder = telemetry.recorder
        percentiles = recorder.percentiles()
        assert set(percentiles) == {
            "queue_wait_ns", "service_time_ns", "total_latency_ns"
        }
        waits = recorder.queue_wait
        for key in ("p50", "p95", "p99", "max"):
            assert percentiles["queue_wait_ns"][key] in waits

    def test_outcome_vocabulary(self):
        assert OUTCOME_NAMES == ("hit", "miss", "conflict", "broadcast")


class TestReplayTelemetry:
    def test_finish_records_engine_and_config(self):
        config = MemSysConfig()
        telemetry = ReplayTelemetry()
        assert not telemetry.finished
        stats, telemetry = replay(
            config, synthesize_trace("sequential", 64, config),
            engine="fast",
        )
        assert telemetry.finished
        assert telemetry.engine.startswith("fast-")
        assert telemetry.config is config or telemetry.config == config
        assert telemetry.makespan_ns == stats.makespan_ns

    def test_latency_disabled_still_profiles(self):
        config = MemSysConfig()
        _, telemetry = replay(
            config,
            synthesize_trace("sequential", 64, config),
            latency=False,
        )
        assert telemetry.recorder is None
        assert telemetry.profiler is not None
        with pytest.raises(RuntimeError, match="disabled"):
            telemetry.percentiles()

    def test_metrics_into_emits_latency_histograms(self):
        from repro.telemetry import MetricsRegistry

        config = MemSysConfig()
        _, telemetry = replay(
            config, synthesize_trace("random", 200, config, seed=4)
        )
        registry = telemetry.metrics_into(
            MetricsRegistry(), run="unit"
        )
        names = {e["name"] for e in registry.histograms}
        assert names == {
            "telemetry.queue_wait_ns",
            "telemetry.service_time_ns",
            "telemetry.total_latency_ns",
        }
        counter = registry.counters[0]
        assert counter["name"] == "telemetry.requests_recorded"
        assert counter["value"] == 200
        assert counter["tags"]["engine"] == telemetry.engine
        assert counter["tags"]["run"] == "unit"
        phases = {
            e["tags"]["phase"]
            for e in registry.gauges
            if e["name"] == "profile.phase_seconds"
        }
        assert "tier-execute" in phases
