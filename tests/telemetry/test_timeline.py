"""The Chrome-trace command-timeline exporter and its schema check."""

import json

import pytest

from repro.memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    synthesize_trace,
)
from repro.telemetry import (
    TIMELINE_SCHEMA,
    ReplayTelemetry,
    build_timeline,
    validate_timeline,
    write_timeline,
)


def recorded_replay(config, trace, engine="auto"):
    telemetry = ReplayTelemetry()
    MemorySystem(config).replay(trace, engine=engine, telemetry=telemetry)
    return telemetry


def spans(document, cat=None):
    return [
        e
        for e in document["traceEvents"]
        if e["ph"] == "X" and (cat is None or e["cat"] == cat)
    ]


class TestBuildTimeline:
    def test_valid_document_with_all_track_metadata(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=0)
        )
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        assert document["displayTimeUnit"] == "ns"
        other = document["otherData"]
        assert other["schema"] == TIMELINE_SCHEMA
        assert other["engine"] == telemetry.engine
        assert other["n_requests"] == 400
        assert other["truncated_events"] == 0
        processes = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert processes == {
            f"channel {c}" for c in range(config.n_channels)
        }
        threads = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "bank 0" in threads
        assert {"all-banks", "queue", "refresh"} <= threads
        assert "rows.b0" in threads

    def test_service_and_queue_and_row_spans(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=1)
        )
        document = build_timeline(telemetry)
        service = spans(document, "service")
        assert len(service) == 400
        names = {e["name"] for e in service}
        assert names <= {"hit", "miss", "conflict"}
        assert "miss" in names  # random traffic misses
        assert spans(document, "queue"), "saturated queues must wait"
        rows = spans(document, "row")
        assert rows
        assert all(e["name"].startswith("row ") for e in rows)

    def test_all_bank_and_ab_spans_land_on_the_all_banks_track(self):
        from repro.pimexec import PimExecMachine, build_kernel

        kernel = build_kernel("vector-sum", n=1024)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        machine.reset_requests()
        kernel.execute(machine)
        telemetry = ReplayTelemetry()
        machine.replay(telemetry=telemetry)
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        barriers = spans(document, "barrier")
        assert barriers
        assert all(e["name"] == "AB barrier" for e in barriers)
        assert any(
            e["name"].startswith("PIM ")
            for e in spans(document, "service")
        )

    def test_refresh_blackout_spans(self):
        config = MemSysConfig(trefi_ns=390.0, trfc_ns=35.0)
        telemetry = recorded_replay(
            config,
            synthesize_trace("sequential", 2000, config),
        )
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        blackouts = spans(document, "refresh")
        assert len(blackouts) >= config.n_channels
        # every blackout lasts tRFC
        assert all(
            e["dur"] == pytest.approx(35.0 / 1000.0)
            for e in blackouts
        )

    def test_truncation_keeps_earliest_and_reports_dropped(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=2)
        )
        full = build_timeline(telemetry)
        total = len(spans(full))
        document = build_timeline(telemetry, max_events=100)
        assert validate_timeline(document) == []
        kept = spans(document)
        assert len(kept) == 100
        assert document["otherData"]["truncated_events"] == total - 100
        # spans are globally ts-sorted, so the kept set is the
        # earliest prefix of the full rendering
        assert kept == spans(full)[:100]

    def test_requires_a_captured_latency_recorder(self):
        with pytest.raises(RuntimeError, match="captured replay"):
            build_timeline(ReplayTelemetry())
        config = MemSysConfig()
        no_latency = ReplayTelemetry(latency=False)
        MemorySystem(config).replay(
            synthesize_trace("sequential", 32, config),
            telemetry=no_latency,
        )
        with pytest.raises(RuntimeError, match="captured replay"):
            build_timeline(no_latency)

    def test_write_timeline_round_trips(self, tmp_path):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("sequential", 64, config)
        )
        path = write_timeline(
            telemetry, tmp_path / "deep" / "timeline.json"
        )
        assert path.exists()
        document = json.loads(path.read_text())
        assert validate_timeline(document) == []
        # the method form writes the identical document
        path2 = telemetry.write_timeline(tmp_path / "again.json")
        assert json.loads(path2.read_text()) == document


class TestValidateTimeline:
    def good(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("sequential", 32, config)
        )
        return build_timeline(telemetry)

    def test_rejects_non_object(self):
        assert validate_timeline([1, 2]) == [
            "document must be an object, got list"
        ]

    def test_flags_wrong_time_unit_and_schema(self):
        document = self.good()
        document["displayTimeUnit"] = "ms"
        document["otherData"]["schema"] = "bogus/v9"
        problems = validate_timeline(document)
        assert any("displayTimeUnit" in p for p in problems)
        assert any("otherData.schema" in p for p in problems)

    def test_flags_empty_events(self):
        document = self.good()
        document["traceEvents"] = []
        assert validate_timeline(document) == [
            "traceEvents must be a non-empty array"
        ]

    def test_flags_bad_events(self):
        document = self.good()
        document["traceEvents"].append({"ph": "B", "name": "x"})
        document["traceEvents"].append(
            {"ph": "X", "name": "y", "pid": 0, "tid": 0,
             "ts": -1.0, "dur": float("nan"), "cat": "service"}
        )
        problems = validate_timeline(document)
        assert any("unknown ph 'B'" in p for p in problems)
        assert any("ts must be" in p for p in problems)
        assert any("dur must be" in p for p in problems)
