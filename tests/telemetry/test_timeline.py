"""The Chrome-trace command-timeline exporter and its schema check."""

import json

import pytest

from repro.memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    synthesize_trace,
)
from repro.telemetry import (
    MAX_EVENTS,
    TIMELINE_SCHEMA,
    ReplayTelemetry,
    build_timeline,
    validate_timeline,
    write_timeline,
)


def recorded_replay(config, trace, engine="auto"):
    telemetry = ReplayTelemetry()
    MemorySystem(config).replay(trace, engine=engine, telemetry=telemetry)
    return telemetry


def spans(document, cat=None):
    return [
        e
        for e in document["traceEvents"]
        if e["ph"] == "X" and (cat is None or e["cat"] == cat)
    ]


class TestBuildTimeline:
    def test_valid_document_with_all_track_metadata(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=0)
        )
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        assert document["displayTimeUnit"] == "ns"
        other = document["otherData"]
        assert other["schema"] == TIMELINE_SCHEMA
        assert other["engine"] == telemetry.engine
        assert other["n_requests"] == 400
        assert other["truncated_events"] == 0
        processes = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert processes == {
            f"channel {c}" for c in range(config.n_channels)
        }
        threads = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "bank 0" in threads
        assert {"all-banks", "queue", "refresh"} <= threads
        assert "rows.b0" in threads

    def test_service_and_queue_and_row_spans(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=1)
        )
        document = build_timeline(telemetry)
        service = spans(document, "service")
        assert len(service) == 400
        names = {e["name"] for e in service}
        assert names <= {"hit", "miss", "conflict"}
        assert "miss" in names  # random traffic misses
        assert spans(document, "queue"), "saturated queues must wait"
        rows = spans(document, "row")
        assert rows
        assert all(e["name"].startswith("row ") for e in rows)

    def test_all_bank_and_ab_spans_land_on_the_all_banks_track(self):
        from repro.pimexec import PimExecMachine, build_kernel

        kernel = build_kernel("vector-sum", n=1024)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        machine.reset_requests()
        kernel.execute(machine)
        telemetry = ReplayTelemetry()
        machine.replay(telemetry=telemetry)
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        barriers = spans(document, "barrier")
        assert barriers
        assert all(e["name"] == "AB barrier" for e in barriers)
        assert any(
            e["name"].startswith("PIM ")
            for e in spans(document, "service")
        )

    def test_refresh_blackout_spans(self):
        config = MemSysConfig(trefi_ns=390.0, trfc_ns=35.0)
        telemetry = recorded_replay(
            config,
            synthesize_trace("sequential", 2000, config),
        )
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        blackouts = spans(document, "refresh")
        assert len(blackouts) >= config.n_channels
        # every blackout lasts tRFC
        assert all(
            e["dur"] == pytest.approx(35.0 / 1000.0)
            for e in blackouts
        )

    def test_truncation_keeps_earliest_and_reports_dropped(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=2)
        )
        full = build_timeline(telemetry)
        total = len(spans(full))
        document = build_timeline(telemetry, max_events=100)
        assert validate_timeline(document) == []
        kept = spans(document)
        assert len(kept) == 100
        assert document["otherData"]["truncated_events"] == total - 100
        # spans are globally ts-sorted, so the kept set is the
        # earliest prefix of the full rendering
        assert kept == spans(full)[:100]

    def test_requires_a_captured_latency_recorder(self):
        with pytest.raises(RuntimeError, match="captured replay"):
            build_timeline(ReplayTelemetry())
        config = MemSysConfig()
        no_latency = ReplayTelemetry(latency=False)
        MemorySystem(config).replay(
            synthesize_trace("sequential", 32, config),
            telemetry=no_latency,
        )
        with pytest.raises(RuntimeError, match="captured replay"):
            build_timeline(no_latency)

    def test_write_timeline_round_trips(self, tmp_path):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("sequential", 64, config)
        )
        path = write_timeline(
            telemetry, tmp_path / "deep" / "timeline.json"
        )
        assert path.exists()
        document = json.loads(path.read_text())
        assert validate_timeline(document) == []
        # the method form writes the identical document
        path2 = telemetry.write_timeline(tmp_path / "again.json")
        assert json.loads(path2.read_text()) == document


class TestValidateTimeline:
    def good(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("sequential", 32, config)
        )
        return build_timeline(telemetry)

    def test_rejects_non_object(self):
        assert validate_timeline([1, 2]) == [
            "document must be an object, got list"
        ]

    def test_flags_wrong_time_unit_and_schema(self):
        document = self.good()
        document["displayTimeUnit"] = "ms"
        document["otherData"]["schema"] = "bogus/v9"
        problems = validate_timeline(document)
        assert any("displayTimeUnit" in p for p in problems)
        assert any("otherData.schema" in p for p in problems)

    def test_flags_empty_events(self):
        document = self.good()
        document["traceEvents"] = []
        assert validate_timeline(document) == [
            "traceEvents must be a non-empty array"
        ]

    def test_flags_bad_events(self):
        document = self.good()
        document["traceEvents"].append({"ph": "B", "name": "x"})
        document["traceEvents"].append(
            {"ph": "X", "name": "y", "pid": 0, "tid": 0,
             "ts": -1.0, "dur": float("nan"), "cat": "service"}
        )
        problems = validate_timeline(document)
        assert any("unknown ph 'B'" in p for p in problems)
        assert any("ts must be" in p for p in problems)
        assert any("dur must be" in p for p in problems)


class TestValidatorHardening:
    """The hardened checks: span ordering, overlap, and the 200k cap."""

    @staticmethod
    def synthetic(timestamps):
        """A minimal document with one span per listed start time."""
        events = [
            {
                "ph": "M", "pid": 0, "tid": 0,
                "name": "process_name",
                "args": {"name": "channel 0"},
            }
        ]
        events.extend(
            {
                "ph": "X", "name": "s", "cat": "service",
                "pid": 0, "tid": 0, "ts": float(ts), "dur": 1.0,
            }
            for ts in timestamps
        )
        return {
            "displayTimeUnit": "ns",
            "traceEvents": events,
            "otherData": {"schema": TIMELINE_SCHEMA},
        }

    def test_overlapping_spans_on_one_track_are_valid(self):
        # banks genuinely overlap queue waits; equal start times are
        # the exporter's tie-broken sort, not a defect
        document = self.synthetic([10.0, 10.0, 10.5, 10.5, 11.0])
        assert validate_timeline(document) == []

    def test_out_of_order_start_times_are_flagged(self):
        problems = validate_timeline(self.synthetic([0.0, 5.0, 3.0]))
        assert problems == [
            "traceEvents[3]: ts 3 out of order (previous span "
            "started at 5)"
        ]

    def test_invalid_ts_does_not_poison_the_order_check(self):
        # a negative ts is its own problem; the ordering watermark
        # must not advance past it and double-report
        problems = validate_timeline(
            self.synthetic([0.0, -1.0, 2.0])
        )
        assert problems == [
            "traceEvents[2]: ts must be a finite number >= 0"
        ]

    def test_span_count_cap_boundary(self):
        at_cap = self.synthetic(range(MAX_EVENTS))
        assert validate_timeline(at_cap) == []
        over = self.synthetic(range(MAX_EVENTS + 1))
        problems = validate_timeline(over)
        assert problems == [
            f"span count {MAX_EVENTS + 1} exceeds the {MAX_EVENTS} "
            "cap (the exporter truncates earliest-first; a larger "
            "document was built with the cap overridden)"
        ]

    def test_metadata_does_not_count_against_the_cap(self):
        document = self.synthetic(range(16))
        # pad with metadata far past the cap-minus-spans margin
        document["traceEvents"].extend(
            {
                "ph": "M", "pid": 0, "tid": i + 1,
                "name": "thread_name",
                "args": {"name": f"extra {i}"},
            }
            for i in range(64)
        )
        assert validate_timeline(document) == []

    def test_exporter_never_exceeds_the_cap_by_default(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 400, config, seed=5)
        )
        # an overridden larger cap is the only way past MAX_EVENTS,
        # and the validator calls that out
        document = build_timeline(telemetry, max_events=10**9)
        total = len(spans(document))
        if total > MAX_EVENTS:  # pragma: no cover - small trace
            assert validate_timeline(document) != []
        assert validate_timeline(build_timeline(telemetry)) == []


class TestFarmTimelineMerge:
    """Distributed replays add worker/shard tracks to the document."""

    def farm_replay(self):
        from repro.farm import (
            KILL,
            FarmConfig,
            FaultPlan,
            replay_farm,
        )

        config = MemSysConfig(
            n_channels=2, scheme="channel-interleaved"
        )
        trace = synthesize_trace(
            "random", 400, config, seed=3, packed=True,
            interarrival_ns=40.0, interarrival="poisson",
        )
        telemetry = ReplayTelemetry()
        result = replay_farm(
            trace,
            config,
            FarmConfig(
                mode="inprocess", engine="fast",
                backoff_base_s=0.0, backoff_cap_s=0.0,
            ),
            telemetry=telemetry,
            fault_plan=FaultPlan.always(KILL, [0], attempts=1),
        )
        return config, telemetry, result

    def test_farm_tracks_merge_and_validate(self):
        config, telemetry, result = self.farm_replay()
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        farm_spans = spans(document, "farm")
        assert len(farm_spans) == len(result.events) > 0
        # one extra process just past the channel tracks, on the wall
        # clock; simulation tracks keep their pids
        assert {e["pid"] for e in farm_spans} == {config.n_channels}
        metadata = {
            (e["pid"], e["name"], e["args"]["name"])
            for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        pid = config.n_channels
        assert (pid, "process_name", "farm (wall clock)") in metadata
        assert (pid, "thread_name", "supervisor") in metadata
        assert (pid, "thread_name", "shard 0") in metadata
        assert (pid, "thread_name", "shard 1") in metadata
        # the injected kill rides along with its context
        (kill,) = [
            e for e in farm_spans if e["name"] == "chaos-kill"
        ]
        assert kill["args"]["shard_id"] == 0
        assert kill["args"]["attempt"] == 0

    def test_single_process_documents_carry_no_farm_tracks(self):
        config = MemSysConfig()
        telemetry = recorded_replay(
            config, synthesize_trace("random", 64, config, seed=0)
        )
        document = build_timeline(telemetry)
        assert spans(document, "farm") == []
        processes = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "farm (wall clock)" not in processes
