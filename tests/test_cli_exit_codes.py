"""CLI exit-code audit: every bad-input path exits 2, one line, no trace.

The contract for operator-facing robustness: whatever garbage a verb
is fed — a missing file, an empty or binary trace, a malformed
program, an invalid geometry or farm policy — ``repro-pim`` exits with
code 2 and a single explanatory line on stderr.  A Python traceback
on bad input is a bug.  (Exit 1 is reserved for genuine check
failures, exit 0 for success.)
"""

import pytest

from repro.cli import main
from repro.memsys import MemSysConfig
from repro.memsys.trace import format_trace, synthesize_trace


@pytest.fixture
def good_trace(tmp_path):
    """A small valid timestamped trace file (2 channels active)."""
    config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
    requests = synthesize_trace(
        "random", 200, config, seed=0,
        interarrival_ns=40.0, interarrival="poisson",
    )
    path = tmp_path / "good.trace"
    path.write_text(format_trace(requests))
    return path


def run_cli(argv, capsys):
    """Invoke main(); return (exit_code, stdout, stderr) after
    asserting the no-traceback / one-line-stderr contract."""
    code = main(argv)
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    if code == 2:
        lines = [l for l in captured.err.splitlines() if l.strip()]
        assert len(lines) >= 1, "exit 2 must explain itself on stderr"
    return code, captured.out, captured.err


class TestReplayBadInput:
    def test_missing_file(self, tmp_path, capsys):
        code, _, err = run_cli(
            ["replay", str(tmp_path / "nope.trace")], capsys
        )
        assert code == 2
        assert "no such trace file" in err

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.trace"
        path.write_text("")
        code, _, err = run_cli(["replay", str(path)], capsys)
        assert code == 2
        assert "empty trace" in err

    def test_garbage_text(self, tmp_path, capsys):
        path = tmp_path / "garbage.trace"
        path.write_text("this is not\na trace at all\n")
        code, _, err = run_cli(["replay", str(path)], capsys)
        assert code == 2
        assert "replay failed" in err

    def test_binary_garbage(self, tmp_path, capsys):
        path = tmp_path / "binary.trace"
        path.write_bytes(bytes([0, 159, 146, 150, 255, 0, 128]))
        code, _, err = run_cli(["replay", str(path)], capsys)
        assert code == 2

    def test_unknown_scheme(self, good_trace, capsys):
        code, _, err = run_cli(
            ["replay", str(good_trace), "--scheme", "warp"], capsys
        )
        assert code == 2
        assert "scheme" in err

    def test_bad_channel_count(self, good_trace, capsys):
        code, _, _ = run_cli(
            ["replay", str(good_trace), "--channels", "0"], capsys
        )
        assert code == 2

    def test_refresh_needs_trefi(self, good_trace, capsys):
        code, _, _ = run_cli(
            ["replay", str(good_trace), "--trfc", "350"], capsys
        )
        assert code == 2

    def test_negative_workers(self, good_trace, capsys):
        code, _, err = run_cli(
            ["replay", str(good_trace), "--workers", "-1"], capsys
        )
        assert code == 2
        assert "workers" in err

    def test_workers_on_good_trace_succeeds(self, good_trace, capsys):
        code, out, _ = run_cli(
            [
                "replay", str(good_trace),
                "--scheme", "channel-interleaved",
                "--workers", "2", "--engine", "fast",
            ],
            capsys,
        )
        assert code == 0
        assert "farm:" in out


class TestFarmBadInput:
    def test_missing_file(self, tmp_path, capsys):
        code, _, err = run_cli(
            ["farm", str(tmp_path / "nope.trace")], capsys
        )
        assert code == 2
        assert "no such trace file" in err

    def test_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "empty.trace"
        path.write_text("# only comments\n")
        code, _, err = run_cli(["farm", str(path)], capsys)
        assert code == 2
        assert "empty trace" in err

    def test_bad_max_shards(self, good_trace, capsys):
        code, _, err = run_cli(
            ["farm", str(good_trace), "--max-shards", "0"], capsys
        )
        assert code == 2
        assert "max_shards" in err

    def test_bad_max_retries(self, good_trace, capsys):
        code, _, _ = run_cli(
            ["farm", str(good_trace), "--max-retries", "-1"], capsys
        )
        assert code == 2

    def test_bad_deadline(self, good_trace, capsys):
        code, _, _ = run_cli(
            ["farm", str(good_trace), "--deadline", "0"], capsys
        )
        assert code == 2

    def test_good_trace_prints_ledger(
        self, good_trace, tmp_path, capsys
    ):
        report = tmp_path / "report.json"
        code, out, _ = run_cli(
            [
                "farm", str(good_trace),
                "--scheme", "channel-interleaved",
                "--mode", "inprocess", "--engine", "fast",
                "--report", str(report),
            ],
            capsys,
        )
        assert code == 0
        assert "ledger:" in out
        assert report.exists()
        import json

        document = json.loads(report.read_text())
        assert document["n_shards"] >= 1


class TestPimexecBadInput:
    def test_missing_trace(self, tmp_path, capsys):
        code, _, err = run_cli(
            ["pimexec", "--trace", str(tmp_path / "nope.trace")],
            capsys,
        )
        assert code == 2
        assert "no such trace file" in err

    def test_malformed_program(self, tmp_path, capsys):
        path = tmp_path / "bad.pim"
        path.write_text("GLORP 1 2 3\n")
        code, _, err = run_cli(
            ["pimexec", "--trace", str(path)], capsys
        )
        assert code == 2
        assert "pimexec replay failed" in err

    def test_binary_program(self, tmp_path, capsys):
        path = tmp_path / "binary.pim"
        path.write_bytes(bytes([0, 159, 146, 150, 255]))
        code, _, _ = run_cli(
            ["pimexec", "--trace", str(path)], capsys
        )
        assert code == 2

    def test_unknown_kernel(self, capsys):
        code, _, err = run_cli(
            ["pimexec", "--kernel", "bogus"], capsys
        )
        assert code == 2
        assert "unknown kernel" in err

    def test_metrics_needs_single_kernel(self, tmp_path, capsys):
        code, _, err = run_cli(
            [
                "pimexec", "--kernel", "all",
                "--metrics", str(tmp_path / "m.json"),
            ],
            capsys,
        )
        assert code == 2
        assert "single kernel" in err

    def test_energy_needs_single_kernel(self, tmp_path, capsys):
        code, _, err = run_cli(
            [
                "pimexec", "--kernel", "all",
                "--energy", str(tmp_path / "e.json"),
            ],
            capsys,
        )
        assert code == 2
        assert "--energy" in err
        assert "single kernel" in err


class TestNnBadInput:
    def test_unknown_kernel(self, capsys):
        code, _, err = run_cli(["nn", "--kernel", "bogus"], capsys)
        assert code == 2
        assert "unknown kernel" in err

    def test_emit_trace_unwritable_path(self, tmp_path, capsys):
        # a path *under a file* cannot be created: OSError, not a
        # traceback
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file")
        code, _, err = run_cli(
            ["nn", "--emit-trace", str(blocker / "out.trace")],
            capsys,
        )
        assert code == 2
        assert "cannot write" in err

    def test_emit_trace_rejects_metrics(self, tmp_path, capsys):
        code, _, err = run_cli(
            [
                "nn",
                "--emit-trace", str(tmp_path / "out.trace"),
                "--metrics", str(tmp_path / "m.json"),
            ],
            capsys,
        )
        assert code == 2
        assert "--metrics" in err

    def test_emit_trace_rejects_energy(self, tmp_path, capsys):
        # --energy accounts a replay; --emit-trace never replays
        code, _, err = run_cli(
            [
                "nn",
                "--emit-trace", str(tmp_path / "out.trace"),
                "--energy", str(tmp_path / "e.json"),
            ],
            capsys,
        )
        assert code == 2
        assert "--energy" in err
        assert "--emit-trace" in err

    def test_energy_needs_single_kernel(self, tmp_path, capsys):
        code, _, err = run_cli(
            [
                "nn", "--kernel", "all",
                "--energy", str(tmp_path / "e.json"),
            ],
            capsys,
        )
        assert code == 2
        assert "single kernel" in err


class TestExperimentVerbs:
    def test_unknown_experiment(self, capsys):
        code, _, err = run_cli(["run", "not-an-experiment"], capsys)
        assert code == 2
        assert "unknown experiment" in err


class TestArgparseErrors:
    """argparse's own rejections also exit 2 (via SystemExit)."""

    def test_unknown_verb(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2

    def test_bad_choice_flag(self, good_trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", str(good_trace), "--engine", "warp"])
        assert excinfo.value.code == 2
