"""Tests for the energy model extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Table1Params
from repro.arch import (
    EnergyParams,
    control_energy_nj,
    energy_delay_ratio,
    energy_ratio,
    pim_energy_nj,
)

P = Table1Params()
E = EnergyParams()


class TestEnergyModel:
    def test_no_offload_identical(self):
        assert float(energy_ratio(0.0, P, E)) == pytest.approx(1.0)
        assert float(control_energy_nj(0.0, P, E)) == pytest.approx(
            float(pim_energy_nj(0.0, P, E))
        )

    def test_control_energy_decomposition(self):
        # f=1: every op costs hwp_op + mix*(cache + 1.0*dram)
        per_op = 1.0 + 0.3 * (0.5 + 1.0 * 20.0)
        assert float(control_energy_nj(1.0, P, E)) == pytest.approx(
            P.total_work * per_op
        )

    def test_pim_energy_decomposition(self):
        per_op = 0.2 + 0.3 * 2.0
        assert float(pim_energy_nj(1.0, P, E)) == pytest.approx(
            P.total_work * per_op
        )

    def test_ratio_monotone_in_fraction(self):
        f = np.linspace(0, 1, 21)
        ratios = energy_ratio(f, P, E)
        assert np.all(np.diff(ratios) > 0)

    def test_ratio_independent_of_node_count(self):
        """Energy is per-op under this model; nodes change delay only."""
        assert float(energy_ratio(0.7, P, E)) == pytest.approx(
            float(energy_ratio(0.7, P, E))
        )

    def test_edp_compounds(self):
        e = float(energy_ratio(1.0, P, E))
        edp = float(energy_delay_ratio(1.0, 64, P, E))
        assert edp > e  # time gain multiplies in

    def test_validation(self):
        with pytest.raises(ValueError):
            energy_ratio(1.5, P, E)
        with pytest.raises(ValueError):
            EnergyParams(hwp_dram_nj=-1.0)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),   # lwp op cheaper
        st.floats(min_value=2.0, max_value=100.0),  # dram pricier
    )
    @settings(max_examples=60)
    def test_pim_saves_energy_whenever_structure_holds(
        self, f, lwp_op, dram
    ):
        """For any coefficients with cheap PIM ops and expensive
        off-chip access, the PIM system never uses more energy."""
        energy = EnergyParams(
            hwp_op_nj=1.0,
            hwp_cache_nj=0.5,
            hwp_dram_nj=dram,
            lwp_op_nj=lwp_op,
            lwp_mem_nj=2.0,
        )
        ratio = float(energy_ratio(f, P, energy))
        assert ratio >= 1.0 - 1e-12
