"""Tests for the DRAM bandwidth model — the paper's §2.1 claims."""

import pytest

from repro.arch import (
    DramMacroTiming,
    PimChipConfig,
    chip_bandwidth_bits_per_sec,
    effective_access_time_ns,
    macro_bandwidth_bits_per_sec,
    min_macros_for_bandwidth,
)


class TestMacroTiming:
    def test_paper_defaults(self):
        t = DramMacroTiming()
        assert t.row_bits == 2048
        assert t.page_bits == 256
        assert t.pages_per_row == 8
        assert t.full_row_drain_ns() == pytest.approx(20 + 8 * 2)

    def test_random_word_time(self):
        assert DramMacroTiming().random_word_ns() == pytest.approx(22.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DramMacroTiming(row_bits=100, page_bits=256)
        with pytest.raises(ValueError):
            DramMacroTiming(row_bits=2048, page_bits=300)
        with pytest.raises(ValueError):
            DramMacroTiming(row_access_ns=0.0)


class TestPaperClaims:
    def test_macro_exceeds_50_gbit(self):
        """Paper: 'a single on-chip DRAM macro could sustain a bandwidth
        of over 50 Gbit/s'."""
        bw = macro_bandwidth_bits_per_sec()
        assert bw > 50e9
        assert bw == pytest.approx(2048 / 36e-9)

    def test_chip_exceeds_1_tbit(self):
        """Paper: 'an on-chip peak memory bandwidth of greater than
        1 Tbit/s is possible per chip'."""
        assert chip_bandwidth_bits_per_sec(PimChipConfig(n_nodes=32)) > 1e12

    def test_min_macros_for_terabit(self):
        assert min_macros_for_bandwidth(1e12) == 18

    def test_min_macros_validation(self):
        with pytest.raises(ValueError):
            min_macros_for_bandwidth(0.0)


class TestRowHitScaling:
    def test_full_hit_ratio_is_page_rate(self):
        t = DramMacroTiming()
        bw = macro_bandwidth_bits_per_sec(t, row_hit_ratio=1.0)
        assert bw == pytest.approx(256 / 2e-9)

    def test_bandwidth_monotone_in_hit_ratio(self):
        bws = [
            macro_bandwidth_bits_per_sec(row_hit_ratio=h)
            for h in (0.25, 0.5, 0.75, 1.0)
        ]
        assert bws == sorted(bws)

    def test_hit_ratio_validation(self):
        with pytest.raises(ValueError):
            macro_bandwidth_bits_per_sec(row_hit_ratio=1.5)

    def test_effective_access_time_limits(self):
        assert effective_access_time_ns(row_hit_ratio=1.0) == pytest.approx(
            2.0
        )
        assert effective_access_time_ns(row_hit_ratio=0.0) == pytest.approx(
            22.0
        )

    def test_effective_access_time_validation(self):
        with pytest.raises(ValueError):
            effective_access_time_ns(row_hit_ratio=-0.1)


class TestChipConfig:
    def test_node_scaling_linear(self):
        one = chip_bandwidth_bits_per_sec(PimChipConfig(n_nodes=1))
        eight = chip_bandwidth_bits_per_sec(PimChipConfig(n_nodes=8))
        assert eight == pytest.approx(8 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            PimChipConfig(n_nodes=0)
