"""Tests for the statistical and set-associative cache models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    SetAssociativeCache,
    StatisticalCache,
    simulate_trace_hit_rate,
)


class TestStatisticalCache:
    def test_zero_miss_rate_always_hits(self):
        c = StatisticalCache(0.0)
        assert all(c.access() for _ in range(100))
        assert c.stats.miss_rate == 0.0

    def test_unit_miss_rate_always_misses(self):
        c = StatisticalCache(1.0)
        assert not any(c.access() for _ in range(100))
        assert c.stats.miss_rate == 1.0

    def test_probabilistic_rate_converges(self, rng):
        c = StatisticalCache(0.1, rng)
        c.access_many(100_000)
        assert c.stats.miss_rate == pytest.approx(0.1, abs=0.01)

    def test_probabilistic_without_rng_raises(self):
        c = StatisticalCache(0.5)
        with pytest.raises(ValueError):
            c.access()
        with pytest.raises(ValueError):
            c.access_many(5)

    def test_access_many_counts(self, rng):
        c = StatisticalCache(0.25, rng)
        misses = c.access_many(1000)
        assert misses == c.stats.misses
        assert c.stats.accesses == 1000

    def test_access_many_validation(self, rng):
        with pytest.raises(ValueError):
            StatisticalCache(0.5, rng).access_many(-1)

    def test_miss_rate_validation(self):
        with pytest.raises(ValueError):
            StatisticalCache(1.5)


class TestSetAssociativeCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(line_bytes=48)  # not power of two
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=64, line_bytes=64, associativity=4)
        with pytest.raises(ValueError):
            SetAssociativeCache(associativity=0)

    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, 64, 2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: fully associative over 2 lines
        c = SetAssociativeCache(size_bytes=128, line_bytes=64, associativity=2)
        assert c.n_sets == 1
        c.access(0)     # A
        c.access(64)    # B
        c.access(0)     # touch A (B is now LRU)
        c.access(128)   # C evicts B
        assert c.contains(0)
        assert not c.contains(64)
        assert c.contains(128)

    def test_sets_isolate_addresses(self):
        c = SetAssociativeCache(size_bytes=256, line_bytes=64, associativity=1)
        assert c.n_sets == 4
        c.access(0)      # set 0
        c.access(64)     # set 1
        assert c.contains(0) and c.contains(64)

    def test_direct_mapped_conflict(self):
        c = SetAssociativeCache(size_bytes=256, line_bytes=64, associativity=1)
        c.access(0)
        c.access(256)  # maps to the same set, evicts 0
        assert not c.contains(0)
        assert c.contains(256)

    def test_lines_resident_bounded(self):
        c = SetAssociativeCache(size_bytes=512, line_bytes=64, associativity=2)
        for addr in range(0, 64 * 64, 64):
            c.access(addr)
        assert c.lines_resident <= 512 // 64

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache().access(-1)

    def test_sequential_trace_hit_rate(self):
        """Streaming through cache-resident data: high hit rate after
        cold misses (the paper's 'high temporal locality' regime)."""
        c = SetAssociativeCache(64 * 1024, 64, 4)
        working_set = list(range(0, 16 * 1024, 8))  # fits in cache
        for _ in range(4):
            for a in working_set:
                c.access(a)
        assert c.stats.hit_rate > 0.9

    def test_random_huge_trace_low_hit_rate(self, rng):
        """No-reuse random addresses over a huge range: miss-dominated
        (the control run's no-reuse regime, Pmiss -> 1)."""
        c = SetAssociativeCache(16 * 1024, 64, 4)
        addrs = rng.integers(0, 2**30, size=20_000)
        c.access_trace(addrs)
        assert c.stats.hit_rate < 0.1


class TestTraceHitRate:
    def test_warmup_excluded(self):
        working = [a for _ in range(10) for a in range(0, 4096, 64)]
        cold = simulate_trace_hit_rate(working, 64 * 1024, 64, 4)
        warm = simulate_trace_hit_rate(
            working, 64 * 1024, 64, 4, warmup_fraction=0.5
        )
        assert warm >= cold

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            simulate_trace_hit_rate([0], warmup_fraction=1.0)


class TestCacheProperties:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**20),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs):
        c = SetAssociativeCache(4096, 64, 2)
        c.access_trace(addrs)
        assert c.stats.hits + c.stats.misses == len(addrs)
        assert 0.0 <= c.stats.hit_rate <= 1.0

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**16),
            min_size=2,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_repeat_of_trace_never_decreases_hit_rate(self, addrs):
        """Replaying a trace twice on a fresh cache at least matches the
        single-pass hit count in the second pass (LRU inclusion)."""
        c1 = SetAssociativeCache(64 * 1024, 64, 4)
        c1.access_trace(addrs)
        single = c1.stats.hit_rate
        c2 = SetAssociativeCache(64 * 1024, 64, 4)
        c2.access_trace(addrs)
        c2.stats.reset()
        c2.access_trace(addrs)
        assert c2.stats.hit_rate >= single - 1e-12

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**18),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_bigger_cache_same_assoc_never_more_misses_fully_assoc(
        self, addrs
    ):
        """For fully-associative LRU, capacity growth cannot add misses
        (stack inclusion property)."""
        small = SetAssociativeCache(
            size_bytes=4 * 64, line_bytes=64, associativity=4
        )
        big = SetAssociativeCache(
            size_bytes=16 * 64, line_bytes=64, associativity=16
        )
        small.access_trace(addrs)
        big.access_trace(addrs)
        assert big.stats.misses <= small.stats.misses
