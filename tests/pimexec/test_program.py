"""Tests for the HBM-PIMulator program-trace frontend."""

import pathlib

import numpy as np
import pytest

from repro.memsys import MemSysConfig, MemorySystem, Op
from repro.pimexec import PimExecMachine, parse_pim_program

EXAMPLE = """\
# Physical layout header, as in HBM-PIMulator example traces
# R/W GPR [GPR_id]
W MEM 0 2 8
W MEM 1 2 9

W GPR 0
W GPR 1
W CFR 0 1
AB W

PIM MAC GRF,8 BANK,0,3,0 SRF,0
PIM ADD GRF,8 BANK,0,3,1 GRF,8
PIM MUL GRF,9 BANK,0,3,2 GRF,8
PIM NOP
PIM JUMP
PIM EXIT

R MEM 0 2 8
R GPR 0
R CFR 0 1
"""


class TestParsing:
    def test_counts_and_comment_blank_handling(self):
        program = parse_pim_program(EXAMPLE)
        assert program.counts() == {
            "mem": 3, "gpr": 3, "cfr": 2, "ab": 1, "pim": 6,
        }

    def test_accepts_paths(self, tmp_path):
        path = tmp_path / "program.trace"
        path.write_text(EXAMPLE)
        assert len(parse_pim_program(path)) == len(
            parse_pim_program(EXAMPLE)
        )

    def test_raw_address_and_sb_records(self):
        program = parse_pim_program("W 4096\nSB R 0x40\n")
        assert [r.kind for r in program.records] == ["sb", "sb"]
        assert program.records[0].write
        assert not program.records[1].write

    def test_cfr_quoted_index(self):
        # the HBM-PIMulator docs quote the CFR id: R/W CFR "0" data
        program = parse_pim_program('W CFR "0" 5\n')
        record = program.records[0]
        assert (record.index, record.data) == (0, 5)


class TestDependencies:
    def test_pim_depends_on_latest_kernel_write(self):
        program = parse_pim_program(EXAMPLE)
        records = program.records
        ab_index = next(
            i for i, r in enumerate(records) if r.kind == "ab"
        )
        for record in records:
            if record.kind == "pim":
                assert record.depends_on == ab_index

    def test_reads_depend_on_matching_writes(self):
        program = parse_pim_program(EXAMPLE)
        records = program.records
        mem_read = next(
            r for r in records if r.kind == "mem" and not r.write
        )
        assert records[mem_read.depends_on].kind == "mem"
        assert records[mem_read.depends_on].write
        assert records[mem_read.depends_on].row == 8
        gpr_read = next(
            r for r in records if r.kind == "gpr" and not r.write
        )
        assert records[gpr_read.depends_on].write

    def test_ab_depends_on_staging_gpr_write(self):
        program = parse_pim_program(EXAMPLE)
        records = program.records
        ab = next(r for r in records if r.kind == "ab")
        assert records[ab.depends_on].kind == "gpr"

    def test_unmatched_read_has_no_dependency(self):
        program = parse_pim_program("R MEM 0 0 5\n")
        assert program.records[0].depends_on is None


class TestErrors:
    def test_unknown_record_with_line_number(self):
        with pytest.raises(ValueError, match="trace line 2"):
            parse_pim_program("W MEM 0 0 0\nFOO BAR\n")

    def test_truncated_records(self):
        with pytest.raises(ValueError, match="truncated"):
            parse_pim_program("W\n")
        with pytest.raises(ValueError, match="GPR INDEX"):
            parse_pim_program("W GPR\n")
        with pytest.raises(ValueError, match="CHANNEL BANK ROW"):
            parse_pim_program("R MEM 0 1\n")

    def test_bad_integers(self):
        with pytest.raises(ValueError, match="bad channel"):
            parse_pim_program("W MEM x 0 0\n")
        with pytest.raises(ValueError, match="negative"):
            parse_pim_program("W MEM -1 0 0\n")
        with pytest.raises(ValueError, match="bad address"):
            parse_pim_program("SB W zz\n")

    def test_malformed_pim_commands_carry_line_numbers(self):
        with pytest.raises(ValueError, match="trace line 1.*opcode"):
            parse_pim_program("PIM FMA GRF,0 BANK SRF,0\n")
        with pytest.raises(ValueError, match="trace line 2"):
            parse_pim_program("PIM NOP\nPIM MAC GRF,0\n")

    def test_malformed_ab(self):
        with pytest.raises(ValueError, match="AB W"):
            parse_pim_program("AB R\n")

    def test_out_of_range_coordinates_at_lowering(self):
        config = MemSysConfig()
        with pytest.raises(ValueError, match="channel 9"):
            parse_pim_program("W MEM 9 0 0\n").to_requests(config)
        with pytest.raises(ValueError, match="bank 64"):
            parse_pim_program("W MEM 0 64 0\n").to_requests(config)
        with pytest.raises(ValueError, match="row"):
            parse_pim_program("W MEM 0 0 999999\n").to_requests(config)
        with pytest.raises(ValueError, match="PIM row"):
            parse_pim_program(
                "PIM FILL GRF,0 BANK,0,999999,0\n"
            ).to_requests(config)
        with pytest.raises(ValueError, match="beyond"):
            parse_pim_program("W 0xffffffffff\n").to_requests(config)


class TestLowering:
    def test_request_mix_and_ops(self):
        config = MemSysConfig()
        program = parse_pim_program(EXAMPLE)
        requests = parse_pim_program(EXAMPLE).to_requests(config)
        # JUMP and EXIT cost no column access
        assert len(requests) == len(program) - 2
        ops = [r.op for r in requests]
        assert ops.count(Op.PIM) == 4  # MAC, ADD, MUL, NOP
        assert ops.count(Op.AB) == 1
        assert ops.count(Op.WRITE) == 5
        assert ops.count(Op.READ) == 3

    def test_stream_replays_through_memory_system(self):
        config = MemSysConfig()
        requests = parse_pim_program(EXAMPLE).to_requests(config)
        stats = MemorySystem(config).replay(requests)
        assert stats.n_requests == len(requests)
        assert stats.makespan_ns > 0


class TestExecution:
    def test_grf_state_matches_numpy_reference_bit_exactly(self):
        machine = PimExecMachine(MemSysConfig())
        lanes = machine.lanes
        rng = np.random.default_rng(8)
        pages = rng.standard_normal((3, lanes))
        scalar = 1.5
        for bank in range(machine.banks_per_channel):
            unit = machine.unit(0, bank)
            unit.srf[0] = scalar
            for col in range(3):
                unit.store_page(3, col, pages[col])
        machine.reset_requests()
        cfr = parse_pim_program(EXAMPLE).execute(machine)
        assert cfr == {0: 1}
        result = machine.replay()
        assert result.n_pim == 4
        # reference, in executed order:
        grf_b0 = pages[0] * np.full(lanes, scalar)       # MAC into 0
        grf_b0 = pages[1] + grf_b0                       # ADD
        grf_b1 = pages[2] * grf_b0                       # MUL
        for bank in range(machine.banks_per_channel):
            unit = machine.unit(0, bank)
            assert np.array_equal(unit.grf_b[0], grf_b0)
            assert np.array_equal(unit.grf_b[1], grf_b1)


class TestTimestamps:
    """The trailing ``@<ns>`` issue-timestamp column."""

    PROGRAM = (
        "W GPR 0 @0\n"
        "AB W @8\n"
        "W CFR 0 1 @16\n"
        "PIM MAC GRF,8 BANK,0,3,1 SRF,0 @24\n"
        "PIM EXIT\n"          # control marker: no request, no stamp
        "R MEM 0 2 8 @40\n"
    )

    def test_records_carry_timestamps(self):
        program = parse_pim_program(self.PROGRAM)
        assert program.timestamped
        stamps = [
            r.timestamp for r in program.records if r.kind != "pim"
        ]
        assert stamps == [0.0, 8.0, 16.0, 40.0]

    def test_lowered_requests_carry_timestamps(self):
        program = parse_pim_program(self.PROGRAM)
        requests = program.to_requests()
        assert [r.timestamp for r in requests] == [
            0.0, 8.0, 16.0, 24.0, 40.0,
        ]

    def test_execute_stamps_machine_requests(self):
        from repro.pimexec import PimExecMachine

        program = parse_pim_program(self.PROGRAM)
        machine = PimExecMachine()
        program.execute(machine)
        assert [r.timestamp for r in machine.requests] == [
            0.0, 8.0, 16.0, 24.0, 40.0,
        ]
        result = machine.replay()
        assert result.n_requests == 5
        assert result.makespan_ns >= 40.0

    def test_mixed_timestamps_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2.*timestamp"):
            parse_pim_program("W GPR 0 @0\nAB W\n")

    def test_control_markers_may_omit_timestamps(self):
        program = parse_pim_program(
            "W GPR 0 @0\nAB W @4\nPIM NOP @8\nPIM EXIT\n"
        )
        assert program.timestamped

    def test_bad_timestamp_rejected(self):
        with pytest.raises(ValueError, match="bad timestamp"):
            parse_pim_program("W GPR 0 @zzz\n")

    def test_decreasing_timestamp_rejected(self):
        with pytest.raises(ValueError, match="line 2.*decreases"):
            parse_pim_program("W GPR 0 @9\nR GPR 0 @3\n")

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError, match="non-negative finite"):
            parse_pim_program("W GPR 0 @-4\n")

    def test_infinite_timestamp_rejected(self):
        with pytest.raises(ValueError, match="non-negative finite"):
            parse_pim_program("W GPR 0 @inf\n")

    def test_stamp_on_control_marker_alone_is_not_timestamped(self):
        """Control markers lower to no request: a stamp on one alone
        leaves the request stream line-rate, and interarrival_ns still
        applies."""
        program = parse_pim_program("W GPR 0\nPIM EXIT @5\n")
        assert not program.timestamped
        requests = program.to_requests(interarrival_ns=4.0)
        assert [r.timestamp for r in requests] == [0.0]

    def test_interarrival_stamps_untimestamped_programs(self):
        program = parse_pim_program("W GPR 0\nAB W\nPIM NOP\nPIM EXIT\n")
        requests = program.to_requests(interarrival_ns=5.0, start_ns=2.0)
        assert [r.timestamp for r in requests] == [2.0, 7.0, 12.0]

    def test_interarrival_conflicts_with_record_stamps(self):
        program = parse_pim_program("W GPR 0 @0\nAB W @4\n")
        with pytest.raises(ValueError, match="interarrival_ns"):
            program.to_requests(interarrival_ns=5.0)

    def test_negative_interarrival_rejected(self):
        program = parse_pim_program("W GPR 0\n")
        with pytest.raises(ValueError, match="interarrival_ns"):
            program.to_requests(interarrival_ns=-1.0)
