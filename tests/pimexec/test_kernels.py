"""Tests for the built-in kernels: bit-exactness and host-vs-PIM timing."""

import numpy as np
import pytest

from repro.memsys import MemSysConfig
from repro.pimexec import (
    KERNEL_NAMES,
    PimExecMachine,
    axpy_kernel,
    build_kernel,
    compare_host_pim,
    gemv_kernel,
    vector_sum_kernel,
)


class TestVectorSum:
    def test_bank_state_bit_exact_and_sum_correct(self):
        kernel = vector_sum_kernel(n=512, seed=3)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        kernel.execute(machine)
        assert kernel.check(machine)
        x = np.random.default_rng(3).standard_normal(512)
        assert kernel.result(machine) == pytest.approx(float(x.sum()))

    def test_explicit_values_accepted(self):
        values = np.arange(100, dtype=float)
        kernel = vector_sum_kernel(values=values)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        kernel.execute(machine)
        assert kernel.check(machine)
        assert kernel.result(machine) == float(values.sum())

    def test_non_granule_sizes_are_padded(self):
        kernel = vector_sum_kernel(n=131, seed=1)  # not a page multiple
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        kernel.execute(machine)
        assert kernel.check(machine)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="n must be"):
            vector_sum_kernel(n=0)


class TestAxpy:
    def test_writeback_pages_bit_exact(self):
        kernel = axpy_kernel(n=512, a=2.5, seed=7)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        kernel.execute(machine)
        assert kernel.check(machine)


class TestGemv:
    def test_grf_accumulators_bit_exact(self):
        kernel = gemv_kernel(n_cols=24, seed=5)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        kernel.execute(machine)
        assert kernel.check(machine)

    def test_matches_numpy_matvec(self):
        kernel = gemv_kernel(n_cols=16, seed=2)
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        kernel.execute(machine)
        rng = np.random.default_rng(2)
        lanes, units = machine.lanes, machine.total_units
        m = lanes * units
        matrix = rng.standard_normal((m, 16))
        x = rng.standard_normal(16)
        y = np.concatenate(
            [
                machine.unit(u // 4, u % 4).grf_b[0]
                for u in range(units)
            ]
        )
        assert np.allclose(y, matrix.reshape(units, lanes, 16).reshape(m, 16) @ x)


class TestComparison:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_every_kernel_correct_with_pim_winning_mostly(self, name):
        kwargs = {"n_cols": 16} if name == "gemv" else {"n": 1024}
        comparison = compare_host_pim(build_kernel(name, **kwargs))
        assert comparison.correct
        assert comparison.pim.makespan_ns > 0
        assert comparison.host.makespan_ns > 0
        row = comparison.row()
        assert row["kernel"] == name
        assert row["speedup"] == comparison.speedup

    def test_vector_sum_pim_beats_host(self):
        comparison = compare_host_pim(build_kernel("vector-sum", n=4096))
        # all-bank requests move banks_per_channel pages per command
        assert comparison.speedup > 1.5

    def test_unknown_kernel_name(self):
        with pytest.raises(KeyError, match="vector-sum"):
            build_kernel("fft")

    def test_custom_geometry(self):
        config = MemSysConfig(n_channels=1, bankgroups=1, banks_per_group=2)
        comparison = compare_host_pim(
            build_kernel("vector-sum", config=config, n=256)
        )
        assert comparison.correct

    def test_capacity_guard(self):
        tiny = MemSysConfig(rows_per_bank=2)
        with pytest.raises(ValueError, match="slots"):
            vector_sum_kernel(n=1 << 16, config=tiny)

    def test_gemv_capacity_guard_covers_the_host_twin(self):
        # the host-only twin stages x and y beyond the matrix slots;
        # a matrix that exactly fills the banks must fail up front,
        # not crash deep inside the host-trace encoder
        tiny = MemSysConfig(rows_per_bank=4)  # 32 slots per bank
        with pytest.raises(ValueError, match="slots"):
            gemv_kernel(n_cols=32, config=tiny)
        comparison = compare_host_pim(gemv_kernel(n_cols=28, config=tiny))
        assert comparison.correct
