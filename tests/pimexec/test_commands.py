"""Tests for the PIM command vocabulary and its trace syntax."""

import pytest

from repro.pimexec import (
    Operand,
    PimCommand,
    PimExecError,
    PimOpcode,
    parse_command,
)


class TestOperandParsing:
    def test_grf_alias_splits_at_eight(self):
        # the HBM-PIM encoding: GRF_A is 0-7, GRF_B is 8-15
        a = Operand.parse("GRF,3")
        b = Operand.parse("GRF,11")
        assert (a.space, a.index) == ("grf_a", 3)
        assert (b.space, b.index) == ("grf_b", 3)

    def test_explicit_spaces(self):
        assert Operand.parse("GRF_A,7").space == "grf_a"
        assert Operand.parse("GRF_B,0").space == "grf_b"
        assert Operand.parse("SRF,5").index == 5

    def test_bank_forms(self):
        plain = Operand.parse("BANK")
        assert plain.is_bank and plain.is_implicit_bank
        unit = Operand.parse("BANK,1")
        assert unit.unit == 1 and unit.is_implicit_bank
        rowcol = Operand.parse("BANK,12,3")
        assert (rowcol.row, rowcol.col) == (12, 3)
        assert not rowcol.is_implicit_bank
        full = Operand.parse("BANK,0,12,3")
        assert (full.unit, full.row, full.col) == (0, 12, 3)

    def test_rejects_bad_operands(self):
        with pytest.raises(PimExecError, match="unknown operand space"):
            Operand.parse("CRF,0")
        with pytest.raises(PimExecError, match="non-integer"):
            Operand.parse("GRF,x")
        with pytest.raises(PimExecError, match="out of range"):
            Operand.parse("GRF,16")
        with pytest.raises(PimExecError, match="out of range"):
            Operand.parse("SRF,9")
        with pytest.raises(PimExecError, match="too many fields"):
            Operand.parse("BANK,1,2,3,4")

    def test_register_operands_refuse_coordinates(self):
        with pytest.raises(PimExecError, match="only valid on BANK"):
            Operand("srf", 0, row=1, col=1)
        with pytest.raises(PimExecError, match="both row and col"):
            Operand("bank", 0, row=1)

    def test_round_trip_text(self):
        for text in ("BANK,0,12,3", "GRF_B,2", "SRF,0"):
            assert str(Operand.parse(text)) == text


class TestCommandValidation:
    def test_arity_enforced(self):
        with pytest.raises(PimExecError, match="destination"):
            PimCommand(PimOpcode.ADD)
        with pytest.raises(PimExecError, match="source"):
            PimCommand(
                PimOpcode.MOV,
                dst=Operand.grf_a(0),
                src0=Operand.bank(),
                src1=Operand.bank(),
            )
        with pytest.raises(PimExecError, match="no destination"):
            PimCommand(PimOpcode.NOP, dst=Operand.grf_a(0))

    def test_srf_cannot_be_destination(self):
        with pytest.raises(PimExecError, match="SRF is host-written"):
            PimCommand(
                PimOpcode.ADD,
                dst=Operand.srf(0),
                src0=Operand.bank(),
                src1=Operand.srf(1),
            )

    def test_only_mad_takes_third_source(self):
        with pytest.raises(PimExecError, match="only MAD"):
            PimCommand(
                PimOpcode.ADD,
                dst=Operand.grf_a(0),
                src0=Operand.bank(),
                src1=Operand.srf(0),
                src2=Operand.srf(1),
            )

    def test_jump_fields_validated(self):
        with pytest.raises(PimExecError, match="target"):
            PimCommand(PimOpcode.JUMP, target=-1)
        with pytest.raises(PimExecError, match="no jump"):
            PimCommand(
                PimOpcode.MOV,
                dst=Operand.grf_a(0),
                src0=Operand.bank(),
                count=3,
            )


class TestCommandParsing:
    def test_trace_style_mac(self):
        command = parse_command("PIM MAC GRF,8 BANK,0 SRF,0".replace("PIM ", ""))
        assert command.opcode is PimOpcode.MAC
        assert command.dst.space == "grf_b"
        assert command.src0.is_bank
        assert command.src1.space == "srf"

    def test_uses_implicit_bank(self):
        implicit = parse_command("ADD GRF,0 BANK GRF,0")
        explicit = parse_command("ADD GRF,0 BANK,0,3,1 GRF,0")
        assert implicit.uses_implicit_bank
        assert not explicit.uses_implicit_bank
        assert explicit.explicit_bank.row == 3

    def test_jump_and_controls(self):
        jump = parse_command("JUMP 0 7")
        assert (jump.target, jump.count) == (0, 7)
        assert parse_command("JUMP").count == 0
        assert parse_command("EXIT").is_control
        assert not parse_command("NOP").is_control

    def test_errors(self):
        with pytest.raises(PimExecError, match="unknown PIM opcode"):
            parse_command("FMA GRF,0 BANK SRF,0")
        with pytest.raises(PimExecError, match="takes 3 operand"):
            parse_command("MAC GRF,0 BANK")
        with pytest.raises(PimExecError, match="takes no operands"):
            parse_command("EXIT GRF,0")
        with pytest.raises(PimExecError, match="JUMP"):
            parse_command("JUMP 3")
        with pytest.raises(PimExecError, match="empty"):
            parse_command("   ")
