"""Bank-group (half-bank) execution mode and dtype plumbing."""

import numpy as np
import pytest

from repro.memsys import MemSysConfig, Op
from repro.pimexec import (
    DTYPES,
    Operand,
    PimCommand,
    PimExecError,
    PimExecMachine,
    PimOpcode,
)
from repro.pimexec.regfile import BankExecUnit


class TestOperandUnitSelector:
    def test_even_odd_selectors_parse(self):
        assert Operand.parse("BANK,0").unit == 0
        assert Operand.parse("BANK,1").unit == 1
        assert Operand.parse("BANK,1,3,2").unit == 1

    def test_selector_out_of_range_rejected(self):
        with pytest.raises(PimExecError, match="even.*odd|0.*1"):
            Operand.parse("BANK,2")

    def test_selector_only_on_bank_operands(self):
        with pytest.raises(PimExecError, match="BANK"):
            Operand("grf_a", 0, unit=1)


class TestUnitPorts:
    def test_ports_partition_the_data_array(self):
        unit = BankExecUnit(4, ports=2)
        unit.store_page(0, 0, [1.0] * 4, port=0)
        unit.store_page(0, 0, [2.0] * 4, port=1)
        assert np.all(unit.load_page(0, 0, 0) == 1.0)
        assert np.all(unit.load_page(0, 0, 1) == 2.0)

    def test_port_out_of_range(self):
        unit = BankExecUnit(4)
        with pytest.raises(PimExecError, match="port"):
            unit.load_page(0, 0, port=1)

    def test_operand_unit_selects_the_port(self):
        unit = BankExecUnit(4, ports=2)
        unit.store_page(0, 0, [3.0] * 4, port=0)
        unit.store_page(0, 0, [5.0] * 4, port=1)
        unit.execute(
            PimCommand(
                PimOpcode.ADD,
                dst=Operand.grf_b(0),
                src0=Operand.bank(unit=0),
                src1=Operand.bank(unit=1),
            ),
            0,
            0,
        )
        assert np.all(unit.grf_b[0] == 8.0)

    def test_single_port_units_ignore_the_selector(self):
        """Per-bank machines keep the PR-3 behavior: recorded, ignored."""
        unit = BankExecUnit(4)
        unit.store_page(0, 0, [7.0] * 4)
        page = unit.read_operand(Operand.bank(unit=1), 0, 0)
        assert np.all(page == 7.0)


class TestMachineMode:
    def test_group_mode_halves_the_units(self):
        config = MemSysConfig()
        per_bank = PimExecMachine(config)
        grouped = PimExecMachine(config, bank_groups=True)
        assert grouped.units_per_channel == per_bank.units_per_channel // 2
        assert grouped.total_units == per_bank.total_units // 2
        assert grouped.ports == 2

    def test_group_mode_requires_even_banks(self):
        config = MemSysConfig(bankgroups=1, banks_per_group=1)
        with pytest.raises(PimExecError, match="even"):
            PimExecMachine(config, bank_groups=True)

    def test_write_bank_routes_even_odd_to_ports(self):
        machine = PimExecMachine(bank_groups=True)
        machine.write_bank(0, 0, 0, 0, [1.0] * machine.lanes)  # even
        machine.write_bank(0, 1, 0, 0, [2.0] * machine.lanes)  # odd
        unit = machine.unit(0, 0)
        assert np.all(unit.load_page(0, 0, 0) == 1.0)
        assert np.all(unit.load_page(0, 0, 1) == 2.0)
        assert np.all(machine.read_bank(0, 1, 0, 0) == 2.0)

    def test_step_emits_one_all_bank_request_in_both_modes(self):
        for bank_groups in (False, True):
            machine = PimExecMachine(bank_groups=bank_groups)
            machine.pim_step(
                0,
                PimCommand(
                    PimOpcode.FILL,
                    dst=Operand.grf_a(0),
                    src0=Operand.bank(),
                ),
                0,
                0,
            )
            assert [r.op for r in machine.requests] == [Op.PIM]

    def test_even_odd_dataflow_through_a_shared_unit(self):
        """x in even banks, y in odd banks: one ADD combines them
        without any host transfer — the bank-group dataflow win."""
        machine = PimExecMachine(bank_groups=True)
        lanes = machine.lanes
        for k in range(machine.units_per_channel):
            machine.write_bank(0, 2 * k, 0, 0, [4.0] * lanes)
            machine.write_bank(0, 2 * k + 1, 0, 0, [6.0] * lanes)
        machine.pim_step(
            0,
            PimCommand(
                PimOpcode.ADD,
                dst=Operand.grf_b(0),
                src0=Operand.bank(unit=0),
                src1=Operand.bank(unit=1),
            ),
            0,
            0,
        )
        for k in range(machine.units_per_channel):
            assert np.all(machine.unit(0, k).grf_b[0] == 10.0)


class TestDtype:
    def test_dtypes_registry(self):
        assert DTYPES["fp16"] == np.dtype(np.float16)
        assert DTYPES["fp64"] == np.dtype(np.float64)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(PimExecError, match="dtype"):
            PimExecMachine(dtype="fp32")
        with pytest.raises(PimExecError, match="dtype"):
            BankExecUnit(4, dtype="int8")

    def test_fp16_machine_rounds_everywhere(self):
        machine = PimExecMachine(dtype="fp16")
        value = 1.0 + 2.0 ** -13  # rounds to 1.0 in binary16
        machine.write_bank(0, 0, 0, 0, [value] * machine.lanes)
        assert np.all(machine.read_bank(0, 0, 0, 0) == np.float16(1.0))
        machine.broadcast_scalar(0, 0, value)
        assert machine.unit(0, 0).srf[0] == np.float16(1.0)
        machine.broadcast_page(0, "grf_a", 0, [value] * machine.lanes)
        assert np.all(machine.unit(0, 0).grf_a[0] == np.float16(1.0))

    def test_fp64_default_keeps_the_idealized_model(self):
        machine = PimExecMachine()
        assert machine.dtype == "fp64"
        assert machine.unit(0, 0).grf_a.dtype == np.float64

    def test_srf_broadcast_reads_in_dtype(self):
        unit = BankExecUnit(4, dtype="fp16")
        unit.srf[0] = 0.1  # rounds to binary16 0.1
        page = unit.read_operand(Operand.srf(0), 0, 0)
        assert page.dtype == np.float16
        assert np.all(page == np.float16(0.1))
