"""Cross-tier equivalence suite pinning the vectorized PIM tiers.

Two independent optimization tiers ride under every PIM kernel run:

* the **execution-unit tier** — ``unit_mode="vectorized"`` executes
  each dynamic CRF instruction across every bank of the machine in one
  array op instead of looping :class:`BankExecUnit` objects;
* the **replay-timing tier** — the memory system's AB-lockstep
  fastpath certificate admits pure all-bank streams to the closed-form
  ``fast-vectorized`` engine, falling back to the exact tier
  otherwise.

Both are pure optimizations: this suite replays every built-in kernel
and every ``repro.nn`` kernel through scalar *and* vectorized units,
and through exact *and* fastpath timing, across dtype x bank-group x
refresh configurations, and pins the request streams, bank-page
contents (NaN and last-ULP included, via raw-byte comparison),
per-request latency arrays, and replay statistics identical.
"""

import dataclasses

import numpy as np
import pytest

from repro.memsys import MemSysConfig
from repro.nn import NN_KERNEL_NAMES, build_nn_kernel
from repro.pimexec import KERNEL_NAMES, PimExecMachine, build_kernel
from repro.telemetry import ReplayTelemetry

from tests.memsys.test_fastpath import assert_stats_equivalent

DTYPES = ("fp64", "fp16")

#: Refresh knobs for the replay-timing dimension (HBM2-flavored
#: numbers; ``off`` disables refresh modeling entirely).
REFRESH = {
    "off": {},
    "per-rank": dict(
        trefi_ns=3900.0, trfc_ns=350.0, refresh_granularity="per-rank"
    ),
    "per-bank": dict(
        trefi_ns=3900.0, trfc_ns=350.0, refresh_granularity="per-bank"
    ),
}


def builtin_kwargs(name):
    """Small-but-nontrivial shapes so the suite stays fast."""
    return {"n_cols": 16} if name == "gemv" else {"n": 512}


def run_builtin(name, unit_mode, dtype="fp64", config=None):
    """Build + setup + execute one built-in kernel on one unit tier."""
    kernel = build_kernel(name, config=config, **builtin_kwargs(name))
    machine = PimExecMachine(
        kernel.config, dtype=dtype, unit_mode=unit_mode
    )
    kernel.setup(machine)
    kernel.execute(machine)
    return kernel, machine


def assert_unit_state_identical(a, b):
    """Register files, counters, and bank pages bit-for-bit equal.

    Raw-byte comparison: NaN payloads and last-ULP differences both
    count, which plain ``==`` would miss (``NaN != NaN``).
    """
    for (ch, i, ua), (ch2, i2, ub) in zip(
        a.iter_units(), b.iter_units()
    ):
        assert (ch, i) == (ch2, i2)
        where = f"ch{ch}.u{i}"
        assert ua.grf_a.tobytes() == ub.grf_a.tobytes(), where
        assert ua.grf_b.tobytes() == ub.grf_b.tobytes(), where
        assert ua.srf.tobytes() == ub.srf.tobytes(), where
        assert ua.commands_executed == ub.commands_executed, where
        for key in sorted(set(ua.memory) | set(ub.memory)):
            port, row, col = key
            page_a = ua.load_page(row, col, port)
            page_b = ub.load_page(row, col, port)
            assert page_a.tobytes() == page_b.tobytes(), (where, key)


def assert_streams_identical(a, b):
    """The emitted request streams agree op-for-op, address-for-address."""
    assert a.n_requests == b.n_requests
    assert [
        (r.op, r.addr, r.timestamp) for r in a.requests
    ] == [(r.op, r.addr, r.timestamp) for r in b.requests]


class TestUnitTierEquivalence:
    """scalar vs vectorized units: same requests, same bank state."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_builtin_kernels(self, name, dtype):
        kernel, scalar = run_builtin(name, "scalar", dtype=dtype)
        _, vectorized = run_builtin(name, "vectorized", dtype=dtype)
        assert scalar.unit_mode == "scalar"
        assert vectorized.unit_mode == "vectorized"
        assert_unit_state_identical(scalar, vectorized)
        assert_streams_identical(scalar, vectorized)
        assert (
            scalar.sequencer_stats() == vectorized.sequencer_stats()
        )
        if dtype == "fp64":  # the references are fp64-exact
            assert kernel.check(scalar)
            assert kernel.check(vectorized)

    @pytest.mark.parametrize("bank_groups", (False, True))
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("name", NN_KERNEL_NAMES)
    def test_nn_kernels(self, name, dtype, bank_groups):
        kernel = build_nn_kernel(
            name, dtype=dtype, bank_groups=bank_groups, seed=3
        )
        scalar = kernel.machine(unit_mode="scalar")
        vectorized = kernel.machine()
        for machine in (scalar, vectorized):
            kernel.setup(machine)
            kernel.execute(machine)
            assert kernel.check(machine), machine.unit_mode
        assert_unit_state_identical(scalar, vectorized)
        assert_streams_identical(scalar, vectorized)
        out_s = kernel.output(scalar)
        out_v = kernel.output(vectorized)
        assert out_s.tobytes() == out_v.tobytes()
        assert out_v.tobytes() == np.asarray(
            kernel.expected, dtype=out_v.dtype
        ).tobytes()

    def test_fp16_special_values_cross_tier(self):
        """Inf/NaN-producing fp16 streams stay bit-identical."""
        machines = []
        for unit_mode in ("scalar", "vectorized"):
            machine = PimExecMachine(dtype="fp16", unit_mode=unit_mode)
            big = np.full(machine.lanes, 60000.0)
            for unit_index in range(machine.units_per_channel):
                flat = unit_index * machine.ports
                machine.write_bank(0, flat, 0, 0, big)
            machine.broadcast_scalar(0, 0, 65504.0)
            from repro.pimexec import parse_command

            mac = parse_command("MAC GRF,8 BANK,0,0,0 SRF,0")
            add = parse_command("ADD GRF,0 BANK,0,0,0 BANK,0,0,0")
            machine.pim_step(0, mac, 0, 0)  # overflows to inf
            machine.pim_step(0, add, 0, 0)
            machine.pim_step(0, mac, 0, 0)  # inf + finite, inf * big
            machines.append(machine)
        assert_unit_state_identical(machines[0], machines[1])
        assert_streams_identical(machines[0], machines[1])

    def test_unknown_unit_mode_rejected(self):
        from repro.pimexec import PimExecError

        with pytest.raises(PimExecError, match="unit_mode"):
            PimExecMachine(unit_mode="simd")


class TestReplayTierEquivalence:
    """exact vs AB-fastpath timing over the same kernel streams."""

    @pytest.mark.parametrize("refresh", sorted(REFRESH))
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_fast_matches_event_under_refresh(self, name, refresh):
        config = MemSysConfig(n_channels=2, **REFRESH[refresh])
        kernel, machine = run_builtin(name, "vectorized", config=config)
        fast = machine.replay(engine="fast")
        event = machine.replay(engine="event")
        assert fast.engine.startswith("fast")
        assert event.engine == "event"
        assert_stats_equivalent(event.stats, fast.stats)
        assert (fast.n_pim, fast.n_broadcast, fast.n_host) == (
            event.n_pim,
            event.n_broadcast,
            event.n_host,
        )

    def test_vector_sum_stream_admits_the_fastpath(self):
        """With data staging untimed (the benchmark's shape), the pure
        AB+PIM vector-sum stream takes the closed-form tier."""
        kernel = build_kernel(
            "vector-sum",
            config=MemSysConfig(n_channels=2),
            **builtin_kwargs("vector-sum"),
        )
        machine = PimExecMachine(kernel.config)
        kernel.setup(machine)
        machine.reset_requests()  # drop the host staging writes
        kernel.execute(machine)
        result = machine.replay(engine="fast")
        assert result.engine == "fast-vectorized"

    @pytest.mark.parametrize("name", ("gemm", "attention"))
    def test_nn_streams_fall_back_to_exact_tier(self, name):
        """nn kernels interleave host passes with the PIM stream, so
        the AB certificate must decline them — bit-identically."""
        kernel = build_nn_kernel(name, dtype="fp16", seed=1)
        machine = kernel.machine()
        kernel.setup(machine)
        kernel.execute(machine)
        fast = machine.replay(engine="fast")
        event = machine.replay(engine="event")
        assert fast.engine == "fast-exact"
        assert_stats_equivalent(event.stats, fast.stats, rel=None)

    @pytest.mark.parametrize("refresh", sorted(REFRESH))
    def test_per_request_latency_arrays_identical(self, refresh):
        """The latency recorder captures the same per-request arrays
        (repr-identical, byte-identical) from both engines."""
        config = MemSysConfig(n_channels=2, **REFRESH[refresh])
        _, machine = run_builtin(
            "vector-sum", "vectorized", config=config
        )
        arrays = {}
        for engine in ("fast", "event"):
            telemetry = ReplayTelemetry()
            machine.replay(engine=engine, telemetry=telemetry)
            recorder = telemetry.recorder
            arrays[engine] = (
                recorder.queue_wait.copy(),
                recorder.service_time.copy(),
                recorder.total_latency.copy(),
            )
        for fast_arr, event_arr in zip(arrays["fast"], arrays["event"]):
            assert fast_arr.tobytes() == event_arr.tobytes()
            assert repr(fast_arr) == repr(event_arr)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_full_matrix_smoke(self, dtype):
        """One diagonal across all three dimensions at once: unit tier
        x replay engine x refresh, on the same kernel."""
        config = MemSysConfig(n_channels=2, **REFRESH["per-rank"])
        results = {}
        state = {}
        for unit_mode in ("scalar", "vectorized"):
            kernel = build_kernel(
                "vector-sum", config=config, **builtin_kwargs("vector-sum")
            )
            machine = PimExecMachine(
                kernel.config, dtype=dtype, unit_mode=unit_mode
            )
            kernel.setup(machine)
            kernel.execute(machine)
            state[unit_mode] = machine
            for engine in ("fast", "event"):
                results[(unit_mode, engine)] = machine.replay(
                    engine=engine
                )
        assert_unit_state_identical(
            state["scalar"], state["vectorized"]
        )
        # same stream + same engine => bit-identical stats dicts
        for engine in ("fast", "event"):
            assert repr(
                dataclasses.asdict(results[("scalar", engine)].stats)
            ) == repr(
                dataclasses.asdict(results[("vectorized", engine)].stats)
            )
        # across engines the usual fast to event equivalence holds
        assert_stats_equivalent(
            results[("vectorized", "event")].stats,
            results[("vectorized", "fast")].stats,
        )
