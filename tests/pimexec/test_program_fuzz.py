"""Fuzz-style malformed-input suite for the program-trace parser.

Mirror of ``tests/memsys/test_trace_fuzz.py`` for the HBM-PIMulator
dialect: any input — truncated, garbled, dialect-mixed, or randomly
mutated — either parses or raises
:class:`~repro.errors.ProgramFormatError` (a ``ValueError``) with the
1-based line number, never an accidental ``IndexError`` /
``UnboundLocalError`` / ``KeyError`` from the parser's internals.
"""

import random

import pytest

from repro.errors import ProgramFormatError
from repro.pimexec import parse_pim_program

#: A small valid program trace to mutate (one of each record form).
VALID = (
    "W MEM 0 2 8\n"
    "W GPR 0\n"
    "W CFR 0 1\n"
    "AB W\n"
    "PIM MAC GRF,8 BANK,0,3,0 SRF,0\n"
    "PIM EXIT\n"
    "R MEM 0 2 8\n"
    "SB R 0x40\n"
)


def _attempt(text):
    """Parse; malformed input must surface as ProgramFormatError only."""
    try:
        parse_pim_program(text)
    except ProgramFormatError as error:
        assert isinstance(error, ValueError)
        assert "line" in str(error)
        return error
    return None


class TestMalformedLines:
    @pytest.mark.parametrize(
        "line",
        [
            "AB",  # AB without W
            "AB R",  # AB with wrong direction
            "W MEM 0 2",  # MEM with wrong arity
            "W MEM 0 2 banana",  # non-numeric field
            "W MEM 0 2 -8",  # negative field
            "W GPR banana",  # bad GPR id
            "SB X 0x40",  # bad SB direction
            "SB R",  # SB missing address
            "PIM FROB GRF,8",  # unknown PIM opcode
            "PIM MAC GRF,8",  # wrong PIM arity
            "PIM MAC GRF,banana BANK,0,3,0 SRF,0",  # bad operand index
            "GLORP 1 2 3",  # unknown record head
            "W MEM 0 2 8 @banana",  # bad timestamp
            "W MEM 0 2 8 @-1.0",  # negative timestamp
            "W MEM 0 2 8 @nan",  # non-finite timestamp
        ],
    )
    def test_bad_line_is_a_typed_error(self, line):
        error = _attempt(line + "\n")
        assert error is not None
        assert "line 1" in str(error)

    def test_decreasing_timestamps_rejected(self):
        error = _attempt("W GPR 0 @10.0\nW GPR 1 @5.0\n")
        assert error is not None
        assert "line 2" in str(error)

    def test_wrong_dialect_memory_trace(self):
        # a plain memory trace fed to the program parser: its R/W
        # lines collide with the MEM/GPR/CFR/SB record forms and must
        # produce a typed error, not a crash
        memory = "R 0x00000100 10.0\nW 0x00000140 20.0\n"
        _attempt(memory)


class TestTruncation:
    def test_every_prefix_parses_or_raises_typed(self):
        for cut in range(len(VALID)):
            _attempt(VALID[:cut])

    def test_truncated_pim_command_variants(self):
        line = "PIM MAC GRF,8 BANK,0,3,0 SRF,0"
        for cut in range(1, len(line)):
            _attempt(line[:cut] + "\n")


class TestRandomMutation:
    @pytest.mark.parametrize("seed", range(20))
    def test_byte_mutations_never_crash(self, seed):
        rng = random.Random(seed)
        text = list(VALID)
        for _ in range(rng.randrange(1, 6)):
            pos = rng.randrange(len(text))
            text[pos] = chr(rng.randrange(32, 127))
        _attempt("".join(text))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_token_soup_never_crashes(self, seed):
        rng = random.Random(2000 + seed)
        tokens = [
            "W", "R", "MEM", "GPR", "CFR", "AB", "SB", "PIM",
            "MAC", "GRF,8", "BANK,0,3,0", "SRF,0", "0", "1", "-2",
            '"0x1"', "@1.0", "@banana", "0x40", "banana",
        ]
        lines = []
        for _ in range(rng.randrange(1, 12)):
            lines.append(
                " ".join(
                    rng.choice(tokens)
                    for _ in range(rng.randrange(0, 6))
                )
            )
        _attempt("\n".join(lines) + "\n")

    @pytest.mark.parametrize("seed", range(10))
    def test_line_shuffles_of_valid_program(self, seed):
        rng = random.Random(seed)
        lines = VALID.strip().split("\n")
        rng.shuffle(lines)
        _attempt("\n".join(lines) + "\n")


class TestCleanInputStaysClean:
    def test_comments_and_blanks_anywhere(self):
        noisy = "# header\n\n" + VALID.replace(
            "\n", "  # tail\n\n"
        )
        program = parse_pim_program(noisy)
        assert len(program) == 8


# ----------------------------------------------------------------------
# instruction-level fuzz: scalar vs vectorized execution units
# ----------------------------------------------------------------------
class TestInstructionLevelFuzz:
    """Seeded random CRF programs run on both execution-unit tiers.

    Every generated program either executes bit-identically in the
    scalar :class:`~repro.pimexec.BankExecUnit` grid and the
    vectorized :class:`~repro.pimexec.VectorUnitArray` — register
    files, bank pages, and emitted request streams compared raw-byte —
    or raises the *same* typed error (:class:`PimExecError` /
    :class:`~repro.errors.ProgramFormatError`) from both machines:
    never silent divergence, never a tier-specific crash.
    """

    ARITH = ("ADD", "MUL", "MAC", "MAD", "MOV", "FILL")

    @staticmethod
    def _random_operand(rng, dst=False):
        spaces = ("GRF", "BANK") if dst else ("GRF", "SRF", "BANK")
        space = rng.choice(spaces)
        if space == "GRF":
            return f"GRF,{rng.randrange(16)}"
        if space == "SRF":
            return f"SRF,{rng.randrange(8)}"
        if rng.random() < 0.5:
            return "BANK"  # implicit: the column walk addresses it
        return f"BANK,{rng.randrange(4)},{rng.randrange(8)}"

    def _random_program(self, rng):
        lines = []
        for _ in range(rng.randrange(1, 5)):
            opcode = rng.choice(self.ARITH)
            arity = 2 if opcode in ("MOV", "FILL") else 3
            operands = [self._random_operand(rng, dst=True)] + [
                self._random_operand(rng) for _ in range(arity - 1)
            ]
            lines.append(f"{opcode} " + " ".join(operands))
        if rng.random() < 0.3 and len(lines) > 1:
            lines.append(f"JUMP 0 {rng.randrange(2, 4)}")
        lines.append("EXIT")
        return lines

    @staticmethod
    def _stage(rng, machine):
        """Random bank pages, SRF scalars, and GRF broadcasts."""
        import numpy as np

        for channel in range(machine.n_channels):
            for unit_index in range(machine.units_per_channel):
                flat = unit_index * machine.ports
                for _ in range(rng.randrange(1, 4)):
                    row, col = rng.randrange(4), rng.randrange(8)
                    page = np.array(
                        [
                            rng.uniform(-70000.0, 70000.0)
                            for _ in range(machine.lanes)
                        ]
                    )
                    machine.write_bank(channel, flat, row, col, page)
            machine.broadcast_scalar(
                channel, rng.randrange(8), rng.uniform(-10.0, 10.0)
            )
            machine.broadcast_page(
                channel,
                rng.choice(("grf_a", "grf_b")),
                rng.randrange(8),
                np.array(
                    [
                        rng.uniform(-5.0, 5.0)
                        for _ in range(machine.lanes)
                    ]
                ),
            )

    def _run(self, seed, dtype, unit_mode, channels=None):
        """One fuzz run; returns the machine or the typed error."""
        import random as _random

        from repro.errors import ProgramFormatError
        from repro.pimexec import (
            PimExecError,
            PimExecMachine,
            parse_command,
        )

        rng = _random.Random(seed)
        machine = PimExecMachine(dtype=dtype, unit_mode=unit_mode)
        try:
            self._stage(rng, machine)
            program = [
                parse_command(line)
                for line in self._random_program(rng)
            ]
            walk = [
                (rng.randrange(4), rng.randrange(8))
                for _ in range(rng.randrange(4, 12))
            ]
            machine.load_kernel(program)
            machine.run_kernel(walk, channels=channels)
        except (PimExecError, ProgramFormatError) as error:
            return (type(error), str(error))
        return machine

    @staticmethod
    def _assert_same_outcome(scalar, vectorized):
        from tests.pimexec.test_tier_equivalence import (
            assert_streams_identical,
            assert_unit_state_identical,
        )

        if isinstance(scalar, tuple) or isinstance(vectorized, tuple):
            # a typed error: both tiers must raise the same one
            assert scalar == vectorized
            return
        assert_unit_state_identical(scalar, vectorized)
        assert_streams_identical(scalar, vectorized)
        assert (
            scalar.sequencer_stats() == vectorized.sequencer_stats()
        )

    @pytest.mark.parametrize("dtype", ("fp64", "fp16"))
    @pytest.mark.parametrize("seed", range(25))
    def test_lockstep_programs_bit_identical(self, seed, dtype):
        """All-channel runs: the vectorized machine's lockstep fast
        path against the scalar grid, same seed, same program."""
        self._assert_same_outcome(
            self._run(seed, dtype, "scalar"),
            self._run(seed, dtype, "vectorized"),
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_single_channel_programs_bit_identical(self, seed):
        """Single-channel runs skip the lockstep fast path and fuzz
        the per-channel vectorized execute instead."""
        self._assert_same_outcome(
            self._run(3000 + seed, "fp16", "scalar", channels=[0]),
            self._run(3000 + seed, "fp16", "vectorized", channels=[0]),
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_invalid_programs_raise_the_same_typed_error(self, seed):
        """Mutated command text parses to the same PimExecError on
        both machines (parsing is tier-independent, and a parse
        failure must never leave the two tiers in different states)."""
        import random as _random

        rng = _random.Random(7000 + seed)
        lines = self._random_program(rng)
        pos = rng.randrange(len(lines))
        text = list(lines[pos])
        text[rng.randrange(len(text))] = chr(rng.randrange(33, 127))
        lines[pos] = "".join(text)

        def attempt(unit_mode):
            from repro.pimexec import (
                PimExecError,
                PimExecMachine,
                parse_command,
            )

            machine = PimExecMachine(unit_mode=unit_mode)
            try:
                machine.load_kernel(
                    [parse_command(line) for line in lines]
                )
            except PimExecError as error:
                return (type(error), str(error))
            return None

        assert attempt("scalar") == attempt("vectorized")
