"""Fuzz-style malformed-input suite for the program-trace parser.

Mirror of ``tests/memsys/test_trace_fuzz.py`` for the HBM-PIMulator
dialect: any input — truncated, garbled, dialect-mixed, or randomly
mutated — either parses or raises
:class:`~repro.errors.ProgramFormatError` (a ``ValueError``) with the
1-based line number, never an accidental ``IndexError`` /
``UnboundLocalError`` / ``KeyError`` from the parser's internals.
"""

import random

import pytest

from repro.errors import ProgramFormatError
from repro.pimexec import parse_pim_program

#: A small valid program trace to mutate (one of each record form).
VALID = (
    "W MEM 0 2 8\n"
    "W GPR 0\n"
    "W CFR 0 1\n"
    "AB W\n"
    "PIM MAC GRF,8 BANK,0,3,0 SRF,0\n"
    "PIM EXIT\n"
    "R MEM 0 2 8\n"
    "SB R 0x40\n"
)


def _attempt(text):
    """Parse; malformed input must surface as ProgramFormatError only."""
    try:
        parse_pim_program(text)
    except ProgramFormatError as error:
        assert isinstance(error, ValueError)
        assert "line" in str(error)
        return error
    return None


class TestMalformedLines:
    @pytest.mark.parametrize(
        "line",
        [
            "AB",  # AB without W
            "AB R",  # AB with wrong direction
            "W MEM 0 2",  # MEM with wrong arity
            "W MEM 0 2 banana",  # non-numeric field
            "W MEM 0 2 -8",  # negative field
            "W GPR banana",  # bad GPR id
            "SB X 0x40",  # bad SB direction
            "SB R",  # SB missing address
            "PIM FROB GRF,8",  # unknown PIM opcode
            "PIM MAC GRF,8",  # wrong PIM arity
            "PIM MAC GRF,banana BANK,0,3,0 SRF,0",  # bad operand index
            "GLORP 1 2 3",  # unknown record head
            "W MEM 0 2 8 @banana",  # bad timestamp
            "W MEM 0 2 8 @-1.0",  # negative timestamp
            "W MEM 0 2 8 @nan",  # non-finite timestamp
        ],
    )
    def test_bad_line_is_a_typed_error(self, line):
        error = _attempt(line + "\n")
        assert error is not None
        assert "line 1" in str(error)

    def test_decreasing_timestamps_rejected(self):
        error = _attempt("W GPR 0 @10.0\nW GPR 1 @5.0\n")
        assert error is not None
        assert "line 2" in str(error)

    def test_wrong_dialect_memory_trace(self):
        # a plain memory trace fed to the program parser: its R/W
        # lines collide with the MEM/GPR/CFR/SB record forms and must
        # produce a typed error, not a crash
        memory = "R 0x00000100 10.0\nW 0x00000140 20.0\n"
        _attempt(memory)


class TestTruncation:
    def test_every_prefix_parses_or_raises_typed(self):
        for cut in range(len(VALID)):
            _attempt(VALID[:cut])

    def test_truncated_pim_command_variants(self):
        line = "PIM MAC GRF,8 BANK,0,3,0 SRF,0"
        for cut in range(1, len(line)):
            _attempt(line[:cut] + "\n")


class TestRandomMutation:
    @pytest.mark.parametrize("seed", range(20))
    def test_byte_mutations_never_crash(self, seed):
        rng = random.Random(seed)
        text = list(VALID)
        for _ in range(rng.randrange(1, 6)):
            pos = rng.randrange(len(text))
            text[pos] = chr(rng.randrange(32, 127))
        _attempt("".join(text))

    @pytest.mark.parametrize("seed", range(20))
    def test_random_token_soup_never_crashes(self, seed):
        rng = random.Random(2000 + seed)
        tokens = [
            "W", "R", "MEM", "GPR", "CFR", "AB", "SB", "PIM",
            "MAC", "GRF,8", "BANK,0,3,0", "SRF,0", "0", "1", "-2",
            '"0x1"', "@1.0", "@banana", "0x40", "banana",
        ]
        lines = []
        for _ in range(rng.randrange(1, 12)):
            lines.append(
                " ".join(
                    rng.choice(tokens)
                    for _ in range(rng.randrange(0, 6))
                )
            )
        _attempt("\n".join(lines) + "\n")

    @pytest.mark.parametrize("seed", range(10))
    def test_line_shuffles_of_valid_program(self, seed):
        rng = random.Random(seed)
        lines = VALID.strip().split("\n")
        rng.shuffle(lines)
        _attempt("\n".join(lines) + "\n")


class TestCleanInputStaysClean:
    def test_comments_and_blanks_anywhere(self):
        noisy = "# header\n\n" + VALID.replace(
            "\n", "  # tail\n\n"
        )
        program = parse_pim_program(noisy)
        assert len(program) == 8
