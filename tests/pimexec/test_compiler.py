"""Tests for the repro.isa -> pimexec compiler bridge."""

import pytest

from repro.isa import (
    gups_program,
    parallel_sum_program,
    pointer_chase_program,
    simd_vector_sum_program,
    vector_sum_program,
)
from repro.memsys import MemSysConfig
from repro.pimexec import CompileError, lower_kernel_binary


class TestLowering:
    @pytest.mark.parametrize(
        "builder", (vector_sum_program, simd_vector_sum_program)
    )
    def test_reduction_kernels_reproduce_expected_sum(self, builder):
        binary = builder(count=64, seed=9)
        lowered = lower_kernel_binary(binary)
        result, exact, timing = lowered.run()
        assert exact
        assert result == float(binary.expected["sum"])
        assert timing.makespan_ns > 0
        assert lowered.values.shape == (64,)
        assert lowered.source_name == binary.name

    def test_custom_geometry(self):
        config = MemSysConfig(
            n_channels=1, bankgroups=1, banks_per_group=2
        )
        lowered = lower_kernel_binary(
            simd_vector_sum_program(count=32), config
        )
        _result, exact, _timing = lowered.run()
        assert exact

    def test_both_engines_agree(self):
        lowered = lower_kernel_binary(vector_sum_program(count=32))
        fast = lowered.run(engine="fast")
        event = lowered.run(engine="event")
        assert fast[1] and event[1]
        assert (
            fast[2].stats.makespan_ns == event[2].stats.makespan_ns
        )


class TestRejections:
    def test_parcel_kernels_rejected(self):
        with pytest.raises(CompileError, match="parcel/atomic"):
            lower_kernel_binary(parallel_sum_program())

    def test_gups_rejected_without_streaming_loads(self):
        with pytest.raises(CompileError, match="no ld/vld"):
            lower_kernel_binary(gups_program())

    def test_pointer_chase_rejected_on_data_staging(self):
        # has the loop shape, but stages scattered words, not a block
        with pytest.raises(CompileError, match="input block"):
            lower_kernel_binary(pointer_chase_program())
