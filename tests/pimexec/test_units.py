"""Tests for the per-bank execution unit and the command sequencer."""

import numpy as np
import pytest

from repro.pimexec import (
    BankExecUnit,
    CommandSequencer,
    Operand,
    PimCommand,
    PimExecError,
    PimOpcode,
    parse_command,
)

LANES = 16


@pytest.fixture
def unit():
    return BankExecUnit(LANES)


def cmd(text):
    return parse_command(text)


class TestBankExecUnit:
    def test_unwritten_pages_read_as_zero(self, unit):
        assert np.array_equal(unit.load_page(3, 1), np.zeros(LANES))

    def test_store_and_load_page_copies(self, unit):
        page = np.arange(LANES, dtype=float)
        unit.store_page(2, 0, page)
        page[0] = 99.0
        assert unit.load_page(2, 0)[0] == 0.0

    def test_store_rejects_wrong_width(self, unit):
        with pytest.raises(PimExecError, match="lanes"):
            unit.store_page(0, 0, [1.0, 2.0])

    def test_add_mul(self, unit):
        unit.grf_a[0] = np.full(LANES, 3.0)
        unit.grf_a[1] = np.full(LANES, 4.0)
        unit.execute(cmd("ADD GRF_B,0 GRF_A,0 GRF_A,1"))
        assert np.array_equal(unit.grf_b[0], np.full(LANES, 7.0))
        unit.execute(cmd("MUL GRF_B,1 GRF_A,0 GRF_A,1"))
        assert np.array_equal(unit.grf_b[1], np.full(LANES, 12.0))

    def test_mac_accumulates(self, unit):
        unit.grf_b[0] = np.full(LANES, 1.0)
        unit.store_page(0, 0, np.arange(LANES, dtype=float))
        unit.srf[0] = 2.0
        unit.execute(cmd("MAC GRF_B,0 BANK SRF,0"), row=0, col=0)
        assert np.array_equal(
            unit.grf_b[0], 1.0 + np.arange(LANES) * 2.0
        )

    def test_mad_uses_srf1_addend_by_default(self, unit):
        unit.srf[1] = 5.0  # HBM-PIM's SRF_M
        unit.grf_a[0] = np.full(LANES, 3.0)
        unit.grf_a[1] = np.full(LANES, 4.0)
        unit.execute(cmd("MAD GRF_B,0 GRF_A,0 GRF_A,1"))
        assert np.array_equal(unit.grf_b[0], np.full(LANES, 17.0))

    def test_mov_and_fill_between_bank_and_grf(self, unit):
        page = np.arange(LANES, dtype=float)
        unit.store_page(4, 2, page)
        unit.execute(cmd("FILL GRF_A,0 BANK"), row=4, col=2)
        assert np.array_equal(unit.grf_a[0], page)
        unit.execute(cmd("MOV BANK GRF_A,0"), row=4, col=3)
        assert np.array_equal(unit.load_page(4, 3), page)

    def test_explicit_bank_coordinates_override_access(self, unit):
        unit.store_page(7, 1, np.full(LANES, 9.0))
        unit.execute(cmd("FILL GRF_A,0 BANK,0,7,1"), row=0, col=0)
        assert np.array_equal(unit.grf_a[0], np.full(LANES, 9.0))

    def test_srf_reads_broadcast_over_lanes(self, unit):
        unit.srf[3] = 2.5
        unit.execute(cmd("MOV GRF_A,0 SRF,3"))
        assert np.array_equal(unit.grf_a[0], np.full(LANES, 2.5))

    def test_nop_counts_but_mutates_nothing(self, unit):
        before = unit.grf_a.copy()
        unit.execute(cmd("NOP"))
        assert unit.commands_executed == 1
        assert np.array_equal(unit.grf_a, before)

    def test_control_commands_rejected(self, unit):
        with pytest.raises(PimExecError, match="sequencer control"):
            unit.execute(cmd("EXIT"))


class TestCommandSequencer:
    def _sum_kernel(self, count):
        return [
            cmd("ADD GRF_B,0 BANK GRF_B,0"),
            PimCommand(PimOpcode.JUMP, target=0, count=count),
            cmd("EXIT"),
        ]

    def test_jump_loops_exactly_count_plus_one_times(self):
        seq = CommandSequencer()
        seq.load(self._sum_kernel(count=4))
        walk = [(0, c) for c in range(8)]
        steps = list(seq.run(walk))
        assert len(steps) == 5
        assert [col for _c, _r, col in steps] == [0, 1, 2, 3, 4]

    def test_jump_rearms_for_reentry(self):
        # two loops in one kernel: the first JUMP must re-arm
        seq = CommandSequencer()
        seq.load(
            [
                cmd("ADD GRF_B,0 BANK GRF_B,0"),
                PimCommand(PimOpcode.JUMP, target=0, count=1),
                cmd("ADD GRF_B,1 BANK GRF_B,1"),
                PimCommand(PimOpcode.JUMP, target=2, count=1),
                cmd("EXIT"),
            ]
        )
        steps = list(seq.run([(0, c) for c in range(4)]))
        assert len(steps) == 4

    def test_register_only_steps_repeat_the_address(self):
        seq = CommandSequencer()
        seq.load(
            [
                cmd("FILL GRF_A,0 BANK"),
                cmd("MAC GRF_B,0 GRF_A,0 SRF,0"),
                cmd("EXIT"),
            ]
        )
        steps = list(seq.run([(5, 2)]))
        assert [(r, c) for _cmd, r, c in steps] == [(5, 2), (5, 2)]

    def test_walk_exhaustion_raises(self):
        seq = CommandSequencer()
        seq.load(self._sum_kernel(count=3))
        with pytest.raises(PimExecError, match="walk exhausted"):
            list(seq.run([(0, 0)]))

    def test_missing_exit_rejected_at_load(self):
        seq = CommandSequencer()
        with pytest.raises(PimExecError, match="EXIT"):
            seq.load([cmd("NOP")])

    def test_crf_capacity_enforced(self):
        seq = CommandSequencer(crf_size=2)
        with pytest.raises(PimExecError, match="CRF holds 2"):
            seq.load(self._sum_kernel(count=1))

    def test_jump_target_bounds_checked(self):
        seq = CommandSequencer()
        with pytest.raises(PimExecError, match="JUMP target"):
            seq.load(
                [
                    PimCommand(PimOpcode.JUMP, target=9, count=1),
                    cmd("EXIT"),
                ]
            )

    def test_max_steps_guard(self):
        seq = CommandSequencer(max_steps=10)
        seq.load(self._sum_kernel(count=100))
        with pytest.raises(PimExecError, match="max_steps"):
            list(seq.run([(0, c % 8) for c in range(200)]))

    def test_run_requires_loaded_kernel(self):
        with pytest.raises(PimExecError, match="no kernel"):
            list(CommandSequencer().run([(0, 0)]))
