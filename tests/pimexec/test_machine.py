"""Tests for the PimExecMachine: requests, timing, engine agreement."""

import numpy as np
import pytest

from repro.memsys import MemSysConfig, MemorySystem, MemRequest, Op
from repro.pimexec import (
    Operand,
    PimCommand,
    PimExecError,
    PimExecMachine,
    PimOpcode,
)


@pytest.fixture
def machine():
    return PimExecMachine(MemSysConfig())


def sum_kernel(slots):
    return [
        PimCommand(
            PimOpcode.ADD,
            dst=Operand.grf_b(0),
            src0=Operand.bank(),
            src1=Operand.grf_b(0),
        ),
        PimCommand(PimOpcode.JUMP, target=0, count=slots - 1),
        PimCommand(PimOpcode.EXIT),
    ]


class TestHostActions:
    def test_lanes_derive_from_page_width(self, machine):
        # 256-bit pages carry 16 16-bit hardware words
        assert machine.lanes == 16

    def test_write_bank_stores_and_emits_one_write(self, machine):
        page = np.arange(16, dtype=float)
        machine.write_bank(0, 2, 5, 1, page)
        assert np.array_equal(machine.unit(0, 2).load_page(5, 1), page)
        assert len(machine.requests) == 1
        request = machine.requests[0]
        assert request.op is Op.WRITE
        coords = machine.addr_map.decode(request.addr)
        assert (coords.channel, coords.row, coords.column) == (0, 5, 1)
        assert coords.flat_bank(machine.config.banks_per_group) == 2

    def test_broadcast_scalar_reaches_all_units_of_channel(self, machine):
        machine.broadcast_scalar(1, 3, 2.5)
        assert all(
            unit.srf[3] == 2.5 for unit in machine.units[1]
        )
        assert all(unit.srf[3] == 0.0 for unit in machine.units[0])
        assert machine.requests[-1].op is Op.AB

    def test_broadcast_page_validates_width(self, machine):
        with pytest.raises(PimExecError, match="lanes"):
            machine.broadcast_page(0, "grf_a", 0, [1.0, 2.0])

    def test_register_indices_range_checked(self, machine):
        with pytest.raises(PimExecError, match="SRF index -1"):
            machine.broadcast_scalar(0, -1, 2.0)
        with pytest.raises(PimExecError, match="SRF index 8"):
            machine.broadcast_scalar(0, 8, 2.0)
        with pytest.raises(PimExecError, match="GRF index 8"):
            machine.broadcast_page(0, "grf_a", 8, np.zeros(16))
        with pytest.raises(PimExecError, match="GRF index -1"):
            machine.read_grf(0, 0, "grf_b", -1)

    def test_load_kernel_costs_one_ab_per_slot_per_channel(self, machine):
        machine.load_kernel(sum_kernel(4))
        assert len(machine.requests) == 3 * machine.n_channels
        assert all(r.op is Op.AB for r in machine.requests)

    def test_read_grf_returns_copy(self, machine):
        machine.units[0][0].grf_b[0] = np.full(16, 7.0)
        out = machine.read_grf(0, 0, "grf_b", 0)
        out[0] = -1.0
        assert machine.unit(0, 0).grf_b[0][0] == 7.0
        assert machine.requests[-1].op is Op.AB


class TestKernelExecution:
    def test_run_kernel_executes_lockstep_on_all_banks(self, machine):
        pages = np.arange(16, dtype=float)
        for ch in range(machine.n_channels):
            for bank in range(machine.banks_per_channel):
                machine.unit(ch, bank).store_page(0, 0, pages * (bank + 1))
        machine.load_kernel(sum_kernel(1))
        executed = machine.run_kernel([(0, 0)])
        assert executed == machine.n_channels  # one step per channel
        for ch in range(machine.n_channels):
            for bank in range(machine.banks_per_channel):
                assert np.array_equal(
                    machine.unit(ch, bank).grf_b[0], pages * (bank + 1)
                )

    def test_run_kernel_interleaves_channels(self, machine):
        machine.load_kernel(sum_kernel(2))
        machine.reset_requests()
        machine.run_kernel([(0, 0), (0, 1)])
        channels = [
            machine.addr_map.decode(r.addr).channel
            for r in machine.requests
        ]
        # round-robin: ch0, ch1, ch0, ch1 — not ch0, ch0, ch1, ch1
        assert channels == [0, 1, 0, 1]

    def test_pim_step_rejects_control(self, machine):
        with pytest.raises(PimExecError, match="sequencer control"):
            machine.pim_step(
                0, PimCommand(PimOpcode.EXIT), 0, 0
            )

    def test_per_channel_walks(self, machine):
        machine.load_kernel(sum_kernel(1), channels=[0])
        machine.load_kernel(sum_kernel(2), channels=[1])
        machine.reset_requests()
        machine.run_kernel({0: [(0, 0)], 1: [(0, 0), (0, 1)]})
        channels = [
            machine.addr_map.decode(r.addr).channel
            for r in machine.requests
        ]
        assert channels == [0, 1, 1]


class TestReplay:
    def test_replay_reports_request_mix(self, machine):
        machine.write_bank(0, 0, 0, 0, np.zeros(16))
        machine.broadcast_scalar(0, 0, 1.0)
        machine.load_kernel(sum_kernel(1), channels=[0])
        machine.run_kernel([(0, 0)], channels=[0])
        result = machine.replay()
        assert result.n_requests == len(machine.requests)
        assert result.n_host == 1
        assert result.n_broadcast == 1 + 3
        assert result.n_pim == 1
        assert result.makespan_ns > 0

    def test_replay_requires_requests(self, machine):
        with pytest.raises(PimExecError, match="no requests"):
            machine.replay()

    def test_mixed_stream_event_and_fast_agree_bit_exactly(self, machine):
        machine.write_bank(0, 1, 2, 3, np.ones(16))
        machine.broadcast_scalar(0, 0, 2.0)
        machine.load_kernel(sum_kernel(3))
        machine.run_kernel([(0, 0), (0, 1), (1, 0)])
        fast = machine.replay(engine="fast")
        event = machine.replay(engine="event")
        assert fast.engine == "fast-exact"
        assert event.stats.makespan_ns == fast.stats.makespan_ns
        assert event.stats.total_bits == fast.stats.total_bits
        assert event.stats.row_hits == fast.stats.row_hits

    def test_replay_is_repeatable(self, machine):
        machine.write_bank(0, 0, 0, 0, np.zeros(16))
        first = machine.replay()
        second = machine.replay()
        assert first.stats.makespan_ns == second.stats.makespan_ns
