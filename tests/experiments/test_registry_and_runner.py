"""Tests for the experiment registry, runner, and artifact export."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    all_experiments,
    experiment_names,
    get_experiment,
    render_report,
    run_experiment,
    save_artifacts,
)

EXPECTED_NAMES = {
    "table1",
    "figure5",
    "figure6",
    "figure7",
    "validation",
    "figure11",
    "figure12",
    "bandwidth",
    "ablation-overhead",
    "ablation-sections",
    "calibration",
    "extension-overlap",
    "ablation-imbalance",
    "ablation-network",
    "extension-energy",
    "extension-derived-tml",
    "memsys_bandwidth",
    "pimexec",
    "nn",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(experiment_names()) == EXPECTED_NAMES

    def test_get_experiment(self):
        exp = get_experiment("table1")
        assert exp.name == "table1"
        assert "Table 1" in exp.title

    def test_unknown_experiment_lists_available(self):
        with pytest.raises(KeyError, match="figure7"):
            get_experiment("figure99")

    def test_all_experiments_have_metadata(self):
        for exp in all_experiments():
            assert exp.paper_reference
            assert exp.description


class TestResults:
    @pytest.fixture(scope="class")
    def table1_result(self):
        return run_experiment("table1", ExperimentConfig(quick=True))

    def test_result_passes(self, table1_result):
        assert table1_result.passed
        assert table1_result.failed_checks() == []

    def test_tables_present(self, table1_result):
        assert "table1" in table1_result.tables
        assert len(table1_result.tables["table1"]) == 10  # paper rows

    def test_render_report_contains_sections(self, table1_result):
        report = render_report(table1_result)
        assert "Table 1" in report
        assert "[PASS]" in report
        assert "NB" in report

    def test_failed_checks_listed(self):
        result = ExperimentResult(
            name="x", title="t", paper_reference="r",
            tables={}, plots={}, summary=[],
            checks={"good": True, "bad": False},
        )
        assert not result.passed
        assert result.failed_checks() == ["bad"]

    def test_save_artifacts(self, table1_result, tmp_path):
        written = save_artifacts(table1_result, tmp_path)
        assert (tmp_path / "table1" / "table1.csv").exists()
        assert (tmp_path / "table1" / "report.txt").exists()
        assert len(written) == len(table1_result.tables) + 1

    def test_run_writes_artifacts_via_config(self, tmp_path):
        run_experiment(
            "bandwidth",
            ExperimentConfig(quick=True, out_dir=tmp_path),
        )
        assert (tmp_path / "bandwidth" / "claims.csv").exists()


class TestQuickExperimentsPass:
    """Every experiment passes its shape checks in quick mode.

    This is the core integration guarantee: the reproduction regenerates
    each paper artifact with the paper's qualitative findings intact.
    """

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_experiment_passes(self, name):
        result = run_experiment(name, ExperimentConfig(quick=True))
        assert result.passed, (
            f"{name} failed checks: {result.failed_checks()}"
        )
        assert result.tables  # every experiment exports data
        assert result.summary
