"""Tests for the Table 1 and parcel parameter sets."""

import pytest

from repro import ParcelParams, Table1Params


class TestTable1Params:
    def test_defaults_match_paper_table1(self):
        p = Table1Params()
        assert p.total_work == 100_000_000
        assert p.hwp_cycle_ns == 1.0
        assert p.lwp_cycle_cycles == 5.0
        assert p.hwp_memory_cycles == 90.0
        assert p.hwp_cache_cycles == 2.0
        assert p.lwp_memory_cycles == 30.0
        assert p.miss_rate == 0.1
        assert p.ls_mix == 0.30

    def test_lwp_cycle_ns_derived(self):
        assert Table1Params().lwp_cycle_ns == 5.0
        assert Table1Params(hwp_cycle_ns=2.0).lwp_cycle_ns == 10.0

    def test_frozen_and_hashable(self):
        p = Table1Params()
        with pytest.raises(Exception):
            p.miss_rate = 0.5  # type: ignore[misc]
        assert hash(p) == hash(Table1Params())

    def test_with_creates_modified_copy(self):
        p = Table1Params().with_(miss_rate=0.2)
        assert p.miss_rate == 0.2
        assert Table1Params().miss_rate == 0.1

    @pytest.mark.parametrize(
        "field,value",
        [
            ("total_work", 0),
            ("hwp_cycle_ns", 0.0),
            ("lwp_cycle_cycles", 0.5),
            ("hwp_cache_cycles", 0.5),
            ("hwp_memory_cycles", -1.0),
            ("lwp_memory_cycles", -1.0),
            ("miss_rate", 1.5),
            ("control_miss_rate", -0.1),
            ("ls_mix", 2.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            Table1Params(**{field: value})

    def test_to_dict_round_trip(self):
        d = Table1Params().to_dict()
        assert d["total_work"] == 100_000_000
        assert Table1Params(**d) == Table1Params()

    def test_paper_rows_cover_table(self):
        rows = Table1Params.paper_rows()
        symbols = [r[0] for r in rows]
        assert symbols == [
            "W", "%WH", "%WL", "THcycle", "TLcycle",
            "TMH", "TCH", "TML", "Pmiss", "mixl/s",
        ]


class TestParcelParams:
    def test_defaults_valid(self):
        p = ParcelParams()
        assert p.n_nodes == 8
        assert p.round_trip_cycles == 200.0

    def test_single_node_kills_remote_fraction(self):
        p = ParcelParams(n_nodes=1, remote_fraction=0.5)
        assert p.effective_remote_fraction == 0.0
        assert ParcelParams(n_nodes=2, remote_fraction=0.5).effective_remote_fraction == 0.5

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_nodes", 0),
            ("parallelism", 0),
            ("remote_fraction", 1.5),
            ("latency_cycles", -1.0),
            ("memory_cycles", -1.0),
            ("ls_mix", 0.0),
            ("send_overhead_cycles", -0.5),
            ("receive_overhead_cycles", -0.5),
            ("context_switch_cycles", -0.5),
            ("max_block_accesses", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ParcelParams(**{field: value})

    def test_with_and_to_dict(self):
        p = ParcelParams().with_(latency_cycles=500.0)
        assert p.latency_cycles == 500.0
        d = p.to_dict()
        assert ParcelParams(**d) == p
