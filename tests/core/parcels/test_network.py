"""Tests for the flat-latency and contention interconnects."""

import pytest

from repro.core.parcels import FlatNetwork, LinkContentionNetwork, Parcel


def drain(sim, store, n):
    """Collect n parcels from a mailbox via a consumer process."""
    got = []

    def consumer():
        for _ in range(n):
            got.append((yield store.get()))

    sim.process(consumer())
    return got


class TestFlatNetwork:
    def test_fixed_delay_delivery(self, sim):
        net = FlatNetwork(sim, 4, latency_cycles=25.0)
        p = Parcel.request(0, 2)
        arrivals = []

        def consumer():
            parcel = yield net.mailbox(2).get()
            arrivals.append((parcel, sim.now))

        sim.process(consumer())
        net.send(p)
        sim.run()
        assert len(arrivals) == 1
        parcel, t = arrivals[0]
        assert t == 25.0
        assert parcel.injected_at == 0.0
        assert parcel.destination == 2

    def test_every_parcel_same_latency(self, sim):
        net = FlatNetwork(sim, 3, latency_cycles=10.0)

        def sender():
            net.send(Parcel.request(0, 1))
            yield sim.timeout(7.0)
            net.send(Parcel.request(2, 1))

        times = []

        def consumer():
            for _ in range(2):
                yield net.mailbox(1).get()
                times.append(sim.now)

        sim.process(sender())
        sim.process(consumer())
        sim.run()
        assert times == [10.0, 17.0]

    def test_statistics(self, sim):
        net = FlatNetwork(sim, 2, latency_cycles=5.0)
        got = drain(sim, net.mailbox(1), 2)
        net.send(Parcel.request(0, 1))
        net.send(Parcel.request(0, 1))
        sim.run()
        assert net.parcels_sent == 2
        assert net.parcels_delivered == 2
        assert net.delivery_latency.mean == pytest.approx(5.0)
        assert len(got) == 2

    def test_destination_bounds_checked(self, sim):
        net = FlatNetwork(sim, 2, latency_cycles=5.0)
        with pytest.raises(ValueError):
            net.send(Parcel.request(0, 7))

    def test_zero_latency_allowed(self, sim):
        net = FlatNetwork(sim, 2, latency_cycles=0.0)
        got = drain(sim, net.mailbox(1), 1)
        net.send(Parcel.request(0, 1))
        sim.run()
        assert len(got) == 1

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            FlatNetwork(sim, 0, 1.0)
        with pytest.raises(ValueError):
            FlatNetwork(sim, 2, -1.0)


class TestLinkContentionNetwork:
    def test_uncontended_adds_serialization_only(self, sim):
        net = LinkContentionNetwork(
            sim, 2, latency_cycles=10.0, cycles_per_word=1.0
        )
        times = []

        def consumer():
            yield net.mailbox(1).get()
            times.append(sim.now)

        sim.process(consumer())
        net.send(Parcel.request(0, 1))  # size_words=2 -> 10 + 2
        sim.run()
        assert times == [12.0]

    def test_hotspot_queues_at_ingress(self, sim):
        net = LinkContentionNetwork(
            sim, 4, latency_cycles=10.0, cycles_per_word=5.0
        )
        times = []

        def consumer():
            for _ in range(3):
                yield net.mailbox(0).get()
                times.append(sim.now)

        sim.process(consumer())
        for src in (1, 2, 3):
            net.send(Parcel.request(src, 0))
        sim.run()
        # all arrive at the link at t=10; each takes 10 cycles to serialize
        assert times == [20.0, 30.0, 40.0]

    def test_reduces_to_flat_when_free(self, sim):
        net = LinkContentionNetwork(
            sim, 2, latency_cycles=3.0, cycles_per_word=0.0
        )
        times = []

        def consumer():
            yield net.mailbox(1).get()
            times.append(sim.now)

        sim.process(consumer())
        net.send(Parcel.request(0, 1))
        sim.run()
        assert times == [3.0]

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            LinkContentionNetwork(sim, 2, -1.0)
        with pytest.raises(ValueError):
            LinkContentionNetwork(sim, 2, 1.0, cycles_per_word=-1.0)
