"""Integration tests for the paired parcel/message-passing systems.

These encode the qualitative findings of the paper's §4.3: large gains
with ample parallelism and latency, parity or reversal at low parallelism
and short latency, and the idle-time behavior of Fig. 12.
"""

import pytest

from repro import ParcelParams
from repro.core.parcels import (
    compare_systems,
    simulate_message_passing,
    simulate_parcels,
)

HORIZON = 20_000.0


class TestControlSystem:
    def test_work_components_positive(self):
        r = simulate_message_passing(ParcelParams(), HORIZON)
        assert r.useful_ops > 0
        assert r.local_accesses > 0
        assert r.serviced_accesses == 0.0  # folded into the flat delay
        assert r.total_work == r.useful_ops + r.local_accesses

    def test_state_fractions_partition(self):
        r = simulate_message_passing(ParcelParams(), HORIZON)
        assert (
            r.busy_fraction + r.memory_fraction + r.idle_fraction
            == pytest.approx(1.0, abs=1e-9)
        )

    def test_idle_grows_with_latency(self):
        base = ParcelParams(remote_fraction=0.2)
        idles = [
            simulate_message_passing(
                base.with_(latency_cycles=lat), HORIZON
            ).idle_fraction
            for lat in (10.0, 100.0, 1000.0)
        ]
        assert idles[0] < idles[1] < idles[2]

    def test_no_remote_no_idle(self):
        r = simulate_message_passing(
            ParcelParams(remote_fraction=0.0), HORIZON
        )
        assert r.idle_fraction == pytest.approx(0.0, abs=1e-6)

    def test_reproducible(self):
        a = simulate_message_passing(ParcelParams(), HORIZON, seed=3)
        b = simulate_message_passing(ParcelParams(), HORIZON, seed=3)
        assert a.total_work == b.total_work

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            simulate_message_passing(ParcelParams(), 0.0)


class TestParcelSystem:
    def test_work_includes_serviced_accesses(self):
        r = simulate_parcels(ParcelParams(parallelism=8), HORIZON)
        assert r.serviced_accesses > 0
        assert r.parcels_sent > 0

    def test_state_fractions_partition(self):
        r = simulate_parcels(ParcelParams(parallelism=4), HORIZON)
        assert (
            r.busy_fraction + r.memory_fraction + r.idle_fraction
            == pytest.approx(1.0, abs=1e-9)
        )

    def test_requests_eventually_serviced(self):
        r = simulate_parcels(ParcelParams(parallelism=4), HORIZON)
        # every serviced access corresponds to a request parcel; replies
        # double the parcel count (load replies)
        assert r.serviced_accesses <= r.remote_requests
        assert r.parcels_sent >= r.remote_requests

    def test_idle_shrinks_with_parallelism(self):
        base = ParcelParams(remote_fraction=0.2, latency_cycles=1000.0)
        idles = [
            simulate_parcels(
                base.with_(parallelism=p), HORIZON
            ).idle_fraction
            for p in (1, 4, 32)
        ]
        assert idles[0] > idles[1] > idles[2]
        assert idles[2] < 0.05  # "idle time drops virtually to zero"

    def test_single_node_runs_local_only(self):
        r = simulate_parcels(
            ParcelParams(n_nodes=1, parallelism=4, remote_fraction=0.5),
            HORIZON,
        )
        assert r.parcels_sent == 0
        assert r.idle_fraction == pytest.approx(0.0, abs=1e-6)

    def test_deterministic_mode_runs(self):
        r = simulate_parcels(
            ParcelParams(n_nodes=4, parallelism=2), 5_000.0,
            stochastic=False,
        )
        assert r.total_work > 0

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            simulate_parcels(ParcelParams(), -5.0)


class TestPaperFindings:
    """The qualitative shape of Fig. 11 (see DESIGN.md §4)."""

    def test_big_gain_with_parallelism_and_latency(self):
        """'with sufficient parallelism and ... significant system-wide
        latency, the parcel split-transaction test systems perform much
        better ... sometimes exceeding an order of magnitude'."""
        params = ParcelParams(
            parallelism=64, remote_fraction=0.5, latency_cycles=1000.0
        )
        cmp = compare_systems(params, HORIZON)
        assert cmp.ratio > 10.0

    def test_small_or_reversed_at_low_parallelism_short_latency(self):
        """'performance advantage is small or in fact reversed ...
        particularly true when there is little parallelism and short
        system latencies'."""
        params = ParcelParams(
            parallelism=1, remote_fraction=0.2, latency_cycles=10.0
        )
        cmp = compare_systems(params, HORIZON)
        assert cmp.ratio < 1.05

    def test_ratio_increases_with_latency_at_high_parallelism(self):
        base = ParcelParams(parallelism=64, remote_fraction=0.2)
        ratios = [
            compare_systems(
                base.with_(latency_cycles=lat), HORIZON
            ).ratio
            for lat in (10.0, 100.0, 1000.0)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_ratio_increases_with_parallelism_at_high_latency(self):
        base = ParcelParams(remote_fraction=0.2, latency_cycles=1000.0)
        ratios = [
            compare_systems(base.with_(parallelism=p), HORIZON).ratio
            for p in (1, 4, 16)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_idle_contrast_fig12(self):
        """Test-system idle -> 0 with parallelism while the control system
        'experiences relatively high idle time'."""
        params = ParcelParams(
            parallelism=32, remote_fraction=0.2, latency_cycles=1000.0
        )
        cmp = compare_systems(params, HORIZON)
        assert cmp.test.idle_fraction < 0.05
        assert cmp.control.idle_fraction > 0.5

    def test_comparison_to_dict(self):
        cmp = compare_systems(ParcelParams(n_nodes=2), 2_000.0)
        d = cmp.to_dict()
        assert {"ratio", "test_work", "control_work"} <= set(d)
