"""Tests for the Fig. 11 / Fig. 12 sweeps (reduced grids for speed)."""

import numpy as np
import pytest

from repro import ParcelParams
from repro.core.parcels import (
    PAPER_NODE_COUNTS_FIG12,
    PAPER_PARALLELISM_LEVELS,
    figure11_sweep,
    figure12_sweep,
    overhead_ablation_sweep,
)

BASE = ParcelParams(n_nodes=4)


@pytest.fixture(scope="module")
def fig11():
    return figure11_sweep(
        BASE,
        parallelism_levels=(1, 16),
        remote_fractions=(0.1, 0.5),
        latencies=(10.0, 1000.0),
        horizon_cycles=8_000.0,
    )


@pytest.fixture(scope="module")
def fig12():
    return figure12_sweep(
        BASE,
        node_counts=(1, 4, 16),
        parallelism_levels=(1, 4, 16),
        horizon_cycles=6_000.0,
    )


class TestFigure11:
    def test_paper_parallelism_levels_are_six(self):
        """'six major experiments differing in terms of the amount of
        parallelism'."""
        assert len(PAPER_PARALLELISM_LEVELS) == 6

    def test_panel_structure(self, fig11):
        assert set(fig11.panels) == {1, 16}
        g = fig11.panel(16)
        assert g.rows == (0.1, 0.5)
        assert g.cols == (10.0, 1000.0)

    def test_high_parallelism_beats_low(self, fig11):
        assert np.all(
            fig11.panel(16).values[:, 1] > fig11.panel(1).values[:, 1]
        )

    def test_ratio_regimes(self, fig11):
        # low P, short latency: no meaningful gain
        assert fig11.panel(1).values[0, 0] < 1.1
        # high P, long latency, heavy remote: big gain
        assert fig11.panel(16).values[1, 1] > 5.0

    def test_rows_export_includes_parallelism(self, fig11):
        rows = fig11.to_rows()
        assert len(rows) == 2 * 2 * 2
        assert {r["parallelism"] for r in rows} == {1, 16}

    def test_extrema_helpers(self, fig11):
        assert fig11.min_ratio() <= fig11.max_ratio()


class TestFigure12:
    def test_includes_the_16_node_case(self):
        """The paper: 'We didn't successfully complete the 16 node case.'
        The reproduction includes N=16 in its default grid."""
        assert 16 in PAPER_NODE_COUNTS_FIG12

    def test_panel_structure(self, fig12):
        assert set(fig12.panels) == {1, 4, 16}
        g = fig12.panel(4)
        assert g.values.shape == (2, 3)  # test row + control row

    def test_control_idle_flat_across_parallelism(self, fig12):
        g = fig12.panel(4)
        assert np.allclose(g.values[1], g.values[1, 0])

    def test_test_idle_decreases_with_parallelism(self, fig12):
        g = fig12.panel(4)
        assert g.values[0, 0] >= g.values[0, -1]

    def test_sufficient_parallelism_idles_below_control(self, fig12):
        g = fig12.panel(4)
        assert g.values[0, -1] < g.values[1, -1]

    def test_single_node_idle_near_zero_both(self, fig12):
        g = fig12.panel(1)
        assert np.all(g.values < 0.05)

    def test_rows_export(self, fig12):
        rows = fig12.to_rows()
        assert {r["n_nodes"] for r in rows} == {1, 4, 16}


class TestOverheadAblation:
    def test_ratio_degrades_with_overhead(self):
        g = overhead_ablation_sweep(
            ParcelParams(
                n_nodes=4, parallelism=16, remote_fraction=0.2,
                latency_cycles=300.0,
            ),
            overheads=(0.0, 8.0, 32.0),
            horizon_cycles=8_000.0,
        )
        vals = g.values[0]
        assert vals[0] > vals[-1]

    def test_heavy_overhead_can_reverse(self):
        g = overhead_ablation_sweep(
            ParcelParams(
                n_nodes=4, parallelism=1, remote_fraction=0.5,
                latency_cycles=10.0,
            ),
            overheads=(0.0, 32.0),
            horizon_cycles=8_000.0,
        )
        assert g.values[0, -1] < 1.0
