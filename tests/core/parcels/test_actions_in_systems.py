"""Tests for non-trivial parcel actions flowing through the systems.

The paper's parcels "range from simple memory reads and writes, through
atomic arithmetic memory operations, to remote method invocations on
objects in memory" (§4.1).  These tests drive the split-transaction
system with each action class and check the service-cost consequences.
"""

import pytest

from repro import ParcelParams
from repro.core.parcels import (
    ActionSpec,
    SplitTransactionNode,
    default_registry,
    simulate_parcels,
)
from repro.core.parcels.network import FlatNetwork
from repro.core.parcels.parcel import Parcel
from repro.desim import RandomStreams, Simulator

PARAMS = ParcelParams(
    n_nodes=4, parallelism=8, remote_fraction=0.5, latency_cycles=50.0
)
HORIZON = 8_000.0


class TestRequestActionsThroughSystem:
    def test_default_load_action(self):
        r = simulate_parcels(PARAMS, HORIZON, request_action="load")
        assert r.serviced_accesses > 0

    def test_amo_action_adds_compute_work(self):
        """amo.add performs one extra op per service; total work grows
        relative to plain loads at identical traffic statistics."""
        load = simulate_parcels(PARAMS, HORIZON, request_action="load")
        amo = simulate_parcels(PARAMS, HORIZON, request_action="amo.add")
        per_parcel_load = load.useful_ops / max(load.remote_requests, 1)
        per_parcel_amo = amo.useful_ops / max(amo.remote_requests, 1)
        assert per_parcel_amo > per_parcel_load

    def test_method_action_heavier_service(self):
        """A method invocation touches 4 words at the target, so each
        serviced parcel contributes 4 accesses instead of 1."""
        load = simulate_parcels(PARAMS, HORIZON, request_action="load")
        method = simulate_parcels(PARAMS, HORIZON, request_action="method")
        load_ratio = load.serviced_accesses / max(load.remote_requests, 1)
        method_ratio = method.serviced_accesses / max(
            method.remote_requests, 1
        )
        assert load_ratio <= 1.0 + 1e-9
        assert method_ratio > 2.0  # approaches 4 as requests complete

    def test_method_action_throttles_throughput(self):
        """Heavier remote service consumes more target-CPU time, so the
        same horizon completes fewer remote transactions."""
        load = simulate_parcels(PARAMS, HORIZON, request_action="load")
        method = simulate_parcels(PARAMS, HORIZON, request_action="method")
        assert method.remote_requests < load.remote_requests

    def test_unknown_action_raises_at_service_time(self):
        with pytest.raises(KeyError, match="unknown parcel action"):
            simulate_parcels(
                PARAMS.with_(n_nodes=2),
                2_000.0,
                request_action="fused.gemm",
            )


class TestDispatcherErrorPaths:
    def test_orphan_reply_is_a_model_bug(self):
        """A reply whose transaction id matches no suspended context
        must fail loudly — silent drops would corrupt work accounting."""
        sim = Simulator()
        network = FlatNetwork(sim, 2, latency_cycles=5.0)
        streams = RandomStreams(0)
        node = SplitTransactionNode(
            sim,
            0,
            ParcelParams(n_nodes=2),
            network,
            streams.stream("b"),
            streams.stream("d"),
        )
        node.start()
        # a request *from* node 0 whose continuation nobody registered:
        # the reply routes back to node 0's dispatcher and must fail
        request = Parcel.request(0, 1, action="load")
        orphan = request.reply()
        network.send(orphan)
        with pytest.raises(RuntimeError, match="unknown"):
            sim.run(until=100.0)

    def test_custom_action_registry_per_node(self):
        """Nodes accept custom registries, enabling workload-specific
        parcel vocabularies (e.g. a histogram update)."""
        sim = Simulator()
        network = FlatNetwork(sim, 2, latency_cycles=5.0)
        registry = default_registry()
        registry.register(
            ActionSpec("histogram.update", memory_accesses=2,
                       compute_cycles=3.0)
        )
        streams = RandomStreams(0)
        nodes = [
            SplitTransactionNode(
                sim,
                i,
                ParcelParams(
                    n_nodes=2, parallelism=2, remote_fraction=1.0,
                    latency_cycles=5.0,
                ),
                network,
                streams.stream(f"b{i}"),
                streams.stream(f"d{i}"),
                actions=registry,
                request_action="histogram.update",
            )
            for i in range(2)
        ]
        for node in nodes:
            node.start()
        sim.run(until=2_000.0)
        serviced = sum(n.stats.parcels_serviced for n in nodes)
        accesses = sum(n.stats.serviced_accesses for n in nodes)
        assert serviced > 0
        assert accesses == pytest.approx(2 * serviced)
