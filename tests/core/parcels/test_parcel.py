"""Tests for parcel structures (paper Fig. 8) and the action registry."""

import pytest

from repro.core.parcels import (
    ActionRegistry,
    ActionSpec,
    Continuation,
    DEFAULT_ACTIONS,
    Parcel,
    ParcelKind,
    default_registry,
    next_transaction_id,
)


class TestParcelStructure:
    def test_request_constructor_allocates_transaction(self):
        p = Parcel.request(0, 3, target_address=0x1000, action="load")
        assert p.kind == ParcelKind.REQUEST
        assert p.source == 0
        assert p.destination == 3
        assert p.continuation is not None
        assert p.continuation.node == 0
        assert p.expects_reply

    def test_one_way_request(self):
        p = Parcel.request(1, 2, action="store", want_reply=False)
        assert p.continuation is None
        assert not p.expects_reply

    def test_transaction_ids_unique(self):
        ids = {next_transaction_id() for _ in range(100)}
        assert len(ids) == 100
        a = Parcel.request(0, 1)
        b = Parcel.request(0, 1)
        assert (
            a.continuation.transaction_id != b.continuation.transaction_id
        )

    def test_reply_routes_to_continuation(self):
        p = Parcel.request(5, 2, action="amo.add", operands=(1.0,))
        r = p.reply(operands=(41.0,))
        assert r.kind == ParcelKind.REPLY
        assert r.source == 2
        assert r.destination == 5
        assert r.continuation == p.continuation
        assert r.operands == (41.0,)
        assert not r.expects_reply

    def test_reply_without_continuation_raises(self):
        p = Parcel.request(0, 1, want_reply=False)
        with pytest.raises(ValueError):
            p.reply()

    def test_injection_stamp_copy(self):
        p = Parcel.request(0, 1)
        stamped = p.with_injection_time(42.0)
        assert stamped.injected_at == 42.0
        assert p.injected_at is None  # frozen original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            Parcel(kind="bogus", source=0, destination=1)
        with pytest.raises(ValueError):
            Parcel(kind=ParcelKind.REQUEST, source=-1, destination=0)
        with pytest.raises(ValueError):
            Parcel(kind=ParcelKind.REQUEST, source=0, destination=1,
                   size_words=0)
        with pytest.raises(ValueError):
            Continuation(node=-1, transaction_id=1)


class TestActionSpec:
    def test_service_cycles(self):
        spec = ActionSpec("x", memory_accesses=2, compute_cycles=3.0)
        assert spec.service_cycles(30.0) == pytest.approx(63.0)

    def test_defaults_cover_paper_range(self):
        names = {a.name for a in DEFAULT_ACTIONS}
        # "simple memory reads and writes, through atomic arithmetic
        # memory operations, to remote method invocations"
        assert {"load", "store", "amo.add", "method"} <= names

    def test_store_is_one_way(self):
        reg = default_registry()
        assert not reg["store"].produces_reply
        assert reg["load"].produces_reply

    def test_validation(self):
        with pytest.raises(ValueError):
            ActionSpec("")
        with pytest.raises(ValueError):
            ActionSpec("x", memory_accesses=-1)
        with pytest.raises(ValueError):
            ActionSpec("x", compute_cycles=-1.0)


class TestActionRegistry:
    def test_lookup_and_contains(self):
        reg = default_registry()
        assert "load" in reg
        assert reg["load"].memory_accesses == 1
        assert len(reg) == len(DEFAULT_ACTIONS)

    def test_unknown_action_keyerror_lists_known(self):
        reg = default_registry()
        with pytest.raises(KeyError, match="load"):
            reg["fused.multiply.add"]

    def test_register_and_replace(self):
        reg = ActionRegistry()
        spec = ActionSpec("custom", 2, 1.0)
        reg.register(spec)
        assert reg["custom"] is spec
        with pytest.raises(ValueError):
            reg.register(ActionSpec("custom", 1, 0.0))
        reg.register(ActionSpec("custom", 1, 0.0), replace=True)
        assert reg["custom"].memory_accesses == 1

    def test_names_sorted(self):
        reg = default_registry()
        assert reg.names() == sorted(reg.names())

    def test_iteration(self):
        reg = default_registry()
        assert {s.name for s in reg} == set(reg.names())
