"""Tests for the multithreading closed forms and the DES cross-check."""

import numpy as np
import pytest

from repro import ParcelParams
from repro.core.parcels import (
    compare_systems,
    control_work_rate,
    multithreading_efficiency,
    parcel_ratio_estimate,
    saturation_parallelism,
    simulate_message_passing,
    test_work_rate_estimate as parcel_work_rate_estimate,
)


class TestSaavedraBarreraModel:
    def test_single_thread_efficiency(self):
        # R / (R + L) with no switch cost
        assert float(
            multithreading_efficiency(1, 10.0, 90.0)
        ) == pytest.approx(0.1)

    def test_saturation_reaches_r_over_r_plus_c(self):
        eff = float(multithreading_efficiency(1000, 10.0, 90.0, 2.0))
        assert eff == pytest.approx(10.0 / 12.0)

    def test_saturation_point(self):
        p_sat = float(saturation_parallelism(10.0, 90.0, 0.0))
        assert p_sat == pytest.approx(10.0)
        # just below saturation: linear; at/above: flat
        below = float(multithreading_efficiency(9, 10.0, 90.0))
        at = float(multithreading_efficiency(10, 10.0, 90.0))
        above = float(multithreading_efficiency(11, 10.0, 90.0))
        assert below < at == above == 1.0

    def test_efficiency_monotone_in_parallelism(self):
        p = np.arange(1, 50)
        eff = multithreading_efficiency(p, 10.0, 200.0, 1.0)
        assert np.all(np.diff(eff) >= -1e-12)
        assert np.all(eff <= 1.0 + 1e-12)

    def test_zero_latency_full_efficiency(self):
        assert float(
            multithreading_efficiency(1, 10.0, 0.0, 0.0)
        ) == pytest.approx(1.0)

    def test_broadcasting(self):
        eff = multithreading_efficiency(
            np.array([1, 2, 4])[:, None],
            10.0,
            np.array([10.0, 100.0])[None, :],
        )
        assert eff.shape == (3, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            multithreading_efficiency(0, 10.0, 5.0)
        with pytest.raises(ValueError):
            multithreading_efficiency(1, 0.0, 5.0)
        with pytest.raises(ValueError):
            saturation_parallelism(-1.0, 5.0)
        with pytest.raises(ValueError):
            saturation_parallelism(1.0, -5.0)


class TestWorkRates:
    def test_control_rate_matches_des(self):
        """The control system has no contention, so the closed form
        should match the DES tightly."""
        params = ParcelParams(
            remote_fraction=0.2, latency_cycles=100.0, parallelism=1
        )
        des = simulate_message_passing(params, 50_000.0)
        assert des.work_rate == pytest.approx(
            control_work_rate(params), rel=0.05
        )

    def test_control_rate_decreases_with_latency(self):
        base = ParcelParams(remote_fraction=0.2)
        rates = [
            control_work_rate(base.with_(latency_cycles=lat))
            for lat in (10.0, 100.0, 1000.0)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_test_rate_saturates(self):
        base = ParcelParams(remote_fraction=0.2, latency_cycles=1000.0)
        r64 = parcel_work_rate_estimate(base.with_(parallelism=64))
        r256 = parcel_work_rate_estimate(base.with_(parallelism=256))
        assert r256 == pytest.approx(r64, rel=1e-9)  # saturated

    def test_requires_remote_traffic(self):
        with pytest.raises(ValueError):
            control_work_rate(ParcelParams(remote_fraction=0.0))
        with pytest.raises(ValueError):
            parcel_ratio_estimate(ParcelParams(n_nodes=1))


class TestRatioEstimateVsDes:
    @pytest.mark.parametrize(
        "parallelism,remote,latency",
        [
            (16, 0.2, 100.0),
            (64, 0.2, 1000.0),
            (64, 0.5, 1000.0),
        ],
    )
    def test_estimate_brackets_des_at_saturation(
        self, parallelism, remote, latency
    ):
        """At saturation the queueing-free estimate tracks the DES within
        a band: the DES undershoots through queueing and overshoots
        through control-side sampling noise (at high latency the control
        completes few transactions per node)."""
        params = ParcelParams(
            parallelism=parallelism,
            remote_fraction=remote,
            latency_cycles=latency,
        )
        des = compare_systems(params, 60_000.0).ratio
        est = parcel_ratio_estimate(params)
        assert des <= est * 1.20
        assert des >= est * 0.55

    def test_estimate_shows_reversal_region(self):
        """With one context and negligible latency the estimate predicts
        the <1 regime the paper observed."""
        params = ParcelParams(
            parallelism=1, remote_fraction=0.5, latency_cycles=5.0,
            send_overhead_cycles=8.0, receive_overhead_cycles=8.0,
            context_switch_cycles=8.0,
        )
        assert parcel_ratio_estimate(params) < 1.0
