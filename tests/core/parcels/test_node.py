"""Tests for the parcel-study node models (block sampling, CPU states)."""

import numpy as np
import pytest

from repro import ParcelParams
from repro.core.parcels import BlockSampler, NodeCpu
from repro.core.parcels.node import BUSY, IDLE, MEMORY
from repro.desim import Simulator


class TestBlockSampler:
    def test_deterministic_block_expectations(self):
        p = ParcelParams(remote_fraction=0.2, ls_mix=0.3)
        s = BlockSampler(p, None, stochastic=False)
        b = s.sample()
        assert b.remote
        # 1/r = 5 accesses per remote txn: 4 local + 1 remote
        assert b.local_accesses == pytest.approx(4.0)
        # 5 accesses * (0.7/0.3) compute ops
        assert b.compute_ops == pytest.approx(5.0 * 0.7 / 0.3)

    def test_deterministic_zero_remote_uses_cap(self):
        p = ParcelParams(
            n_nodes=2, remote_fraction=0.0, max_block_accesses=100
        )
        s = BlockSampler(p, None, stochastic=False)
        b = s.sample()
        assert not b.remote
        assert b.local_accesses == 100.0

    def test_single_node_never_remote(self):
        p = ParcelParams(n_nodes=1, remote_fraction=0.9)
        s = BlockSampler(p, None, stochastic=False)
        assert not s.sample().remote

    def test_stochastic_requires_rng(self):
        with pytest.raises(ValueError):
            BlockSampler(ParcelParams(), None, stochastic=True)

    def test_stochastic_statistics_converge(self, rng):
        p = ParcelParams(remote_fraction=0.25, ls_mix=0.3)
        s = BlockSampler(p, rng, stochastic=True)
        blocks = [s.sample() for _ in range(20_000)]
        accesses = np.array(
            [b.local_accesses + (1 if b.remote else 0) for b in blocks]
        )
        computes = np.array([b.compute_ops for b in blocks])
        assert accesses.mean() == pytest.approx(4.0, rel=0.05)  # 1/0.25
        # compute ops per access = (1-mix)/mix
        assert computes.sum() / accesses.sum() == pytest.approx(
            0.7 / 0.3, rel=0.05
        )

    def test_stochastic_remote_every_block_at_r1(self, rng):
        p = ParcelParams(remote_fraction=1.0)
        s = BlockSampler(p, rng, stochastic=True)
        for _ in range(100):
            b = s.sample()
            assert b.remote
            assert b.local_accesses == 0.0

    def test_pure_memory_mix_no_compute(self, rng):
        p = ParcelParams(ls_mix=1.0, remote_fraction=0.5)
        s = BlockSampler(p, rng, stochastic=True)
        assert s.sample().compute_ops == 0.0

    def test_geometric_cap_respected(self, rng):
        p = ParcelParams(remote_fraction=0.001, max_block_accesses=10)
        s = BlockSampler(p, rng, stochastic=True)
        for _ in range(50):
            b = s.sample()
            assert b.local_accesses <= 10


class TestNodeCpu:
    def test_idle_to_busy_to_idle_accounting(self):
        sim = Simulator()
        cpu = NodeCpu(sim, "cpu")

        def worker():
            req = cpu.acquire()
            yield req
            cpu.set_state(BUSY)
            yield sim.timeout(4.0)
            cpu.set_state(MEMORY)
            yield sim.timeout(6.0)
            cpu.release(req)

        sim.process(worker())
        sim.run()
        sim.run(until=20.0)
        assert cpu.timer.total(BUSY, sim.now) == pytest.approx(4.0)
        assert cpu.timer.total(MEMORY, sim.now) == pytest.approx(6.0)
        assert cpu.timer.total(IDLE, sim.now) == pytest.approx(10.0)
        assert cpu.idle_fraction(sim.now) == pytest.approx(0.5)

    def test_no_idle_between_back_to_back_holders(self):
        sim = Simulator()
        cpu = NodeCpu(sim, "cpu")

        def worker():
            req = cpu.acquire()
            yield req
            cpu.set_state(BUSY)
            yield sim.timeout(5.0)
            cpu.release(req)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert cpu.timer.total(IDLE, sim.now) == pytest.approx(0.0)
        assert cpu.timer.total(BUSY, sim.now) == pytest.approx(10.0)

    def test_serialization_of_holders(self):
        sim = Simulator()
        cpu = NodeCpu(sim, "cpu")
        grants = []

        def worker(tag):
            req = cpu.acquire()
            yield req
            grants.append((tag, sim.now))
            cpu.set_state(BUSY)
            yield sim.timeout(3.0)
            cpu.release(req)

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert grants == [("a", 0.0), ("b", 3.0)]
