"""Tests for the overlap and load-imbalance extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Table1Params
from repro.core.hwlw import (
    HwlwSimConfig,
    nb_parameter,
    overlap_crossover_fraction,
    simulate_hybrid,
    skewed_thread_shares,
    time_relative,
    time_relative_overlapped,
    time_relative_skewed,
)

P = Table1Params()

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
nodes = st.floats(min_value=1.0, max_value=512.0, allow_nan=False)


class TestOverlappedModel:
    def test_max_form(self):
        f, n = 0.4, 8.0
        nb = nb_parameter(P)
        assert float(
            time_relative_overlapped(f, n, P)
        ) == pytest.approx(max(1 - f, f * nb / n))

    @given(fractions, nodes)
    @settings(max_examples=100)
    def test_never_slower_than_serial(self, f, n):
        serial = float(time_relative(f, n, P))
        overlapped = float(time_relative_overlapped(f, n, P))
        assert overlapped <= serial + 1e-12

    def test_equals_serial_at_extremes(self):
        for n in (1.0, 8.0, 64.0):
            assert float(
                time_relative_overlapped(0.0, n, P)
            ) == pytest.approx(float(time_relative(0.0, n, P)))
            # f=1: serial = NB/N = overlapped (host side empty)
            assert float(
                time_relative_overlapped(1.0, n, P)
            ) == pytest.approx(float(time_relative(1.0, n, P)))

    def test_crossover_fraction(self):
        n = 8.0
        f_star = float(overlap_crossover_fraction(n, P))
        below = float(time_relative_overlapped(f_star - 0.01, n, P))
        above = float(time_relative_overlapped(f_star + 0.01, n, P))
        at = float(time_relative_overlapped(f_star, n, P))
        assert at == pytest.approx(1.0 - f_star)
        assert below == pytest.approx(1.0 - (f_star - 0.01))
        assert above > 1.0 - (f_star + 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            time_relative_overlapped(1.5, 8, P)
        with pytest.raises(ValueError):
            time_relative_overlapped(0.5, 0.0, P)
        with pytest.raises(ValueError):
            overlap_crossover_fraction(0.5, P)

    def test_simulation_overlap_matches_closed_form(self):
        cfg = HwlwSimConfig(stochastic=False, overlap=True)
        for f, n in [(0.3, 4), (0.5, 2), (0.9, 16)]:
            sim = simulate_hybrid(P, f, n, cfg)
            expected = float(
                time_relative_overlapped(f, n, P)
            ) * P.total_work * 4.0
            assert sim.completion_cycles == pytest.approx(
                expected, rel=1e-12
            )

    def test_simulation_overlap_faster_than_serial(self):
        serial = simulate_hybrid(
            P, 0.5, 8, HwlwSimConfig(stochastic=False)
        )
        overlapped = simulate_hybrid(
            P, 0.5, 8, HwlwSimConfig(stochastic=False, overlap=True)
        )
        assert overlapped.completion_cycles < serial.completion_cycles


class TestSkewedThreads:
    def test_shares_conserve_total(self):
        shares = skewed_thread_shares(8, 0.6)
        assert shares.sum() == pytest.approx(8.0)
        assert shares.max() == pytest.approx(1.6)
        assert shares.min() == pytest.approx(0.4)

    def test_zero_skew_uniform(self):
        assert np.allclose(skewed_thread_shares(5, 0.0), 1.0)

    def test_single_node(self):
        assert skewed_thread_shares(1, 0.9).tolist() == [1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            skewed_thread_shares(0, 0.1)
        with pytest.raises(ValueError):
            skewed_thread_shares(4, 1.0)
        with pytest.raises(ValueError):
            time_relative_skewed(2.0, 4, 0.1, P)

    def test_skewed_time_formula(self):
        nb = nb_parameter(P)
        got = float(time_relative_skewed(1.0, 8, 0.5, P))
        assert got == pytest.approx(1.0 - (1.0 - 1.5 * nb / 8.0))

    def test_zero_skew_matches_paper_model(self):
        for f, n in [(0.3, 4), (1.0, 16)]:
            assert float(
                time_relative_skewed(f, n, 0.0, P)
            ) == pytest.approx(float(time_relative(f, n, P)))

    @given(
        fractions,
        st.integers(min_value=2, max_value=64),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=100)
    def test_skew_never_helps(self, f, n, skew):
        skewed = float(time_relative_skewed(f, n, skew, P))
        uniform = float(time_relative(f, n, P))
        assert skewed >= uniform - 1e-12

    def test_simulation_matches_skewed_form(self):
        cfg = HwlwSimConfig(stochastic=False, thread_skew=0.5)
        sim = simulate_hybrid(P, 1.0, 8, cfg)
        expected = (
            float(time_relative_skewed(1.0, 8, 0.5, P))
            * P.total_work
            * 4.0
        )
        assert sim.completion_cycles == pytest.approx(expected, rel=1e-12)

    def test_effective_nb_shift(self):
        """With skew s, the coincidence point moves to (1+s)*NB."""
        nb = nb_parameter(P)
        skew = 0.4
        shifted = (1.0 + skew) * nb
        vals = [
            float(time_relative_skewed(f, int(round(shifted)), skew, P))
            for f in (0.2, 0.6, 1.0)
        ]
        # exact only when (1+s)*NB is an integer node count; check the
        # analytic identity instead at fractional N via the formula
        for f in (0.2, 0.6, 1.0):
            t = 1.0 - f * (1.0 - (1.0 + skew) * nb / shifted)
            assert t == pytest.approx(1.0)
        assert all(abs(v - 1.0) < 0.2 for v in vals)
