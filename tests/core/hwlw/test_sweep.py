"""Tests for the Fig. 5-7 sweeps and the SweepGrid container."""

import numpy as np
import pytest

from repro import Table1Params
from repro.core.grid import SweepGrid
from repro.core.hwlw import (
    HwlwSimConfig,
    PAPER_LWP_FRACTIONS,
    PAPER_NODE_COUNTS,
    figure5_gain_sweep,
    figure6_response_time_sweep,
    figure7_normalized_time_sweep,
    nb_parameter,
    section_ablation_sweep,
)

P = Table1Params()
FAST = HwlwSimConfig(stochastic=False, sections=2)


class TestSweepGrid:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SweepGrid(
                name="x",
                row_label="r",
                rows=(1.0, 2.0),
                col_label="c",
                cols=(1.0,),
                values=np.zeros((1, 1)),
                value_label="v",
            )

    def test_row_col_slicing(self):
        g = SweepGrid(
            "g", "r", (1.0, 2.0), "c", (10.0, 20.0, 30.0),
            np.arange(6.0).reshape(2, 3), "v",
        )
        assert list(g.row(2.0)) == [3.0, 4.0, 5.0]
        assert list(g.col(20.0)) == [1.0, 4.0]

    def test_to_rows_long_format(self):
        g = SweepGrid(
            "g", "r", (1.0,), "c", (10.0, 20.0),
            np.array([[5.0, 6.0]]), "v",
        )
        assert g.to_rows() == [
            {"r": 1.0, "c": 10.0, "v": 5.0},
            {"r": 1.0, "c": 20.0, "v": 6.0},
        ]

    def test_transposed_round_trip(self):
        g = SweepGrid(
            "g", "r", (1.0, 2.0), "c", (10.0,),
            np.array([[1.0], [2.0]]), "v",
        )
        t = g.transposed()
        assert t.rows == (10.0,)
        assert np.array_equal(t.values, g.values.T)


class TestFigure5:
    def test_analytic_mode_shape(self):
        g = figure5_gain_sweep(P, use_simulation=False)
        assert g.values.shape == (
            len(PAPER_NODE_COUNTS), len(PAPER_LWP_FRACTIONS),
        )

    def test_gain_one_at_zero_fraction(self):
        g = figure5_gain_sweep(P, use_simulation=False)
        assert np.allclose(g.values[:, 0], 1.0)

    def test_gain_grows_with_nodes_and_fraction(self):
        g = figure5_gain_sweep(P, use_simulation=False)
        # monotone along both axes (for f>0)
        assert np.all(np.diff(g.values[:, 1:], axis=0) > 0)
        assert np.all(np.diff(g.values[1:, :], axis=1) > 0)

    def test_extreme_corner_exceeds_100x(self):
        g = figure5_gain_sweep(P, use_simulation=False)
        assert g.values[-1, -1] > 100.0

    def test_simulation_mode_matches_analytic_det(self):
        g_sim = figure5_gain_sweep(
            P, node_counts=(1, 8), lwp_fractions=(0.0, 0.5, 1.0),
            config=FAST, use_simulation=True,
        )
        g_ana = figure5_gain_sweep(
            P, node_counts=(1, 8), lwp_fractions=(0.0, 0.5, 1.0),
            use_simulation=False,
        )
        assert np.allclose(g_sim.values, g_ana.values, rtol=1e-9)


class TestFigure6:
    def test_anchors(self):
        g = figure6_response_time_sweep(P, use_simulation=False)
        # 0% LWT row is flat at 4e8 ns
        assert np.allclose(g.row(0.0), 4.0e8)
        # 100% LWT at N=1 is 1.25e9 ns
        assert g.values[-1, 0] == pytest.approx(1.25e9)

    def test_rows_decreasing_in_nodes(self):
        g = figure6_response_time_sweep(P, use_simulation=False)
        for i, f in enumerate(g.rows):
            if f > 0:
                assert np.all(np.diff(g.values[i]) < 0)

    def test_simulation_mode_agrees(self):
        g_sim = figure6_response_time_sweep(
            P, node_counts=(1, 64), lwp_fractions=(0.0, 1.0),
            config=FAST, use_simulation=True,
        )
        g_ana = figure6_response_time_sweep(
            P, node_counts=(1, 64), lwp_fractions=(0.0, 1.0),
            use_simulation=False,
        )
        assert np.allclose(g_sim.values, g_ana.values, rtol=1e-9)


class TestFigure7:
    def test_all_curves_cross_at_nb(self):
        nb = nb_parameter(P)
        g = figure7_normalized_time_sweep(
            P, node_counts=(1.0, nb, 64.0),
        )
        # at N = NB every %WL row equals 1.0
        col = list(g.cols).index(nb)
        assert np.allclose(g.values[:, col], 1.0)

    def test_zero_fraction_row_flat_one(self):
        g = figure7_normalized_time_sweep(P)
        assert np.allclose(g.row(0.0), 1.0)

    def test_values_below_one_beyond_nb(self):
        g = figure7_normalized_time_sweep(P, node_counts=(4.0, 64.0))
        assert np.all(g.values[1:, :] < 1.0 + 1e-12)  # f>0, N>NB


class TestSectionAblation:
    def test_invariant_across_sections(self):
        g = section_ablation_sweep(P, section_counts=(1, 4, 16))
        assert np.allclose(g.values, g.values[0, 0], rtol=1e-12)
