"""Tests for the phased statistical workload (paper Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Table1Params
from repro.core.hwlw import OperationMixSampler, PhasedWorkload, WorkSection


class TestWorkSection:
    def test_totals(self):
        s = WorkSection(100.0, 50.0)
        assert s.total_ops == 150.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkSection(-1.0, 0.0)


class TestPhasedWorkload:
    def test_splits_by_fraction(self):
        wl = PhasedWorkload(Table1Params(), 0.25, sections=5)
        assert wl.total_lwp_ops == pytest.approx(25_000_000)
        assert wl.total_hwp_ops == pytest.approx(75_000_000)
        assert wl.total_ops == pytest.approx(100_000_000)

    def test_sections_uniform(self):
        wl = PhasedWorkload(Table1Params(), 0.5, sections=4)
        assert len(wl.sections) == 4
        assert all(
            s.hwp_ops == wl.sections[0].hwp_ops for s in wl.sections
        )

    def test_extremes(self):
        assert PhasedWorkload(Table1Params(), 0.0).total_lwp_ops == 0.0
        assert PhasedWorkload(Table1Params(), 1.0).total_hwp_ops == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedWorkload(Table1Params(), 1.5)
        with pytest.raises(ValueError):
            PhasedWorkload(Table1Params(), 0.5, sections=0)

    def test_split_lwp_ops_uniform_threads(self):
        wl = PhasedWorkload(Table1Params(), 0.5, sections=2)
        shares = wl.split_lwp_ops(wl.sections[0], 8)
        assert shares.shape == (8,)
        assert np.allclose(shares, shares[0])  # uniform per the paper
        assert shares.sum() == pytest.approx(wl.sections[0].lwp_ops)

    def test_split_validation(self):
        wl = PhasedWorkload(Table1Params(), 0.5)
        with pytest.raises(ValueError):
            wl.split_lwp_ops(wl.sections[0], 0)

    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50)
    def test_conservation_property(self, fraction, sections):
        """No operations are created or lost by sectioning."""
        wl = PhasedWorkload(Table1Params(), fraction, sections)
        assert wl.total_ops == pytest.approx(100_000_000, rel=1e-12)


class TestOperationMixSampler:
    def test_deterministic_expectations(self):
        s = OperationMixSampler(0.3, 0.1, stochastic=False)
        n_ls, n_miss = s.sample(1000.0, None)
        assert n_ls == pytest.approx(300.0)
        assert n_miss == pytest.approx(30.0)

    def test_stochastic_needs_rng(self):
        s = OperationMixSampler(0.3, 0.1, stochastic=True)
        with pytest.raises(ValueError):
            s.sample(100, None)

    def test_stochastic_bounds(self, rng):
        s = OperationMixSampler(0.3, 0.1, stochastic=True)
        n_ls, n_miss = s.sample(1000, rng)
        assert 0 <= n_miss <= n_ls <= 1000

    def test_stochastic_converges_to_mix(self, rng):
        s = OperationMixSampler(0.3, 0.1, stochastic=True)
        total_ls = sum(s.sample(10_000, rng)[0] for _ in range(50))
        assert total_ls / 500_000 == pytest.approx(0.3, abs=0.01)

    def test_zero_ops(self, rng):
        s = OperationMixSampler(0.3, 0.1, stochastic=True)
        assert s.sample(0, rng) == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OperationMixSampler(-0.1, 0.1)
        with pytest.raises(ValueError):
            OperationMixSampler(0.3, 1.1)
        s = OperationMixSampler(0.3, 0.1, stochastic=False)
        with pytest.raises(ValueError):
            s.sample(-5.0, None)

    def test_zero_miss_rate_never_misses(self, rng):
        s = OperationMixSampler(0.5, 0.0, stochastic=True)
        _, n_miss = s.sample(10_000, rng)
        assert n_miss == 0.0
