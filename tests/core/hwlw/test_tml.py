"""Regression tests: TML derived from the simulated memory system."""

import pytest

from repro.core.hwlw import derive_tml_params, nb_parameter
from repro.core.params import Table1Params
from repro.memsys import MemSysConfig


class TestDerivation:
    def test_random_traffic_near_the_activation_cost(self):
        derivation = derive_tml_params()
        # no-locality traffic pays ~one activation + page per access
        # (22 ns with paper timing); stray row hits pull it under
        assert 20.0 <= derivation.tml_cycles <= 22.0
        assert derivation.pattern == "random"
        assert derivation.n_requests == 4096
        assert (
            derivation.params.lwp_memory_cycles
            == derivation.tml_cycles
        )

    def test_closed_page_is_exactly_the_activation_cost(self):
        derivation = derive_tml_params(
            config=MemSysConfig(row_policy="closed")
        )
        assert derivation.tml_cycles == 22.0
        assert derivation.row_hit_rate == 0.0

    def test_streaming_bounds_below_random(self):
        streaming = derive_tml_params(pattern="sequential")
        random = derive_tml_params(pattern="random")
        assert streaming.tml_cycles < random.tml_cycles
        assert streaming.row_hit_rate > random.row_hit_rate

    def test_nb_reflects_the_measured_memory_system(self):
        table = Table1Params()
        derivation = derive_tml_params(table)
        # measured TML (~22) < the Table 1 constant (30), so the
        # simulated memory system lowers the break-even node count
        assert derivation.tml_cycles < table.lwp_memory_cycles
        assert nb_parameter(derivation.params) < nb_parameter(table)

    def test_base_params_cycle_time_scales_cycles(self):
        slow_host = Table1Params(hwp_cycle_ns=2.0)
        derivation = derive_tml_params(slow_host)
        reference = derive_tml_params()
        assert derivation.tml_ns == reference.tml_ns
        assert derivation.tml_cycles == pytest.approx(
            reference.tml_cycles / 2.0
        )

    def test_multi_bank_config_reduced_to_one_macro(self):
        derivation = derive_tml_params(config=MemSysConfig())
        # TML is per-macro: bank parallelism must not deflate it
        assert derivation.tml_cycles >= 20.0

    def test_deterministic(self):
        assert (
            derive_tml_params().tml_cycles
            == derive_tml_params().tml_cycles
        )

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError, match="n must be"):
            derive_tml_params(n=0)
