"""Tests for the HWP/LWP queuing simulation (paper §3.1)."""

import numpy as np
import pytest

from repro import Table1Params
from repro.core.hwlw import (
    HwlwSimConfig,
    HybridSystemModel,
    control_time,
    simulate_control,
    simulate_hybrid,
    test_time as pim_test_time,
)

P = Table1Params()
DET = HwlwSimConfig(stochastic=False)
# smaller workload for fast stochastic tests
SMALL = Table1Params(total_work=1_000_000)
SMALL_CFG = HwlwSimConfig(stochastic=True, chunk_ops=10_000, seed=7)


class TestDeterministicAgreement:
    """In expected-value mode the DES must match the closed form exactly."""

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9, 1.0])
    @pytest.mark.parametrize("n_nodes", [1, 3, 8, 64])
    def test_matches_analytic_exactly(self, fraction, n_nodes):
        r = simulate_hybrid(P, fraction, n_nodes, DET)
        assert r.completion_cycles == pytest.approx(
            float(pim_test_time(fraction, n_nodes, P)), rel=1e-12
        )

    def test_control_matches_analytic(self):
        for f in (0.0, 0.3, 1.0):
            r = simulate_control(P, f, DET)
            assert r.completion_cycles == pytest.approx(
                float(control_time(f, P)), rel=1e-12
            )

    def test_zero_fraction_no_lwp_activity(self):
        r = simulate_hybrid(P, 0.0, 8, DET)
        assert r.lwp_total_ops == 0.0
        assert r.hwp.ops_executed == pytest.approx(P.total_work)

    def test_full_fraction_no_hwp_activity(self):
        r = simulate_hybrid(P, 1.0, 8, DET)
        assert r.hwp.ops_executed == 0.0
        assert r.lwp_total_ops == pytest.approx(P.total_work)


class TestStochasticBehavior:
    def test_close_to_analytic(self):
        r = simulate_hybrid(SMALL, 0.5, 8, SMALL_CFG)
        expected = float(pim_test_time(0.5, 8, SMALL))
        assert r.completion_cycles == pytest.approx(expected, rel=0.02)

    def test_reproducible_with_seed(self):
        a = simulate_hybrid(SMALL, 0.5, 4, SMALL_CFG)
        b = simulate_hybrid(SMALL, 0.5, 4, SMALL_CFG)
        assert a.completion_cycles == b.completion_cycles

    def test_different_seed_differs(self):
        a = simulate_hybrid(SMALL, 0.5, 4, SMALL_CFG)
        b = simulate_hybrid(
            SMALL, 0.5, 4, HwlwSimConfig(True, seed=8, chunk_ops=10_000)
        )
        assert a.completion_cycles != b.completion_cycles

    def test_ops_conserved(self):
        r = simulate_hybrid(SMALL, 0.4, 8, SMALL_CFG)
        assert r.total_ops == pytest.approx(SMALL.total_work)

    def test_lwp_threads_balanced(self):
        r = simulate_hybrid(SMALL, 0.8, 8, SMALL_CFG)
        per_node = [n.ops_executed for n in r.lwp_nodes]
        assert max(per_node) - min(per_node) < 1e-9  # uniform split


class TestResultStructure:
    def test_section_times_sum_to_completion(self):
        r = simulate_hybrid(P, 0.5, 8, DET)
        assert sum(r.section_cycles) == pytest.approx(r.completion_cycles)
        assert len(r.section_cycles) == DET.sections

    def test_completion_ns_uses_cycle_time(self):
        r = simulate_hybrid(P, 0.2, 4, DET)
        assert r.completion_ns == pytest.approx(r.completion_cycles * 1.0)

    def test_component_stats_cycles_per_op(self):
        r = simulate_hybrid(P, 0.5, 8, DET)
        assert r.hwp.cycles_per_op() == pytest.approx(4.0)
        assert r.lwp_nodes[0].cycles_per_op() == pytest.approx(12.5)

    def test_lwp_phase_cycles_positive(self):
        r = simulate_hybrid(P, 0.5, 8, DET)
        assert r.lwp_phase_cycles > 0
        assert r.lwp_phase_cycles == pytest.approx(
            P.total_work * 0.5 * 12.5 / 8
        )

    def test_to_dict_fields(self):
        d = simulate_hybrid(P, 0.5, 8, DET).to_dict()
        assert set(d) >= {
            "lwp_fraction", "n_nodes", "completion_cycles", "completion_ns",
        }
        d2 = simulate_control(P, 0.5, DET).to_dict()
        assert "completion_cycles" in d2

    def test_model_result_cached(self):
        model = HybridSystemModel(P, 0.5, 4, DET)
        assert model.run() is model.run()

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            HybridSystemModel(P, 0.5, 0, DET)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HwlwSimConfig(sections=0)
        with pytest.raises(ValueError):
            HwlwSimConfig(chunk_ops=0)


class TestSectionInvariance:
    """The Fig. 4 alternation count must not change aggregate results."""

    @pytest.mark.parametrize("sections", [1, 2, 8, 32])
    def test_sections_do_not_change_completion(self, sections):
        cfg = HwlwSimConfig(sections=sections, stochastic=False)
        r = simulate_hybrid(P, 0.5, 8, cfg)
        assert r.completion_cycles == pytest.approx(
            float(pim_test_time(0.5, 8, P)), rel=1e-12
        )


class TestControlRun:
    def test_low_locality_uses_control_miss_rate(self):
        r = simulate_control(P, 1.0, DET)
        # all work at miss rate 1.0 -> 28.3 cycles/op
        assert r.hwp.cycles_per_op() == pytest.approx(28.3)

    def test_high_locality_uses_pmiss(self):
        r = simulate_control(P, 0.0, DET)
        assert r.hwp.cycles_per_op() == pytest.approx(4.0)

    def test_custom_control_miss_rate(self):
        params = Table1Params(control_miss_rate=0.5)
        r = simulate_control(params, 1.0, DET)
        expected = 1.0 + 0.3 * (1.0 + 0.5 * 90.0)
        assert r.hwp.cycles_per_op() == pytest.approx(expected)

    def test_gain_shape_vs_paper(self):
        """Simulated gain at the extreme corner lands near 145x."""
        control = simulate_control(P, 1.0, DET).completion_cycles
        test = simulate_hybrid(P, 1.0, 64, DET).completion_cycles
        assert control / test == pytest.approx(144.896, rel=1e-6)
