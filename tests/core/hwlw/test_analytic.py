"""Tests for the closed-form HWP/LWP model — the paper's §3.1.2 equations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Table1Params
from repro.core.hwlw import (
    control_time,
    crossover_width,
    hwp_cycles_per_op,
    lwp_cycles_per_op,
    nb_parameter,
    performance_gain,
    response_time_cycles,
    speedup_vs_no_lwp,
    test_time as pim_test_time,
    time_relative,
)

P = Table1Params()

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
nodes = st.floats(min_value=1.0, max_value=1024.0, allow_nan=False)
param_sets = st.builds(
    Table1Params,
    lwp_cycle_cycles=st.floats(min_value=1.0, max_value=20.0),
    hwp_memory_cycles=st.floats(min_value=0.0, max_value=500.0),
    hwp_cache_cycles=st.floats(min_value=1.0, max_value=10.0),
    lwp_memory_cycles=st.floats(min_value=0.0, max_value=200.0),
    miss_rate=st.floats(min_value=0.0, max_value=1.0),
    ls_mix=st.floats(min_value=0.0, max_value=1.0),
)


class TestPaperAnchors:
    """Exact values derivable from Table 1 (see DESIGN.md §6)."""

    def test_hwp_cycles_per_op_is_4(self):
        assert hwp_cycles_per_op(P) == pytest.approx(4.0)

    def test_lwp_cycles_per_op_is_12_5(self):
        assert lwp_cycles_per_op(P) == pytest.approx(12.5)

    def test_nb_is_3_125(self):
        assert nb_parameter(P) == pytest.approx(3.125)

    def test_control_no_reuse_cycles_per_op(self):
        assert hwp_cycles_per_op(P, miss_rate=1.0) == pytest.approx(28.3)

    def test_extreme_gain_approx_145x(self):
        """The paper's 'factor of 100X gain is observed' corner."""
        gain = float(performance_gain(1.0, 64, P))
        assert gain == pytest.approx(28.3 * 64 / 12.5, rel=1e-12)
        assert gain > 100.0

    def test_small_lwp_fraction_doubles_performance(self):
        """Paper: 'even for a small amount of LWP work including PIMs in
        the system may double the performance'."""
        gain = float(performance_gain(0.2, 64, P))
        assert gain > 2.0

    def test_figure6_anchor_0pct_flat_4e8(self):
        times = response_time_cycles(0.0, np.array([1.0, 8.0, 64.0]), P)
        assert np.allclose(times, 4.0e8)

    def test_figure6_anchor_100pct_one_node(self):
        assert float(response_time_cycles(1.0, 1, P)) == pytest.approx(
            1.25e9
        )


class TestTimeRelative:
    def test_zero_fraction_is_unity(self):
        assert float(time_relative(0.0, 16, P)) == 1.0

    def test_crossover_at_nb_for_all_fractions(self):
        """Fig. 7's coincidence point: Time_relative(NB) == 1 for any %WL."""
        nb = nb_parameter(P)
        f = np.linspace(0.0, 1.0, 11)
        assert np.allclose(time_relative(f, nb, P), 1.0)

    def test_equation_form_matches_paper(self):
        f, n = 0.37, 11.0
        nb = nb_parameter(P)
        assert float(time_relative(f, n, P)) == pytest.approx(
            1.0 - f * (1.0 - nb / n)
        )

    def test_broadcasting_grid(self):
        f = np.linspace(0, 1, 5)[:, None]
        n = np.array([1.0, 2.0, 4.0])[None, :]
        out = time_relative(f, n, P)
        assert out.shape == (5, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            time_relative(1.5, 8, P)
        with pytest.raises(ValueError):
            time_relative(0.5, 0.5, P)

    @given(fractions, nodes, param_sets)
    @settings(max_examples=100)
    def test_nb_threshold_property(self, f, n, params):
        """For N > NB PIM never loses; for N < NB and f > 0 it never wins.
        This is the paper's 'remarkable property'."""
        nb = nb_parameter(params)
        t = float(time_relative(f, n, params))
        if n >= nb:
            assert t <= 1.0 + 1e-12
        elif f > 0:
            assert t >= 1.0 - 1e-12

    @given(fractions, param_sets)
    @settings(max_examples=100)
    def test_monotone_in_nodes(self, f, params):
        ns = np.array([1.0, 2.0, 4.0, 8.0, 16.0])
        ts = time_relative(f, ns, params)
        assert np.all(np.diff(ts) <= 1e-12)

    @given(nodes, param_sets)
    @settings(max_examples=100)
    def test_linear_in_fraction(self, n, params):
        """Time_relative is affine in %WL at fixed N."""
        f = np.array([0.0, 0.5, 1.0])
        ts = time_relative(f, n, params)
        assert ts[1] == pytest.approx((ts[0] + ts[2]) / 2.0, rel=1e-9)


class TestAbsoluteTimes:
    def test_test_time_decomposition(self):
        f, n = 0.4, 8
        w = P.total_work
        expected = w * (0.6 * 4.0 + 0.4 * 12.5 / 8)
        assert float(pim_test_time(f, n, P)) == pytest.approx(expected)

    def test_control_time_decomposition(self):
        f = 0.4
        expected = P.total_work * (0.6 * 4.0 + 0.4 * 28.3)
        assert float(control_time(f, P)) == pytest.approx(expected)

    def test_gain_is_ratio(self):
        f, n = 0.7, 16
        assert float(performance_gain(f, n, P)) == pytest.approx(
            float(control_time(f, P)) / float(pim_test_time(f, n, P))
        )

    def test_gain_monotone_in_nodes(self):
        gains = performance_gain(0.5, np.array([1.0, 2.0, 4.0, 8.0]), P)
        assert np.all(np.diff(gains) > 0)

    def test_gain_at_zero_fraction_is_one(self):
        assert float(performance_gain(0.0, 64, P)) == pytest.approx(1.0)

    def test_speedup_reciprocal(self):
        assert float(speedup_vs_no_lwp(0.5, 8, P)) == pytest.approx(
            1.0 / float(time_relative(0.5, 8, P))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            pim_test_time(-0.1, 8, P)
        with pytest.raises(ValueError):
            pim_test_time(0.5, 0.0, P)
        with pytest.raises(ValueError):
            control_time(2.0, P)
        with pytest.raises(ValueError):
            hwp_cycles_per_op(P, miss_rate=-0.5)

    def test_crossover_width(self):
        worst, best = crossover_width(P)
        assert worst == pytest.approx(float(time_relative(1.0, 1.0, P)))
        assert best == pytest.approx(float(time_relative(1.0, 64.0, P)))
        assert worst > 1.0 > best
