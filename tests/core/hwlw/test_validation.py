"""Tests for the sim-vs-analytic validation experiment (paper §3.1.2)."""

import pytest

from repro import Table1Params
from repro.core.hwlw import validate_against_analytic
from repro.core.hwlw.validation import ValidationPoint

SMALL = Table1Params(total_work=2_000_000)


class TestValidationPoint:
    def test_relative_error(self):
        p = ValidationPoint(0.5, 8, 110.0, 100.0)
        assert p.relative_error == pytest.approx(0.1)

    def test_to_dict(self):
        d = ValidationPoint(0.5, 8, 110.0, 100.0).to_dict()
        assert d["relative_error"] == pytest.approx(0.1)


class TestValidationReport:
    def test_deterministic_mode_exact(self):
        report = validate_against_analytic(
            SMALL,
            lwp_fractions=(0.2, 0.8),
            node_counts=(1, 8),
            stochastic=False,
        )
        assert report.max_relative_error < 1e-9
        assert report.within_paper_envelope

    def test_stochastic_mode_within_paper_envelope(self):
        """The paper reports 5-18% accuracy; our structurally-identical
        models land far inside that envelope."""
        report = validate_against_analytic(
            SMALL,
            lwp_fractions=(0.1, 0.5, 1.0),
            node_counts=(1, 8, 64),
            stochastic=True,
            chunk_ops=20_000,
        )
        assert report.within_paper_envelope
        assert report.max_relative_error < 0.05
        assert report.mean_relative_error <= report.max_relative_error

    def test_grid_coverage(self):
        report = validate_against_analytic(
            SMALL, lwp_fractions=(0.5,), node_counts=(2, 4),
            stochastic=False,
        )
        assert len(report.points) == 2
        assert {p.n_nodes for p in report.points} == {2, 4}

    def test_rows_export(self):
        report = validate_against_analytic(
            SMALL, lwp_fractions=(0.5,), node_counts=(2,),
            stochastic=False,
        )
        rows = report.to_rows()
        assert len(rows) == 1
        assert "relative_error" in rows[0]
