"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.desim import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator starting at t=0."""
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that sample."""
    return np.random.default_rng(12345)
