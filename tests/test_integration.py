"""Cross-subsystem integration tests.

These tie the package's layers together the way the paper's argument
does: the *same* phenomenon must show up in the closed forms, the
statistical DES, and the functional ISA machine.
"""

import numpy as np
import pytest

from repro import ParcelParams, Table1Params
from repro.core.hwlw import nb_parameter, time_relative
from repro.core.parcels import compare_systems
from repro.isa import (
    IsaParams,
    PimSystem,
    assemble,
)
from repro.workloads import calibrate, standard_kernels


class TestLatencyHidingAcrossModels:
    """More outstanding parcels -> less idle, in both the statistical
    system model and the functional machine."""

    def _isa_idle(self, n_threads: int, latency: float = 400.0) -> float:
        """Idle fraction of node 0 running n_threads remote-heavy
        threads against node 1."""
        system = PimSystem(
            IsaParams(
                n_nodes=2, words_per_node=256, latency_cycles=latency
            )
        )
        # each thread fetch-adds a remote counter repeatedly
        system.load(
            assemble(
                """
                li r4, 1
                loop:
                amo r5, r1, r4
                addi r2, r2, -1
                bne r2, r0, loop
                halt
                """
            )
        )
        for t in range(n_threads):
            system.spawn(0, "", r1=300 + t, r2=8)  # node-1 addresses
        result = system.run()
        return result.per_node_idle[0]

    def test_functional_machine_hides_latency_with_threads(self):
        idle_1 = self._isa_idle(1)
        idle_4 = self._isa_idle(4)
        idle_16 = self._isa_idle(16)
        assert idle_1 > idle_4 > idle_16

    def test_statistical_model_agrees_in_direction(self):
        base = ParcelParams(
            n_nodes=2, remote_fraction=0.5, latency_cycles=400.0
        )
        idles = [
            compare_systems(
                base.with_(parallelism=p), 10_000.0
            ).test.idle_fraction
            for p in (1, 4, 16)
        ]
        assert idles[0] > idles[1] > idles[2]


class TestCalibrationFeedsTheModels:
    """Trace-derived parameters flow into both studies end to end."""

    @pytest.fixture(scope="class")
    def calibrated(self):
        return calibrate(standard_kernels(accesses=3_000))

    def test_calibrated_table1_drives_partitioning_model(self, calibrated):
        params = calibrated.table1
        nb = nb_parameter(params)
        assert nb > 0
        # beyond the calibrated NB the PIM system must win
        n = int(np.ceil(nb)) + 1
        assert float(
            time_relative(calibrated.lwp_fraction, n, params)
        ) < 1.0

    def test_calibrated_parcels_drive_latency_model(self, calibrated):
        params = calibrated.parcels.with_(
            n_nodes=4, parallelism=32, latency_cycles=1000.0
        )
        cmp = compare_systems(params, 10_000.0)
        # a data-intensive calibrated mix has plenty to hide
        assert cmp.ratio > 2.0


class TestConsistentParameterization:
    """Table 1 and the parcel study share the LWP's memory character."""

    def test_shared_memory_cycles(self):
        assert Table1Params().lwp_memory_cycles == pytest.approx(
            ParcelParams().memory_cycles
        )
        assert Table1Params().ls_mix == pytest.approx(
            ParcelParams().ls_mix
        )

    def test_isa_defaults_match_study_defaults(self):
        isa = IsaParams()
        assert isa.memory_cycles == Table1Params().lwp_memory_cycles
        assert isa.send_overhead_cycles == (
            ParcelParams().send_overhead_cycles
        )
