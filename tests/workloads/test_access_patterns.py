"""Tests for the synthetic address-trace generators."""

import numpy as np
import pytest

from repro.workloads import (
    blocked_reuse_trace,
    gups_trace,
    mixed_trace,
    pointer_chase_trace,
    random_trace,
    sequential_trace,
    strided_trace,
)


class TestSequentialAndStrided:
    def test_sequential_unit_stride(self):
        t = sequential_trace(5, start=100, word_bytes=8)
        assert list(t) == [100, 108, 116, 124, 132]

    def test_strided(self):
        t = strided_trace(4, stride_bytes=256)
        assert list(t) == [0, 256, 512, 768]

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_trace(-1)
        with pytest.raises(ValueError):
            strided_trace(4, 0)


class TestRandomAndGups:
    def test_random_within_footprint(self):
        t = random_trace(10_000, footprint_bytes=4096, seed=1)
        assert t.min() >= 0
        assert t.max() < 4096
        assert np.all(t % 8 == 0)  # word aligned

    def test_random_reproducible(self):
        a = random_trace(100, 1 << 20, seed=5)
        b = random_trace(100, 1 << 20, seed=5)
        assert np.array_equal(a, b)

    def test_gups_alias(self):
        a = gups_trace(100, 1 << 20, seed=5)
        b = random_trace(100, 1 << 20, seed=5)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_trace(10, footprint_bytes=4)


class TestPointerChase:
    def test_visits_distinct_nodes_before_repeating(self):
        t = pointer_chase_trace(64, footprint_bytes=64 * 16, node_bytes=16)
        assert len(np.unique(t)) == 64  # full permutation first

    def test_wraps_after_full_cycle(self):
        t = pointer_chase_trace(130, footprint_bytes=64 * 16, node_bytes=16)
        assert np.array_equal(t[:64], t[64:128])

    def test_alignment(self):
        t = pointer_chase_trace(50, 1 << 16, node_bytes=16)
        assert np.all(t % 16 == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pointer_chase_trace(10, footprint_bytes=8, node_bytes=16)


class TestBlockedReuse:
    def test_block_swept_repeatedly(self):
        t = blocked_reuse_trace(
            n=16, block_bytes=32, reuse_factor=2, word_bytes=8
        )
        # block of 4 words swept twice, then next block
        assert list(t[:8]) == [0, 8, 16, 24, 0, 8, 16, 24]
        assert list(t[8:12]) == [32, 40, 48, 56]

    def test_exact_length(self):
        t = blocked_reuse_trace(100, 64, 3)
        assert len(t) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            blocked_reuse_trace(10, 4, 1)
        with pytest.raises(ValueError):
            blocked_reuse_trace(10, 64, 0)


class TestMixedTrace:
    def test_draws_from_both_sources(self):
        a = sequential_trace(100, start=0)
        b = sequential_trace(100, start=1_000_000)
        m = mixed_trace([a, b], [0.5, 0.5], n=200, seed=0)
        assert np.any(m < 1000)
        assert np.any(m >= 1_000_000)
        assert len(m) == 200

    def test_degenerate_weight(self):
        a = sequential_trace(10, start=0)
        b = sequential_trace(10, start=999)
        m = mixed_trace([a, b], [1.0, 0.0], n=20, seed=0)
        assert np.all(m < 999)

    def test_validation(self):
        with pytest.raises(ValueError):
            mixed_trace([], [], 10)
        with pytest.raises(ValueError):
            mixed_trace([sequential_trace(5)], [-1.0], 10)
