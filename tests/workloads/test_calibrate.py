"""Tests for kernel models and parameter calibration."""

import numpy as np
import pytest

from repro import ParcelParams, Table1Params
from repro.workloads import (
    KernelModel,
    calibrate,
    kernel_by_name,
    sequential_trace,
    standard_kernels,
)

# small trace size keeps reuse-distance analysis fast in tests
SMALL = 4_000


@pytest.fixture(scope="module")
def result():
    return calibrate(standard_kernels(accesses=SMALL))


class TestKernelModels:
    def test_suite_composition(self):
        names = [k.name for k in standard_kernels(accesses=64)]
        assert names == [
            "dense_tiled", "stream", "spmv_irregular", "gups",
            "pointer_chase",
        ]

    def test_kernel_by_name(self):
        k = kernel_by_name("gups", accesses=64)
        assert k.name == "gups"
        with pytest.raises(KeyError):
            kernel_by_name("fft", accesses=64)

    def test_operations_derived_from_mix(self):
        k = kernel_by_name("gups", accesses=300)
        assert k.operations == round(300 / k.ls_mix)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelModel(
                name="x", description="", ls_mix=0.0,
                trace=sequential_trace(4),
                remote_fraction_distributed=0.1,
                expected_locality="low",
            )
        with pytest.raises(ValueError):
            KernelModel(
                name="x", description="", ls_mix=0.5,
                trace=sequential_trace(0),
                remote_fraction_distributed=0.1,
                expected_locality="low",
            )
        with pytest.raises(ValueError):
            KernelModel(
                name="x", description="", ls_mix=0.5,
                trace=sequential_trace(4),
                remote_fraction_distributed=0.1,
                expected_locality="medium",
            )


class TestCalibration:
    def test_measured_locality_matches_design_intent(self, result):
        """Each archetype lands on the side the paper's intuition puts
        it — the calibration validates the partitioning story."""
        for k in result.kernels:
            assert k.locality == k.kernel.expected_locality, k.kernel.name

    def test_derived_parameters_plausible(self, result):
        # high-locality side: good cache behavior (paper assumes 0.1)
        assert result.hwp_miss_rate < 0.2
        # no-reuse side: poor cache behavior (paper assumes 1.0)
        assert result.control_miss_rate > 0.6
        # mixes near Table 1's 0.30
        assert 0.2 < result.ls_mix < 0.6
        # a data-intensive suite puts most operations on PIM
        assert 0.4 < result.lwp_fraction <= 1.0
        assert 0.0 < result.remote_fraction <= 1.0

    def test_emitted_param_objects(self, result):
        assert isinstance(result.table1, Table1Params)
        assert isinstance(result.parcels, ParcelParams)
        assert result.table1.miss_rate == pytest.approx(
            min(max(result.hwp_miss_rate, 0), 1)
        )
        assert result.parcels.remote_fraction == pytest.approx(
            result.remote_fraction
        )
        # machine-side parameters preserved from the base
        assert result.table1.lwp_memory_cycles == 30.0

    def test_weights_shift_lwp_fraction(self):
        kernels = standard_kernels(accesses=SMALL)
        heavy_dense = calibrate(kernels, weights=[10, 1, 1, 1, 1])
        heavy_gups = calibrate(kernels, weights=[1, 1, 1, 10, 1])
        assert heavy_dense.lwp_fraction < heavy_gups.lwp_fraction

    def test_weight_validation(self):
        kernels = standard_kernels(accesses=256)
        with pytest.raises(ValueError):
            calibrate(kernels, weights=[1.0])
        with pytest.raises(ValueError):
            calibrate(kernels, weights=[-1, 1, 1, 1, 1])
        with pytest.raises(ValueError):
            calibrate([])

    def test_rows_export(self, result):
        rows = result.to_rows()
        assert len(rows) == len(result.kernels) + 1
        assert rows[-1]["kernel"] == "== derived =="

    def test_all_low_locality_suite(self):
        kernels = [
            k for k in standard_kernels(accesses=SMALL)
            if k.expected_locality == "low"
        ]
        res = calibrate(kernels)
        assert res.lwp_fraction == 1.0
        # no high-locality kernels: falls back to the paper's Pmiss
        assert res.table1.miss_rate == pytest.approx(0.1)
