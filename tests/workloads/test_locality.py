"""Tests for reuse-distance analysis and locality profiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    blocked_reuse_trace,
    profile_trace,
    random_trace,
    reuse_distances,
    sequential_trace,
)


class TestReuseDistances:
    def test_cold_misses_are_minus_one(self):
        d = reuse_distances([0, 64, 128], line_bytes=64)
        assert list(d) == [-1, -1, -1]

    def test_immediate_reuse_distance_zero(self):
        d = reuse_distances([0, 0, 0], line_bytes=64)
        assert list(d) == [-1, 0, 0]

    def test_classic_stack_distance_example(self):
        # lines: A B C A -> A's reuse sees 2 distinct lines (B, C)
        d = reuse_distances([0, 64, 128, 0], line_bytes=64)
        assert list(d) == [-1, -1, -1, 2]

    def test_line_granularity_groups_words(self):
        # two words in the same 64B line: second access is a reuse
        d = reuse_distances([0, 8], line_bytes=64)
        assert list(d) == [-1, 0]
        # word granularity separates them
        d = reuse_distances([0, 8], line_bytes=8)
        assert list(d) == [-1, -1]

    def test_lru_stack_property(self):
        # A B A B: each reuse sees exactly 1 distinct other line
        d = reuse_distances([0, 64, 0, 64], line_bytes=64)
        assert list(d) == [-1, -1, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            reuse_distances([0], line_bytes=0)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=40),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_distance_bounded_by_distinct_lines(self, lines):
        addrs = [l * 64 for l in lines]
        d = reuse_distances(addrs, line_bytes=64)
        n_distinct = len(set(lines))
        assert np.all(d < n_distinct)
        assert np.all(d >= -1)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=60),
            min_size=1,
            max_size=150,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_fully_associative_lru_cache(self, lines):
        """An access hits a fully-associative LRU cache of C lines iff
        its stack distance is in [0, C)."""
        from repro.arch.cache import SetAssociativeCache

        addrs = [l * 64 for l in lines]
        capacity = 8
        d = reuse_distances(addrs, line_bytes=64)
        cache = SetAssociativeCache(
            size_bytes=capacity * 64, line_bytes=64, associativity=capacity
        )
        hits = [cache.access(a) for a in addrs]
        predicted = [(0 <= dist < capacity) for dist in d]
        assert hits == predicted


class TestProfileTrace:
    def test_streaming_profile(self):
        p = profile_trace(sequential_trace(4096))
        # spatial locality -> good cache hit rate (7/8 line hits)
        assert p.cache_hit_rate > 0.8
        # but no temporal reuse at word granularity
        assert p.temporal_locality_score < 0.01
        assert p.classify() == "low"

    def test_tiled_profile(self):
        p = profile_trace(
            blocked_reuse_trace(4096, block_bytes=4096, reuse_factor=8)
        )
        assert p.temporal_locality_score > 0.8
        assert p.classify() == "high"
        assert p.cache_hit_rate > 0.9

    def test_random_huge_footprint_profile(self):
        p = profile_trace(random_trace(4096, 1 << 28, seed=0))
        assert p.temporal_locality_score < 0.05
        assert p.cache_hit_rate < 0.05
        assert p.classify() == "low"

    def test_profile_fields_consistent(self):
        p = profile_trace(sequential_trace(1000))
        assert p.accesses == 1000
        assert 0.0 <= p.cold_fraction <= 1.0
        assert p.distinct_lines == 125  # 1000 words / 8 per line

    def test_reuse_windows_monotone(self):
        p = profile_trace(
            blocked_reuse_trace(2048, block_bytes=8192, reuse_factor=4)
        )
        values = [p.reuse_fraction_within[w] for w in (16, 64, 256, 1024)]
        assert values == sorted(values)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            profile_trace([])
