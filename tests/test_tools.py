"""The bench-record comparison tool (``tools/compare_bench.py``).

CI snapshots the committed ``BENCH_*.json`` baselines, re-measures,
then runs this tool; these tests pin its failure modes — floor misses,
weakened floors, malformed/unknown records, missing baselines — so a
perf regression can't land through a tooling gap.
"""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import compare_bench  # noqa: E402


def memsys_record(**overrides):
    record = {
        "benchmark": "memsys_replay_throughput",
        "fast_requests_per_sec": 5_000_000,
        "refresh_requests_per_sec": 3_000_000,
        "telemetry_overhead_pct": 1.0,
        "floor_requests_per_sec": 1_000_000,
        "floor_telemetry_overhead_pct": 5.0,
        "passed": True,
    }
    record.update(overrides)
    return record


def farm_record(**overrides):
    record = {
        "benchmark": "farm_replay_speedup",
        "speedup": 2.5,
        "floor_speedup": 2.0,
        "floor_enforced": True,
        "passed": True,
    }
    record.update(overrides)
    return record


class TestCompareRecord:
    def test_clean_record_reports_and_passes(self):
        problems, report = compare_bench.compare_record(
            memsys_record(), memsys_record()
        )
        assert problems == []
        # one report line per floored metric, with baseline deltas
        assert len(report) == 3
        assert all("ok" in line for line in report)
        assert all("baseline" in line for line in report)

    def test_no_baseline_still_checks_own_floors(self):
        problems, report = compare_bench.compare_record(
            memsys_record(), None
        )
        assert problems == []
        assert all("baseline" not in line for line in report)

    def test_passed_false_is_a_problem(self):
        problems, _ = compare_bench.compare_record(
            memsys_record(passed=False), None
        )
        assert any("passed=false" in p for p in problems)

    def test_min_floor_miss(self):
        problems, report = compare_bench.compare_record(
            memsys_record(fast_requests_per_sec=999_999), None
        )
        assert any(
            "fast_requests_per_sec" in p and "misses floor" in p
            for p in problems
        )
        assert any("FLOOR MISS" in line for line in report)

    def test_max_ceiling_miss(self):
        problems, _ = compare_bench.compare_record(
            memsys_record(telemetry_overhead_pct=5.0), None
        )
        assert any("telemetry_overhead_pct" in p for p in problems)

    def test_weakened_min_floor_vs_baseline(self):
        problems, _ = compare_bench.compare_record(
            memsys_record(floor_requests_per_sec=500_000),
            memsys_record(),
        )
        assert any("weakened" in p for p in problems)

    def test_weakened_max_ceiling_vs_baseline(self):
        problems, _ = compare_bench.compare_record(
            memsys_record(floor_telemetry_overhead_pct=50.0),
            memsys_record(),
        )
        assert any("weakened" in p for p in problems)

    def test_tightened_floor_is_fine(self):
        problems, _ = compare_bench.compare_record(
            memsys_record(floor_requests_per_sec=2_000_000),
            memsys_record(),
        )
        assert problems == []

    def test_unknown_benchmark_name(self):
        problems, _ = compare_bench.compare_record(
            memsys_record(benchmark="mystery_bench"), None
        )
        assert any("unknown benchmark" in p for p in problems)

    def test_missing_metric_and_floor_keys(self):
        record = memsys_record()
        del record["fast_requests_per_sec"]
        del record["floor_telemetry_overhead_pct"]
        problems, _ = compare_bench.compare_record(record, None)
        assert any("lacks metric" in p for p in problems)
        assert any("lacks floor" in p for p in problems)

    def test_floors_table_covers_all_committed_records(self):
        """Every committed BENCH_*.json is comparable as-is."""
        records = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert len(records) == 4
        for path in records:
            fresh = json.loads(path.read_text())
            problems, report = compare_bench.compare_record(fresh, fresh)
            assert problems == [], path.name
            assert report, path.name


class TestGatedFloors:
    def test_enforced_gate_misses_like_any_floor(self):
        problems, report = compare_bench.compare_record(
            farm_record(speedup=1.1), None
        )
        assert any("misses floor" in p for p in problems)
        assert any("FLOOR MISS" in line for line in report)

    def test_open_gate_reports_but_does_not_fail(self):
        problems, report = compare_bench.compare_record(
            farm_record(speedup=1.1, floor_enforced=False), None
        )
        assert problems == []
        assert any("not enforced" in line for line in report)

    def test_open_gate_still_catches_weakened_floor(self):
        # a 1-core runner must not be a loophole for lowering the
        # committed speedup floor
        problems, _ = compare_bench.compare_record(
            farm_record(
                speedup=1.1, floor_speedup=1.0, floor_enforced=False
            ),
            farm_record(),
        )
        assert any("weakened" in p for p in problems)

    def test_passing_gated_record_is_clean(self):
        problems, _ = compare_bench.compare_record(
            farm_record(), farm_record()
        )
        assert problems == []


class TestRemeasure:
    def write(self, directory, record, name="BENCH_memsys.json"):
        path = directory / name
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_floor_miss_gets_one_retry(
        self, tmp_path, capsys, monkeypatch
    ):
        fresh = self.write(
            tmp_path, memsys_record(fast_requests_per_sec=10)
        )
        calls = []

        def fake_remeasure(path):
            calls.append(path)
            # the "re-run" produces a healthy record
            self.write(tmp_path, memsys_record())
            return True

        monkeypatch.setattr(
            compare_bench, "_remeasure", fake_remeasure
        )
        assert compare_bench.main([str(fresh), "--remeasure"]) == 0
        assert calls == [fresh]

    def test_second_miss_still_fails(
        self, tmp_path, capsys, monkeypatch
    ):
        fresh = self.write(
            tmp_path, memsys_record(fast_requests_per_sec=10)
        )
        calls = []

        def fake_remeasure(path):
            calls.append(path)
            return True  # record unchanged: the miss persists

        monkeypatch.setattr(
            compare_bench, "_remeasure", fake_remeasure
        )
        assert compare_bench.main([str(fresh), "--remeasure"]) == 1
        assert len(calls) == 1  # one bounded retry, not a loop
        assert "misses floor" in capsys.readouterr().err

    def test_weakened_floor_is_never_retried(
        self, tmp_path, capsys, monkeypatch
    ):
        fresh_dir = tmp_path / "fresh"
        base_dir = tmp_path / "base"
        fresh_dir.mkdir(), base_dir.mkdir()
        fresh = self.write(
            fresh_dir, memsys_record(floor_requests_per_sec=500_000)
        )
        self.write(base_dir, memsys_record())
        calls = []
        monkeypatch.setattr(
            compare_bench,
            "_remeasure",
            lambda path: calls.append(path) or True,
        )
        assert (
            compare_bench.main(
                [
                    str(fresh),
                    "--baseline", str(base_dir),
                    "--remeasure",
                ]
            )
            == 1
        )
        assert calls == []  # weakening is not a measurement outcome

    def test_without_flag_no_retry(self, tmp_path, monkeypatch):
        fresh = self.write(
            tmp_path, memsys_record(fast_requests_per_sec=10)
        )
        calls = []
        monkeypatch.setattr(
            compare_bench,
            "_remeasure",
            lambda path: calls.append(path) or True,
        )
        assert compare_bench.main([str(fresh)]) == 1
        assert calls == []

    def test_unknown_record_stem_cannot_remeasure(
        self, tmp_path, capsys
    ):
        fresh = self.write(
            tmp_path,
            memsys_record(fast_requests_per_sec=10),
            name="BENCH_noscript.json",
        )
        assert compare_bench.main([str(fresh), "--remeasure"]) == 1
        assert "cannot re-measure" in capsys.readouterr().err


class TestSpreadAwareNoise:
    """Records carrying their own noise estimate get the NOISY MISS
    verdict when the miss is smaller than the measured spread."""

    def test_miss_within_spread_is_noisy(self):
        problems, report = compare_bench.compare_record(
            memsys_record(
                telemetry_overhead_pct=6.0,
                telemetry_overhead_spread_pct=2.0,
            ),
            None,
        )
        assert any("NOISY MISS" in line for line in report)
        # still a problem (exit 1 without --remeasure), but marked as
        # a re-measure signal the retry path can downgrade
        assert any(
            "misses floor" in p and "within spread" in p
            for p in problems
        )

    def test_miss_beyond_spread_is_a_plain_floor_miss(self):
        problems, report = compare_bench.compare_record(
            memsys_record(
                telemetry_overhead_pct=6.0,
                telemetry_overhead_spread_pct=0.5,
            ),
            None,
        )
        assert any("FLOOR MISS" in line for line in report)
        assert not any("within spread" in p for p in problems)

    def test_spread_without_a_miss_changes_nothing(self):
        problems, report = compare_bench.compare_record(
            memsys_record(telemetry_overhead_spread_pct=90.0),
            memsys_record(),
        )
        assert problems == []
        assert all("NOISY" not in line for line in report)

    def test_missing_spread_key_means_strict_floor(self):
        # committed records predating the spread field keep the old
        # strict behavior
        problems, report = compare_bench.compare_record(
            memsys_record(telemetry_overhead_pct=6.0), None
        )
        assert any("FLOOR MISS" in line for line in report)
        assert not any("within spread" in p for p in problems)

    def write(self, directory, record, name="BENCH_memsys.json"):
        path = directory / name
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_persistent_noisy_miss_tolerated_after_remeasure(
        self, tmp_path, capsys, monkeypatch
    ):
        noisy = memsys_record(
            telemetry_overhead_pct=6.0,
            telemetry_overhead_spread_pct=2.0,
        )
        fresh = self.write(tmp_path, noisy)
        calls = []
        monkeypatch.setattr(
            compare_bench,
            "_remeasure",
            lambda path: calls.append(path) or True,
        )
        # the record is unchanged by the "re-run": the miss persists,
        # but inside the spread it is noise, not a regression
        assert compare_bench.main([str(fresh), "--remeasure"]) == 0
        assert calls == [fresh]
        err = capsys.readouterr().err
        assert "tolerated after re-measure" in err
        assert "within spread" in err

    def test_noisy_miss_without_remeasure_still_fails(
        self, tmp_path, capsys
    ):
        fresh = self.write(
            tmp_path,
            memsys_record(
                telemetry_overhead_pct=6.0,
                telemetry_overhead_spread_pct=2.0,
            ),
        )
        assert compare_bench.main([str(fresh)]) == 1
        assert "within spread" in capsys.readouterr().err

    def test_persistent_miss_beyond_spread_still_fails(
        self, tmp_path, capsys, monkeypatch
    ):
        fresh = self.write(
            tmp_path,
            memsys_record(
                telemetry_overhead_pct=6.0,
                telemetry_overhead_spread_pct=0.25,
            ),
        )
        monkeypatch.setattr(
            compare_bench, "_remeasure", lambda path: True
        )
        assert compare_bench.main([str(fresh), "--remeasure"]) == 1
        assert "misses floor" in capsys.readouterr().err


class TestHistory:
    def write(self, directory, record, name="BENCH_memsys.json"):
        path = directory / name
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_first_run_creates_the_trajectory(self, tmp_path, capsys):
        fresh = self.write(
            tmp_path,
            memsys_record(telemetry_overhead_spread_pct=1.5),
        )
        history = tmp_path / "BENCH_HISTORY.jsonl"
        assert compare_bench.main(
            [str(fresh), "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        assert (
            "history: memsys_replay_throughput"
            ".fast_requests_per_sec = 5e+06 (new)" in out
        )
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert isinstance(entry["t"], int)
        kept = entry["records"]["memsys_replay_throughput"]
        # every floored metric + floor + spread + the pass verdict
        assert set(kept) == {
            "fast_requests_per_sec",
            "refresh_requests_per_sec",
            "telemetry_overhead_pct",
            "telemetry_overhead_spread_pct",
            "floor_requests_per_sec",
            "floor_telemetry_overhead_pct",
            "passed",
        }

    def test_second_run_appends_and_prints_deltas(
        self, tmp_path, capsys
    ):
        history = tmp_path / "BENCH_HISTORY.jsonl"
        fresh = self.write(tmp_path, memsys_record())
        assert compare_bench.main(
            [str(fresh), "--history", str(history)]
        ) == 0
        capsys.readouterr()
        self.write(
            tmp_path, memsys_record(fast_requests_per_sec=6_000_000)
        )
        assert compare_bench.main(
            [str(fresh), "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        assert (
            "history: memsys_replay_throughput"
            ".fast_requests_per_sec = 6e+06 "
            "[previous 5e+06, +1e+06]" in out
        )
        assert len(history.read_text().splitlines()) == 2

    def test_failing_run_is_still_recorded(self, tmp_path, capsys):
        fresh = self.write(
            tmp_path, memsys_record(fast_requests_per_sec=10)
        )
        history = tmp_path / "hist.jsonl"
        assert compare_bench.main(
            [str(fresh), "--history", str(history)]
        ) == 1
        entry = json.loads(history.read_text())
        assert (
            entry["records"]["memsys_replay_throughput"][
                "fast_requests_per_sec"
            ]
            == 10
        )

    def test_corrupt_history_lines_are_skipped(self, tmp_path, capsys):
        history = tmp_path / "hist.jsonl"
        history.write_text(
            "not json at all\n"
            + json.dumps(
                {
                    "t": 1,
                    "records": {
                        "memsys_replay_throughput": {
                            "fast_requests_per_sec": 4_000_000
                        }
                    },
                }
            )
            + "\n"
        )
        fresh = self.write(tmp_path, memsys_record())
        assert compare_bench.main(
            [str(fresh), "--history", str(history)]
        ) == 0
        out = capsys.readouterr().out
        # the last parseable entry is the comparison point
        assert "[previous 4e+06, +1e+06]" in out
        assert len(history.read_text().splitlines()) == 3


class TestMain:
    def write(self, directory, record, name="BENCH_memsys.json"):
        path = directory / name
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_pass_exit_0(self, tmp_path, capsys):
        fresh_dir = tmp_path / "fresh"
        base_dir = tmp_path / "base"
        fresh_dir.mkdir(), base_dir.mkdir()
        fresh = self.write(fresh_dir, memsys_record())
        self.write(base_dir, memsys_record())
        assert compare_bench.main(
            [str(fresh), "--baseline", str(base_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "bench records OK" in out

    def test_floor_miss_exit_1(self, tmp_path, capsys):
        fresh = self.write(
            tmp_path,
            memsys_record(refresh_requests_per_sec=10, passed=False),
        )
        assert compare_bench.main([str(fresh)]) == 1
        err = capsys.readouterr().err
        assert "misses floor" in err

    def test_missing_baseline_exit_1(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        fresh = self.write(tmp_path, memsys_record())
        assert compare_bench.main(
            [str(fresh), "--baseline", str(empty)]
        ) == 1
        assert "no baseline" in capsys.readouterr().err

    def test_unreadable_record_exit_1(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        assert compare_bench.main([str(bad)]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_no_records_exit_2(self, tmp_path, capsys, monkeypatch):
        missing = tmp_path / "BENCH_none.json"
        assert compare_bench.main([str(missing)]) == 1

    def test_committed_records_pass_as_their_own_baseline(self, capsys):
        """The CI invocation shape, against the repository's own
        committed records."""
        records = [
            str(path) for path in sorted(REPO_ROOT.glob("BENCH_*.json"))
        ]
        assert compare_bench.main(
            records + ["--baseline", str(REPO_ROOT)]
        ) == 0
