"""Tests for the repro-pim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_args(self):
        args = build_parser().parse_args(
            ["run", "table1", "figure7", "--seed", "3", "--full"]
        )
        assert args.names == ["table1", "figure7"]
        assert args.seed == 3
        assert args.full

    def test_out_dir(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "table1", "--out", str(tmp_path)]
        )
        assert args.out == tmp_path

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_exit_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out
        assert "Fig. 7" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "all shape checks passed" in out

    def test_unknown_experiment_exit_2(self, capsys):
        assert main(["run", "figure99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "figure7" in err  # lists available

    def test_run_with_artifacts(self, tmp_path, capsys):
        assert (
            main(["run", "bandwidth", "--out", str(tmp_path)]) == 0
        )
        assert (tmp_path / "bandwidth" / "report.txt").exists()
