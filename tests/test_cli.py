"""Tests for the repro-pim command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_args(self):
        args = build_parser().parse_args(
            ["run", "table1", "figure7", "--seed", "3", "--full"]
        )
        assert args.names == ["table1", "figure7"]
        assert args.seed == 3
        assert args.full

    def test_out_dir(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "table1", "--out", str(tmp_path)]
        )
        assert args.out == tmp_path

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_replay_command_args(self, tmp_path):
        args = build_parser().parse_args(
            [
                "replay", str(tmp_path / "a.trace"),
                "--engine", "fast",
                "--scheme", "channel-interleaved",
                "--policy", "fcfs",
                "--channels", "4",
                "--queue-depth", "8",
            ]
        )
        assert args.command == "replay"
        assert args.engine == "fast"
        assert args.scheme == "channel-interleaved"
        assert args.policy == "fcfs"
        assert args.channels == 4
        assert args.queue_depth == 8

    def test_replay_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["replay", "a.trace", "--engine", "warp"]
            )

    def test_pimexec_command_args(self, tmp_path):
        args = build_parser().parse_args(
            [
                "pimexec", "--kernel", "gemv", "--n", "256",
                "--engine", "fast", "--seed", "7",
            ]
        )
        assert args.command == "pimexec"
        assert args.kernel == "gemv"
        assert args.n == 256
        assert args.engine == "fast"
        assert args.seed == 7
        assert args.trace is None
        trace_args = build_parser().parse_args(
            ["pimexec", "--trace", str(tmp_path / "p.trace")]
        )
        assert trace_args.trace == tmp_path / "p.trace"


class TestMain:
    def test_list_exit_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure7" in out
        assert "Fig. 7" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert "all shape checks passed" in out

    def test_unknown_experiment_exit_2(self, capsys):
        assert main(["run", "figure99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "figure7" in err  # lists available

    def test_run_with_artifacts(self, tmp_path, capsys):
        assert (
            main(["run", "bandwidth", "--out", str(tmp_path)]) == 0
        )
        assert (tmp_path / "bandwidth" / "report.txt").exists()

    def test_replay_trace_file(self, tmp_path, capsys):
        from repro.memsys import MemSysConfig, synthesize_trace, write_trace

        config = MemSysConfig(n_channels=2)
        path = write_trace(
            tmp_path / "demo.trace",
            synthesize_trace("sequential", 128, config),
        )
        assert main(["replay", str(path), "--engine", "fast"]) == 0
        out = capsys.readouterr().out
        assert "128 requests" in out
        assert "fast-" in out
        assert "sustained_gbit_per_s" in out

    def test_replay_missing_file_exit_2(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "nope.trace")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_replay_bad_config_exit_2(self, tmp_path, capsys):
        from repro.memsys import MemRequest, Op, write_trace

        path = write_trace(
            tmp_path / "one.trace", [MemRequest(Op.READ, 0)]
        )
        assert (
            main(["replay", str(path), "--channels", "3"]) == 2
        )
        assert "replay failed" in capsys.readouterr().err

    def test_pimexec_kernel_run(self, capsys):
        assert main(["pimexec", "--kernel", "vector-sum", "--n", "512"]) == 0
        out = capsys.readouterr().out
        assert "vector-sum" in out
        assert "yes" in out  # the bit-exactness column

    def test_pimexec_unknown_kernel_exit_2(self, capsys):
        assert main(["pimexec", "--kernel", "fft"]) == 2
        err = capsys.readouterr().err
        assert "unknown kernel" in err
        assert "gemv" in err

    def test_pimexec_trace_replay(self, tmp_path, capsys):
        path = tmp_path / "program.trace"
        path.write_text(
            "W MEM 0 0 3\nAB W\n"
            "PIM MAC GRF,8 BANK,0,3,0 SRF,0\nPIM EXIT\n"
        )
        assert main(["pimexec", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "4 records" in out
        assert "pim=1" in out

    def test_pimexec_missing_trace_exit_2(self, tmp_path, capsys):
        assert (
            main(["pimexec", "--trace", str(tmp_path / "nope.trace")])
            == 2
        )
        assert "no such trace file" in capsys.readouterr().err

    def test_pimexec_malformed_trace_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_text("PIM FMA GRF,0 BANK SRF,0\n")
        assert main(["pimexec", "--trace", str(path)]) == 2
        assert "pimexec replay failed" in capsys.readouterr().err


class TestReplayRefreshAndTimestamps:
    def test_replay_with_refresh_knobs(self, tmp_path, capsys):
        from repro.memsys import MemSysConfig, synthesize_trace, write_trace

        config = MemSysConfig(n_channels=2)
        path = write_trace(
            tmp_path / "refresh.trace",
            # long enough to cross several 3900 ns refresh boundaries
            synthesize_trace("sequential", 8192, config),
        )
        assert main([
            "replay", str(path),
            "--trefi", "3900", "--trfc", "350",
        ]) == 0
        refreshed = capsys.readouterr().out
        assert main(["replay", str(path)]) == 0
        ideal = capsys.readouterr().out

        def gbit(out):
            for line in out.splitlines():
                if line.startswith("sustained_gbit_per_s"):
                    return float(line.split()[-1])
            raise AssertionError(out)

        assert gbit(refreshed) < gbit(ideal)

    def test_replay_per_bank_granularity(self, tmp_path, capsys):
        from repro.memsys import MemSysConfig, synthesize_trace, write_trace

        config = MemSysConfig(n_channels=2)
        path = write_trace(
            tmp_path / "perbank.trace",
            synthesize_trace("sequential", 128, config),
        )
        assert main([
            "replay", str(path),
            "--trefi", "3900", "--trfc", "350",
            "--refresh-granularity", "per-bank",
        ]) == 0
        assert "fast-exact" in capsys.readouterr().out

    def test_replay_invalid_refresh_exit_2(self, tmp_path, capsys):
        from repro.memsys import MemRequest, Op, write_trace

        path = write_trace(
            tmp_path / "one.trace", [MemRequest(Op.READ, 0)]
        )
        assert main([
            "replay", str(path), "--trefi", "100", "--trfc", "100",
        ]) == 2
        assert "trfc_ns" in capsys.readouterr().err

    def test_replay_timestamped_trace(self, tmp_path, capsys):
        from repro.memsys import MemSysConfig, synthesize_trace, write_trace

        config = MemSysConfig(n_channels=2)
        path = write_trace(
            tmp_path / "timed.trace",
            synthesize_trace(
                "sequential", 128, config, interarrival_ns=50.0
            ),
        )
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "128 requests" in out
        # 128 requests at 50 ns spacing stretch the makespan past 6350
        makespan = [
            line for line in out.splitlines()
            if line.startswith("makespan_ns")
        ][0]
        assert float(makespan.split()[-1]) >= 127 * 50.0


class TestTelemetryFlags:
    """``--metrics`` / ``--timeline`` on the replaying verbs."""

    @staticmethod
    def write_demo_trace(tmp_path, n=256):
        from repro.memsys import MemSysConfig, synthesize_trace, write_trace

        config = MemSysConfig(n_channels=2)
        return write_trace(
            tmp_path / "demo.trace",
            synthesize_trace("random", n, config, seed=0),
        )

    @staticmethod
    def load_metrics(path):
        import json

        document = json.loads(path.read_text())
        assert document["schema"] == "repro.telemetry/v1"
        return document

    @staticmethod
    def load_timeline(path):
        import json

        from repro.telemetry import validate_timeline

        document = json.loads(path.read_text())
        assert validate_timeline(document) == []
        return document

    def test_replay_writes_both_artifacts(self, tmp_path, capsys):
        trace = self.write_demo_trace(tmp_path)
        metrics = tmp_path / "m.json"
        timeline = tmp_path / "t.json"
        assert main([
            "replay", str(trace),
            "--metrics", str(metrics),
            "--timeline", str(timeline),
        ]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "timeline:" in out
        snapshot = self.load_metrics(metrics)
        names = {e["name"] for e in snapshot["counters"]}
        assert "memsys.requests" in names
        assert "telemetry.requests_recorded" in names
        histograms = {e["name"] for e in snapshot["histograms"]}
        assert "telemetry.queue_wait_ns" in histograms
        document = self.load_timeline(timeline)
        assert document["otherData"]["n_requests"] == 256

    def test_replay_without_flags_writes_nothing(self, tmp_path, capsys):
        trace = self.write_demo_trace(tmp_path)
        assert main(["replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "metrics:" not in out
        assert "timeline:" not in out

    def test_pimexec_trace_artifacts(self, tmp_path, capsys):
        program = tmp_path / "program.trace"
        program.write_text(
            "W MEM 0 0 3\nAB W\n"
            "PIM MAC GRF,8 BANK,0,3,0 SRF,0\nPIM EXIT\n"
        )
        metrics = tmp_path / "m.json"
        timeline = tmp_path / "t.json"
        assert main([
            "pimexec", "--trace", str(program),
            "--metrics", str(metrics),
            "--timeline", str(timeline),
        ]) == 0
        snapshot = self.load_metrics(metrics)
        names = {e["name"] for e in snapshot["counters"]}
        assert "pimexec.requests" in names
        self.load_timeline(timeline)

    def test_pimexec_single_kernel_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert main([
            "pimexec", "--kernel", "vector-sum", "--n", "512",
            "--metrics", str(metrics),
        ]) == 0
        snapshot = self.load_metrics(metrics)
        counters = {e["name"]: e for e in snapshot["counters"]}
        assert counters["pimexec.pim_commands"]["value"] > 0
        # the sequencer counters ride along, tagged by kernel
        seq = [
            e for e in snapshot["counters"]
            if e["name"] == "pimexec.sequencer.instructions"
        ]
        assert seq
        assert seq[0]["tags"]["kernel"] == "vector-sum"

    def test_pimexec_multi_kernel_with_flags_exit_2(self, tmp_path, capsys):
        assert main([
            "pimexec", "--metrics", str(tmp_path / "m.json"),
        ]) == 2
        assert "--kernel" in capsys.readouterr().err

    def test_nn_single_kernel_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        timeline = tmp_path / "t.json"
        assert main([
            "nn", "--kernel", "softmax",
            "--metrics", str(metrics),
            "--timeline", str(timeline),
        ]) == 0
        snapshot = self.load_metrics(metrics)
        seq = [
            e for e in snapshot["counters"]
            if e["name"] == "pimexec.sequencer.instructions"
        ]
        # softmax runs a CRF microkernel, so dynamic instructions > 0
        assert sum(int(e["value"]) for e in seq) > 0
        self.load_timeline(timeline)

    def test_nn_multi_kernel_with_flags_exit_2(self, tmp_path, capsys):
        assert main([
            "nn", "--timeline", str(tmp_path / "t.json"),
        ]) == 2
        assert "--kernel" in capsys.readouterr().err

    def test_nn_emit_trace_with_flags_exit_2(self, tmp_path, capsys):
        assert main([
            "nn", "--emit-trace", str(tmp_path / "layer.trace"),
            "--d-model", "8", "--heads", "2", "--seq-len", "8",
            "--metrics", str(tmp_path / "m.json"),
        ]) == 2
        assert "--emit-trace" in capsys.readouterr().err


class TestTimeseriesFlag:
    """``--timeseries`` on every replaying verb."""

    @staticmethod
    def write_timed_trace(tmp_path, n=600):
        from repro.memsys import MemSysConfig, synthesize_trace, write_trace

        config = MemSysConfig(
            n_channels=2, scheme="channel-interleaved"
        )
        return write_trace(
            tmp_path / "timed.trace",
            synthesize_trace(
                "random", n, config, seed=0,
                interarrival_ns=40.0, interarrival="poisson",
            ),
        )

    @staticmethod
    def load_timeseries(path):
        import json

        from repro.telemetry import validate_timeseries

        document = json.loads(path.read_text())
        assert document["schema"] == "repro.telemetry/timeseries-v2"
        assert validate_timeseries(document) == []
        return document

    def test_replay_writes_a_valid_document(self, tmp_path, capsys):
        trace = TestTelemetryFlags.write_demo_trace(tmp_path)
        series = tmp_path / "s.json"
        assert main([
            "replay", str(trace), "--timeseries", str(series),
        ]) == 0
        out = capsys.readouterr().out
        assert f"timeseries: wrote {series} (64 windows)" in out
        document = self.load_timeseries(series)
        assert document["n_requests"] == 256

    def test_farm_writes_series_and_worker_tracks(
        self, tmp_path, capsys
    ):
        import json

        trace = self.write_timed_trace(tmp_path)
        series = tmp_path / "s.json"
        timeline = tmp_path / "t.json"
        assert main([
            "farm", str(trace),
            "--scheme", "channel-interleaved", "--channels", "2",
            "--mode", "inprocess",
            "--timeseries", str(series),
            "--timeline", str(timeline),
        ]) == 0
        self.load_timeseries(series)
        from repro.telemetry import validate_timeline

        document = json.loads(timeline.read_text())
        assert validate_timeline(document) == []
        farm_spans = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "farm"
        ]
        assert farm_spans
        processes = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "farm (wall clock)" in processes

    def test_pimexec_single_kernel_series(self, tmp_path, capsys):
        series = tmp_path / "s.json"
        assert main([
            "pimexec", "--kernel", "vector-sum", "--n", "512",
            "--timeseries", str(series),
        ]) == 0
        document = self.load_timeseries(series)
        # the stream is AB broadcasts + all-bank PIM commands, so the
        # barrier-occupancy series must light up somewhere
        assert any(
            f > 0 for f in document["series"]["ab_stall_fraction"]
        )

    def test_pimexec_multi_kernel_with_series_exit_2(
        self, tmp_path, capsys
    ):
        assert main([
            "pimexec", "--timeseries", str(tmp_path / "s.json"),
        ]) == 2
        assert "--kernel" in capsys.readouterr().err

    def test_nn_single_kernel_series(self, tmp_path, capsys):
        series = tmp_path / "s.json"
        assert main([
            "nn", "--kernel", "softmax", "--timeseries", str(series),
        ]) == 0
        self.load_timeseries(series)

    def test_nn_emit_trace_with_series_exit_2(self, tmp_path, capsys):
        assert main([
            "nn", "--emit-trace", str(tmp_path / "layer.trace"),
            "--d-model", "8", "--heads", "2", "--seq-len", "8",
            "--timeseries", str(tmp_path / "s.json"),
        ]) == 2
        assert "--emit-trace" in capsys.readouterr().err


class TestReportVerb:
    def test_report_command_args(self, tmp_path):
        args = build_parser().parse_args(
            [
                "report", str(tmp_path / "a.trace"),
                "--workers", "2", "--windows", "8",
                "--json", str(tmp_path / "r.json"),
                "--timeseries", str(tmp_path / "s.json"),
            ]
        )
        assert args.command == "report"
        assert args.workers == 2
        assert args.windows == 8
        assert args.json == tmp_path / "r.json"
        assert args.timeseries == tmp_path / "s.json"

    def test_single_process_report(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_timeseries

        trace = TestTelemetryFlags.write_demo_trace(tmp_path)
        report = tmp_path / "r.json"
        series = tmp_path / "s.json"
        assert main([
            "report", str(trace), "--windows", "8",
            "--json", str(report),
            "--timeseries", str(series),
        ]) == 0
        out = capsys.readouterr().out
        assert "run report —" in out
        assert "replay statistics" in out
        assert "latency percentiles (ns, exact)" in out
        assert "time series (8 windows" in out
        assert f"report:   wrote {report}" in out
        assert f"timeseries: wrote {series} (8 windows)" in out
        document = json.loads(report.read_text())
        assert document["schema"] == "repro.telemetry/report-v2"
        assert {"metrics", "percentiles", "timeseries"} <= set(
            document
        )
        assert document["timeseries"]["n_windows"] == 8
        assert validate_timeseries(document["timeseries"]) == []
        assert document["farm"] is None
        # the standalone series file is the embedded document
        assert (
            json.loads(series.read_text()) == document["timeseries"]
        )

    def test_farm_report_includes_the_ledger(self, tmp_path, capsys):
        import json

        trace = TestTimeseriesFlag.write_timed_trace(tmp_path)
        report = tmp_path / "r.json"
        assert main([
            "report", str(trace),
            "--scheme", "channel-interleaved", "--channels", "2",
            "--workers", "2",
            "--json", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "farm ledger:" in out
        assert "farm events:" in out
        document = json.loads(report.read_text())
        assert document["farm"] is not None
        assert document["farm"]["n_shards"] == 2
        assert document["farm_event_counts"]["shard-done"] >= 2

    def test_report_missing_trace_exit_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.trace")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_report_empty_trace_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.trace"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_report_bad_config_exit_2(self, tmp_path, capsys):
        trace = TestTelemetryFlags.write_demo_trace(tmp_path)
        assert main([
            "report", str(trace), "--channels", "3",
        ]) == 2
        assert "report failed" in capsys.readouterr().err


class TestNnCommand:
    def test_nn_command_args(self, tmp_path):
        args = build_parser().parse_args(
            [
                "nn", "--kernel", "gemm", "--dtype", "fp64",
                "--bank-groups", "--engine", "fast", "--seed", "3",
            ]
        )
        assert args.command == "nn"
        assert args.kernel == "gemm"
        assert args.dtype == "fp64"
        assert args.bank_groups is True
        assert args.engine == "fast"
        assert args.emit_trace is None
        trace_args = build_parser().parse_args(
            [
                "nn", "--emit-trace", str(tmp_path / "layer.trace"),
                "--d-model", "16", "--heads", "2", "--seq-len", "16",
                "--interarrival", "poisson",
            ]
        )
        assert trace_args.emit_trace == tmp_path / "layer.trace"
        assert trace_args.interarrival == "poisson"

    def test_nn_kernel_run(self, capsys):
        assert main(["nn", "--kernel", "softmax"]) == 0
        out = capsys.readouterr().out
        assert "dtype=fp16" in out
        assert "softmax" in out
        assert "yes" in out  # the bit-exactness column

    def test_nn_bank_groups_run(self, capsys):
        assert main(["nn", "--kernel", "gemm", "--bank-groups"]) == 0
        assert "mode=bank-group" in capsys.readouterr().out

    def test_nn_unknown_kernel_exit_2(self, capsys):
        assert main(["nn", "--kernel", "conv2d"]) == 2
        err = capsys.readouterr().err
        assert "unknown kernel" in err
        assert "layernorm" in err

    def test_nn_emit_trace_round_trips(self, tmp_path, capsys):
        path = tmp_path / "layer.trace"
        assert main(
            [
                "nn", "--emit-trace", str(path), "--d-model", "8",
                "--heads", "2", "--seq-len", "8", "--d-ff", "16",
                "--interarrival", "poisson",
            ]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        # the emitted trace replays through the pimexec verb
        assert main(["pimexec", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_nn_bad_spec_exit_2(self, tmp_path, capsys):
        assert main(
            [
                "nn", "--emit-trace", str(tmp_path / "t.trace"),
                "--d-model", "10", "--heads", "3",
            ]
        ) == 2
        assert "divisible" in capsys.readouterr().err


class TestTierReporting:
    """The verbs surface which execution tier actually ran."""

    def test_report_document_carries_replay_tier(self, tmp_path, capsys):
        import json

        trace = TestTelemetryFlags.write_demo_trace(tmp_path)
        report = tmp_path / "r.json"
        assert main([
            "report", str(trace), "--json", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "tier: " in out
        document = json.loads(report.read_text())
        assert document["replay_tier"] in {"fastpath", "exact", "event"}
        from repro.telemetry import replay_tier

        assert document["replay_tier"] == replay_tier(
            document["engine"]
        )

    def test_farm_verb_prints_shard_tiers(self, tmp_path, capsys):
        trace = TestTimeseriesFlag.write_timed_trace(tmp_path)
        assert main([
            "farm", str(trace),
            "--scheme", "channel-interleaved", "--channels", "2",
            "--mode", "inprocess",
        ]) == 0
        out = capsys.readouterr().out
        assert "tiers:    " in out
        assert "tier=" in out

    def test_pimexec_trace_prints_unit_tier(self, tmp_path, capsys):
        program = tmp_path / "program.trace"
        program.write_text(
            "W MEM 0 0 3\nAB W\n"
            "PIM MAC GRF,8 BANK,0,3,0 SRF,0\nPIM EXIT\n"
        )
        assert main(["pimexec", "--trace", str(program)]) == 0
        assert "units:    vectorized" in capsys.readouterr().out

    def test_pimexec_metrics_tag_the_unit_tier(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        assert main([
            "pimexec", "--kernel", "vector-sum", "--n", "512",
            "--metrics", str(metrics),
        ]) == 0
        snapshot = TestTelemetryFlags.load_metrics(metrics)
        unit = [
            e for e in snapshot["counters"]
            if e["name"] == "pimexec.unit_commands"
        ]
        assert unit
        assert unit[0]["tags"]["unit_mode"] == "vectorized"
        assert unit[0]["value"] > 0

    def test_replay_tier_taxonomy(self):
        from repro.telemetry import replay_tier

        assert replay_tier("fast-vectorized") == "fastpath"
        assert replay_tier("fast-exact") == "exact"
        assert replay_tier("fast") == "exact"
        assert replay_tier("event") == "event"
        assert replay_tier("farm") == "farm"
        assert replay_tier(None) is None
