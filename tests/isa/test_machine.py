"""Tests for the functional PIM machine: single-node semantics."""

import pytest

from repro.isa import IsaParams, IsaRuntimeError, PimSystem, assemble


def run_program(source, r1=0, r2=0, params=None):
    """Assemble, run on one node, return (registers, result, system)."""
    system = PimSystem(params or IsaParams(n_nodes=1, words_per_node=1024))
    system.load(assemble(source))
    system.spawn(0, "", r1=r1, r2=r2)
    result = system.run()
    threads = system.completed_threads()
    assert threads, "thread did not complete"
    return threads[-1].registers, result, system


class TestAluSemantics:
    def test_li_add_sub(self):
        regs, _, _ = run_program(
            "li r3, 10\nli r4, 3\nadd r5, r3, r4\nsub r6, r3, r4\nhalt"
        )
        assert regs[5] == 13
        assert regs[6] == 7

    def test_mul_and_logic(self):
        regs, _, _ = run_program(
            """
            li r3, 6
            li r4, 7
            mul r5, r3, r4
            and r6, r3, r4
            or  r7, r3, r4
            xor r8, r3, r4
            halt
            """
        )
        assert regs[5] == 42
        assert regs[6] == 6 & 7
        assert regs[7] == 6 | 7
        assert regs[8] == 6 ^ 7

    def test_shifts(self):
        regs, _, _ = run_program(
            "li r3, 1\nli r4, 10\nsll r5, r3, r4\nsrl r6, r5, r4\nhalt"
        )
        assert regs[5] == 1024
        assert regs[6] == 1

    def test_comparisons(self):
        regs, _, _ = run_program(
            """
            li r3, -5
            li r4, 5
            slt r5, r3, r4
            slt r6, r4, r3
            slti r7, r3, 0
            halt
            """
        )
        assert regs[5] == 1
        assert regs[6] == 0
        assert regs[7] == 1

    def test_r0_hardwired_zero(self):
        regs, _, _ = run_program("li r0, 99\nadd r3, r0, r0\nhalt")
        assert regs[0] == 0
        assert regs[3] == 0

    def test_64bit_wraparound(self):
        regs, _, _ = run_program(
            """
            li r3, 0x7fffffffffffffff
            li r4, 1
            add r5, r3, r4       # overflows to INT64_MIN
            halt
            """
        )
        assert regs[5] == -(2**63)


class TestControlFlow:
    def test_loop_countdown(self):
        regs, _, _ = run_program(
            """
            li r3, 5
            li r4, 0
            loop:
            add r4, r4, r3
            addi r3, r3, -1
            bne r3, r0, loop
            halt
            """
        )
        assert regs[4] == 15

    def test_branch_kinds(self):
        regs, _, _ = run_program(
            """
            li r3, 2
            li r4, 2
            beq r3, r4, eq_taken
            li r5, 111
            eq_taken:
            blt r0, r3, lt_taken
            li r6, 222
            lt_taken:
            bge r3, r4, ge_taken
            li r7, 333
            ge_taken:
            halt
            """
        )
        assert regs[5] == 0  # skipped
        assert regs[6] == 0  # skipped
        assert regs[7] == 0  # skipped

    def test_pc_falls_off_end_raises(self):
        with pytest.raises(IsaRuntimeError, match="fell off"):
            run_program("li r1, 1")  # no halt

    def test_runaway_guard(self):
        params = IsaParams(
            n_nodes=1, words_per_node=64, max_thread_instructions=100
        )
        with pytest.raises(IsaRuntimeError, match="runaway"):
            run_program("spin: jmp spin", params=params)


class TestLocalMemory:
    def test_store_then_load(self):
        regs, _, system = run_program(
            """
            li r3, 77
            li r4, 50
            st r3, r4, 0
            ld r5, r4, 0
            halt
            """
        )
        assert regs[5] == 77
        assert system.read_word(50) == 77

    def test_ld_st_offsets(self):
        regs, _, _ = run_program(
            """
            li r4, 100
            li r3, 5
            st r3, r4, 3      # mem[103] = 5
            ld r5, r4, 3
            halt
            """
        )
        assert regs[5] == 5

    def test_amo_fetch_add(self):
        regs, _, system = run_program(
            """
            li r4, 60
            li r3, 10
            st r3, r4, 0
            li r5, 7
            amo r6, r4, r5
            ld r7, r4, 0
            halt
            """
        )
        assert regs[6] == 10  # old value
        assert regs[7] == 17  # updated

    def test_out_of_range_address_fails(self):
        with pytest.raises(IsaRuntimeError, match="outside global memory"):
            run_program("li r4, 99999\nld r3, r4, 0\nhalt")

    def test_timing_memory_vs_alu(self):
        """A load costs memory_cycles *instead of* the issue cycle (the
        Table 1 convention: TML replaces TLcycle for loads/stores)."""
        _, res_mem, _ = run_program("li r4, 5\nld r3, r4, 0\nhalt")
        _, res_alu, _ = run_program("li r4, 5\nadd r3, r4, r4\nhalt")
        p = IsaParams()
        assert res_mem.cycles - res_alu.cycles == pytest.approx(
            p.memory_cycles - p.issue_cycles
        )


class TestThreading:
    def test_spawn_runs_concurrently(self):
        regs, result, system = run_program(
            """
            li r3, 20          # flag address
            li r4, 1
            spawn child, r3, r4
            wait:
            ld r5, r3, 0
            beq r5, r0, wait
            halt
            child:
            st r2, r1, 0       # store r2 (=1) at flag address
            halt
            """
        )
        assert result.threads_completed == 2
        assert system.read_word(20) == 1

    def test_spawn_passes_registers(self):
        system = PimSystem(IsaParams(n_nodes=1, words_per_node=256))
        system.load(
            assemble(
                """
                main:
                li r3, 30
                li r4, 42
                spawn child, r3, r4
                halt
                child:
                st r2, r1, 0   # mem[r1] = r2
                halt
                """
            )
        )
        system.spawn(0, "main")
        system.run()
        assert system.read_word(30) == 42

    def test_host_api_validation(self):
        system = PimSystem(IsaParams(n_nodes=1, words_per_node=64))
        with pytest.raises(IsaRuntimeError, match="load a program"):
            system.spawn(0, "")
        system.load(assemble("halt"))
        with pytest.raises(IsaRuntimeError, match="no such node"):
            system.spawn(5, "")

    def test_instruction_accounting(self):
        _, result, _ = run_program("li r3, 1\nld r4, r3, 0\nhalt")
        assert result.instructions == 3
        assert result.instruction_mix["memory"] == 1
        assert result.instruction_mix["alu"] == 1
        assert result.instruction_mix["thread"] == 1
