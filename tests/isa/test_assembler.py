"""Tests for the assembler and instruction encoding."""

import pytest

from repro.isa import AssemblyError, Instruction, OPCODES, assemble


class TestInstruction:
    def test_valid_construction(self):
        i = Instruction("add", (1, 2, 3))
        assert i.spec.kind == "alu"
        assert str(i) == "add r1, r2, r3"

    def test_unknown_opcode(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Instruction("fma", (1, 2, 3))

    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="expects"):
            Instruction("add", (1, 2))

    def test_register_range_checked(self):
        with pytest.raises(ValueError, match="register index"):
            Instruction("add", (16, 0, 0))

    def test_negative_label_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Instruction("jmp", (-1,))

    def test_halt_has_no_operands(self):
        i = Instruction("halt", ())
        assert str(i) == "halt"

    def test_opcode_table_consistent(self):
        for name, spec in OPCODES.items():
            assert spec.name == name
            assert spec.kind in {"alu", "memory", "branch", "thread"}
            assert set(spec.operands) <= {"R", "I", "L"}


class TestAssembler:
    def test_basic_program(self):
        prog = assemble(
            """
            li r1, 5
            addi r1, r1, -2
            halt
            """
        )
        assert len(prog) == 3
        assert prog.instructions[0].op == "li"
        assert prog.instructions[1].args == (1, 1, -2)

    def test_labels_forward_and_backward(self):
        prog = assemble(
            """
            start:
            jmp end
            jmp start
            end:
            halt
            """
        )
        assert prog.labels == {"start": 0, "end": 2}
        assert prog.instructions[0].args == (2,)
        assert prog.instructions[1].args == (0,)

    def test_label_prefixing_instruction(self):
        prog = assemble("loop: jmp loop")
        assert prog.labels["loop"] == 0

    def test_comments_stripped(self):
        prog = assemble(
            """
            li r1, 1   # a comment
            halt       ; another comment
            """
        )
        assert len(prog) == 2

    def test_hex_and_signed_immediates(self):
        prog = assemble("li r1, 0x10\nli r2, -7\nhalt")
        assert prog.instructions[0].args == (1, 16)
        assert prog.instructions[1].args == (2, -7)

    def test_word_directive(self):
        prog = assemble(
            """
            .word 100 1 2 3
            halt
            """
        )
        assert prog.data == ((100, 1), (101, 2), (102, 3))

    def test_entry_lookup(self):
        prog = assemble("a: halt\nb: halt")
        assert prog.entry("b") == 1
        assert prog.entry() == 0
        with pytest.raises(KeyError, match="unknown label"):
            prog.entry("zzz")

    def test_numeric_label_operand(self):
        prog = assemble("jmp 0")
        assert prog.instructions[0].args == (0,)

    @pytest.mark.parametrize(
        "source,match",
        [
            ("bogus r1, r2", "unknown opcode"),
            ("li r99, 1", "expected register"),
            ("li r1", "expects 2 operands"),
            ("li r1, r2", "expected integer"),
            ("x: halt\nx: halt", "duplicate label"),
            ("jmp nowhere", "undefined label"),
            (".word 5", "at least one value"),
            (".bss 100", "unknown directive"),
            ("ld r1, r2, xx", "expected integer"),
        ],
    )
    def test_errors_have_line_numbers(self, source, match):
        with pytest.raises(AssemblyError, match=match):
            assemble(source)

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("li r1, 1\nli r2, 2\nbogus\n")
