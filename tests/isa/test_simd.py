"""Tests for the wide-word SIMD extension (vld/vst/vadd)."""

import pytest

from repro.isa import (
    Instruction,
    IsaParams,
    IsaRuntimeError,
    PimSystem,
    VLEN,
    assemble,
    simd_vector_sum_program,
    vector_sum_program,
)


def run(source, r1=0, params=None):
    system = PimSystem(params or IsaParams(n_nodes=1, words_per_node=1024))
    system.load(assemble(source))
    system.spawn(0, "", r1=r1)
    result = system.run()
    regs = system.completed_threads()[-1].registers
    return regs, result, system


class TestEncoding:
    def test_vlen_is_four(self):
        assert VLEN == 4

    def test_vector_group_register_bound(self):
        Instruction("vadd", (12, 8, 4))  # 12..15 ok
        with pytest.raises(ValueError, match="vector group"):
            Instruction("vadd", (13, 8, 4))  # 13..16 overflows
        with pytest.raises(ValueError, match="vector group"):
            Instruction("vld", (14, 1, 0))

    def test_scalar_address_register_not_group_limited(self):
        # the address register (position 1) may be r13..r15
        Instruction("vld", (4, 15, 0))
        Instruction("vst", (8, 14, 0))


class TestSemantics:
    def test_vld_loads_four_lanes(self):
        regs, _, _ = run(
            """
            .word 100 11 22 33 44
            li r1, 100
            vld r4, r1, 0
            halt
            """
        )
        assert regs[4:8] == (11, 22, 33, 44)

    def test_vst_stores_four_lanes(self):
        _, _, system = run(
            """
            li r4, 7
            li r5, 8
            li r6, 9
            li r7, 10
            li r1, 200
            vst r4, r1, 0
            halt
            """
        )
        assert system.read_block(200, 4) == [7, 8, 9, 10]

    def test_vadd_lane_wise(self):
        regs, _, _ = run(
            """
            .word 100 1 2 3 4
            .word 104 10 20 30 40
            li r1, 100
            vld r4, r1, 0
            vld r8, r1, 4
            vadd r12, r4, r8
            halt
            """
        )
        assert regs[12:16] == (11, 22, 33, 44)

    def test_vld_offset_addressing(self):
        regs, _, _ = run(
            """
            .word 105 5 6 7 8
            li r1, 100
            vld r4, r1, 5
            halt
            """
        )
        assert regs[4:8] == (5, 6, 7, 8)

    def test_vector_group_containing_r0_keeps_zero(self):
        regs, _, _ = run(
            """
            .word 100 9 9 9 9
            li r1, 100
            vld r0, r1, 0
            halt
            """
        )
        assert regs[0] == 0      # r0 stays hardwired
        assert regs[1:4] == (9, 9, 9)


class TestTimingAndRemote:
    def test_one_row_access_for_four_words(self):
        """vld costs a single memory access; four scalar lds cost four."""
        _, res_vld, _ = run(
            ".word 100 1 2 3 4\nli r1, 100\nvld r4, r1, 0\nhalt"
        )
        _, res_ld, _ = run(
            """
            .word 100 1 2 3 4
            li r1, 100
            ld r4, r1, 0
            ld r5, r1, 1
            ld r6, r1, 2
            ld r7, r1, 3
            halt
            """
        )
        # a memory op costs memory_cycles in place of its issue cycle,
        # so four lds vs one vld differ by exactly 3 row accesses
        p = IsaParams()
        assert res_ld.cycles - res_vld.cycles == pytest.approx(
            3 * p.memory_cycles
        )

    def test_remote_vld_round_trip(self):
        params = IsaParams(n_nodes=2, words_per_node=64)
        system = PimSystem(params)
        system.load(assemble("vld r4, r1, 0\nhalt"))
        system.write_block(100, [5, 6, 7, 8])  # node 1
        system.spawn(0, "", r1=100)
        result = system.run()
        assert system.completed_threads()[-1].registers[4:8] == (5, 6, 7, 8)
        assert result.parcels_sent == 2  # one wide request + one reply

    def test_remote_vst_round_trip(self):
        params = IsaParams(n_nodes=2, words_per_node=64)
        system = PimSystem(params)
        system.load(
            assemble(
                """
                li r4, 1
                li r5, 2
                li r6, 3
                li r7, 4
                vst r4, r1, 0
                halt
                """
            )
        )
        system.spawn(0, "", r1=100)
        system.run()
        assert system.read_block(100, 4) == [1, 2, 3, 4]

    def test_vector_access_must_not_span_nodes(self):
        params = IsaParams(n_nodes=2, words_per_node=64)
        system = PimSystem(params)
        system.load(assemble("vld r4, r1, 0\nhalt"))
        system.spawn(0, "", r1=62)  # words 62..65 span node 0/1
        with pytest.raises(IsaRuntimeError, match="spans a node boundary"):
            system.run()


class TestSimdKernel:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4])
    def test_simd_sum_verifies(self, n_nodes):
        k = simd_vector_sum_program()
        system = PimSystem(
            IsaParams(n_nodes=n_nodes, words_per_node=1024 // n_nodes)
        )
        k.launch(system)
        system.run()
        assert k.verify(system)

    def test_simd_matches_scalar_result(self):
        scalar = vector_sum_program(seed=9)
        simd = simd_vector_sum_program(seed=9)
        assert scalar.expected["sum"] == simd.expected["sum"]

    def test_simd_faster_than_scalar(self):
        """The wide word reclaims bandwidth: ~4x fewer memory accesses."""
        cycles = {}
        for kernel in (vector_sum_program(), simd_vector_sum_program()):
            system = PimSystem(IsaParams(n_nodes=1, words_per_node=1024))
            kernel.launch(system)
            cycles[kernel.name] = system.run().cycles
        assert cycles["simd_vector_sum"] < cycles["vector_sum"] / 3.0

    def test_count_must_be_vlen_multiple(self):
        with pytest.raises(ValueError, match="multiple of VLEN"):
            simd_vector_sum_program(count=30)
