"""Tests for multi-node execution: parcels, global memory, kernels."""

import pytest

from repro.desim import Tracer
from repro.isa import (
    IsaParams,
    PimSystem,
    assemble,
    gups_program,
    parallel_sum_program,
    pointer_chase_program,
    vector_sum_program,
)

SMALL = IsaParams(n_nodes=2, words_per_node=64, latency_cycles=50.0)


class TestGlobalAddressing:
    def test_owner_mapping(self):
        p = IsaParams(n_nodes=4, words_per_node=100)
        assert p.owner(0) == 0
        assert p.owner(99) == 0
        assert p.owner(100) == 1
        assert p.owner(399) == 3
        assert p.local_offset(250) == 50

    def test_host_read_write_cross_node(self):
        system = PimSystem(SMALL)
        system.write_word(100, 1234)  # node 1
        assert system.read_word(100) == 1234
        assert system.nodes[1].read_local(36) == 1234

    def test_write_block_spans_nodes(self):
        system = PimSystem(SMALL)
        system.write_block(62, [1, 2, 3, 4])  # crosses the 64-word line
        assert system.read_block(62, 4) == [1, 2, 3, 4]
        assert system.nodes[0].read_local(63) == 2
        assert system.nodes[1].read_local(0) == 3


class TestRemoteOperations:
    def test_remote_load(self):
        system = PimSystem(SMALL)
        system.load(assemble("ld r3, r1, 0\nli r4, 8\nst r3, r4, 0\nhalt"))
        system.write_word(100, 55)  # on node 1
        system.spawn(0, "", r1=100)
        result = system.run()
        assert system.read_word(8) == 55
        assert result.remote_accesses == 1
        assert result.parcels_sent == 2  # request + reply

    def test_remote_store(self):
        system = PimSystem(SMALL)
        system.load(assemble("li r3, 99\nst r3, r1, 0\nhalt"))
        system.spawn(0, "", r1=100)
        system.run()
        assert system.read_word(100) == 99

    def test_remote_amo_atomic_under_contention(self):
        """Two nodes fetch-add the same remote counter; total must be
        exact (parcel servicing serializes at the owner)."""
        system = PimSystem(
            IsaParams(n_nodes=4, words_per_node=64, latency_cycles=10.0)
        )
        system.load(
            assemble(
                """
                li r4, 1
                loop:
                amo r5, r1, r4
                addi r2, r2, -1
                bne r2, r0, loop
                halt
                """
            )
        )
        counter = 32  # lives on node 0
        for node in (1, 2, 3):
            system.spawn(node, "", r1=counter, r2=10)
        system.run()
        assert system.read_word(counter) == 30

    def test_remote_latency_charged(self):
        fast = PimSystem(
            IsaParams(n_nodes=2, words_per_node=64, latency_cycles=10.0)
        )
        slow = PimSystem(
            IsaParams(n_nodes=2, words_per_node=64, latency_cycles=500.0)
        )
        src = "ld r3, r1, 0\nhalt"
        for system in (fast, slow):
            system.load(assemble(src))
            system.spawn(0, "", r1=100)
        t_fast = fast.run().cycles
        t_slow = slow.run().cycles
        # round trip difference = 2 * (500 - 10)
        assert t_slow - t_fast == pytest.approx(980.0)

    def test_invoke_spawns_at_owner(self):
        system = PimSystem(SMALL)
        system.load(
            assemble(
                """
                main:
                invoke r1, remote_fn, r2
                halt
                remote_fn:
                st r2, r1, 0      # runs on the owner of r1
                halt
                """
            )
        )
        system.spawn(0, "main", r1=100, r2=77)
        result = system.run()
        assert system.read_word(100) == 77
        # the store executed on node 1 (local), not via remote parcel
        assert system.nodes[1].local_accesses == 1
        assert result.threads_completed == 2

    def test_parcel_traffic_traced(self):
        tracer = Tracer(kinds={"parcel.send"})
        system = PimSystem(SMALL, tracer=tracer)
        system.load(assemble("ld r3, r1, 0\nhalt"))
        system.spawn(0, "", r1=100)
        system.run()
        assert len(tracer) == 2  # request + reply


class TestKernels:
    @pytest.mark.parametrize("n_nodes", [1, 2, 4])
    def test_vector_sum(self, n_nodes):
        k = vector_sum_program()
        system = PimSystem(
            IsaParams(n_nodes=n_nodes, words_per_node=1024 // n_nodes)
        )
        k.launch(system)
        system.run()
        assert k.verify(system)

    @pytest.mark.parametrize("n_nodes", [1, 4])
    def test_pointer_chase(self, n_nodes):
        k = pointer_chase_program()
        system = PimSystem(
            IsaParams(n_nodes=n_nodes, words_per_node=1024 // n_nodes)
        )
        k.launch(system)
        system.run()
        assert k.verify(system)

    @pytest.mark.parametrize("n_nodes", [1, 2, 4])
    def test_parallel_sum(self, n_nodes):
        k = parallel_sum_program()
        system = PimSystem(
            IsaParams(n_nodes=n_nodes, words_per_node=1024 // n_nodes)
        )
        k.launch(system)
        system.run()
        assert k.verify(system)

    @pytest.mark.parametrize("n_nodes", [1, 4])
    def test_gups_conserves_updates(self, n_nodes):
        k = gups_program()
        system = PimSystem(
            IsaParams(n_nodes=n_nodes, words_per_node=1024 // n_nodes)
        )
        k.launch(system)
        system.run()
        assert k.verify(system)

    def test_pointer_chase_slower_with_latency(self):
        """The no-locality chain is latency-bound: raising network latency
        must slow it down proportionally to its remote accesses."""
        k = pointer_chase_program()
        cycles = {}
        for lat in (10.0, 1000.0):
            system = PimSystem(
                IsaParams(n_nodes=4, words_per_node=256, latency_cycles=lat)
            )
            k.launch(system)
            cycles[lat] = system.run().cycles
        assert cycles[1000.0] > cycles[10.0] * 2

    def test_parallel_sum_uses_parcels_on_multinode(self):
        k = parallel_sum_program()
        system = PimSystem(IsaParams(n_nodes=4, words_per_node=64))
        k.launch(system)
        result = system.run()
        assert result.parcels_sent > 0
        assert k.verify(system)

    def test_measured_statistics_exposed(self):
        k = gups_program()
        system = PimSystem(IsaParams(n_nodes=4, words_per_node=256))
        k.launch(system)
        result = system.run()
        assert 0.0 <= result.remote_access_fraction <= 1.0
        assert 0.0 < result.memory_mix < 1.0
        assert len(result.per_node_idle) == 4
