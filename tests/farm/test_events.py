"""The farm supervisor's typed event log (``repro.farm/events-v1``).

Two contracts:

* **unit** — :class:`~repro.farm.events.FarmEventLog` rejects unknown
  kinds, clamps reversed spans, counts and filters correctly, and
  renders a Chrome trace-event track set (one process, supervisor +
  per-shard threads, wall-clock microseconds);
* **causal completeness** — every chaos injection a
  :class:`~repro.farm.chaos.FaultPlan` delivers appears in the run's
  log as a typed ``chaos-*`` event with the *matching* shard id and
  attempt, alongside the supervisor spans (plan / dispatch / verify /
  shard-done / attempt-failed / retry-backoff / degrade / fallback /
  merge) that narrate how the fault was absorbed — and the merged
  Chrome timeline carries those spans on the farm's worker/shard
  tracks and still validates.
"""

import dataclasses

import pytest

from repro.farm import (
    CORRUPT,
    HANG,
    KILL,
    SLOW,
    FarmConfig,
    FarmEventLog,
    FaultPlan,
    replay_farm,
)
from repro.farm.events import (
    EVENT_KINDS,
    FARM_EVENTS_SCHEMA,
    SUPERVISOR,
)
from repro.memsys import MemSysConfig, MemorySystem
from repro.memsys.trace import synthesize_trace
from repro.telemetry import (
    ReplayTelemetry,
    build_timeline,
    validate_timeline,
)

#: Tight supervisor policy: instant retries, ~1s hang detection.
CHAOS_FARM = dict(
    backoff_base_s=0.0,
    backoff_cap_s=0.0,
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=1.0,
)


def _setup(n=600, n_channels=4, seed=0):
    config = MemSysConfig(
        n_channels=n_channels, scheme="channel-interleaved"
    )
    trace = synthesize_trace(
        "random",
        n,
        config,
        seed=seed,
        packed=True,
        interarrival_ns=40.0,
        interarrival="poisson",
    )
    single = MemorySystem(config).replay(trace, engine="fast")
    return config, trace, single


def _exact(single, stats):
    return repr(dataclasses.asdict(single)) == repr(
        dataclasses.asdict(stats)
    )


def _run(fault_plan=None, telemetry=None, **farm_kwargs):
    # the event engine keeps every shard on one tier, so no
    # harmonization re-dispatch inflates the per-shard event counts
    # the causal assertions below pin exactly
    config, trace, single = _setup()
    kwargs = dict(CHAOS_FARM, mode="inprocess", engine="event")
    kwargs.update(farm_kwargs)
    result = replay_farm(
        trace,
        config,
        FarmConfig(**kwargs),
        telemetry=telemetry,
        fault_plan=fault_plan,
    )
    assert _exact(single, result.stats)
    return config, result


class TestFarmEventLog:
    def test_unknown_kind_rejected(self):
        log = FarmEventLog()
        with pytest.raises(ValueError, match="unknown farm event"):
            log.point("meteor")
        with pytest.raises(ValueError, match="available"):
            log.record("chaos-meteor", 0.0, 1.0)

    def test_reversed_span_clamps_to_instant(self):
        log = FarmEventLog()
        event = log.record("merge", 5.0, 1.0)
        assert event.start_s == 5.0
        assert event.end_s == 5.0

    def test_point_is_an_instant_supervisor_event(self):
        log = FarmEventLog()
        event = log.point("plan", detail="4 shard(s)")
        assert event.start_s == event.end_s
        assert event.shard_id == SUPERVISOR
        assert event.attempt == -1
        assert event.detail == "4 shard(s)"

    def test_span_context_manager_covers_the_body(self):
        log = FarmEventLog()
        with log.span("verify", shard_id=2, attempt=1):
            pass
        (event,) = log.events
        assert event.kind == "verify"
        assert event.shard_id == 2
        assert event.attempt == 1
        assert event.end_s >= event.start_s >= 0.0

    def test_counts_for_shard_and_len(self):
        log = FarmEventLog()
        log.point("dispatch", shard_id=0, attempt=0)
        log.point("dispatch", shard_id=1, attempt=0)
        log.point("shard-done", shard_id=0, attempt=0)
        log.point("merge")
        assert len(log) == 4
        assert log.counts() == {
            "dispatch": 2, "shard-done": 1, "merge": 1
        }
        assert [e.kind for e in log.for_shard(0)] == [
            "dispatch", "shard-done"
        ]
        assert log.for_shard(9) == []

    def test_to_dict_schema(self):
        log = FarmEventLog()
        log.record("dispatch", 0.5, 1.5, shard_id=3, attempt=2)
        document = log.to_dict()
        assert document["schema"] == FARM_EVENTS_SCHEMA
        assert document["n_events"] == 1
        assert document["counts"] == {"dispatch": 1}
        assert document["events"] == [
            {
                "kind": "dispatch",
                "start_s": 0.5,
                "end_s": 1.5,
                "shard_id": 3,
                "attempt": 2,
                "detail": "",
            }
        ]

    def test_chaos_kinds_are_in_the_vocabulary(self):
        for kind in (KILL, HANG, CORRUPT, SLOW):
            assert f"chaos-{kind}" in EVENT_KINDS

    def test_timeline_events_render_tracks_in_microseconds(self):
        log = FarmEventLog()
        log.record("plan", 0.0, 0.25)
        log.record(
            "dispatch", 1.0, 2.5, shard_id=3, attempt=1,
            detail="engine=fast",
        )
        rendered = log.timeline_events(pid=7)
        metadata = [e for e in rendered if e["ph"] == "M"]
        assert {e["pid"] for e in rendered} == {7}
        names = {
            (e["name"], e["args"]["name"]) for e in metadata
        }
        assert ("process_name", "farm (wall clock)") in names
        assert ("thread_name", "supervisor") in names
        assert ("thread_name", "shard 3") in names
        spans = [e for e in rendered if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["plan", "dispatch"]
        plan, dispatch = spans
        assert plan["tid"] == 0  # supervisor thread
        assert plan["cat"] == "farm"
        assert dispatch["tid"] == 1  # first (only) shard thread
        assert dispatch["ts"] == 1.0 * 1e6
        assert dispatch["dur"] == 1.5 * 1e6
        assert dispatch["args"] == {
            "shard_id": 3, "attempt": 1, "detail": "engine=fast",
        }


class TestSupervisorLifecycleEvents:
    def test_clean_run_narrates_every_shard(self):
        config, result = _run()
        counts = result.events.counts()
        n_shards = result.report.n_shards
        assert n_shards == config.n_channels
        assert counts["plan"] == 1
        assert counts["merge"] == 1
        assert counts["dispatch"] == n_shards
        assert counts["verify"] == n_shards
        assert counts["shard-done"] == n_shards
        assert "attempt-failed" not in counts
        assert "degrade" not in counts
        # the log brackets the run: plan first, merge last
        assert result.events.events[0].kind == "plan"
        assert result.events.events[-1].kind == "merge"

    def test_shard_done_records_the_serving_engine(self):
        _, result = _run()
        done = [
            e for e in result.events.events if e.kind == "shard-done"
        ]
        assert done
        assert all(e.detail == "event" for e in done)

    def test_fallback_event_on_unshardable_trace(self):
        config = MemSysConfig(n_channels=2)
        # line-rate (no timestamps): not shardable by construction
        trace = synthesize_trace(
            "random", 400, config, seed=0, packed=True
        )
        result = replay_farm(
            trace, config, FarmConfig(mode="inprocess", engine="fast")
        )
        assert result.report.fell_back_to_single
        counts = result.events.counts()
        assert counts["plan"] == 1
        assert counts["fallback"] == 1
        assert "merge" not in counts
        (fallback,) = [
            e for e in result.events.events if e.kind == "fallback"
        ]
        assert fallback.detail == result.report.fallback_reason


class TestChaosInjectionSpans:
    """Every injected fault appears as a typed span with matching
    shard/attempt context."""

    @pytest.mark.parametrize("kind", (KILL, HANG, CORRUPT))
    def test_every_injection_is_logged_with_its_context(self, kind):
        injected = [(0, 0), (0, 1), (2, 0), (2, 1)]
        _, result = _run(
            FaultPlan.always(kind, [0, 2], attempts=2)
        )
        events = result.events
        chaos = [
            e for e in events.events if e.kind == f"chaos-{kind}"
        ]
        assert [
            (e.shard_id, e.attempt) for e in chaos
        ] == injected
        assert all(e.detail == "injected fault" for e in chaos)
        # each faulted attempt also failed, in the same context
        failed = {
            (e.shard_id, e.attempt)
            for e in events.events
            if e.kind == "attempt-failed"
        }
        assert failed == set(injected)
        # the faulted shards eventually completed on a later attempt
        done = {
            e.shard_id: e.attempt
            for e in events.events
            if e.kind == "shard-done"
        }
        assert done[0] == 2 and done[2] == 2

    def test_slow_fault_is_logged_but_does_not_fail(self):
        _, result = _run(
            FaultPlan.always(SLOW, [1], attempts=1, delay_s=0.02)
        )
        counts = result.events.counts()
        assert counts["chaos-slow"] == 1
        assert "attempt-failed" not in counts
        (dispatch,) = [
            e
            for e in result.events.events
            if e.kind == "dispatch" and e.shard_id == 1
        ]
        assert dispatch.end_s - dispatch.start_s >= 0.02

    def test_retry_backoff_span_covers_the_sleep(self):
        _, result = _run(
            FaultPlan.always(CORRUPT, [0], attempts=1),
            backoff_base_s=0.02,
            backoff_cap_s=0.02,
            jitter=0.0,
        )
        (backoff,) = [
            e
            for e in result.events.events
            if e.kind == "retry-backoff"
        ]
        assert backoff.shard_id == 0
        assert backoff.attempt == 0
        assert backoff.end_s - backoff.start_s >= 0.015

    def test_degrade_event_when_budget_exhausted(self):
        _, result = _run(
            FaultPlan.always(KILL, [1], attempts=3), max_retries=2
        )
        assert result.report.degraded_shards == 1
        kills = [
            (e.shard_id, e.attempt)
            for e in result.events.events
            if e.kind == "chaos-kill"
        ]
        assert kills == [(1, 0), (1, 1), (1, 2)]
        (degrade,) = [
            e for e in result.events.events if e.kind == "degrade"
        ]
        assert degrade.shard_id == 1
        assert "retry budget exhausted" in degrade.detail

    def test_process_mode_kill_is_logged_identically(self):
        _, result = _run(
            FaultPlan.always(KILL, [0], attempts=1),
            mode="process",
            workers=2,
        )
        events = result.events
        chaos = [
            (e.shard_id, e.attempt)
            for e in events.events
            if e.kind == "chaos-kill"
        ]
        assert chaos == [(0, 0)]
        counts = events.counts()
        assert counts["attempt-failed"] == 1
        assert counts["shard-done"] == result.report.n_shards
        assert counts["merge"] == 1


class TestChaosTimelineIntegration:
    def test_chaos_run_renders_farm_tracks_that_validate(self):
        telemetry = ReplayTelemetry()
        config, result = _run(
            FaultPlan.always(KILL, [0], attempts=1),
            telemetry=telemetry,
        )
        assert telemetry.farm_events is result.events
        document = build_timeline(telemetry)
        assert validate_timeline(document) == []
        farm_spans = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "farm"
        ]
        assert len(farm_spans) == len(result.events) > 0
        # the farm process sits just past the channel tracks
        assert {e["pid"] for e in farm_spans} == {config.n_channels}
        kills = [
            e for e in farm_spans if e["name"] == "chaos-kill"
        ]
        assert len(kills) == 1
        assert kills[0]["args"]["shard_id"] == 0
        assert kills[0]["args"]["attempt"] == 0
