"""Tests for repro.farm.planner: sharding and canonical checksums."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.farm import ShardPlanner, canonical_checksum
from repro.memsys import MemSysConfig
from repro.memsys.trace import PackedTrace, synthesize_trace


def _trace(n=400, n_channels=4, seed=0, interarrival_ns=40.0):
    config = MemSysConfig(
        n_channels=n_channels, scheme="channel-interleaved"
    )
    trace = synthesize_trace(
        "random",
        n,
        config,
        seed=seed,
        packed=True,
        interarrival_ns=interarrival_ns,
        interarrival="poisson",
    )
    return config, trace


class TestShardPlanner:
    def test_partitions_by_decoded_channel(self):
        config, trace = _trace()
        plan = ShardPlanner(config).plan(trace)
        assert plan.shardable
        channel = config.address_map().decode_fields(trace.addrs)[
            "channel"
        ]
        for shard in plan.shards:
            assert set(np.unique(channel[shard.index])) == set(
                shard.channels
            )

    def test_shards_cover_the_trace_exactly_once(self):
        config, trace = _trace()
        plan = ShardPlanner(config).plan(trace)
        indices = np.concatenate(
            [shard.index for shard in plan.shards]
        )
        assert sorted(indices.tolist()) == list(range(len(trace)))

    def test_shard_traces_preserve_order_and_content(self):
        config, trace = _trace()
        plan = ShardPlanner(config).plan(trace)
        for shard in plan.shards:
            assert np.array_equal(
                shard.trace.addrs, trace.addrs[shard.index]
            )
            assert np.array_equal(
                shard.trace.op_codes, trace.op_codes[shard.index]
            )
            # a subsequence of a sorted sequence stays sorted
            assert np.all(np.diff(shard.trace.times) >= 0)

    def test_line_rate_trace_is_not_shardable(self):
        config, _ = _trace()
        trace = synthesize_trace(
            "random", 100, config, seed=1, packed=True
        )
        plan = ShardPlanner(config).plan(trace)
        assert not plan.shardable
        assert "line-rate" in plan.reason
        assert plan.n_shards == 0

    def test_empty_trace_is_not_shardable(self):
        config, _ = _trace()
        empty = PackedTrace(
            np.zeros(0, dtype=np.uint8),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
        )
        plan = ShardPlanner(config).plan(empty)
        assert not plan.shardable
        assert "empty" in plan.reason

    def test_max_shards_folds_channels_round_robin(self):
        config, trace = _trace(n_channels=8)
        plan = ShardPlanner(config, max_shards=3).plan(trace)
        assert plan.n_shards == 3
        covered = sorted(
            channel
            for shard in plan.shards
            for channel in shard.channels
        )
        assert covered == list(range(8))

    def test_max_shards_validation(self):
        config, _ = _trace()
        with pytest.raises(ConfigError):
            ShardPlanner(config, max_shards=0)


class TestCanonicalChecksum:
    def test_deterministic(self):
        payload = {
            "a": np.arange(5, dtype=np.int64),
            "b": 1.5,
            "c": [1, "two", None, True],
        }
        assert canonical_checksum(payload) == canonical_checksum(
            payload
        )

    def test_single_ulp_flip_changes_checksum(self):
        arr = np.array([1.0, 2.0, 3.0])
        before = canonical_checksum({"x": arr})
        bumped = arr.copy()
        bumped[1] = np.nextafter(bumped[1], np.inf)
        assert canonical_checksum({"x": bumped}) != before

    def test_dtype_and_shape_are_significant(self):
        a = np.zeros(4, dtype=np.int64)
        assert canonical_checksum(a) != canonical_checksum(
            a.astype(np.float64)
        )
        assert canonical_checksum(a) != canonical_checksum(
            a.reshape(2, 2)
        )

    def test_type_tags_disambiguate(self):
        # int 1 vs float 1.0 vs string "1" must all differ
        sums = {
            canonical_checksum(1),
            canonical_checksum(1.0),
            canonical_checksum("1"),
            canonical_checksum(True),
        }
        assert len(sums) == 4

    def test_dict_order_is_irrelevant(self):
        assert canonical_checksum(
            {"a": 1, "b": 2}
        ) == canonical_checksum({"b": 2, "a": 1})

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical_checksum(object())
