"""Bit-identity of the sharded farm against single-process replay.

The farm's headline guarantee: for every shardable trace,
``replay_farm(trace, config)`` produces statistics and telemetry
arrays **bit-identical** to ``MemorySystem(config).replay(trace)`` —
every float compared by ``repr`` (no tolerances), across schemes,
policies, refresh settings, arrival processes, worker modes, and shard
foldings.  Unshardable traces degrade to a single-process replay that
is exact by construction.
"""

import dataclasses

import numpy as np
import pytest

from repro.farm import FarmConfig, replay_farm
from repro.memsys import MemSysConfig, MemorySystem
from repro.memsys.trace import synthesize_trace
from repro.telemetry import ReplayTelemetry

ARRAY_PROPS = (
    "arrival",
    "start_service",
    "finish",
    "outcome_code",
    "channel",
    "bank",
    "row",
    "op_code",
)


def bitwise_equal(a, b):
    """repr-level equality: nan==nan, and every float to the last bit."""
    return repr(dataclasses.asdict(a)) == repr(dataclasses.asdict(b))


def assert_farm_exact(config, trace, farm, engine="fast"):
    single_tel = ReplayTelemetry(profile=False)
    single = MemorySystem(config).replay(
        trace, engine=engine, telemetry=single_tel
    )
    farm_tel = ReplayTelemetry(profile=False)
    result = replay_farm(trace, config, farm, telemetry=farm_tel)
    assert bitwise_equal(single, result.stats), (
        f"farm stats diverged: {single} != {result.stats}"
    )
    for prop in ARRAY_PROPS:
        assert np.array_equal(
            getattr(single_tel.recorder, prop),
            getattr(farm_tel.recorder, prop),
        ), f"telemetry array {prop} diverged"
    return result


def poisson_trace(config, n=1500, seed=11, interarrival_ns=60.0):
    return synthesize_trace(
        "random",
        n,
        config,
        seed=seed,
        packed=True,
        interarrival_ns=interarrival_ns,
        interarrival="poisson",
    )


class TestBitIdentity:
    @pytest.mark.parametrize("scheme", ["channel-interleaved", "row-major"])
    @pytest.mark.parametrize("policy", ["fcfs", "frfcfs"])
    def test_scheme_policy_matrix(self, scheme, policy):
        config = MemSysConfig(
            n_channels=4, scheme=scheme, policy=policy, queue_depth=8
        )
        trace = poisson_trace(config)
        assert_farm_exact(
            config,
            trace,
            FarmConfig(mode="inprocess", engine="fast"),
        )

    def test_refresh_enabled(self):
        config = MemSysConfig(
            n_channels=4,
            scheme="channel-interleaved",
            trefi_ns=3900.0,
            trfc_ns=350.0,
        )
        trace = poisson_trace(config, n=1200)
        result = assert_farm_exact(
            config,
            trace,
            FarmConfig(mode="inprocess", engine="fast"),
        )
        assert not result.report.fell_back_to_single

    def test_fixed_interarrival(self):
        config = MemSysConfig(
            n_channels=2, scheme="channel-interleaved"
        )
        trace = synthesize_trace(
            "sequential",
            1000,
            config,
            seed=2,
            packed=True,
            interarrival_ns=30.0,
        )
        assert_farm_exact(
            config, trace, FarmConfig(mode="inprocess", engine="fast")
        )

    def test_event_engine_workers(self):
        config = MemSysConfig(
            n_channels=4, scheme="channel-interleaved"
        )
        trace = poisson_trace(config, n=600)
        result = assert_farm_exact(
            config,
            trace,
            FarmConfig(mode="inprocess", engine="event"),
            engine="event",
        )
        assert {s.engine for s in result.report.shards} == {"event"}

    def test_real_worker_processes(self):
        config = MemSysConfig(
            n_channels=4, scheme="channel-interleaved", queue_depth=8
        )
        trace = poisson_trace(config)
        result = assert_farm_exact(
            config,
            trace,
            FarmConfig(mode="process", engine="fast", workers=2),
        )
        assert result.report.mode == "process"
        assert result.report.n_shards == 4

    def test_max_shards_folding(self):
        config = MemSysConfig(
            n_channels=8, scheme="channel-interleaved"
        )
        trace = poisson_trace(config, n=1600)
        result = assert_farm_exact(
            config,
            trace,
            FarmConfig(
                mode="inprocess", engine="fast", max_shards=3
            ),
        )
        assert result.report.n_shards == 3

    def test_single_active_channel(self):
        # row-major puts the channel in the top bits: a small footprint
        # lands every request on channel 0 and the farm gets one shard
        config = MemSysConfig(n_channels=4, scheme="row-major")
        trace = synthesize_trace(
            "random",
            400,
            config,
            seed=5,
            packed=True,
            footprint_bytes=1 << 16,
            interarrival_ns=50.0,
            interarrival="poisson",
        )
        result = assert_farm_exact(
            config, trace, FarmConfig(mode="inprocess", engine="fast")
        )
        assert result.report.n_shards == 1


class TestTierHarmonization:
    def test_mixed_tiers_are_harmonized_to_exact(self):
        # 50 ns Poisson over 4 channels: at least one channel trips a
        # vectorized certificate while others pass, so the first round
        # comes back mixed and the farm re-runs the tier-1 shards with
        # tier 2 pinned (this trace reproduces the original ulp bug)
        config = MemSysConfig(
            n_channels=4, scheme="channel-interleaved", queue_depth=8
        )
        trace = synthesize_trace(
            "random",
            2000,
            config,
            seed=7,
            packed=True,
            interarrival_ns=50.0,
            interarrival="poisson",
        )
        single_system = MemorySystem(config)
        single_system.replay(trace, engine="fast")
        assert single_system.last_replay_engine == "fast-exact"
        result = assert_farm_exact(
            config, trace, FarmConfig(mode="inprocess", engine="fast")
        )
        assert result.report.harmonized_shards > 0
        assert {s.engine for s in result.report.shards} == {
            "fast-exact"
        }

    def test_homogeneous_vectorized_needs_no_harmonization(self):
        config = MemSysConfig(
            n_channels=2, scheme="channel-interleaved"
        )
        trace = synthesize_trace(
            "sequential",
            800,
            config,
            seed=1,
            packed=True,
            interarrival_ns=40.0,
        )
        single_system = MemorySystem(config)
        single_system.replay(trace, engine="fast")
        assert single_system.last_replay_engine == "fast-vectorized"
        result = assert_farm_exact(
            config, trace, FarmConfig(mode="inprocess", engine="fast")
        )
        assert result.report.harmonized_shards == 0
        assert {s.engine for s in result.report.shards} == {
            "fast-vectorized"
        }


class TestGracefulDegradation:
    def test_line_rate_trace_falls_back_exactly(self):
        config = MemSysConfig(
            n_channels=4, scheme="channel-interleaved"
        )
        trace = synthesize_trace(
            "random", 600, config, seed=3, packed=True
        )
        single = MemorySystem(config).replay(trace, engine="fast")
        result = replay_farm(
            trace, config, FarmConfig(mode="inprocess")
        )
        assert result.report.fell_back_to_single
        assert "line-rate" in result.report.fallback_reason
        assert bitwise_equal(single, result.stats)

    def test_backpressured_trace_falls_back_exactly(self):
        # 1 ns mean interarrival floods the queues: the shard replay
        # cannot admit requests at their timestamps, the certificate
        # fails, and the farm must fall back — still bit-exact
        config = MemSysConfig(
            n_channels=2,
            scheme="channel-interleaved",
            queue_depth=2,
        )
        trace = synthesize_trace(
            "random",
            800,
            config,
            seed=9,
            packed=True,
            interarrival_ns=1.0,
            interarrival="poisson",
        )
        single = MemorySystem(config).replay(trace, engine="fast")
        result = replay_farm(
            trace, config, FarmConfig(mode="inprocess", engine="fast")
        )
        assert result.report.fell_back_to_single
        assert "certificate" in result.report.fallback_reason
        assert bitwise_equal(single, result.stats)

    def test_fallback_serves_caller_telemetry(self):
        config = MemSysConfig(
            n_channels=2, scheme="channel-interleaved"
        )
        trace = synthesize_trace(
            "random", 300, config, seed=4, packed=True
        )
        telemetry = ReplayTelemetry(profile=False)
        result = replay_farm(
            trace,
            config,
            FarmConfig(mode="inprocess"),
            telemetry=telemetry,
        )
        assert result.report.fell_back_to_single
        assert telemetry.recorder.n == 300
        assert telemetry.finished
