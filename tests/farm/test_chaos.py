"""Chaos suite: every injected failure ends exact or typed — never wrong.

The farm's robustness contract under fault injection:

* ``kill`` / ``hang`` / ``corrupt`` / ``slow`` faults are absorbed by
  retries (counted in the ledger) and the final statistics are still
  **bit-identical** to a single-process replay;
* a shard faulted past its retry budget degrades to a fault-free
  in-process replay — still exact;
* seeded random fault storms across many seeds never produce a wrong
  answer: every run either matches the single-process replay bit for
  bit or raises a typed :class:`~repro.errors.FarmError`.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.farm import (
    CORRUPT,
    HANG,
    KILL,
    SLOW,
    Fault,
    FaultPlan,
    FarmConfig,
    replay_farm,
)
from repro.memsys import MemSysConfig, MemorySystem
from repro.memsys.trace import synthesize_trace

#: Tight supervisor policy for chaos runs: retries are instant and
#: process-mode hangs are caught in ~1s instead of the default 10s.
CHAOS_FARM = dict(
    backoff_base_s=0.0,
    backoff_cap_s=0.0,
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=1.0,
)


def _setup(n=600, n_channels=4, seed=0):
    config = MemSysConfig(
        n_channels=n_channels, scheme="channel-interleaved"
    )
    trace = synthesize_trace(
        "random",
        n,
        config,
        seed=seed,
        packed=True,
        interarrival_ns=40.0,
        interarrival="poisson",
    )
    single = MemorySystem(config).replay(trace, engine="fast")
    return config, trace, single


def _exact(single, stats):
    return repr(dataclasses.asdict(single)) == repr(
        dataclasses.asdict(stats)
    )


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Fault("meteor")

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            Fault(SLOW, delay_s=-1.0)

    def test_seeded_rate_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan.seeded(0, 4, rate=1.5)

    def test_seeded_kinds_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan.seeded(0, 4, kinds=("kill", "meteor"))


class TestFaultPlan:
    def test_always_covers_shards_and_attempts(self):
        plan = FaultPlan.always(KILL, [0, 2], attempts=2)
        assert plan.fault_for(0, 0).kind == KILL
        assert plan.fault_for(0, 1).kind == KILL
        assert plan.fault_for(0, 2) is None
        assert plan.fault_for(1, 0) is None
        assert plan.fault_for(2, 0).kind == KILL
        assert len(plan) == 4

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, 8, attempts=3, rate=0.5)
        b = FaultPlan.seeded(7, 8, attempts=3, rate=0.5)
        assert repr(a) == repr(b)

    def test_seeded_seeds_differ(self):
        a = FaultPlan.seeded(1, 8, attempts=3, rate=0.5)
        b = FaultPlan.seeded(2, 8, attempts=3, rate=0.5)
        assert repr(a) != repr(b)

    def test_seeded_rate_zero_is_empty(self):
        assert len(FaultPlan.seeded(0, 16, rate=0.0)) == 0


class TestInProcessChaos:
    """Each fault kind surfaces as its typed error, gets retried, and
    the final answer is still bit-exact."""

    def _run(self, fault_plan, **farm_kwargs):
        config, trace, single = _setup()
        kwargs = dict(CHAOS_FARM, mode="inprocess", engine="fast")
        kwargs.update(farm_kwargs)
        result = replay_farm(
            trace,
            config,
            FarmConfig(**kwargs),
            fault_plan=fault_plan,
        )
        assert _exact(single, result.stats), "chaos produced a wrong answer"
        return result.report

    def test_kill_counts_as_crash_and_retries(self):
        report = self._run(FaultPlan.always(KILL, [0]))
        assert report.crashes == 1
        assert report.retries == 1
        assert report.degraded_shards == 0
        assert any("WorkerCrash" in e for e in report.errors)
        assert report.shards[0].attempts >= 2
        assert report.shards[1].attempts == 1

    def test_hang_counts_as_timeout(self):
        report = self._run(FaultPlan.always(HANG, [1]))
        assert report.timeouts == 1
        assert report.retries == 1
        assert any("ShardTimeout" in e for e in report.errors)

    def test_corrupt_counts_as_integrity_failure(self):
        report = self._run(FaultPlan.always(CORRUPT, [2]))
        assert report.integrity_failures == 1
        assert report.retries == 1
        assert any(
            "ResultIntegrityError" in e for e in report.errors
        )

    def test_slow_succeeds_without_retry(self):
        report = self._run(
            FaultPlan.always(SLOW, [0], delay_s=0.001)
        )
        assert report.retries == 0
        assert report.crashes == 0
        assert report.errors == []

    def test_fault_every_attempt_degrades_exactly(self):
        # 1 try + 2 retries all faulted -> the shard must degrade to
        # the supervisor's fault-free in-process replay
        report = self._run(
            FaultPlan.always(KILL, [0], attempts=3), max_retries=2
        )
        assert report.degraded_shards == 1
        assert report.shards[0].degraded
        # 3 faulted + 1 degraded (+1 if tier harmonization re-ran it)
        assert report.shards[0].attempts >= 4
        assert report.crashes == 3
        assert report.retries == 2

    def test_mixed_storm_is_absorbed(self):
        plan = FaultPlan(
            {
                (0, 0): Fault(KILL),
                (1, 0): Fault(CORRUPT),
                (2, 0): Fault(HANG),
                (3, 0): Fault(SLOW, delay_s=0.001),
            }
        )
        report = self._run(plan)
        assert report.crashes == 1
        assert report.integrity_failures == 1
        assert report.timeouts == 1
        assert report.retries == 3
        assert report.degraded_shards == 0


class TestProcessChaos:
    """Real worker processes: kills and hangs detected by the
    supervisor's pipe/heartbeat machinery, not by exceptions."""

    def _run(self, fault_plan):
        config, trace, single = _setup(n=400)
        result = replay_farm(
            trace,
            config,
            FarmConfig(
                mode="process",
                engine="fast",
                workers=2,
                **CHAOS_FARM,
            ),
            fault_plan=fault_plan,
        )
        assert _exact(single, result.stats), "chaos produced a wrong answer"
        return result.report

    def test_killed_worker_is_detected_and_retried(self):
        report = self._run(FaultPlan.always(KILL, [0]))
        assert report.mode == "process"
        assert report.crashes == 1
        assert report.retries == 1
        assert report.degraded_shards == 0

    def test_hung_worker_trips_heartbeat_timeout(self):
        report = self._run(FaultPlan.always(HANG, [1]))
        assert report.timeouts == 1
        assert report.retries == 1
        assert any("silent" in e for e in report.errors)

    def test_corrupted_payload_is_rejected(self):
        report = self._run(FaultPlan.always(CORRUPT, [0]))
        assert report.integrity_failures == 1
        assert report.retries == 1


class TestSeededStorms:
    """The headline chaos property: random fault storms never produce
    a wrong answer — exact results or typed errors, nothing else."""

    @pytest.mark.parametrize("seed", range(6))
    def test_storm_always_exact(self, seed):
        config, trace, single = _setup(seed=seed)
        plan = FaultPlan.seeded(
            seed,
            n_shards=4,
            attempts=3,
            rate=0.4,
            slow_delay_s=0.001,
        )
        result = replay_farm(
            trace,
            config,
            FarmConfig(
                mode="inprocess", engine="fast", **CHAOS_FARM
            ),
            fault_plan=plan,
        )
        report = result.report
        assert _exact(single, result.stats), (
            f"seed {seed}: chaos produced a wrong answer "
            f"(ledger: {report.to_dict()})"
        )
        # the ledger must account for every absorbed fault
        absorbed = (
            report.crashes
            + report.timeouts
            + report.integrity_failures
        )
        assert len(report.errors) == absorbed
