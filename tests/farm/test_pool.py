"""Tests for the supervisor machinery: config, retries, integrity.

These exercise :class:`~repro.farm.WorkerPool`'s moving parts in
isolation — validation, mode resolution, backoff determinism, result
verification, and the fault ledger — without requiring real worker
processes (the chaos and equivalence suites cover those end to end).
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import (
    ConfigError,
    FarmError,
    ResultIntegrityError,
    ShardTimeout,
    WorkerCrash,
)
from repro.farm import (
    FarmConfig,
    FarmReport,
    ShardOutcome,
    ShardPlanner,
    WorkerPool,
    canonical_checksum,
    replay_farm,
)
from repro.memsys import MemSysConfig
from repro.memsys.trace import synthesize_trace
from repro.telemetry import MetricsRegistry, farm_metrics


def _plan(n=200, n_channels=4, seed=0):
    config = MemSysConfig(
        n_channels=n_channels, scheme="channel-interleaved"
    )
    trace = synthesize_trace(
        "random",
        n,
        config,
        seed=seed,
        packed=True,
        interarrival_ns=40.0,
        interarrival="poisson",
    )
    return ShardPlanner(config).plan(trace)


class TestFarmConfigValidation:
    def test_defaults_are_valid(self):
        FarmConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": -1},
            {"mode": "threads"},
            {"engine": "warp"},
            {"max_shards": 0},
            {"max_retries": -1},
            {"deadline_s": 0.0},
            {"heartbeat_interval_s": -1.0},
            {"heartbeat_timeout_s": 0.0},
            {"backoff_base_s": -0.1},
            {"backoff_base_s": 1.0, "backoff_cap_s": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_bad_fields_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            FarmConfig(**kwargs)

    def test_config_error_is_a_value_error(self):
        # CLI bad-input handling catches ValueError; the farm's
        # misconfigurations must land in the same net
        with pytest.raises(ValueError):
            FarmConfig(mode="nope")

    def test_frozen(self):
        farm = FarmConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            farm.workers = 3


class TestErrorTaxonomy:
    def test_farm_errors_carry_shard_context(self):
        error = ShardTimeout("slow", shard_id=3, attempt=1)
        assert isinstance(error, FarmError)
        assert isinstance(error, RuntimeError)
        assert error.shard_id == 3
        assert error.attempt == 1

    def test_error_codes(self):
        assert ShardTimeout("x").code == "FARM_TIMEOUT"
        assert WorkerCrash("x").code == "FARM_CRASH"
        assert ResultIntegrityError("x").code == "FARM_INTEGRITY"


class TestResolveMode:
    def test_inprocess_is_honored(self):
        mode, workers, why = WorkerPool(
            FarmConfig(mode="inprocess")
        ).resolve_mode(4)
        assert mode == "inprocess"
        assert why == ""

    def test_auto_single_shard_stays_inprocess(self):
        mode, workers, _ = WorkerPool(
            FarmConfig(mode="auto")
        ).resolve_mode(1)
        assert mode == "inprocess"
        assert workers == 1

    def test_auto_single_worker_stays_inprocess(self):
        mode, workers, _ = WorkerPool(
            FarmConfig(mode="auto", workers=1)
        ).resolve_mode(4)
        assert mode == "inprocess"

    def test_workers_never_exceed_shards(self):
        _, workers, _ = WorkerPool(
            FarmConfig(mode="process", workers=16)
        ).resolve_mode(3)
        assert workers == 3

    def test_process_mode_uses_processes(self):
        mode, workers, why = WorkerPool(
            FarmConfig(mode="process", workers=2)
        ).resolve_mode(4)
        assert mode == "process"
        assert workers == 2
        assert why == ""


class TestBackoff:
    def test_deterministic_per_shard_and_attempt(self):
        pool = WorkerPool(FarmConfig(seed=42))
        assert pool._backoff_delay(1, 0) == pool._backoff_delay(1, 0)

    def test_decorrelated_across_shards(self):
        pool = WorkerPool(FarmConfig(seed=42, jitter=0.5))
        assert pool._backoff_delay(0, 0) != pool._backoff_delay(1, 0)

    def test_exponential_growth_capped(self):
        pool = WorkerPool(
            FarmConfig(
                backoff_base_s=0.1, backoff_cap_s=0.4, jitter=0.0
            )
        )
        assert pool._backoff_delay(0, 0) == pytest.approx(0.1)
        assert pool._backoff_delay(0, 1) == pytest.approx(0.2)
        assert pool._backoff_delay(0, 2) == pytest.approx(0.4)
        assert pool._backoff_delay(0, 5) == pytest.approx(0.4)

    def test_jitter_bounds(self):
        pool = WorkerPool(
            FarmConfig(
                backoff_base_s=1.0,
                backoff_cap_s=1.0,
                jitter=0.5,
                seed=7,
            )
        )
        for shard_id in range(20):
            delay = pool._backoff_delay(shard_id, 0)
            assert 0.5 <= delay <= 1.5


class TestVerifyResult:
    def _good_result(self, shard):
        n = len(shard)
        arrays = {
            key: np.zeros(
                n,
                dtype=(
                    np.float64
                    if key in ("arrival", "start_service", "finish")
                    else np.int64
                ),
            )
            for key in (
                "arrival",
                "start_service",
                "finish",
                "outcome",
                "channel",
                "bank",
                "row",
                "op",
            )
        }
        result = {
            "makespan_ns": 100.0,
            "engine": "fast-exact",
            "backpressure": False,
            "controllers": {},
            "arrays": arrays,
        }
        result["checksum"] = canonical_checksum(result)
        return result

    def test_accepts_sealed_result(self):
        plan = _plan()
        shard = plan.shards[0]
        WorkerPool()._verify_result(shard, 0, self._good_result(shard))

    def test_rejects_missing_checksum(self):
        plan = _plan()
        shard = plan.shards[0]
        result = self._good_result(shard)
        del result["checksum"]
        with pytest.raises(ResultIntegrityError):
            WorkerPool()._verify_result(shard, 0, result)

    def test_rejects_single_bit_tamper(self):
        plan = _plan()
        shard = plan.shards[0]
        result = self._good_result(shard)
        result["arrays"]["finish"][0] = np.nextafter(
            result["arrays"]["finish"][0], np.inf
        )
        with pytest.raises(ResultIntegrityError) as excinfo:
            WorkerPool()._verify_result(shard, 1, result)
        assert excinfo.value.shard_id == shard.shard_id
        assert excinfo.value.attempt == 1

    def test_rejects_wrong_array_shapes(self):
        plan = _plan()
        shard = plan.shards[0]
        result = self._good_result(shard)
        result["arrays"]["finish"] = np.zeros(len(shard) + 1)
        payload = {
            key: value
            for key, value in result.items()
            if key != "checksum"
        }
        result["checksum"] = canonical_checksum(payload)
        with pytest.raises(ResultIntegrityError):
            WorkerPool()._verify_result(shard, 0, result)

    def test_rejects_non_dict_payload(self):
        plan = _plan()
        with pytest.raises(ResultIntegrityError):
            WorkerPool()._verify_result(plan.shards[0], 0, None)


class TestReportSerialization:
    def test_shard_outcome_round_trip(self):
        outcome = ShardOutcome(
            shard_id=2,
            channels=(2, 6),
            n_requests=50,
            attempts=3,
            engine="fast-exact",
            degraded=True,
            errors=["WorkerCrash: boom"],
        )
        data = outcome.to_dict()
        assert data["channels"] == [2, 6]
        assert data["degraded"] is True
        assert data["errors"] == ["WorkerCrash: boom"]

    def test_farm_report_to_dict_is_json_ready(self):
        import json

        report = FarmReport(mode="process", workers=4, n_shards=4)
        report.shards = [
            ShardOutcome(shard_id=0, channels=(0,), n_requests=10)
        ]
        report.retries = 2
        document = report.to_dict()
        json.dumps(document)  # must not raise
        assert document["retries"] == 2
        assert document["shards"][0]["shard_id"] == 0


class TestFarmMetrics:
    def test_ledger_counters_are_emitted(self):
        plan = _plan()
        result = replay_farm(
            plan.trace,
            plan.config,
            FarmConfig(mode="inprocess", engine="fast"),
        )
        registry = farm_metrics(result.report, MetricsRegistry())
        counters = {
            entry["name"]: entry["value"]
            for entry in registry.counters
        }
        assert counters["farm.shards"] == plan.n_shards
        assert counters["farm.attempts"] >= plan.n_shards
        assert counters["farm.retries"] == 0
        assert counters["farm.crashes"] == 0
        assert counters["farm.single_process_fallbacks"] == 0
        assert (
            counters["farm.harmonized_shards"]
            == result.report.harmonized_shards
        )

    def test_fallback_reason_becomes_degraded_gauge(self):
        report = FarmReport(mode="single", workers=1, n_shards=0)
        report.fell_back_to_single = True
        report.fallback_reason = "line-rate trace"
        registry = farm_metrics(report, MetricsRegistry())
        degraded = [
            entry
            for entry in registry.gauges
            if entry["name"] == "farm.degraded"
        ]
        assert len(degraded) == 1
        assert degraded[0]["tags"]["reason"] == "line-rate trace"
