"""Smoke tests: every example script runs to completion.

Examples are executed in-process (runpy) with stdout captured, and key
output markers are asserted so regressions in the public API surface
show up here before a user hits them.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["Break-even node count NB = 3.125", "work ratio"],
    "design_space_exploration.py": [
        "break-even node count vs host cache miss rate",
        "PIM nodes",
    ],
    "latency_hiding_parcels.py": ["saturation parallelism", "P_sat"],
    "irregular_kernels_on_pim.py": ["pointer_chase", "parallel_sum"],
    "calibrated_design_point.py": [
        "calibrated break-even node count",
        "recommendation",
    ],
    "pim_kernel_execution.py": [
        "bank GRF contents bit-exact vs NumPy: True",
        "speedup",
    ],
    "timestamped_replay.py": [
        "timestamped trace lines:",
        "per-bank",
        "overhead",
    ],
    "latency_profile.py": [
        "per-request instants bit-identical across engines: True",
        "latency percentiles (ns, exact):",
        "phase profile",
        "schema valid: True",
    ],
    "transformer_layer.py": [
        "fp16 bank state bit-exact vs NumPy binary16: True",
        "bank-group GEMM: bit-identical output",
        "event and fast engines agree bit-for-bit",
    ],
    "energy_profile.py": [
        "energy documents bit-identical across engines: True",
        "host energy breakdown:",
        "host power profile:",
        "pim moves bits cheaper than the host stream: True",
        "perf-per-watt",
    ],
    "run_report.py": [
        "time series identical across single-process and farm: True",
        "chaos-kill events on shard 0: 1 (attempt 0)",
        "farm ledger:",
        "farm events:",
    ],
    "farm_replay.py": [
        "farm stats bit-identical to single-process: True",
        "stats under chaos bit-identical to single-process: True",
        "fault ledger:",
        "fell back to single-process = True",
    ],
}


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script, capsys, monkeypatch):
    # examples must be deterministic and self-contained
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    for marker in EXPECTED_MARKERS[script]:
        assert marker in out, f"{script} output missing {marker!r}"
