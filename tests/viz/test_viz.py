"""Tests for ASCII plotting, table formatting and CSV IO."""

import numpy as np
import pytest

from repro.core.grid import SweepGrid
from repro.viz import (
    format_markdown_table,
    format_table,
    grid_plot,
    line_plot,
    read_csv,
    write_csv,
)


class TestLinePlot:
    def test_contains_markers_title_legend(self):
        out = line_plot(
            [1.0, 2.0, 3.0],
            {"a": [1.0, 2.0, 3.0], "b": [3.0, 2.0, 1.0]},
            title="demo",
            xlabel="x-axis",
            ylabel="y",
        )
        assert "demo" in out
        assert "legend: o a   x b" in out
        assert "x-axis" in out
        assert "o" in out and "x" in out

    def test_axis_tick_values(self):
        out = line_plot([0.0, 10.0], {"s": [5.0, 50.0]})
        assert "0" in out and "10" in out
        assert "50" in out and "5" in out

    def test_log_axes(self):
        out = line_plot(
            [1.0, 10.0, 100.0],
            {"s": [1.0, 100.0, 10000.0]},
            logx=True,
            logy=True,
        )
        assert "1e+04" in out or "10000" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_plot([0.0, 1.0], {"s": [1.0, 2.0]}, logx=True)

    def test_flat_series_ok(self):
        out = line_plot([1.0, 2.0], {"s": [5.0, 5.0]})
        assert "o" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([1.0], {})
        with pytest.raises(ValueError):
            line_plot([1.0, 2.0], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_plot([1.0, 2.0], {"s": [1.0, 2.0]}, width=2)

    def test_grid_plot_series_per_row(self):
        g = SweepGrid(
            "g", "n", (1.0, 2.0), "x", (0.0, 1.0),
            np.array([[1.0, 2.0], [3.0, 4.0]]), "v",
        )
        out = grid_plot(g, row_format=lambda v: f"{v:.0f}")
        assert "n=1" in out and "n=2" in out
        out_t = grid_plot(g, transpose=True)
        assert "x=0" in out_t


class TestTables:
    ROWS = [
        {"name": "a", "value": 1.5, "flag": True},
        {"name": "bb", "value": float("nan"), "flag": False},
    ]

    def test_format_table_alignment(self):
        out = format_table(self.ROWS)
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "yes" in lines[2]
        assert "-" in lines[3]  # NaN renders as dash

    def test_column_selection_and_order(self):
        out = format_table(self.ROWS, columns=["value", "name"])
        assert out.splitlines()[0].startswith("value")

    def test_scientific_for_extremes(self):
        out = format_table([{"v": 1.23e9}])
        assert "1.230e+09" in out

    def test_markdown_table(self):
        out = format_markdown_table(self.ROWS)
        assert out.splitlines()[0] == "| name | value | flag |"
        assert out.splitlines()[1] == "|---|---|---|"

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table([])


class TestCsvIo:
    def test_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = write_csv(tmp_path / "sub" / "data.csv", rows)
        assert path.exists()
        back = read_csv(path)
        assert back == [
            {"a": "1", "b": "2.5"},
            {"a": "3", "b": "4.5"},
        ]

    def test_missing_keys_filled_blank(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 9}]
        path = write_csv(tmp_path / "d.csv", rows)
        back = read_csv(path)
        assert back[0]["b"] == ""
        assert back[1]["b"] == "9"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", [])
