"""Benchmark: Figure 12 — idle time vs parallelism (one panel).

Times a reduced idle-time panel including the 16-node system the paper
failed to complete, asserting the idle-time contrast.
"""

from repro.core.params import ParcelParams
from repro.core.parcels import figure12_sweep

BASE = ParcelParams(remote_fraction=0.2, latency_cycles=1000.0)


def run():
    return figure12_sweep(
        BASE,
        node_counts=(16,),  # the panel the paper could not complete
        parallelism_levels=(1, 8, 32),
        horizon_cycles=5_000.0,
    )


def test_bench_figure12_sixteen_nodes(benchmark):
    result = benchmark(run)
    grid = result.panel(16)
    test_idle, control_idle = grid.values[0], grid.values[1]
    assert test_idle[-1] < 0.1        # 'drops virtually to zero'
    assert control_idle[0] > 0.5      # 'relatively high idle time'
