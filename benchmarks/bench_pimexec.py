"""Benchmark: PIM kernel execution-pipeline throughput.

Times the full :mod:`repro.pimexec` pipeline — functional all-bank
execution (every dynamic CRF instruction runs in every bank) plus the
replay of the generated mixed host+PIM request stream through the
banked memory system — on a large ``vector-sum`` kernel, and records
the simulated host-vs-PIM speedup of every built-in kernel.

Each run asserts bit-exact correctness of the per-bank register state
against the NumPy reference before timing counts, so the benchmark
doubles as an at-scale end-to-end check.

Run directly (``PYTHONPATH=src python benchmarks/bench_pimexec.py
--json BENCH_pimexec.json``) to emit a machine-readable record; CI does
this every push, next to ``BENCH_memsys.json``.
"""

import argparse
import json
import pathlib
import time

from repro.memsys import MemorySystem, MemSysConfig
from repro.pimexec import KERNEL_NAMES, PimExecMachine, build_kernel

#: Vector length for the timed pipeline run (16384 all-bank commands).
N_VALUES = 1_048_576
#: Timed-run geometry: a full HBM2 stack exposes 16 pseudo-channels
#: (the Aquabolt shape), which spreads the same command count over
#: more banks so the vectorized tier is exercised at its widest.
N_CHANNELS = 16
#: Acceptance floors.  The commands/s floor pins the vectorized
#: execution tier: the scalar per-bank unit grid sits two orders of
#: magnitude below it, so a silent fallback fails the bench.
MIN_COMMANDS_PER_SEC = 1_000_000
MIN_VECTOR_SUM_SPEEDUP = 1.5
MAX_TELEMETRY_OVERHEAD_PCT = 5.0


def bench_config(n_channels=N_CHANNELS):
    """Memory-system geometry for the timed runs."""
    return MemSysConfig(n_channels=n_channels)


def run_pipeline(n=N_VALUES, telemetry=None):
    """Time execute+replay of a ``vector-sum`` kernel of ``n`` values.

    Returns ``(commands_per_sec, values_per_sec, result)``; an optional
    :class:`repro.telemetry.ReplayTelemetry` instruments the replay.
    """
    kernel = build_kernel("vector-sum", n=n, config=bench_config())
    machine = PimExecMachine(kernel.config)
    kernel.setup(machine)  # data staging is untimed
    machine.reset_requests()
    started = time.perf_counter()
    kernel.execute(machine)
    result = machine.replay(telemetry=telemetry)
    elapsed = time.perf_counter() - started
    assert kernel.check(machine), "bank state diverged from NumPy"
    return result.n_pim / elapsed, n / elapsed, result


def replay_overhead(n=N_VALUES, pairs=5):
    """Replay-only telemetry overhead on one accumulated stream.

    Executes the kernel once, then alternates uninstrumented and
    instrumented replays of the identical request stream so the
    overhead ratio isolates the recorder cost from the (much larger,
    telemetry-free) functional-execution half of the pipeline.
    Returns ``(on_rate, overhead_pct, spread_pct, telemetry)``.
    """
    from repro.telemetry import ReplayTelemetry

    kernel = build_kernel("vector-sum", n=n, config=bench_config())
    machine = PimExecMachine(kernel.config)
    kernel.setup(machine)
    machine.reset_requests()
    kernel.execute(machine)
    # warm-up pair: the first replay of each flavor pays cold-start
    # costs (allocator pools, recorder imports) that would skew pair 0
    machine.replay()
    machine.replay(telemetry=ReplayTelemetry())
    off, on = [], []
    for _ in range(pairs):
        started = time.perf_counter()
        result = machine.replay()
        off.append(result.n_pim / (time.perf_counter() - started))
        telemetry = ReplayTelemetry()
        started = time.perf_counter()
        result = machine.replay(telemetry=telemetry)
        on.append(
            (result.n_pim / (time.perf_counter() - started), telemetry)
        )
    on_rate, telemetry = max(on, key=lambda r: r[0])
    # median of the per-pair ratios: each pair shares its moment's
    # machine conditions, and the median rejects GC/scheduler outliers;
    # the spread (max - min ratio) is the run's own noise estimate
    ratios = sorted(o / r for o, (r, _) in zip(off, on))
    overhead_pct = 100 * (ratios[len(ratios) // 2] - 1)
    spread_pct = 100 * (ratios[-1] - ratios[0])
    return on_rate, overhead_pct, spread_pct, telemetry


def kernel_speedups(n=8_192):
    """Simulated host-vs-PIM speedup of every built-in kernel."""
    from repro.pimexec import compare_host_pim

    rows = []
    for name in KERNEL_NAMES:
        kwargs = {"n_cols": n // 64} if name == "gemv" else {"n": n}
        comparison = compare_host_pim(build_kernel(name, **kwargs))
        assert comparison.correct, name
        rows.append(
            {
                "kernel": name,
                "host_ns": comparison.host.makespan_ns,
                "pim_ns": comparison.pim.makespan_ns,
                "speedup": round(comparison.speedup, 2),
            }
        )
    return rows


def test_bench_pipeline(benchmark):
    commands_rate, _values_rate, result = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1
    )
    # one all-bank command per slot per channel: each of the
    # 16 lanes * 4 units * N_CHANNELS banks holds N/(16*4*N_CHANNELS)
    # slots, so n_pim = slots * N_CHANNELS = N / 64 for any channel count
    assert result.n_pim == N_VALUES // 64
    assert result.engine == "fast-vectorized"
    assert commands_rate >= MIN_COMMANDS_PER_SEC


def test_bench_kernel_speedups(benchmark):
    rows = benchmark.pedantic(kernel_speedups, rounds=1, iterations=1)
    by_name = {row["kernel"]: row["speedup"] for row in rows}
    assert by_name["vector-sum"] >= MIN_VECTOR_SUM_SPEEDUP
    assert sum(s > 1.0 for s in by_name.values()) >= 2


def main(argv=None) -> int:
    """Measure the pipeline and optionally write a JSON record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the throughput record to FILE",
    )
    args = parser.parse_args(argv)

    run_pipeline(n=32_768)  # warm-up
    commands_rate, values_rate, result = max(
        (run_pipeline() for _ in range(3)), key=lambda r: r[0]
    )
    telemetry_rate, telemetry_overhead_pct, spread_pct, telemetry = (
        replay_overhead()
    )
    # percentile + time-series + energy assembly is deliberately
    # outside the timed region — derivation must never ride the hot
    # path
    percentiles = telemetry.percentiles()
    from repro.telemetry import (
        build_energy,
        build_timeseries,
        validate_energy,
        validate_timeseries,
    )

    timeseries = build_timeseries(telemetry)
    assert validate_timeseries(timeseries) == []
    energy = build_energy(telemetry)
    assert validate_energy(energy) == []
    speedups = kernel_speedups()
    record = {
        "benchmark": "pimexec_pipeline_throughput",
        "vector_sum_values": N_VALUES,
        "n_channels": N_CHANNELS,
        "unit_mode": PimExecMachine(bench_config()).unit_mode,
        "all_bank_commands_per_sec": round(commands_rate),
        "telemetry_commands_per_sec": round(telemetry_rate),
        "telemetry_overhead_pct": round(telemetry_overhead_pct, 2),
        "telemetry_overhead_spread_pct": round(spread_pct, 2),
        "timeseries_windows": timeseries["n_windows"],
        "energy_total_pj": round(energy["total_pj"], 3),
        "energy_pj_per_bit": round(energy["pj_per_bit"], 6),
        "energy_mean_power_w": round(energy["mean_power_w"], 6),
        # every request in the instrumented pimexec stream is one
        # command, so perf-per-watt is commands/s per simulated watt
        "energy_commands_per_s_per_w": round(
            energy["requests_per_s_per_w"]
        ),
        "latency_percentiles": percentiles,
        "values_per_sec": round(values_rate),
        "replay_engine": result.engine,
        "kernel_speedups": speedups,
        "floor_commands_per_sec": MIN_COMMANDS_PER_SEC,
        "floor_telemetry_overhead_pct": MAX_TELEMETRY_OVERHEAD_PCT,
        "passed": bool(
            commands_rate >= MIN_COMMANDS_PER_SEC
            and result.engine == "fast-vectorized"
            and sum(r["speedup"] > 1.0 for r in speedups) >= 2
            # a median overhead inside the run's own noise spread is
            # not a verdict — compare_bench re-measures it instead
            and telemetry_overhead_pct - spread_pct
            < MAX_TELEMETRY_OVERHEAD_PCT
        ),
    }
    print(json.dumps(record, indent=2))
    if args.json is not None:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0 if record["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
