"""Benchmark: trace replay throughput of the memory-system model.

Regimes timed:

* the desim **event engine** on a 100k-request streaming replay — the
  PR-1 baseline (~50k requests/s), kept as the reference point;
* the event-free **fast path** on a 1M-request packed streaming replay,
  which must sustain at least 1,000,000 requests/s and at least 20x the
  event engine (the ISSUE-2 acceptance floor; in practice it clears
  both by a wide margin);
* the same 1M streaming replay with **per-rank refresh enabled**
  (HBM2-class tREFI=3900/tRFC=350): the epoch-chunked closed form must
  hold the same >= 1M requests/s floor (the ISSUE-4 acceptance floor);
* **FR-FCFS random traffic** through the batched-heap exact tier, and
  **FCFS random traffic** through the arrival-fixed-point vectorized
  tier (the ISSUE-4 certificate lever);
* the 1M streaming replay with **telemetry enabled** (per-request
  latency recording + phase profiling via :mod:`repro.telemetry`): the
  lazy zero-copy recorder must cost < 5% of the telemetry-off rate,
  and the record carries the exact queue-wait/service percentiles.

Each benchmark asserts the §2.1 analytic cross-check before timing, so
the suite doubles as an end-to-end correctness smoke test at scale.

Run directly (``PYTHONPATH=src python benchmarks/bench_memsys.py --json
BENCH_memsys.json``) to emit a machine-readable throughput record; CI
does this every push so the perf trajectory is tracked PR-over-PR.
"""

import argparse
import json
import pathlib
import time

import pytest

from repro.arch.dram import macro_bandwidth_bits_per_sec
from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace

N_EVENT = 100_000
N_FAST = 1_000_000
N_RANDOM = 200_000
#: Acceptance floors for the fast path (ISSUE 2).
MIN_FAST_REQUESTS_PER_SEC = 1_000_000
MIN_SPEEDUP_OVER_EVENT = 20.0
#: Telemetry must stay within noise of the telemetry-off rate (ISSUE 6).
MAX_TELEMETRY_OVERHEAD_PCT = 5.0


def streaming_config() -> MemSysConfig:
    return MemSysConfig(n_channels=2, scheme="channel-interleaved")


def check_streaming(config, stats, n):
    assert stats.n_requests == n
    # two channels of interleaved streaming: ~2x one macro's bandwidth
    analytic = 2 * macro_bandwidth_bits_per_sec(config.timing)
    assert stats.sustained_bits_per_sec == pytest.approx(
        analytic, rel=0.05
    )


def run_event(n=N_EVENT):
    """Replay ``n`` streaming requests through the event engine."""
    config = streaming_config()
    trace = synthesize_trace("sequential", n, config)
    started = time.perf_counter()
    stats = MemorySystem(config).replay(trace, engine="event")
    elapsed = time.perf_counter() - started
    check_streaming(config, stats, n)
    return n / elapsed


def run_fast(n=N_FAST):
    """Replay ``n`` packed streaming requests through the fast path."""
    config = streaming_config()
    trace = synthesize_trace("sequential", n, config, packed=True)
    system = MemorySystem(config)
    started = time.perf_counter()
    stats = system.replay(trace, engine="fast")
    elapsed = time.perf_counter() - started
    assert system.last_replay_engine == "fast-vectorized"
    check_streaming(config, stats, n)
    return n / elapsed


def run_fast_telemetry(n=N_FAST):
    """Replay ``n`` streaming requests with telemetry recording on.

    Times only the instrumented replay (the recorder stores references
    during the run; percentile assembly happens after the clock stops).
    Returns ``(requests_per_sec, telemetry)``.
    """
    from repro.telemetry import ReplayTelemetry

    config = streaming_config()
    trace = synthesize_trace("sequential", n, config, packed=True)
    system = MemorySystem(config)
    telemetry = ReplayTelemetry()
    started = time.perf_counter()
    stats = system.replay(trace, engine="fast", telemetry=telemetry)
    elapsed = time.perf_counter() - started
    assert system.last_replay_engine == "fast-vectorized"
    check_streaming(config, stats, n)
    return n / elapsed, telemetry


#: HBM2-class refresh timings (ns) used by the refresh benchmark.
TREFI_NS, TRFC_NS = 3900.0, 350.0


def run_fast_refresh(n=N_FAST):
    """Replay ``n`` streaming requests with per-rank refresh enabled.

    The epoch-chunked vectorized tier must absorb the tREFI/tRFC
    fences without dropping below the 1M requests/s floor, and the
    sustained bandwidth must show the ~tRFC/tREFI refresh overhead.
    """
    config = MemSysConfig(
        n_channels=2,
        scheme="channel-interleaved",
        trefi_ns=TREFI_NS,
        trfc_ns=TRFC_NS,
    )
    trace = synthesize_trace("sequential", n, config, packed=True)
    system = MemorySystem(config)
    started = time.perf_counter()
    stats = system.replay(trace, engine="fast")
    elapsed = time.perf_counter() - started
    assert system.last_replay_engine == "fast-vectorized"
    # ideal streaming minus roughly the blackout fraction
    analytic = 2 * macro_bandwidth_bits_per_sec(config.timing)
    overhead = 1 - stats.sustained_bits_per_sec / analytic
    blackout = TRFC_NS / TREFI_NS
    assert 0.5 * blackout < overhead < 2.0 * blackout
    return n / elapsed


def test_bench_100k_event_replay(benchmark):
    def run():
        config = streaming_config()
        trace = synthesize_trace("sequential", N_EVENT, config)
        return config, MemorySystem(config).replay(
            trace, engine="event"
        )

    config, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    check_streaming(config, stats, N_EVENT)


def test_bench_1m_fastpath_replay(benchmark):
    """The ISSUE-2 acceptance benchmark: >= 1M requests/s sustained,
    >= 20x the event engine, on a bit-equivalent 1M-request replay."""
    event_rate = run_event(20_000)
    run_fast()  # steady state: pre-fault the allocator's large pools
    fast_rate = benchmark.pedantic(run_fast, rounds=1, iterations=1)
    assert fast_rate >= MIN_FAST_REQUESTS_PER_SEC
    assert fast_rate >= MIN_SPEEDUP_OVER_EVENT * event_rate


def run_random(n=N_RANDOM):
    """Replay ``n`` random-traffic requests through the exact tier.

    Random traffic fails the fast path's closed-form certificates, so
    this times the batched-heap exact fallback — the satellite lever
    the ISSUE-3 perf item targets.
    """
    config = MemSysConfig()
    trace = synthesize_trace("random", n, config, seed=0, packed=True)
    system = MemorySystem(config)
    started = time.perf_counter()
    stats = system.replay(trace, engine="fast")
    elapsed = time.perf_counter() - started
    assert system.last_replay_engine == "fast-exact"
    assert stats.n_requests == n
    assert stats.row_hit_rate < 0.2
    return n / elapsed


def run_fcfs_random(n=N_RANDOM):
    """Replay ``n`` FCFS random-traffic requests, vectorized.

    FCFS is FIFO by construction, so only the line-rate certificate
    used to block random traffic from the closed form; the arrival
    fixed point lifts it into the vectorized tier.
    """
    config = MemSysConfig(policy="fcfs")
    trace = synthesize_trace("random", n, config, seed=0, packed=True)
    system = MemorySystem(config)
    started = time.perf_counter()
    stats = system.replay(trace, engine="fast")
    elapsed = time.perf_counter() - started
    assert system.last_replay_engine == "fast-vectorized"
    assert stats.n_requests == n
    return n / elapsed


def test_bench_random_replay_20k(benchmark):
    def run():
        config = MemSysConfig()
        trace = synthesize_trace("random", 20_000, config, seed=0)
        return MemorySystem(config).replay(trace)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.n_requests == 20_000
    assert stats.row_hit_rate < 0.2  # random traffic defeats the row buffer


def test_bench_1m_refresh_replay(benchmark):
    """The ISSUE-4 acceptance benchmark: the fast path holds >= 1M
    requests/s with per-rank refresh enabled on a 1M-request replay."""
    run_fast_refresh()  # steady state
    rate = benchmark.pedantic(run_fast_refresh, rounds=1, iterations=1)
    assert rate >= MIN_FAST_REQUESTS_PER_SEC


def main(argv=None) -> int:
    """Measure both engines and optionally write a JSON record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the throughput record to FILE",
    )
    args = parser.parse_args(argv)

    # steady state: one untimed warm-up pair of each flavor pre-faults
    # the allocator's large pools and the recorder's import cost
    run_fast()
    run_fast_telemetry()
    # alternate off/on runs so machine drift cancels out of the
    # overhead ratio instead of masquerading as recorder cost
    off_rates, on_runs = [], []
    for _ in range(3):
        off_rates.append(run_fast())
        on_runs.append(run_fast_telemetry())
    fast_rate = max(off_rates)
    telemetry_rate, telemetry = max(on_runs, key=lambda r: r[0])
    # percentile + time-series + energy assembly is deliberately
    # outside the timed region — derivation must never ride the hot
    # path
    percentiles = telemetry.percentiles()
    from repro.telemetry import (
        build_energy,
        build_timeseries,
        validate_energy,
        validate_timeseries,
    )

    timeseries = build_timeseries(telemetry)
    assert validate_timeseries(timeseries) == []
    energy = build_energy(telemetry)
    assert validate_energy(energy) == []
    # median of the per-pair ratios: each pair shares its moment's
    # machine conditions, and the median rejects GC/scheduler outliers;
    # the spread (max - min ratio) is the run's own noise estimate
    ratios = sorted(
        o / r for o, (r, _) in zip(off_rates, on_runs)
    )
    telemetry_overhead_pct = 100 * (ratios[len(ratios) // 2] - 1)
    spread_pct = 100 * (ratios[-1] - ratios[0])
    refresh_rate = max(run_fast_refresh() for _ in range(3))
    event_rate = run_event()
    random_rate = max(run_random() for _ in range(3))
    fcfs_random_rate = max(run_fcfs_random() for _ in range(3))
    record = {
        "benchmark": "memsys_replay_throughput",
        "fast_requests": N_FAST,
        "fast_requests_per_sec": round(fast_rate),
        "telemetry_requests_per_sec": round(telemetry_rate),
        "telemetry_overhead_pct": round(telemetry_overhead_pct, 2),
        "telemetry_overhead_spread_pct": round(spread_pct, 2),
        "timeseries_windows": timeseries["n_windows"],
        "energy_total_pj": round(energy["total_pj"], 3),
        "energy_pj_per_bit": round(energy["pj_per_bit"], 6),
        "energy_mean_power_w": round(energy["mean_power_w"], 6),
        "energy_requests_per_s_per_w": round(
            energy["requests_per_s_per_w"]
        ),
        "latency_percentiles": percentiles,
        "refresh_requests_per_sec": round(refresh_rate),
        "event_requests": N_EVENT,
        "event_requests_per_sec": round(event_rate),
        "random_requests": N_RANDOM,
        "random_requests_per_sec": round(random_rate),
        "fcfs_random_requests_per_sec": round(fcfs_random_rate),
        "speedup": round(fast_rate / event_rate, 1),
        "floor_requests_per_sec": MIN_FAST_REQUESTS_PER_SEC,
        "floor_telemetry_overhead_pct": MAX_TELEMETRY_OVERHEAD_PCT,
        "passed": bool(
            fast_rate >= MIN_FAST_REQUESTS_PER_SEC
            and fast_rate >= MIN_SPEEDUP_OVER_EVENT * event_rate
            and refresh_rate >= MIN_FAST_REQUESTS_PER_SEC
            # a median overhead inside the run's own noise spread is
            # not a verdict — compare_bench re-measures it instead
            and telemetry_overhead_pct - spread_pct
            < MAX_TELEMETRY_OVERHEAD_PCT
        ),
    }
    print(json.dumps(record, indent=2))
    if args.json is not None:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0 if record["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
