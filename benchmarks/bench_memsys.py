"""Smoke benchmark: trace replay throughput of the memory-system model.

Times a 100k-request streaming replay through :class:`MemorySystem`
(the dominant cost of every memsys experiment) and asserts the §2.1
analytic cross-check before timing, so the benchmark doubles as an
end-to-end correctness smoke test at scale.
"""

import pytest

from repro.arch.dram import macro_bandwidth_bits_per_sec
from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace

N_REQUESTS = 100_000


def replay_streaming(n):
    config = MemSysConfig(n_channels=2, scheme="channel-interleaved")
    trace = synthesize_trace("sequential", n, config)
    return config, MemorySystem(config).replay(trace)


def test_bench_100k_request_replay(benchmark):
    config, stats = benchmark.pedantic(
        replay_streaming, args=(N_REQUESTS,), rounds=1, iterations=1
    )
    assert stats.n_requests == N_REQUESTS
    # two channels of interleaved streaming: ~2x one macro's bandwidth
    analytic = 2 * macro_bandwidth_bits_per_sec(config.timing)
    assert stats.sustained_bits_per_sec == pytest.approx(
        analytic, rel=0.05
    )


def test_bench_random_replay_20k(benchmark):
    def run():
        config = MemSysConfig()
        trace = synthesize_trace("random", 20_000, config, seed=0)
        return MemorySystem(config).replay(trace)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.n_requests == 20_000
    assert stats.row_hit_rate < 0.2  # random traffic defeats the row buffer
