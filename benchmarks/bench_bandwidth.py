"""Benchmark: §2.1 DRAM bandwidth model (vectorized design sweep)."""

import numpy as np

from repro.arch.dram import (
    DramMacroTiming,
    macro_bandwidth_bits_per_sec,
)


def run():
    timings = [
        DramMacroTiming(row_access_ns=r, page_access_ns=p)
        for r in (10.0, 20.0, 40.0)
        for p in (1.0, 2.0, 4.0)
    ]
    return np.array(
        [
            macro_bandwidth_bits_per_sec(t, row_hit_ratio=h)
            for t in timings
            for h in np.linspace(0, 1, 50)
        ]
    )


def test_bench_bandwidth_sweep(benchmark):
    bws = benchmark(run)
    assert bws.shape == (9 * 50,)
    assert macro_bandwidth_bits_per_sec() > 50e9
