"""Benchmark: Figure 11 — parcel latency-hiding ratio (reduced grid).

Runs one favorable and one unfavorable operating point of the paired
test/control DES and asserts the paper's two regimes before timing.
"""

from repro.core.params import ParcelParams
from repro.core.parcels import compare_systems

FAVORABLE = ParcelParams(
    parallelism=64, remote_fraction=0.5, latency_cycles=1000.0
)
UNFAVORABLE = ParcelParams(
    parallelism=1, remote_fraction=0.2, latency_cycles=10.0
)
HORIZON = 10_000.0


def test_bench_figure11_favorable(benchmark):
    cmp = benchmark(compare_systems, FAVORABLE, HORIZON)
    assert cmp.ratio > 10.0  # 'exceeding an order of magnitude'


def test_bench_figure11_unfavorable(benchmark):
    cmp = benchmark(compare_systems, UNFAVORABLE, HORIZON)
    assert cmp.ratio < 1.1  # 'small or in fact reversed'
