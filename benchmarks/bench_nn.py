"""Benchmark: transformer-kernel and workload-trace throughput.

Times the two :mod:`repro.nn` pipelines end to end:

* **GEMM pipeline** — functional fp16 execution of a tiled
  ``(256 x 32) @ (32 x 32)`` GEMM on the per-bank units (every dynamic
  CRF instruction runs in every bank under IEEE binary16) plus the
  replay of the generated mixed host+PIM request stream, asserting
  bit-exactness against the binary16 NumPy reference before timing
  counts;
* **trace pipeline** — generation of a full transformer-layer program
  trace (Poisson arrivals), parsing, lowering, and fast-path replay.

It also records the simulated host-vs-PIM speedup of every nn kernel
(plus the GEMV-shaped GEMM, the PIM-favored family).

Run directly (``PYTHONPATH=src python benchmarks/bench_nn.py --json
BENCH_nn.json``) to emit a machine-readable record; CI does this every
push, next to ``BENCH_memsys.json`` and ``BENCH_pimexec.json``.
"""

import argparse
import json
import pathlib
import time

from repro.memsys import MemorySystem, MemSysConfig
from repro.nn import (
    NN_KERNEL_NAMES,
    TransformerLayerSpec,
    build_nn_kernel,
    run_nn_kernel,
    transformer_layer_program,
)

#: GEMM shape for the timed pipeline run.
GEMM_SHAPE = dict(m=256, k=32, n=32)
#: Transformer-layer spec for the timed trace run.
TRACE_SPEC = dict(d_model=32, n_heads=2, seq_len=32, d_ff=64)
#: Acceptance floors.  The commands/s floor assumes the vectorized
#: execution-unit tier; the GEMM stream itself interleaves per-column
#: host writes with the PIM commands, so its replay stays on the exact
#: fast engine (the AB-lockstep certificate correctly declines it).
MIN_COMMANDS_PER_SEC = 10_000
MIN_TRACE_RECORDS_PER_SEC = 3_000
MIN_GEMV_SPEEDUP = 1.5
MAX_TELEMETRY_OVERHEAD_PCT = 5.0


def run_gemm_pipeline(shape=None, telemetry=None):
    """Time execute+replay of the fp16 GEMM pipeline.

    Returns ``(commands_per_sec, result)``; asserts the bank state is
    bit-exact against the binary16 reference before timing counts.  An
    optional :class:`repro.telemetry.ReplayTelemetry` instruments the
    replay half of the pipeline.
    """
    kernel = build_nn_kernel("gemm", dtype="fp16", **(shape or GEMM_SHAPE))
    machine = kernel.machine()
    kernel.setup(machine)  # data staging is untimed
    machine.reset_requests()
    started = time.perf_counter()
    kernel.execute(machine)
    result = machine.replay(telemetry=telemetry)
    elapsed = time.perf_counter() - started
    assert kernel.check(machine), "bank state diverged from binary16"
    return result.n_pim / elapsed, result, machine


def run_trace_pipeline(spec=None):
    """Time generate+parse+lower+replay of a transformer-layer trace.

    Returns ``(records_per_sec, n_records)``.
    """
    config = MemSysConfig()
    started = time.perf_counter()
    program = transformer_layer_program(
        TransformerLayerSpec(**(spec or TRACE_SPEC)),
        config,
        interarrival_ns=4.0,
        interarrival="poisson",
    )
    requests = program.to_requests(config)
    stats = MemorySystem(config).replay(requests, engine="fast")
    elapsed = time.perf_counter() - started
    assert stats.n_requests == len(requests)
    return len(program) / elapsed, len(program)


def replay_overhead(shape=None, pairs=5):
    """Replay-only telemetry overhead on one accumulated GEMM stream.

    Executes the kernel once, then alternates uninstrumented and
    instrumented replays of the identical request stream so the
    overhead ratio isolates the recorder cost from the (much larger,
    telemetry-free) functional-execution half of the pipeline.
    Returns ``(on_rate, overhead_pct, spread_pct, telemetry)``.
    """
    from repro.telemetry import ReplayTelemetry

    kernel = build_nn_kernel("gemm", dtype="fp16", **(shape or GEMM_SHAPE))
    machine = kernel.machine()
    kernel.setup(machine)
    machine.reset_requests()
    kernel.execute(machine)
    # warm-up pair: the first replay of each flavor pays cold-start
    # costs (allocator pools, recorder imports) that would skew pair 0
    machine.replay()
    machine.replay(telemetry=ReplayTelemetry())
    off, on = [], []
    for _ in range(pairs):
        started = time.perf_counter()
        result = machine.replay()
        off.append(result.n_pim / (time.perf_counter() - started))
        telemetry = ReplayTelemetry()
        started = time.perf_counter()
        result = machine.replay(telemetry=telemetry)
        on.append(
            (result.n_pim / (time.perf_counter() - started), telemetry)
        )
    on_rate, telemetry = max(on, key=lambda r: r[0])
    # median of the per-pair ratios: each pair shares its moment's
    # machine conditions, and the median rejects GC/scheduler outliers;
    # the spread (max - min ratio) is the run's own noise estimate
    ratios = sorted(o / r for o, (r, _) in zip(off, on))
    overhead_pct = 100 * (ratios[len(ratios) // 2] - 1)
    spread_pct = 100 * (ratios[-1] - ratios[0])
    return on_rate, overhead_pct, spread_pct, telemetry


def kernel_speedups():
    """Simulated host-vs-PIM speedup of every nn kernel."""
    rows = []
    for name in NN_KERNEL_NAMES:
        comparison = run_nn_kernel(build_nn_kernel(name, dtype="fp16"))
        assert comparison.correct, name
        rows.append(
            {
                "kernel": name,
                "host_ns": comparison.host.makespan_ns,
                "pim_ns": comparison.pim.makespan_ns,
                "speedup": round(comparison.speedup, 3),
            }
        )
    gemv = run_nn_kernel(
        build_nn_kernel("gemm", dtype="fp16", m=128, k=32, n=1)
    )
    assert gemv.correct
    rows.append(
        {
            "kernel": "gemm (gemv-shaped)",
            "host_ns": gemv.host.makespan_ns,
            "pim_ns": gemv.pim.makespan_ns,
            "speedup": round(gemv.speedup, 3),
        }
    )
    return rows


def test_bench_gemm_pipeline(benchmark):
    rate, result, machine = benchmark.pedantic(
        run_gemm_pipeline, rounds=1, iterations=1
    )
    assert result.n_pim > 0
    assert machine.unit_mode == "vectorized"
    assert rate >= MIN_COMMANDS_PER_SEC


def test_bench_trace_pipeline(benchmark):
    rate, records = benchmark.pedantic(
        run_trace_pipeline,
        args=(dict(d_model=16, n_heads=2, seq_len=16, d_ff=32),),
        rounds=1,
        iterations=1,
    )
    assert records > 1_000
    assert rate >= MIN_TRACE_RECORDS_PER_SEC


def test_bench_kernel_speedups(benchmark):
    rows = benchmark.pedantic(kernel_speedups, rounds=1, iterations=1)
    by_name = {row["kernel"]: row["speedup"] for row in rows}
    assert by_name["gemm (gemv-shaped)"] >= MIN_GEMV_SPEEDUP
    # the crossover story: at least one family on each side
    assert any(s > 1.0 for s in by_name.values())
    assert any(s < 1.0 for s in by_name.values())


def main(argv=None) -> int:
    """Measure both pipelines and optionally write a JSON record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the throughput record to FILE",
    )
    args = parser.parse_args(argv)

    run_gemm_pipeline(dict(m=128, k=8, n=8))  # warm-up
    commands_rate, result, machine = max(
        (run_gemm_pipeline() for _ in range(3)), key=lambda r: r[0]
    )
    telemetry_rate, telemetry_overhead_pct, spread_pct, telemetry = (
        replay_overhead()
    )
    # percentile + time-series + energy assembly is deliberately
    # outside the timed region — derivation must never ride the hot
    # path
    percentiles = telemetry.percentiles()
    from repro.telemetry import (
        build_energy,
        build_timeseries,
        validate_energy,
        validate_timeseries,
    )

    timeseries = build_timeseries(telemetry)
    assert validate_timeseries(timeseries) == []
    energy = build_energy(telemetry)
    assert validate_energy(energy) == []
    # tokens-equivalent perf-per-watt: the instrumented GEMM stream
    # processes GEMM_SHAPE["m"] token positions per simulated makespan
    tokens_per_s_per_w = (
        GEMM_SHAPE["m"]
        / (energy["makespan_ns"] * 1e-9)
        / energy["mean_power_w"]
    )
    trace_rate, trace_records = max(
        (run_trace_pipeline() for _ in range(3)), key=lambda r: r[0]
    )
    speedups = kernel_speedups()
    by_name = {row["kernel"]: row["speedup"] for row in speedups}
    record = {
        "benchmark": "nn_transformer_throughput",
        "gemm_shape": GEMM_SHAPE,
        "unit_mode": machine.unit_mode,
        "replay_engine": result.engine,
        "fp16_commands_per_sec": round(commands_rate),
        "telemetry_commands_per_sec": round(telemetry_rate),
        "telemetry_overhead_pct": round(telemetry_overhead_pct, 2),
        "telemetry_overhead_spread_pct": round(spread_pct, 2),
        "timeseries_windows": timeseries["n_windows"],
        "energy_total_pj": round(energy["total_pj"], 3),
        "energy_pj_per_bit": round(energy["pj_per_bit"], 6),
        "energy_mean_power_w": round(energy["mean_power_w"], 6),
        "energy_tokens_per_s_per_w": round(tokens_per_s_per_w),
        "latency_percentiles": percentiles,
        "gemm_requests": result.n_requests,
        "trace_records": trace_records,
        "trace_records_per_sec": round(trace_rate),
        "kernel_speedups": speedups,
        "floor_commands_per_sec": MIN_COMMANDS_PER_SEC,
        "floor_trace_records_per_sec": MIN_TRACE_RECORDS_PER_SEC,
        "floor_telemetry_overhead_pct": MAX_TELEMETRY_OVERHEAD_PCT,
        "passed": bool(
            commands_rate >= MIN_COMMANDS_PER_SEC
            and trace_rate >= MIN_TRACE_RECORDS_PER_SEC
            and by_name["gemm (gemv-shaped)"] >= MIN_GEMV_SPEEDUP
            and any(s > 1.0 for s in by_name.values())
            and any(s < 1.0 for s in by_name.values())
            # a median overhead inside the run's own noise spread is
            # not a verdict — compare_bench re-measures it instead
            and telemetry_overhead_pct - spread_pct
            < MAX_TELEMETRY_OVERHEAD_PCT
        ),
    }
    print(json.dumps(record, indent=2))
    if args.json is not None:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0 if record["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
