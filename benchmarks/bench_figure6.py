"""Benchmark: Figure 6 — unnormalized response-time sweep."""

import numpy as np

from repro.core.hwlw import HwlwSimConfig, figure6_response_time_sweep
from repro.core.params import Table1Params

PARAMS = Table1Params()
CONFIG = HwlwSimConfig(stochastic=True, chunk_ops=1_000_000, seed=0)


def run():
    return figure6_response_time_sweep(
        PARAMS,
        node_counts=(1, 8, 64),
        lwp_fractions=(0.0, 0.5, 1.0),
        config=CONFIG,
        use_simulation=True,
    )


def test_bench_figure6(benchmark):
    grid = benchmark(run)
    assert np.allclose(grid.row(0.0), 4.0e8, rtol=5e-3)   # flat 0% line
    assert abs(grid.values[-1, 0] - 1.25e9) / 1.25e9 < 5e-3
