"""Benchmark: Figure 7 — the analytic Time_relative surface.

This is the paper's closed-form model; the benchmark times a full
vectorized design-space evaluation (121 x 128 grid) and asserts the
NB coincidence property.
"""

import numpy as np

from repro.core.hwlw import nb_parameter, time_relative
from repro.core.params import Table1Params

PARAMS = Table1Params()


def run():
    f = np.linspace(0.0, 1.0, 121)[:, None]
    n = np.linspace(1.0, 64.0, 128)[None, :]
    return time_relative(f, n, PARAMS)


def test_bench_figure7_surface(benchmark):
    surface = benchmark(run)
    assert surface.shape == (121, 128)
    nb = nb_parameter(PARAMS)
    at_nb = time_relative(np.linspace(0, 1, 11), nb, PARAMS)
    assert np.allclose(at_nb, 1.0)
