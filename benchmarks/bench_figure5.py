"""Benchmark: Figure 5 — simulated performance gain sweep.

Times the queuing-simulation sweep over a reduced (N, %WL) grid and
asserts the paper's headline shape: the all-LWP, max-node corner exceeds
100x gain over the all-host control.
"""

from repro.core.hwlw import HwlwSimConfig, figure5_gain_sweep
from repro.core.params import Table1Params

PARAMS = Table1Params()
CONFIG = HwlwSimConfig(stochastic=True, chunk_ops=1_000_000, seed=0)
NODES = (1, 8, 64)
FRACTIONS = (0.0, 0.5, 1.0)


def run():
    return figure5_gain_sweep(
        PARAMS,
        node_counts=NODES,
        lwp_fractions=FRACTIONS,
        config=CONFIG,
        use_simulation=True,
    )


def test_bench_figure5_simulated(benchmark):
    grid = benchmark(run)
    assert float(grid.values[-1, -1]) > 100.0  # 'factor of 100X'
    assert float(grid.values[0, -1]) < 3.0     # one node barely helps


def test_bench_figure5_analytic(benchmark):
    grid = benchmark(
        figure5_gain_sweep, PARAMS, NODES, FRACTIONS, None, False
    )
    assert float(grid.values[-1, -1]) > 100.0
