"""Benchmark: Table 1 regeneration (parameter table + derived anchors)."""

from repro.experiments import ExperimentConfig, run_experiment


def test_bench_table1(benchmark):
    result = benchmark(
        run_experiment, "table1", ExperimentConfig(quick=True)
    )
    assert result.passed
    assert len(result.tables["table1"]) == 10
