"""Shared configuration for the benchmark suite.

Every benchmark regenerates (a reduced version of) one paper artifact and
asserts its qualitative shape before timing, so `pytest benchmarks/
--benchmark-only` doubles as an end-to-end reproduction check.
"""

import pytest


@pytest.fixture(scope="session")
def quick_config():
    from repro.experiments import ExperimentConfig

    return ExperimentConfig(quick=True, seed=0)
