"""Benchmarks: the overhead and section-count ablations."""

import numpy as np

from repro.core.hwlw import section_ablation_sweep
from repro.core.params import ParcelParams, Table1Params
from repro.core.parcels import overhead_ablation_sweep


def test_bench_ablation_overhead(benchmark):
    grid = benchmark(
        overhead_ablation_sweep,
        ParcelParams(
            parallelism=16, remote_fraction=0.2, latency_cycles=300.0
        ),
        (0.0, 8.0, 32.0),
        6_000.0,
    )
    assert grid.values[0, 0] > grid.values[0, -1]  # overhead erodes


def test_bench_ablation_sections(benchmark):
    grid = benchmark(
        section_ablation_sweep,
        Table1Params(),
        0.5,
        8,
        (1, 4, 16),
    )
    assert np.allclose(grid.values, grid.values[0, 0], rtol=1e-12)
