"""Benchmarks: the model extensions (overlap, imbalance, contention)."""

import numpy as np

from repro.core.hwlw import (
    HwlwSimConfig,
    simulate_hybrid,
    time_relative_overlapped,
)
from repro.core.params import Table1Params

PARAMS = Table1Params()


def overlap_surface():
    f = np.linspace(0.0, 1.0, 101)[:, None]
    n = np.linspace(1.0, 64.0, 64)[None, :]
    return time_relative_overlapped(f, n, PARAMS)


def overlapped_sim():
    return simulate_hybrid(
        PARAMS, 0.5, 8, HwlwSimConfig(stochastic=False, overlap=True)
    )


def test_bench_overlap_surface(benchmark):
    surface = benchmark(overlap_surface)
    assert surface.shape == (101, 64)
    assert float(surface.min()) > 0.0


def test_bench_overlap_simulation(benchmark):
    result = benchmark(overlapped_sim)
    expected = float(time_relative_overlapped(0.5, 8, PARAMS)) * 4e8
    assert abs(result.completion_cycles - expected) < 1.0
