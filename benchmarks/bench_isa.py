"""Microbenchmarks of the functional PIM ISA simulator."""

from repro.isa import (
    IsaParams,
    PimSystem,
    assemble,
    gups_program,
    parallel_sum_program,
    simd_vector_sum_program,
)

ALU_LOOP = assemble(
    """
    li r3, 2000
    li r4, 0
    loop:
    add r4, r4, r3
    xor r5, r4, r3
    addi r3, r3, -1
    bne r3, r0, loop
    halt
    """
)


def run_alu_loop():
    system = PimSystem(IsaParams(n_nodes=1, words_per_node=64))
    system.load(ALU_LOOP)
    system.spawn(0, "")
    return system.run()


def run_parallel_sum():
    kernel = parallel_sum_program(
        count_per_worker=32, n_workers=4
    )
    system = PimSystem(IsaParams(n_nodes=4, words_per_node=256))
    kernel.launch(system)
    result = system.run()
    assert kernel.verify(system)
    return result


def run_gups():
    kernel = gups_program(updates=128)
    system = PimSystem(IsaParams(n_nodes=4, words_per_node=256))
    kernel.launch(system)
    result = system.run()
    assert kernel.verify(system)
    return result


def test_bench_isa_alu_throughput(benchmark):
    result = benchmark(run_alu_loop)
    assert result.instructions > 8000


def test_bench_isa_parallel_sum(benchmark):
    result = benchmark(run_parallel_sum)
    assert result.threads_completed == 5


def test_bench_isa_gups_parcels(benchmark):
    result = benchmark(run_gups)
    assert result.parcels_sent > 0


def run_simd_sum():
    kernel = simd_vector_sum_program(count=128)
    system = PimSystem(IsaParams(n_nodes=1, words_per_node=1024))
    kernel.launch(system)
    result = system.run()
    assert kernel.verify(system)
    return result


def test_bench_isa_simd_wide_words(benchmark):
    result = benchmark(run_simd_sum)
    # 32 wide-word loads instead of 128 scalar loads
    assert result.local_accesses == 32 + 1  # + the result store
