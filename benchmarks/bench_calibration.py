"""Benchmark: workload calibration (trace profiling + cache simulation)."""

from repro.workloads import calibrate, standard_kernels


def run():
    return calibrate(standard_kernels(accesses=2_000))


def test_bench_calibration(benchmark):
    result = benchmark(run)
    assert all(
        k.locality == k.kernel.expected_locality for k in result.kernels
    )
    assert result.hwp_miss_rate < 0.2
