"""Benchmark: the §3.1.2 sim-vs-analytic validation grid."""

from repro.core.hwlw import validate_against_analytic
from repro.core.params import Table1Params

PARAMS = Table1Params(total_work=4_000_000)


def run():
    return validate_against_analytic(
        PARAMS,
        lwp_fractions=(0.1, 0.5, 1.0),
        node_counts=(1, 8, 64),
        stochastic=True,
        chunk_ops=20_000,
    )


def test_bench_validation(benchmark):
    report = benchmark(run)
    assert report.within_paper_envelope  # the paper's 18% bound
    assert report.max_relative_error < 0.05
