"""Benchmark: sharded-farm replay speedup over single-process replay.

The replay farm's perf contract (ISSUE 7): on a multi-core runner,
replaying a large exact-tier trace across channel shards in parallel
worker processes must be at least **2x faster** than the same replay in
one process — while remaining **bit-identical** (every statistic equal
by ``repr``, no tolerances).

The workload is built to hit the farm's profitable regime:

* timestamped Poisson arrivals over 4 channels (``channel-interleaved``
  so the footprint actually spans channels, and shardable at all);
* HBM2-class refresh enabled, which pins every channel — and therefore
  every shard — to the incremental **exact tier** (~100k requests/s),
  where parallelism pays.  The closed-form vectorized tier is so fast
  that process spawn overhead would dominate, so a vectorized workload
  is the wrong thing to farm (and the benchmark asserts no shard took
  it, and none needed tier harmonization).

The speedup floor is only *enforced* when the runner has >= 4 CPU
cores (``floor_enforced`` in the record): on a 1-2 core machine the
farm cannot win by construction, and the record says so instead of
lying.  Bit-identity is asserted unconditionally — a wrong answer
fails everywhere.

Run directly (``PYTHONPATH=src python benchmarks/bench_farm.py --json
BENCH_farm.json``) to emit the machine-readable record CI compares
against the committed baseline via ``tools/compare_bench.py``.
"""

import argparse
import dataclasses
import json
import os
import pathlib
import time

from repro.farm import FarmConfig, replay_farm
from repro.memsys import MemSysConfig, MemorySystem, synthesize_trace

N_REQUESTS = 200_000
N_CHANNELS = 4
#: The farm must at least double single-process throughput (ISSUE 7)
#: — enforced only on runners with >= FLOOR_MIN_CORES cores.
FLOOR_SPEEDUP = 2.0
FLOOR_MIN_CORES = 4


def farm_config() -> MemSysConfig:
    """4 channels, channel-interleaved, HBM2-class refresh.

    Refresh + timestamps pin the fast path to the exact tier on every
    channel, so shards and the single-process baseline all run the
    same incremental engine — the regime where farming pays.
    """
    return MemSysConfig(
        n_channels=N_CHANNELS,
        scheme="channel-interleaved",
        trefi_ns=3900.0,
        trfc_ns=350.0,
    )


def build_trace(config, n=N_REQUESTS):
    return synthesize_trace(
        "random",
        n,
        config,
        seed=0,
        packed=True,
        interarrival_ns=20.0,
        interarrival="poisson",
    )


def run_single(config, trace):
    """Single-process exact-tier replay; returns (rate, stats)."""
    system = MemorySystem(config)
    started = time.perf_counter()
    stats = system.replay(trace, engine="fast")
    elapsed = time.perf_counter() - started
    assert system.last_replay_engine == "fast-exact"
    assert stats.n_requests == len(trace)
    return len(trace) / elapsed, stats


def run_farm(config, trace, workers):
    """Sharded farm replay; returns (rate, FarmResult)."""
    farm = FarmConfig(workers=workers, mode="auto", engine="fast")
    started = time.perf_counter()
    result = replay_farm(trace, config, farm)
    elapsed = time.perf_counter() - started
    report = result.report
    assert not report.fell_back_to_single, report.fallback_reason
    # the whole point of this workload: every shard on the exact tier,
    # no harmonization re-runs inflating the farm's wall clock
    assert {s.engine for s in report.shards} == {"fast-exact"}
    assert report.harmonized_shards == 0
    return len(trace) / elapsed, result


def assert_bit_identical(single_stats, farm_stats):
    assert repr(dataclasses.asdict(single_stats)) == repr(
        dataclasses.asdict(farm_stats)
    ), "farm replay diverged from single-process replay"


def test_bench_farm_exactness(benchmark):
    """Tier-1-adjacent smoke: the farm matches single-process bitwise
    on the benchmark workload (speedup is checked by main(), gated on
    core count — exactness has no such gate)."""
    config = farm_config()
    trace = build_trace(config, n=20_000)
    _, single_stats = run_single(config, trace)

    def run():
        return run_farm(
            config, trace, workers=min(FLOOR_MIN_CORES, os.cpu_count() or 1)
        )

    _, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert_bit_identical(single_stats, result.stats)


def main(argv=None) -> int:
    """Measure single-process vs farm and optionally write a record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the throughput record to FILE",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    workers = min(FLOOR_MIN_CORES, cores)
    floor_enforced = cores >= FLOOR_MIN_CORES

    config = farm_config()
    trace = build_trace(config)

    # steady state: one untimed single-process replay pre-faults the
    # allocator's pools, then best-of-2 per regime
    run_single(config, trace)
    single_rate, single_stats = max(
        (run_single(config, trace) for _ in range(2)),
        key=lambda r: r[0],
    )
    farm_rate, farm_result = max(
        (run_farm(config, trace, workers) for _ in range(2)),
        key=lambda r: r[0],
    )
    assert_bit_identical(single_stats, farm_result.stats)
    speedup = farm_rate / single_rate
    report = farm_result.report

    record = {
        "benchmark": "farm_replay_speedup",
        "requests": N_REQUESTS,
        "channels": N_CHANNELS,
        "cpu_cores": cores,
        "workers": workers,
        "mode": report.mode,
        "n_shards": report.n_shards,
        "single_requests_per_sec": round(single_rate),
        "farm_requests_per_sec": round(farm_rate),
        "speedup": round(speedup, 2),
        "bit_identical": True,  # asserted above; a lie cannot get here
        "retries": report.retries,
        "degraded_shards": report.degraded_shards,
        "floor_speedup": FLOOR_SPEEDUP,
        "floor_enforced": floor_enforced,
        "passed": bool(
            not floor_enforced or speedup >= FLOOR_SPEEDUP
        ),
    }
    print(json.dumps(record, indent=2))
    if args.json is not None:
        args.json.write_text(json.dumps(record, indent=2) + "\n")
    return 0 if record["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
