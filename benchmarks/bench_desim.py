"""Microbenchmarks of the DES engine substrate.

These measure the raw event throughput that bounds every study in the
package: timeout processing, process context switching, resource
queueing, and store handoffs.
"""

from repro.desim import Resource, Simulator, Store


def timeout_chain(n):
    sim = Simulator()

    def proc():
        for _ in range(n):
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    return sim.now


def resource_pipeline(n_users, holds_each):
    sim = Simulator()
    res = Resource(sim, capacity=2)

    def user():
        for _ in range(holds_each):
            with res.request() as req:
                yield req
                yield sim.timeout(1.0)

    for _ in range(n_users):
        sim.process(user())
    sim.run()
    return res.total_requests


def producer_consumer(n_items):
    sim = Simulator()
    store = Store(sim)

    def producer():
        for i in range(n_items):
            yield store.put(i)
            yield sim.timeout(1.0)

    def consumer():
        for _ in range(n_items):
            yield store.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    return store.total_gets


def test_bench_timeout_events(benchmark):
    now = benchmark(timeout_chain, 10_000)
    assert now == 10_000.0


def test_bench_resource_queueing(benchmark):
    total = benchmark(resource_pipeline, 20, 50)
    assert total == 20 * 50


def test_bench_store_handoff(benchmark):
    total = benchmark(producer_consumer, 5_000)
    assert total == 5_000
