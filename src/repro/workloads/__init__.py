"""repro.workloads — synthetic kernels, locality metrics, calibration.

Grounds the statistical parameters of the two studies in concrete access
patterns:

* :mod:`~repro.workloads.access_patterns` — address-trace generators
  across the locality spectrum;
* :mod:`~repro.workloads.locality` — reuse-distance and cache-derived
  temporal-locality metrics;
* :mod:`~repro.workloads.kernels` — archetype kernels (dense tiled,
  stream, SpMV, GUPS, pointer chase) with instruction mixes;
* :mod:`~repro.workloads.calibrate` — derivation of ``%WL``, ``Pmiss``,
  ``mix``, and remote fractions from the kernels (the parameters the
  paper assumes in Table 1).
"""

from .access_patterns import (
    blocked_reuse_trace,
    gups_trace,
    mixed_trace,
    pointer_chase_trace,
    random_trace,
    sequential_trace,
    strided_trace,
)
from .calibrate import CalibrationResult, KernelCalibration, calibrate
from .kernels import KernelModel, kernel_by_name, standard_kernels
from .locality import LocalityProfile, profile_trace, reuse_distances

__all__ = [
    "blocked_reuse_trace",
    "gups_trace",
    "mixed_trace",
    "pointer_chase_trace",
    "random_trace",
    "sequential_trace",
    "strided_trace",
    "CalibrationResult",
    "KernelCalibration",
    "calibrate",
    "KernelModel",
    "kernel_by_name",
    "standard_kernels",
    "LocalityProfile",
    "profile_trace",
    "reuse_distances",
]
