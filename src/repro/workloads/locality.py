"""Temporal-locality metrics for address traces.

Provides the quantitative notion of "temporal locality" that the paper's
§3 treats as the partitioning axis: reuse distances (LRU stack distances),
reuse fractions, and cache-derived hit rates.  The calibration experiment
uses these to decide which kernels belong on the HWP (high locality, good
hit rate) and which on the LWP array (no reuse — the ``%WL`` fraction).
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..arch.cache import SetAssociativeCache

__all__ = [
    "reuse_distances",
    "LocalityProfile",
    "profile_trace",
]


def reuse_distances(
    addresses: _t.Iterable[int], line_bytes: int = 64
) -> np.ndarray:
    """LRU stack distance of each access (-1 for cold first touches).

    The stack distance of an access is the number of *distinct* lines
    touched since the previous access to the same line; an access with
    stack distance ``d`` hits in any fully-associative LRU cache of more
    than ``d`` lines.  O(N · distinct) worst case — fine for the
    trace sizes used here (10^4–10^6).
    """
    if line_bytes < 1:
        raise ValueError("line_bytes must be >= 1")
    stack: _t.List[int] = []  # most recent at the end
    position: _t.Dict[int, int] = {}
    out: _t.List[int] = []
    for addr in addresses:
        line = int(addr) // line_bytes
        if line in position:
            idx = position[line]
            distance = len(stack) - idx - 1
            out.append(distance)
            stack.pop(idx)
            stack.append(line)
            # positions above idx shifted down by one
            for l in stack[idx:]:
                position[l] = position[l] - 1 if position[l] > idx else position[l]
            position[line] = len(stack) - 1
        else:
            out.append(-1)
            position[line] = len(stack)
            stack.append(line)
    return np.asarray(out, dtype=np.int64)


@dataclasses.dataclass(frozen=True)
class LocalityProfile:
    """Summary locality statistics of one address trace.

    Line-granularity metrics (``reuse_fraction_within``,
    ``cache_hit_rate``) capture what a real cache sees — including
    *spatial* locality within a line.  ``temporal_locality_score`` is
    computed at word granularity, isolating genuine data *reuse*: a
    unit-stride stream scores high on the former (7/8 of accesses hit
    the open line) but ~0 on the latter, which is the distinction the
    paper's HWP/LWP partitioning axis draws.
    """

    accesses: int
    distinct_lines: int
    cold_fraction: float
    median_reuse_distance: float
    mean_reuse_distance: float
    reuse_fraction_within: _t.Mapping[int, float]
    cache_hit_rate: float
    temporal_locality_score: float

    def classify(self, threshold: float = 0.5) -> str:
        """``"high"`` or ``"low"`` temporal locality, for HWP/LWP
        assignment in the partitioning study."""
        return (
            "high" if self.temporal_locality_score >= threshold else "low"
        )


def profile_trace(
    addresses: _t.Sequence[int],
    line_bytes: int = 64,
    cache_bytes: int = 64 * 1024,
    associativity: int = 4,
    windows: _t.Sequence[int] = (16, 64, 256, 1024),
    word_bytes: int = 8,
    temporal_window: int = 4096,
) -> LocalityProfile:
    """Compute a :class:`LocalityProfile` for an address trace.

    Combines analytic stack distances with a concrete set-associative
    simulation so both the abstract and the realizable hit rates are
    visible.  The temporal score counts word-granularity reuses within
    ``temporal_window`` distinct words (a cache-capacity-scale window),
    so pure streaming scores ~0 while tiled reuse scores ~1.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.size == 0:
        raise ValueError("empty trace")
    distances = reuse_distances(addresses, line_bytes)
    reused = distances[distances >= 0]
    cold = float(np.mean(distances < 0))
    within = {
        int(w): float(np.mean((distances >= 0) & (distances < w)))
        for w in windows
    }
    word_distances = reuse_distances(addresses, word_bytes)
    temporal = float(
        np.mean((word_distances >= 0) & (word_distances < temporal_window))
    )
    cache = SetAssociativeCache(cache_bytes, line_bytes, associativity)
    cache.access_trace(addresses.tolist())
    return LocalityProfile(
        accesses=int(addresses.size),
        distinct_lines=int(
            np.unique(addresses // line_bytes).size
        ),
        cold_fraction=cold,
        median_reuse_distance=(
            float(np.median(reused)) if reused.size else float("inf")
        ),
        mean_reuse_distance=(
            float(np.mean(reused)) if reused.size else float("inf")
        ),
        reuse_fraction_within=within,
        cache_hit_rate=cache.stats.hit_rate,
        temporal_locality_score=temporal,
    )
