"""Synthetic address-trace generators spanning the locality spectrum.

The HWP/LWP study's central axis is *temporal locality*: work with reuse
belongs on the cache-based host, work without reuse on PIM.  These
generators produce byte-address traces with controllable locality so the
cache substrate (:mod:`repro.arch.cache`) can measure hit rates and the
calibration experiment can map kernels onto the study's parameters.

All generators return ``numpy`` integer arrays of byte addresses.
"""

from __future__ import annotations

import typing as _t

import numpy as np

__all__ = [
    "sequential_trace",
    "strided_trace",
    "random_trace",
    "pointer_chase_trace",
    "gups_trace",
    "blocked_reuse_trace",
    "mixed_trace",
]


def _rng(seed: _t.Union[int, np.random.Generator]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def sequential_trace(
    n: int, start: int = 0, word_bytes: int = 8
) -> np.ndarray:
    """Unit-stride streaming: perfect spatial locality (vector-friendly)."""
    if n < 0 or word_bytes < 1:
        raise ValueError("n must be >= 0 and word_bytes >= 1")
    return start + word_bytes * np.arange(n, dtype=np.int64)


def strided_trace(
    n: int, stride_bytes: int, start: int = 0
) -> np.ndarray:
    """Constant-stride access (column sweeps, structure-of-arrays)."""
    if n < 0 or stride_bytes < 1:
        raise ValueError("n must be >= 0 and stride_bytes >= 1")
    return start + stride_bytes * np.arange(n, dtype=np.int64)


def random_trace(
    n: int,
    footprint_bytes: int,
    seed: _t.Union[int, np.random.Generator] = 0,
    word_bytes: int = 8,
) -> np.ndarray:
    """Uniform random word accesses over a footprint: no reuse structure.

    With a footprint far beyond cache capacity this is the paper's
    no-temporal-locality regime (control miss rate -> 1).
    """
    if footprint_bytes < word_bytes:
        raise ValueError("footprint must hold at least one word")
    rng = _rng(seed)
    words = footprint_bytes // word_bytes
    return (
        rng.integers(0, words, size=n, dtype=np.int64) * word_bytes
    )


def pointer_chase_trace(
    n: int,
    footprint_bytes: int,
    seed: _t.Union[int, np.random.Generator] = 0,
    node_bytes: int = 16,
) -> np.ndarray:
    """Dependent-chain traversal of a random permutation of nodes.

    Each step visits one list node; the permutation destroys spatial
    locality and the dependence chain defeats prefetching — the
    archetypal PIM-friendly irregular workload.
    """
    if footprint_bytes < node_bytes:
        raise ValueError("footprint must hold at least one node")
    rng = _rng(seed)
    slots = footprint_bytes // node_bytes
    order = rng.permutation(slots)
    repeats = int(np.ceil(n / slots))
    walk = np.tile(order, repeats)[:n]
    return walk.astype(np.int64) * node_bytes


def gups_trace(
    n: int,
    table_bytes: int,
    seed: _t.Union[int, np.random.Generator] = 0,
    word_bytes: int = 8,
) -> np.ndarray:
    """RandomAccess (GUPS) update stream: scattered read-modify-writes."""
    return random_trace(n, table_bytes, seed, word_bytes)


def blocked_reuse_trace(
    n: int,
    block_bytes: int,
    reuse_factor: int,
    start: int = 0,
    word_bytes: int = 8,
) -> np.ndarray:
    """Tiled computation: sweep a block ``reuse_factor`` times, advance.

    High temporal locality when the block fits in cache — the HWP-side
    regime of the partitioning study.
    """
    if block_bytes < word_bytes:
        raise ValueError("block must hold at least one word")
    if reuse_factor < 1:
        raise ValueError("reuse_factor must be >= 1")
    words_per_block = block_bytes // word_bytes
    out = np.empty(n, dtype=np.int64)
    pos = 0
    block_index = 0
    block_sweep = np.arange(words_per_block, dtype=np.int64) * word_bytes
    while pos < n:
        base = start + block_index * block_bytes
        for _ in range(reuse_factor):
            take = min(words_per_block, n - pos)
            out[pos:pos + take] = base + block_sweep[:take]
            pos += take
            if pos >= n:
                break
        block_index += 1
    return out


def mixed_trace(
    traces: _t.Sequence[np.ndarray],
    weights: _t.Sequence[float],
    n: int,
    seed: _t.Union[int, np.random.Generator] = 0,
) -> np.ndarray:
    """Interleave several traces by weighted random selection.

    Models applications with distinct phases/components, e.g. the
    "%WL low-locality / %WH high-locality" composite of the study.
    """
    if len(traces) != len(weights) or not traces:
        raise ValueError("need equally many traces and weights (>= 1)")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0) or w.sum() <= 0:
        raise ValueError("weights must be non-negative and sum > 0")
    rng = _rng(seed)
    choice = rng.choice(len(traces), size=n, p=w / w.sum())
    cursors = [0] * len(traces)
    out = np.empty(n, dtype=np.int64)
    for i, which in enumerate(choice):
        trace = traces[which]
        out[i] = trace[cursors[which] % len(trace)]
        cursors[which] += 1
    return out
