"""Application-kernel models: instruction mixes plus address traces.

Each kernel captures one of the workload archetypes the paper's
introduction motivates, as the pair the parametric studies need:
an *instruction mix* (what fraction of operations touch memory — Table 1's
``mix_{l/s}``) and an *address trace* (what locality those touches have).

These are model kernels, not measured binaries: operation counts follow
the kernels' arithmetic structure and traces come from
:mod:`repro.workloads.access_patterns`.  They provide credible,
reproducible inputs for the calibration experiment that replaces the
paper's assumed parameter values with derived ones.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from . import access_patterns as ap

__all__ = ["KernelModel", "standard_kernels", "kernel_by_name"]


@dataclasses.dataclass(frozen=True)
class KernelModel:
    """One workload kernel for calibration.

    Attributes
    ----------
    name / description:
        Identity and provenance of the model.
    ls_mix:
        Fraction of operations that are loads/stores.
    trace:
        Byte-address trace of those loads/stores.
    remote_fraction_distributed:
        Fraction of accesses that would target a remote node under a
        block data distribution across a modest PIM array (drives the
        §4 study's ``r``).
    expected_locality:
        ``"high"`` or ``"low"`` — the paper's partitioning intuition,
        checked against the measured profile in tests.
    """

    name: str
    description: str
    ls_mix: float
    trace: np.ndarray
    remote_fraction_distributed: float
    expected_locality: str

    def __post_init__(self) -> None:
        if not 0.0 < self.ls_mix <= 1.0:
            raise ValueError("ls_mix must be in (0, 1]")
        if not 0.0 <= self.remote_fraction_distributed <= 1.0:
            raise ValueError("remote fraction must be in [0, 1]")
        if self.expected_locality not in ("high", "low"):
            raise ValueError("expected_locality must be 'high' or 'low'")
        if len(self.trace) == 0:
            raise ValueError("trace must be non-empty")

    @property
    def operations(self) -> int:
        """Total operation count implied by the trace and the mix."""
        return int(round(len(self.trace) / self.ls_mix))


def standard_kernels(
    accesses: int = 20_000, seed: int = 0
) -> _t.Tuple[KernelModel, ...]:
    """The calibration suite: four archetypes spanning the design space.

    * ``dense_tiled`` — blocked matrix-style kernel, heavy reuse (HWP);
    * ``stream`` — unit-stride streaming, spatial but no temporal reuse;
    * ``spmv_irregular`` — sparse matrix-vector: mixed row stream plus
      scattered gathers;
    * ``gups`` — scattered read-modify-write over a huge table (LWP);
    * ``pointer_chase`` — dependent-chain traversal (LWP).
    """
    rng = np.random.default_rng(seed)
    # Tile size scales with the trace so the reuse structure is fully
    # represented at any calibration size (each tile is swept 8 times
    # and the trace covers several tiles).
    tile_bytes = max(64 * 8, (accesses // 16) * 8)
    dense = KernelModel(
        name="dense_tiled",
        description="tiled dense kernel; cache-resident tiles swept 8x",
        ls_mix=0.35,
        trace=ap.blocked_reuse_trace(
            accesses, block_bytes=min(tile_bytes, 16 * 1024), reuse_factor=8
        ),
        remote_fraction_distributed=0.02,
        expected_locality="high",
    )
    stream = KernelModel(
        name="stream",
        description="unit-stride triad-style streaming over 64 MiB",
        ls_mix=0.45,
        trace=ap.sequential_trace(accesses),
        remote_fraction_distributed=0.05,
        expected_locality="low",
    )
    # SpMV: alternating sequential row data and random x-vector gathers
    spmv = KernelModel(
        name="spmv_irregular",
        description="CSR SpMV: streamed matrix values + scattered x gathers",
        ls_mix=0.5,
        trace=ap.mixed_trace(
            [
                ap.sequential_trace(accesses),
                ap.random_trace(accesses, 32 * 1024 * 1024, rng),
            ],
            weights=[0.5, 0.5],
            n=accesses,
            seed=rng,
        ),
        remote_fraction_distributed=0.3,
        expected_locality="low",
    )
    gups = KernelModel(
        name="gups",
        description="RandomAccess updates over a 256 MiB table",
        ls_mix=0.3,
        trace=ap.gups_trace(accesses, 256 * 1024 * 1024, rng),
        remote_fraction_distributed=0.75,
        expected_locality="low",
    )
    chase = KernelModel(
        name="pointer_chase",
        description="linked-list walk over a 64 MiB arena",
        ls_mix=0.4,
        trace=ap.pointer_chase_trace(accesses, 64 * 1024 * 1024, rng),
        remote_fraction_distributed=0.75,
        expected_locality="low",
    )
    return (dense, stream, spmv, gups, chase)


def kernel_by_name(
    name: str, accesses: int = 20_000, seed: int = 0
) -> KernelModel:
    """Look up one kernel of :func:`standard_kernels` by name."""
    for kernel in standard_kernels(accesses, seed):
        if kernel.name == name:
            return kernel
    raise KeyError(
        f"unknown kernel {name!r}; available: "
        f"{[k.name for k in standard_kernels(8, 0)]}"
    )
