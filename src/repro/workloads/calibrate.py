"""Deriving the studies' parameters from workload kernels.

The paper fixes its workload parameters by assumption (Table 1:
``Pmiss = 0.1``, ``mix = 0.30``; §4: the remote-access fractions) and
notes that "it may be difficult to calibrate these parameters for
specific design points".  This module performs that calibration for the
model kernels of :mod:`repro.workloads.kernels`:

1. profile each kernel's address trace (cache hit rate, reuse structure);
2. classify kernels as high or low temporal locality (the HWP/LWP split);
3. aggregate operation-weighted parameters: ``%WL``, ``Pmiss`` for the
   high-locality side, the control miss rate for the no-reuse side,
   ``mix_{l/s}``, and the distributed remote-access fraction;
4. emit ready-to-use :class:`~repro.core.params.Table1Params` and
   :class:`~repro.core.params.ParcelParams`.

The ``calibration`` experiment reports the derived values next to the
paper's assumed ones.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..core.params import ParcelParams, Table1Params
from .kernels import KernelModel, standard_kernels
from .locality import LocalityProfile, profile_trace

__all__ = ["KernelCalibration", "CalibrationResult", "calibrate"]


@dataclasses.dataclass(frozen=True)
class KernelCalibration:
    """One kernel's measured profile and derived classification."""

    kernel: KernelModel
    profile: LocalityProfile
    locality: str  # measured: "high" | "low"

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.profile.cache_hit_rate

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel.name,
            "locality": self.locality,
            "hit_rate": self.profile.cache_hit_rate,
            "temporal_score": self.profile.temporal_locality_score,
            "ls_mix": self.kernel.ls_mix,
            "remote_fraction": self.kernel.remote_fraction_distributed,
            "operations": self.kernel.operations,
        }


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Aggregated calibration: derived study parameters."""

    kernels: _t.Tuple[KernelCalibration, ...]
    lwp_fraction: float
    hwp_miss_rate: float
    control_miss_rate: float
    ls_mix: float
    remote_fraction: float
    table1: Table1Params
    parcels: ParcelParams

    def to_rows(self) -> _t.List[dict]:
        rows = [k.to_dict() for k in self.kernels]
        rows.append(
            {
                "kernel": "== derived ==",
                "locality": f"%WL={self.lwp_fraction:.2f}",
                "hit_rate": 1.0 - self.hwp_miss_rate,
                "temporal_score": float("nan"),
                "ls_mix": self.ls_mix,
                "remote_fraction": self.remote_fraction,
                "operations": sum(
                    k.kernel.operations for k in self.kernels
                ),
            }
        )
        return rows


def calibrate(
    kernels: _t.Optional[_t.Sequence[KernelModel]] = None,
    weights: _t.Optional[_t.Sequence[float]] = None,
    cache_bytes: int = 64 * 1024,
    line_bytes: int = 64,
    associativity: int = 4,
    locality_threshold: float = 0.5,
    base_table1: _t.Optional[Table1Params] = None,
    base_parcels: _t.Optional[ParcelParams] = None,
) -> CalibrationResult:
    """Measure kernels and derive study parameters.

    Parameters
    ----------
    kernels / weights:
        Kernel suite (default :func:`standard_kernels`) and relative
        operation weights (default: the kernels' own operation counts).
    cache_bytes / line_bytes / associativity:
        Host cache the high-locality work is assumed to run against.
    locality_threshold:
        Temporal-locality score separating high from low.
    base_table1 / base_parcels:
        Machine-side parameters to keep (cycle times, latencies); only
        the workload-side parameters are replaced by calibration.
    """
    kernels = tuple(kernels) if kernels is not None else standard_kernels()
    if not kernels:
        raise ValueError("need at least one kernel")
    calibrated: _t.List[KernelCalibration] = []
    for kernel in kernels:
        profile = profile_trace(
            kernel.trace,
            line_bytes=line_bytes,
            cache_bytes=cache_bytes,
            associativity=associativity,
        )
        calibrated.append(
            KernelCalibration(
                kernel=kernel,
                profile=profile,
                locality=profile.classify(locality_threshold),
            )
        )

    if weights is None:
        weight_arr = np.array(
            [k.kernel.operations for k in calibrated], dtype=float
        )
    else:
        weight_arr = np.asarray(weights, dtype=float)
        if weight_arr.shape != (len(calibrated),):
            raise ValueError("weights must match the kernel count")
        if np.any(weight_arr < 0) or weight_arr.sum() <= 0:
            raise ValueError("weights must be non-negative, sum > 0")

    total = float(weight_arr.sum())
    low = np.array(
        [k.locality == "low" for k in calibrated], dtype=bool
    )
    lwp_fraction = float(weight_arr[low].sum() / total)

    def _weighted(values: np.ndarray, mask: np.ndarray) -> float:
        w = weight_arr[mask]
        return float(np.average(values[mask], weights=w)) if w.sum() else float("nan")

    miss_rates = np.array([k.miss_rate for k in calibrated])
    mixes = np.array([k.kernel.ls_mix for k in calibrated])
    remotes = np.array(
        [k.kernel.remote_fraction_distributed for k in calibrated]
    )

    hwp_miss = _weighted(miss_rates, ~low) if (~low).any() else 0.1
    control_miss = _weighted(miss_rates, low) if low.any() else 1.0
    ls_mix = float(np.average(mixes, weights=weight_arr))
    remote_fraction = _weighted(remotes, low) if low.any() else 0.0

    base_table1 = base_table1 or Table1Params()
    base_parcels = base_parcels or ParcelParams()
    table1 = base_table1.with_(
        miss_rate=min(max(hwp_miss, 0.0), 1.0),
        control_miss_rate=min(max(control_miss, 0.0), 1.0),
        ls_mix=min(max(ls_mix, 0.0), 1.0),
    )
    parcels = base_parcels.with_(
        ls_mix=min(max(ls_mix, 1e-9), 1.0),
        remote_fraction=min(max(remote_fraction, 0.0), 1.0),
    )
    return CalibrationResult(
        kernels=tuple(calibrated),
        lwp_fraction=lwp_fraction,
        hwp_miss_rate=hwp_miss,
        control_miss_rate=control_miss,
        ls_mix=ls_mix,
        remote_fraction=remote_fraction,
        table1=table1,
        parcels=parcels,
    )
