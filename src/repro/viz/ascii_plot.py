"""ASCII line plots for terminal-rendered figures.

The original paper rendered its figures with MATLAB/Excel; this offline
reproduction renders them as ASCII charts (plus CSV for real plotting
elsewhere).  The plots are intentionally simple: labeled axes, multiple
series with distinct markers, optional log scaling — enough to see the
*shape* results the paper reports (crossovers, order-of-magnitude gains,
idle-time collapse).
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np

__all__ = ["line_plot", "grid_plot"]

_MARKERS = "ox+*#@%&"


def _scale(
    values: np.ndarray, log: bool
) -> _t.Tuple[np.ndarray, float, float]:
    vals = np.asarray(values, dtype=float)
    if log:
        if np.any(vals <= 0):
            raise ValueError("log scale requires positive values")
        vals = np.log10(vals)
    lo, hi = float(np.min(vals)), float(np.max(vals))
    if hi == lo:
        hi = lo + 1.0
    return vals, lo, hi


def _fmt_tick(value: float, log: bool) -> str:
    v = 10 ** value if log else value
    if v == 0:
        return "0"
    magnitude = abs(v)
    if magnitude >= 1e5 or magnitude < 1e-3:
        return f"{v:.1e}"
    if magnitude >= 100:
        return f"{v:.0f}"
    return f"{v:.3g}"


def line_plot(
    x: _t.Sequence[float],
    series: _t.Mapping[str, _t.Sequence[float]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render one chart with shared x values and several y series.

    Parameters
    ----------
    x:
        Common x coordinates.
    series:
        Mapping of legend label to y values (same length as ``x``).
    width / height:
        Plot-area size in characters (excluding axes and labels).
    logx / logy:
        Logarithmic axes (all values must be positive).

    Returns
    -------
    str
        A multi-line string ready to print.
    """
    if not series:
        raise ValueError("need at least one series")
    xs = np.asarray(x, dtype=float)
    for label, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(
                f"series {label!r} has {len(ys)} points, x has {len(xs)}"
            )
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    sx, x_lo, x_hi = _scale(xs, logx)
    all_y = np.concatenate(
        [np.asarray(ys, dtype=float) for ys in series.values()]
    )
    _, y_lo, y_hi = _scale(all_y, logy)

    canvas = [[" "] * width for _ in range(height)]
    for idx, (label, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        sy = np.log10(np.asarray(ys, dtype=float)) if logy else np.asarray(
            ys, dtype=float
        )
        cols = np.round(
            (sx - x_lo) / (x_hi - x_lo) * (width - 1)
        ).astype(int)
        rows = np.round(
            (sy - y_lo) / (y_hi - y_lo) * (height - 1)
        ).astype(int)
        # connect consecutive points with interpolated dots
        for i in range(len(cols) - 1):
            c0, r0, c1, r1 = cols[i], rows[i], cols[i + 1], rows[i + 1]
            steps = max(abs(c1 - c0), abs(r1 - r0))
            for s in range(1, steps):
                cc = c0 + (c1 - c0) * s // max(steps, 1)
                rr = r0 + (r1 - r0) * s // max(steps, 1)
                if canvas[height - 1 - rr][cc] == " ":
                    canvas[height - 1 - rr][cc] = "."
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    lines: _t.List[str] = []
    if title:
        lines.append(title.center(width + 10))
    y_top = _fmt_tick(y_hi, logy)
    y_bot = _fmt_tick(y_lo, logy)
    label_w = max(len(y_top), len(y_bot), len(ylabel))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = y_top.rjust(label_w)
        elif i == height - 1:
            prefix = y_bot.rjust(label_w)
        elif i == height // 2 and ylabel:
            prefix = ylabel[:label_w].rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_left = _fmt_tick(x_lo, logx)
    x_right = _fmt_tick(x_hi, logx)
    gap = width - len(x_left) - len(x_right)
    xaxis = (
        " " * (label_w + 2) + x_left + " " * max(gap, 1) + x_right
    )
    lines.append(xaxis)
    if xlabel:
        lines.append(" " * (label_w + 2) + xlabel.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + "legend: " + legend)
    return "\n".join(lines)


def grid_plot(
    grid: "_t.Any",
    row_format: _t.Callable[[float], str] = lambda v: f"{v:g}",
    transpose: bool = False,
    **kwargs: _t.Any,
) -> str:
    """Plot a :class:`~repro.core.grid.SweepGrid`, one series per row.

    Parameters
    ----------
    grid:
        The sweep grid (rows become series, columns the x axis).
    row_format:
        Legend formatter for row coordinate values.
    transpose:
        Swap axes first (series per column instead).
    kwargs:
        Passed through to :func:`line_plot`.
    """
    g = grid.transposed() if transpose else grid
    series = {
        f"{g.row_label}={row_format(r)}": g.values[i]
        for i, r in enumerate(g.rows)
    }
    kwargs.setdefault("xlabel", g.col_label)
    kwargs.setdefault("ylabel", g.value_label)
    kwargs.setdefault("title", g.name)
    return line_plot(list(g.cols), series, **kwargs)
