"""Plain-text and markdown table rendering for experiment reports."""

from __future__ import annotations

import math
import typing as _t

__all__ = ["format_table", "format_markdown_table"]


def _format_cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return format(value, floatfmt)
    return str(value)


def _normalize(
    rows: _t.Sequence[_t.Mapping[str, object]],
    columns: _t.Optional[_t.Sequence[str]],
    floatfmt: str,
) -> _t.Tuple[_t.List[str], _t.List[_t.List[str]]]:
    if not rows:
        raise ValueError("no rows to format")
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [
        [_format_cell(row.get(col, ""), floatfmt) for col in columns]
        for row in rows
    ]
    return list(columns), cells


def format_table(
    rows: _t.Sequence[_t.Mapping[str, object]],
    columns: _t.Optional[_t.Sequence[str]] = None,
    floatfmt: str = ".4g",
    indent: str = "",
) -> str:
    """Aligned fixed-width text table from a list of dict rows.

    Column order follows ``columns`` if given, else first-seen order.
    """
    cols, cells = _normalize(rows, columns, floatfmt)
    widths = [
        max(len(col), *(len(r[i]) for r in cells))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in cells
    ]
    return "\n".join(
        indent + line for line in [header, rule, *body]
    )


def format_markdown_table(
    rows: _t.Sequence[_t.Mapping[str, object]],
    columns: _t.Optional[_t.Sequence[str]] = None,
    floatfmt: str = ".4g",
) -> str:
    """GitHub-flavored markdown table from a list of dict rows."""
    cols, cells = _normalize(rows, columns, floatfmt)
    lines = [
        "| " + " | ".join(cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
