"""repro.viz — ASCII plots, text/markdown tables, CSV export.

The offline stand-in for the paper's MATLAB/Excel figure rendering.
"""

from .ascii_plot import grid_plot, line_plot
from .csvio import read_csv, write_csv
from .tables import format_markdown_table, format_table

__all__ = [
    "grid_plot",
    "line_plot",
    "read_csv",
    "write_csv",
    "format_markdown_table",
    "format_table",
]
