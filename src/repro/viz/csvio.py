"""Minimal CSV import/export for experiment artifacts (stdlib only)."""

from __future__ import annotations

import csv
import pathlib
import typing as _t

__all__ = ["write_csv", "read_csv"]


def write_csv(
    path: _t.Union[str, pathlib.Path],
    rows: _t.Sequence[_t.Mapping[str, object]],
    columns: _t.Optional[_t.Sequence[str]] = None,
) -> pathlib.Path:
    """Write dict rows to ``path`` (parents created); returns the path."""
    if not rows:
        raise ValueError("no rows to write")
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns))
        writer.writeheader()
        for row in rows:
            writer.writerow({c: row.get(c, "") for c in columns})
    return path


def read_csv(
    path: _t.Union[str, pathlib.Path]
) -> _t.List[_t.Dict[str, str]]:
    """Read a CSV written by :func:`write_csv` (values as strings)."""
    with pathlib.Path(path).open(newline="") as handle:
        return [dict(row) for row in csv.DictReader(handle)]
