"""Experiment registry: one entry per paper table/figure.

An *experiment* regenerates one artifact of the paper's evaluation — a
figure's data series or a table — and self-checks the qualitative shape
claims the paper makes about it ("a factor of 100X gain is observed",
"idle time drops virtually to zero", …).  Results carry data tables
(CSV-exportable), ASCII plots, human-readable summaries, and named
boolean checks.

Experiments register themselves at import via the :func:`register`
decorator; :func:`all_experiments` imports the implementation modules
lazily so ``repro.experiments`` stays cheap to import.
"""

from __future__ import annotations

import dataclasses
import importlib
import pathlib
import typing as _t

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "Experiment",
    "register",
    "get_experiment",
    "experiment_names",
    "all_experiments",
]


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Run-control shared by all experiments.

    Attributes
    ----------
    quick:
        Reduced grids / workload sizes (seconds instead of minutes);
        the full grids match the paper's axes.
    seed:
        Root RNG seed for every stochastic component.
    out_dir:
        Where the runner writes CSV tables and the report; ``None``
        keeps everything in memory.
    """

    quick: bool = True
    seed: int = 0
    out_dir: _t.Optional[pathlib.Path] = None


@dataclasses.dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    name: str
    title: str
    paper_reference: str
    tables: _t.Dict[str, _t.List[dict]]
    plots: _t.Dict[str, str]
    summary: _t.List[str]
    checks: _t.Dict[str, bool]

    @property
    def passed(self) -> bool:
        """All qualitative shape checks hold."""
        return all(self.checks.values())

    def failed_checks(self) -> _t.List[str]:
        return [name for name, ok in self.checks.items() if not ok]


RunnerFn = _t.Callable[[ExperimentConfig], ExperimentResult]


@dataclasses.dataclass(frozen=True)
class Experiment:
    """Registry entry."""

    name: str
    title: str
    paper_reference: str
    description: str
    runner: RunnerFn

    def run(
        self, config: _t.Optional[ExperimentConfig] = None
    ) -> ExperimentResult:
        return self.runner(config or ExperimentConfig())


_REGISTRY: _t.Dict[str, Experiment] = {}

#: Implementation modules, imported lazily by :func:`all_experiments`.
_MODULES = (
    "exp_table1",
    "exp_figure5",
    "exp_figure6",
    "exp_figure7",
    "exp_validation",
    "exp_figure11",
    "exp_figure12",
    "exp_bandwidth",
    "exp_ablation",
    "exp_calibration",
    "exp_extensions",
    "exp_energy",
    "exp_memsys",
    "exp_pimexec",
    "exp_nn",
)


def register(
    name: str,
    title: str,
    paper_reference: str,
    description: str,
) -> _t.Callable[[RunnerFn], RunnerFn]:
    """Class the decorated runner function as experiment ``name``."""

    def decorator(runner: RunnerFn) -> RunnerFn:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} already registered")
        _REGISTRY[name] = Experiment(
            name=name,
            title=title,
            paper_reference=paper_reference,
            description=description,
            runner=runner,
        )
        return runner

    return decorator


def _ensure_loaded() -> None:
    for module in _MODULES:
        importlib.import_module(f"repro.experiments.{module}")


def get_experiment(name: str) -> Experiment:
    """Look up one experiment by its registry name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {experiment_names()}"
        ) from None


def experiment_names() -> _t.List[str]:
    """All registered experiment names, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY)


def all_experiments() -> _t.List[Experiment]:
    """All registered experiments."""
    _ensure_loaded()
    return list(_REGISTRY.values())
