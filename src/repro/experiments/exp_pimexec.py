"""Experiment ``pimexec``: executable PIM kernels, host vs. in-bank.

The paper's central claim is that PIM wins by computing *inside* the
banks.  :mod:`repro.pimexec` makes that executable: per-bank units with
HBM-PIM register files run microkernels whose every command is a
column access through the banked memory system.  This experiment
closes the loop three ways:

* **host vs. PIM execution time** — each built-in kernel
  (``vector-sum``, ``axpy``, ``gemv``) runs once through the per-bank
  units (CRF download + broadcasts + all-bank steps + readback) and
  once as its host-only twin (every operand moved one page at a time),
  with correctness asserted *bit-exactly* against a NumPy reference;
* **ISA lowering** — the :mod:`repro.isa` reduction kernels
  (``vector_sum`` / ``simd_vector_sum``) are compiled onto pimexec
  microkernels and must reproduce their expected sums exactly;
* **program-trace replay** — an HBM-PIMulator-style program trace
  (``R/W GPR|CFR|MEM``, ``AB W``, ``PIM MAC/ADD/MUL``) parses, replays
  through :class:`~repro.memsys.MemorySystem`, and leaves the per-bank
  GRF contents bit-identical to the reference computation.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..isa import simd_vector_sum_program, vector_sum_program
from ..memsys import MemSysConfig
from ..pimexec import (
    PimExecMachine,
    axpy_kernel,
    compare_host_pim,
    gemv_kernel,
    lower_kernel_binary,
    parse_pim_program,
    vector_sum_kernel,
)
from .registry import ExperimentConfig, ExperimentResult, register


def _frontend_trace(n_cols: int) -> str:
    """A mixed host+PIM program: GRF_B0 += page(3, c) * SRF0 per column."""
    lines = [
        "# kernel staging: data row, staged broadcast, config write",
        "W MEM 0 0 3",
        "W GPR 0",
        "W CFR 0 1",
        "AB W",
    ]
    for col in range(n_cols):
        lines.append(f"PIM MAC GRF,8 BANK,0,3,{col} SRF,0")
    lines += ["PIM NOP", "PIM EXIT", "R MEM 0 0 3", "R GPR 0"]
    return "\n".join(lines) + "\n"


@register(
    name="pimexec",
    title="Executable PIM Kernels: Host vs. In-Bank Execution",
    paper_reference="§2.1-2.2 (executable)",
    description=(
        "Runs vector-sum/AXPY/GEMV microkernels on per-bank PIM "
        "execution units through the banked memory system, compares "
        "execution time against host-only twins, lowers repro.isa "
        "vector kernels onto the banks, and replays an HBM-PIMulator "
        "program trace — all checked bit-exactly against NumPy."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    n = 2_048 if config.quick else 16_384
    n_cols = 32 if config.quick else 128
    sys_config = MemSysConfig()

    # ------------------------------------------------------------------
    # 1. host-only vs PIM-mode execution time per kernel
    # ------------------------------------------------------------------
    kernels = [
        vector_sum_kernel(n, sys_config, seed=config.seed),
        axpy_kernel(n, config=sys_config, seed=config.seed),
        gemv_kernel(n_cols, sys_config, seed=config.seed),
    ]
    comparisons = [compare_host_pim(kernel) for kernel in kernels]
    kernel_rows = [c.row() for c in comparisons]
    all_exact = all(c.correct for c in comparisons)
    n_faster = sum(c.speedup > 1.0 for c in comparisons)

    # ------------------------------------------------------------------
    # 2. repro.isa kernels lowered onto the banks
    # ------------------------------------------------------------------
    lowered_rows = []
    lowered_exact = True
    for binary in (
        vector_sum_program(count=64, seed=config.seed + 1),
        simd_vector_sum_program(count=64, seed=config.seed + 1),
    ):
        lowered = lower_kernel_binary(binary, sys_config)
        result, exact, timing = lowered.run()
        lowered_exact = lowered_exact and exact
        lowered_rows.append(
            {
                "isa_kernel": binary.name,
                "values": lowered.values.shape[0],
                "pim_result": result,
                "isa_expected": lowered.expected_sum,
                "exact": exact,
                "pim_ns": timing.makespan_ns,
            }
        )

    # ------------------------------------------------------------------
    # 3. HBM-PIMulator program-trace replay
    # ------------------------------------------------------------------
    program = parse_pim_program(_frontend_trace(n_cols=8))
    machine = PimExecMachine(sys_config)
    rng = np.random.default_rng(config.seed)
    scalar = 1.0 + float(rng.random())
    pages = rng.standard_normal((8, machine.lanes))
    for ch in range(machine.n_channels):
        for bank in range(machine.banks_per_channel):
            unit = machine.unit(ch, bank)
            unit.srf[0] = scalar
            for col in range(8):
                unit.store_page(3, col, pages[col])
    machine.reset_requests()
    program.execute(machine)
    replay = machine.replay()
    reference = np.zeros(machine.lanes)
    for col in range(8):
        reference = reference + pages[col] * np.full(
            machine.lanes, scalar
        )
    frontend_exact = all(
        np.array_equal(machine.unit(0, bank).grf_b[0], reference)
        for bank in range(machine.banks_per_channel)
    )
    pim_dependencies = [
        record.depends_on
        for record in program.records
        if record.kind == "pim"
    ]
    frontend_rows = [
        {
            "records": len(program),
            **program.counts(),
            "requests": replay.n_requests,
            "makespan_ns": replay.makespan_ns,
            "engine": replay.engine,
            "grf_bit_exact": frontend_exact,
        }
    ]

    checks = {
        "every kernel's bank state matches NumPy bit-exactly": all_exact,
        "PIM-mode beats host-only on >= 2 kernels": n_faster >= 2,
        "lowered repro.isa kernels reproduce their expected sums": (
            lowered_exact
        ),
        "program trace replays with bit-exact GRF contents": (
            frontend_exact
        ),
        "PIM records depend on the kernel/config write": all(
            dep is not None for dep in pim_dependencies
        ),
    }
    best = max(comparisons, key=lambda c: c.speedup)
    return ExperimentResult(
        name="pimexec",
        title="Executable PIM Kernels: Host vs. In-Bank Execution",
        paper_reference="§2.1-2.2 (executable)",
        tables={
            "kernel_comparison": kernel_rows,
            "lowered_isa": lowered_rows,
            "program_trace": frontend_rows,
        },
        plots={},
        summary=[
            f"{len(comparisons)} kernels executed in-bank, "
            + (
                "all bit-exact vs NumPy"
                if all_exact
                else "WITH MISMATCHES"
            ),
            f"best PIM speedup over host-only: {best.speedup:.2f}x "
            f"({best.kernel})",
            f"{len(lowered_rows)} repro.isa kernels lowered onto the "
            "banks, "
            + ("sums exact" if lowered_exact else "SUMS DIVERGE"),
            f"program trace: {len(program)} records -> "
            f"{replay.n_requests} requests, GRF contents "
            + ("bit-exact" if frontend_exact else "DIVERGENT"),
        ],
        checks=checks,
    )
