"""Experiment ``pimexec``: executable PIM kernels, host vs. in-bank.

The paper's central claim is that PIM wins by computing *inside* the
banks.  :mod:`repro.pimexec` makes that executable: per-bank units with
HBM-PIM register files run microkernels whose every command is a
column access through the banked memory system.  This experiment
closes the loop three ways:

* **host vs. PIM execution time** — each built-in kernel
  (``vector-sum``, ``axpy``, ``gemv``) runs once through the per-bank
  units (CRF download + broadcasts + all-bank steps + readback) and
  once as its host-only twin (every operand moved one page at a time),
  with correctness asserted *bit-exactly* against a NumPy reference;
* **ISA lowering** — the :mod:`repro.isa` reduction kernels
  (``vector_sum`` / ``simd_vector_sum``) are compiled onto pimexec
  microkernels and must reproduce their expected sums exactly;
* **program-trace replay** — an HBM-PIMulator-style program trace
  (``R/W GPR|CFR|MEM``, ``AB W``, ``PIM MAC/ADD/MUL``) parses, replays
  through :class:`~repro.memsys.MemorySystem`, and leaves the per-bank
  GRF contents bit-identical to the reference computation;
* **energy cross-validation** — the command-level
  :mod:`repro.telemetry.energy` accounting of each kernel's PIM stream
  and host-only twin must agree in sign with the analytic
  :func:`~repro.arch.energy.energy_ratio` model (both say PIM saves
  energy), with the analytic ratio as an upper bound (the simulation
  charges broadcasts, dynamic CRF instructions, refresh, and standby
  power that the operation-count model omits), and the Table 1 kernel
  families' simulated pJ/bit must order with the analytic host energy
  at each family's measured locality.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..arch.energy import EnergyParams, _hwp_energy_per_op, energy_ratio
from ..core.params import Table1Params
from ..isa import simd_vector_sum_program, vector_sum_program
from ..memsys import MemorySystem, MemSysConfig
from ..memsys.trace import PackedTrace
from ..pimexec import (
    PimExecMachine,
    axpy_kernel,
    compare_host_pim,
    gemv_kernel,
    lower_kernel_binary,
    parse_pim_program,
    vector_sum_kernel,
)
from ..telemetry import ReplayTelemetry, build_energy
from ..workloads import standard_kernels
from .registry import ExperimentConfig, ExperimentResult, register


def pim_bit_fraction(telemetry: ReplayTelemetry, config: MemSysConfig,
                     total_bits: float) -> float:
    """Fraction of a recorded stream's delivered bits moved by PIM ops.

    This is the simulated analogue of the analytic model's
    ``lwp_fraction`` abscissa: PIM lockstep commands deliver one page
    per bank across the channel, everything else moves one page.
    """
    op = np.asarray(telemetry.recorder.op_code)
    pim_bits = (
        int((op == 2).sum())
        * config.timing.page_bits
        * config.banks_per_channel
    )
    return pim_bits / total_bits


def _frontend_trace(n_cols: int) -> str:
    """A mixed host+PIM program: GRF_B0 += page(3, c) * SRF0 per column."""
    lines = [
        "# kernel staging: data row, staged broadcast, config write",
        "W MEM 0 0 3",
        "W GPR 0",
        "W CFR 0 1",
        "AB W",
    ]
    for col in range(n_cols):
        lines.append(f"PIM MAC GRF,8 BANK,0,3,{col} SRF,0")
    lines += ["PIM NOP", "PIM EXIT", "R MEM 0 0 3", "R GPR 0"]
    return "\n".join(lines) + "\n"


@register(
    name="pimexec",
    title="Executable PIM Kernels: Host vs. In-Bank Execution",
    paper_reference="§2.1-2.2 (executable)",
    description=(
        "Runs vector-sum/AXPY/GEMV microkernels on per-bank PIM "
        "execution units through the banked memory system, compares "
        "execution time against host-only twins, lowers repro.isa "
        "vector kernels onto the banks, and replays an HBM-PIMulator "
        "program trace — all checked bit-exactly against NumPy."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    n = 2_048 if config.quick else 16_384
    n_cols = 32 if config.quick else 128
    sys_config = MemSysConfig()

    # ------------------------------------------------------------------
    # 1. host-only vs PIM-mode execution time per kernel
    # ------------------------------------------------------------------
    kernels = [
        vector_sum_kernel(n, sys_config, seed=config.seed),
        axpy_kernel(n, config=sys_config, seed=config.seed),
        gemv_kernel(n_cols, sys_config, seed=config.seed),
    ]
    telemetries = [
        (ReplayTelemetry(), ReplayTelemetry()) for _ in kernels
    ]
    comparisons = [
        compare_host_pim(
            kernel, telemetry=pim_t, host_telemetry=host_t
        )
        for kernel, (pim_t, host_t) in zip(kernels, telemetries)
    ]
    kernel_rows = [c.row() for c in comparisons]
    all_exact = all(c.correct for c in comparisons)
    n_faster = sum(c.speedup > 1.0 for c in comparisons)

    # ------------------------------------------------------------------
    # 2. repro.isa kernels lowered onto the banks
    # ------------------------------------------------------------------
    lowered_rows = []
    lowered_exact = True
    for binary in (
        vector_sum_program(count=64, seed=config.seed + 1),
        simd_vector_sum_program(count=64, seed=config.seed + 1),
    ):
        lowered = lower_kernel_binary(binary, sys_config)
        result, exact, timing = lowered.run()
        lowered_exact = lowered_exact and exact
        lowered_rows.append(
            {
                "isa_kernel": binary.name,
                "values": lowered.values.shape[0],
                "pim_result": result,
                "isa_expected": lowered.expected_sum,
                "exact": exact,
                "pim_ns": timing.makespan_ns,
            }
        )

    # ------------------------------------------------------------------
    # 3. HBM-PIMulator program-trace replay
    # ------------------------------------------------------------------
    program = parse_pim_program(_frontend_trace(n_cols=8))
    machine = PimExecMachine(sys_config)
    rng = np.random.default_rng(config.seed)
    scalar = 1.0 + float(rng.random())
    pages = rng.standard_normal((8, machine.lanes))
    for ch in range(machine.n_channels):
        for bank in range(machine.banks_per_channel):
            unit = machine.unit(ch, bank)
            unit.srf[0] = scalar
            for col in range(8):
                unit.store_page(3, col, pages[col])
    machine.reset_requests()
    program.execute(machine)
    replay = machine.replay()
    reference = np.zeros(machine.lanes)
    for col in range(8):
        reference = reference + pages[col] * np.full(
            machine.lanes, scalar
        )
    frontend_exact = all(
        np.array_equal(machine.unit(0, bank).grf_b[0], reference)
        for bank in range(machine.banks_per_channel)
    )
    pim_dependencies = [
        record.depends_on
        for record in program.records
        if record.kind == "pim"
    ]
    frontend_rows = [
        {
            "records": len(program),
            **program.counts(),
            "requests": replay.n_requests,
            "makespan_ns": replay.makespan_ns,
            "engine": replay.engine,
            "grf_bit_exact": frontend_exact,
        }
    ]

    # ------------------------------------------------------------------
    # 4. energy cross-validation against the analytic model
    # ------------------------------------------------------------------
    energy_rows = []
    energy_sign_agrees = True
    analytic_upper_bounds = True
    for kernel, comparison, (pim_t, host_t) in zip(
        kernels, comparisons, telemetries
    ):
        pim_energy = build_energy(pim_t)
        host_energy = build_energy(host_t)
        fraction = pim_bit_fraction(
            pim_t, kernel.config, pim_energy["total_bits"]
        )
        simulated = host_energy["total_pj"] / pim_energy["total_pj"]
        analytic = float(energy_ratio(fraction))
        energy_sign_agrees = energy_sign_agrees and (
            (simulated > 1.0) == (analytic > 1.0)
        )
        analytic_upper_bounds = analytic_upper_bounds and (
            simulated <= analytic
        )
        energy_rows.append(
            {
                "kernel": comparison.kernel,
                "pim_bit_fraction": fraction,
                "host_pj": host_energy["total_pj"],
                "pim_pj": pim_energy["total_pj"],
                "simulated_ratio": simulated,
                "analytic_ratio": analytic,
                "pim_pj_per_bit": pim_energy["pj_per_bit"],
                "host_pj_per_bit": host_energy["pj_per_bit"],
            }
        )

    # Table 1 kernel families: simulated host pJ/bit must order with
    # the analytic host energy per operation at each family's measured
    # row-hit rate and load/store mix (pairs that the simulation
    # separates by less than 5% carry no ordering information).
    family_rows = []
    family_points = []
    for family in standard_kernels(
        accesses=4_000 if config.quick else 20_000, seed=config.seed
    ):
        addrs = np.asarray(family.trace, dtype=np.int64)
        trace = PackedTrace(np.zeros(len(addrs), dtype=np.uint8), addrs)
        family_t = ReplayTelemetry()
        stats = MemorySystem(sys_config).replay(
            trace, engine="fast", telemetry=family_t
        )
        family_energy = build_energy(family_t)
        miss_rate = 1.0 - stats.row_hits / max(1, stats.n_requests)
        params = Table1Params(
            ls_mix=family.ls_mix, miss_rate=miss_rate
        )
        analytic_host = float(
            _hwp_energy_per_op(params, EnergyParams(), miss_rate)
        )
        family_points.append(
            (family.name, family_energy["pj_per_bit"], analytic_host)
        )
        family_rows.append(
            {
                "family": family.name,
                "ls_mix": family.ls_mix,
                "row_miss_rate": miss_rate,
                "simulated_pj_per_bit": family_energy["pj_per_bit"],
                "analytic_host_nj_per_op": analytic_host,
            }
        )
    family_ordering_agrees = True
    for i, (_, sim_i, ana_i) in enumerate(family_points):
        for _, sim_j, ana_j in family_points[i + 1:]:
            if abs(sim_i - sim_j) / max(sim_i, sim_j) < 0.05:
                continue
            family_ordering_agrees = family_ordering_agrees and (
                (sim_i < sim_j) == (ana_i < ana_j)
            )

    checks = {
        "every kernel's bank state matches NumPy bit-exactly": all_exact,
        "PIM-mode beats host-only on >= 2 kernels": n_faster >= 2,
        "lowered repro.isa kernels reproduce their expected sums": (
            lowered_exact
        ),
        "program trace replays with bit-exact GRF contents": (
            frontend_exact
        ),
        "PIM records depend on the kernel/config write": all(
            dep is not None for dep in pim_dependencies
        ),
        "simulated and analytic energy models agree PIM saves "
        "energy on every kernel": energy_sign_agrees,
        "the analytic energy ratio upper-bounds the simulated one "
        "(command overheads only erode the advantage)": (
            analytic_upper_bounds
        ),
        "Table 1 families' simulated pJ/bit orders with the "
        "analytic host energy at measured locality": (
            family_ordering_agrees
        ),
    }
    best = max(comparisons, key=lambda c: c.speedup)
    return ExperimentResult(
        name="pimexec",
        title="Executable PIM Kernels: Host vs. In-Bank Execution",
        paper_reference="§2.1-2.2 (executable)",
        tables={
            "kernel_comparison": kernel_rows,
            "lowered_isa": lowered_rows,
            "program_trace": frontend_rows,
            "energy_cross_validation": energy_rows,
            "table1_family_energy": family_rows,
        },
        plots={},
        summary=[
            f"{len(comparisons)} kernels executed in-bank, "
            + (
                "all bit-exact vs NumPy"
                if all_exact
                else "WITH MISMATCHES"
            ),
            f"best PIM speedup over host-only: {best.speedup:.2f}x "
            f"({best.kernel})",
            f"{len(lowered_rows)} repro.isa kernels lowered onto the "
            "banks, "
            + ("sums exact" if lowered_exact else "SUMS DIVERGE"),
            f"program trace: {len(program)} records -> "
            f"{replay.n_requests} requests, GRF contents "
            + ("bit-exact" if frontend_exact else "DIVERGENT"),
            (
                "energy: simulated host/PIM ratios "
                + ", ".join(
                    f"{row['kernel']} {row['simulated_ratio']:.2f}x"
                    for row in energy_rows
                )
                + " — all under the analytic bound"
                if analytic_upper_bounds
                else "energy: simulated ratio EXCEEDS the analytic bound"
            ),
        ],
        checks=checks,
    )
