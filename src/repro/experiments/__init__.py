"""repro.experiments — regeneration harness for every paper artifact.

Each experiment corresponds to one table or figure of the paper (plus the
ablations and calibration DESIGN.md adds) and self-checks the qualitative
claims the paper makes about it.  See the per-experiment index in
DESIGN.md §3.

Usage::

    from repro.experiments import run_experiment, ExperimentConfig
    result = run_experiment("figure7", ExperimentConfig(quick=True))
    print(result.passed, result.summary)

or from the command line: ``repro-pim run figure7``.
"""

from .registry import (
    Experiment,
    ExperimentConfig,
    ExperimentResult,
    all_experiments,
    experiment_names,
    get_experiment,
    register,
)
from .runner import render_report, run_all, run_experiment, save_artifacts

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "all_experiments",
    "experiment_names",
    "get_experiment",
    "register",
    "render_report",
    "run_all",
    "run_experiment",
    "save_artifacts",
]
