"""Experiment ``bandwidth``: the §2.1 'hidden bandwidth' derivations."""

from __future__ import annotations

from ..arch.dram import (
    DramMacroTiming,
    PimChipConfig,
    chip_bandwidth_bits_per_sec,
    effective_access_time_ns,
    macro_bandwidth_bits_per_sec,
    min_macros_for_bandwidth,
)
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="bandwidth",
    title="§2.1 Claims: Reclaiming the Hidden Bandwidth",
    paper_reference="§2.1 (text claims)",
    description=(
        "Reproduces the row-buffer bandwidth arithmetic: >50 Gbit/s per "
        "DRAM macro and >1 Tbit/s per PIM chip with conservative timings."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    timing = DramMacroTiming()
    macro = macro_bandwidth_bits_per_sec(timing)
    chip32 = chip_bandwidth_bits_per_sec(PimChipConfig(n_nodes=32))
    need = min_macros_for_bandwidth(1e12, timing)
    rows = [
        {
            "quantity": "row size",
            "value": f"{timing.row_bits} bits",
            "paper": "2048 bits",
        },
        {
            "quantity": "page (wide word) size",
            "value": f"{timing.page_bits} bits",
            "paper": "256 bits",
        },
        {
            "quantity": "row access time",
            "value": f"{timing.row_access_ns} ns",
            "paper": "20 ns (conservative)",
        },
        {
            "quantity": "page access time",
            "value": f"{timing.page_access_ns} ns",
            "paper": "2 ns",
        },
        {
            "quantity": "macro sustained bandwidth",
            "value": f"{macro / 1e9:.1f} Gbit/s",
            "paper": "over 50 Gbit/s",
        },
        {
            "quantity": "chip bandwidth (32 nodes)",
            "value": f"{chip32 / 1e12:.2f} Tbit/s",
            "paper": "greater than 1 Tbit/s",
        },
        {
            "quantity": "macros needed for 1 Tbit/s",
            "value": str(need),
            "paper": "(implied feasible per chip)",
        },
        {
            "quantity": "random single-word access",
            "value": f"{timing.random_word_ns():.0f} ns",
            "paper": "(motivates TML=30 cycles)",
        },
    ]
    sweep = [
        {
            "row_hit_ratio": h,
            "macro_gbit_per_s": macro_bandwidth_bits_per_sec(
                timing, row_hit_ratio=h
            )
            / 1e9,
            "effective_access_ns": effective_access_time_ns(timing, h),
        }
        for h in (0.0, 0.25, 0.5, 0.75, 0.875, 1.0)
    ]
    checks = {
        "macro exceeds 50 Gbit/s": macro > 50e9,
        "32-node chip exceeds 1 Tbit/s": chip32 > 1e12,
        "18 macros suffice for 1 Tbit/s": need == 18,
    }
    return ExperimentResult(
        name="bandwidth",
        title="§2.1 Claims: Reclaiming the Hidden Bandwidth",
        paper_reference="§2.1",
        tables={"claims": rows, "row_hit_sweep": sweep},
        plots={},
        summary=[
            f"one macro sustains {macro / 1e9:.1f} Gbit/s "
            "(paper: 'over 50 Gbit/s')",
            f"a 32-node chip reaches {chip32 / 1e12:.2f} Tbit/s "
            "(paper: '>1 Tbit/s is possible per chip')",
        ],
        checks=checks,
    )
