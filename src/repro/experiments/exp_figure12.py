"""Experiment ``figure12``: idle time vs degree of parallelism."""

from __future__ import annotations

import numpy as np

from ..core.params import ParcelParams
from ..core.parcels import figure12_sweep
from ..viz import line_plot
from .registry import ExperimentConfig, ExperimentResult, register

_QUICK = dict(
    node_counts=(1, 4, 16, 64),
    parallelism_levels=(1, 4, 32),
    horizon_cycles=5_000.0,
)
_FULL = dict(
    node_counts=(1, 2, 4, 8, 16, 32, 64, 128, 256),
    parallelism_levels=(1, 2, 4, 8, 16, 32),
    horizon_cycles=10_000.0,
)


@register(
    name="figure12",
    title="Figure 12: Idle Time vs Degree of Parallelism",
    paper_reference="Fig. 12, §4.3",
    description=(
        "Idle fraction of test and control processors as parallelism "
        "grows, one panel per system size (1..256 nodes).  The paper "
        "could not complete its 16-node case; this reproduction includes "
        "it."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    kwargs = _QUICK if config.quick else _FULL
    base = ParcelParams(remote_fraction=0.2, latency_cycles=1000.0)
    result = figure12_sweep(base, seed=config.seed, **kwargs)
    node_counts = list(result.panels)
    multi = [n for n in node_counts if n > 1]
    biggest = result.panels[node_counts[-1]]
    test_idle_at_max_p = {
        n: float(result.panels[n].values[0, -1]) for n in multi
    }
    control_idle = {
        n: float(result.panels[n].values[1, 0]) for n in multi
    }
    checks = {
        "test idle drops 'virtually to zero' with enough parallelism":
            all(v < 0.1 for v in test_idle_at_max_p.values()),
        "control keeps 'relatively high idle time'":
            all(v > 0.5 for v in control_idle.values()),
        "test idle decreases monotonically with parallelism": all(
            bool(
                np.all(
                    np.diff(result.panels[n].values[0]) <= 1e-9
                )
            )
            for n in multi
        ),
        "16-node case completes (paper's did not)": 16
        in node_counts or config.quick,
    }
    parallelism = list(biggest.cols)
    plot = line_plot(
        parallelism,
        {
            "test idle": biggest.values[0],
            "control idle": biggest.values[1],
        },
        title=f"Fig 12 panel: {node_counts[-1]} nodes",
        xlabel="parcels per processor (degree of parallelism)",
        ylabel="idle",
        logx=True,
    )
    rows = result.to_rows()
    # label the system column for readability (0=test, 1=control)
    for row in rows:
        row["system"] = "test" if row["system"] == 0.0 else "control"
    return ExperimentResult(
        name="figure12",
        title="Figure 12: Idle Time vs Degree of Parallelism",
        paper_reference="Fig. 12, §4.3",
        tables={"idle_fraction": rows},
        plots={"largest_panel": plot},
        summary=[
            f"panels (node counts): {node_counts}",
            "test-system idle at max parallelism: "
            + ", ".join(
                f"N={n}: {v:.1%}" for n, v in test_idle_at_max_p.items()
            ),
            "control-system idle: "
            + ", ".join(
                f"N={n}: {v:.1%}" for n, v in control_idle.items()
            ),
        ],
        checks=checks,
    )
