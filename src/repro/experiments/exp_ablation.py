"""Experiments ``ablation-overhead`` and ``ablation-sections``.

Design-choice ablations DESIGN.md calls out:

* ``ablation-overhead`` — how parcel-handling cost erodes (and finally
  reverses) the split-transaction advantage, quantifying the paper's
  conclusion that "efficient parcel handling mechanisms are required to
  realize performance gains" (§5.2).
* ``ablation-sections`` — the Fig. 4 workload may be divided into any
  number of HWP/LWP alternations without changing aggregate results
  (model-structure invariance of the §3 study).
"""

from __future__ import annotations

import numpy as np

from ..core.hwlw import section_ablation_sweep
from ..core.params import ParcelParams, Table1Params
from ..core.parcels import overhead_ablation_sweep
from ..viz import grid_plot
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="ablation-overhead",
    title="Ablation: Parcel-Handling Overhead",
    paper_reference="§4.3 / §5.2 (efficient parcel handling)",
    description=(
        "Sweeps send/receive/context-switch costs and recomputes the "
        "Fig. 11 work ratio at a favorable and an unfavorable operating "
        "point."
    ),
)
def run_overhead(config: ExperimentConfig) -> ExperimentResult:
    overheads = (
        (0.0, 4.0, 16.0) if config.quick else (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
    )
    horizon = 8_000.0 if config.quick else 20_000.0
    favorable = overhead_ablation_sweep(
        ParcelParams(
            parallelism=32, remote_fraction=0.2, latency_cycles=1000.0
        ),
        overheads=overheads,
        horizon_cycles=horizon,
        seed=config.seed,
    )
    unfavorable = overhead_ablation_sweep(
        ParcelParams(
            parallelism=1, remote_fraction=0.5, latency_cycles=10.0
        ),
        overheads=overheads,
        horizon_cycles=horizon,
        seed=config.seed,
    )
    fav = favorable.values[0]
    unf = unfavorable.values[0]
    checks = {
        "overhead erodes the favorable-regime ratio": fav[0] > fav[-1],
        "heavy overhead reverses the unfavorable regime": unf[-1] < 1.0,
        "favorable regime survives moderate overhead (>5x)": fav[
            min(2, len(fav) - 1)
        ]
        > 5.0,
    }
    rows = []
    for j, ov in enumerate(favorable.cols):
        rows.append(
            {
                "overhead_cycles": ov,
                "ratio_favorable(P=32,r=0.2,L=1000)": float(fav[j]),
                "ratio_unfavorable(P=1,r=0.5,L=10)": float(unf[j]),
            }
        )
    return ExperimentResult(
        name="ablation-overhead",
        title="Ablation: Parcel-Handling Overhead",
        paper_reference="§4.3 / §5.2",
        tables={"overhead_sweep": rows},
        plots={},
        summary=[
            f"favorable regime: ratio {fav[0]:.1f}x at zero overhead -> "
            f"{fav[-1]:.1f}x at {favorable.cols[-1]:.0f}-cycle overheads",
            f"unfavorable regime ends at {unf[-1]:.2f} (< 1: reversed)",
            "confirms: 'efficient parcel handling mechanisms are "
            "required to realize performance gains'",
        ],
        checks=checks,
    )


@register(
    name="ablation-sections",
    title="Ablation: Fig. 4 Section Count Invariance",
    paper_reference="Fig. 4, §3.1",
    description=(
        "Completion time of the HWP/LWP workload for different numbers "
        "of phase alternations: must be structurally invariant."
    ),
)
def run_sections(config: ExperimentConfig) -> ExperimentResult:
    sections = (1, 2, 4, 8, 16) if config.quick else (1, 2, 4, 8, 16, 32, 64)
    grid = section_ablation_sweep(
        Table1Params(), lwp_fraction=0.5, n_nodes=8,
        section_counts=sections,
    )
    spread = float(grid.values.max() - grid.values.min())
    checks = {
        "completion time invariant to section count": bool(
            np.allclose(grid.values, grid.values[0, 0], rtol=1e-12)
        ),
    }
    return ExperimentResult(
        name="ablation-sections",
        title="Ablation: Fig. 4 Section Count Invariance",
        paper_reference="Fig. 4, §3.1",
        tables={"sections": grid.to_rows()},
        plots={},
        summary=[
            f"completion cycles spread across section counts: {spread:g}",
        ],
        checks=checks,
    )
