"""Experiment ``memsys_bandwidth``: trace-driven memory-system sweeps.

Replays synthetic access traces through :mod:`repro.memsys` and
cross-validates the simulated sustained bandwidth against the §2.1
closed forms of :mod:`repro.arch.dram`:

* single-macro streaming under FR-FCFS must land within 5% of
  :func:`~repro.arch.dram.macro_bandwidth_bits_per_sec`;
* a random trace must match the generalized row-hit-ratio model at its
  *measured* hit rate;
* sweeping address-interleaving schemes shows channel interleaving
  scaling bandwidth with channel count;
* FR-FCFS harvests row hits that FCFS forfeits on a row-interleaved
  stream;
* PIM all-bank mode reclaims the aggregate row-buffer bandwidth of
  every bank on the channel — the paper's "hidden bandwidth", now
  observed in simulation rather than derived;
* refresh (tREFI/tRFC) costs sustained bandwidth in proportion to the
  blackout fraction ``tRFC/tREFI`` under per-rank (all-bank) refresh,
  while staggered per-bank refresh hides most of the overhead behind
  accesses to other banks;
* timestamped traces replay at their recorded arrival rate: a trace
  slower than the channel's service rate sustains exactly its offered
  load instead of the saturation bandwidth;
* the event-free fast-path replay engine
  (:mod:`repro.memsys.fastpath`) reproduces the event engine's
  statistics on the same traces — including refresh-fenced and
  timestamped replays — the cross-check that lets every other sweep
  here run on the fast path;
* per-request latency *distributions* (via :mod:`repro.telemetry`):
  exact queue-wait and service-time percentiles per scheme x policy on
  line-rate random traffic, showing that queueing — not service —
  dominates latency at saturation.

The sweeps themselves replay through ``engine="auto"`` (the fast path),
which is what makes the full-size grids cheap; the equivalence section
replays a sample of traces through *both* engines and asserts agreement.
"""

from __future__ import annotations

import typing as _t

from ..arch.dram import (
    DramMacroTiming,
    effective_access_time_ns,
    macro_bandwidth_bits_per_sec,
)
from ..memsys import (
    Coordinates,
    MemRequest,
    MemSysConfig,
    MemorySystem,
    Op,
    SCHEMES,
    synthesize_trace,
)
from .registry import ExperimentConfig, ExperimentResult, register


def _replay(config: MemSysConfig, requests: _t.Sequence[MemRequest]):
    return MemorySystem(config).replay(requests)


def _fresh(requests: _t.Sequence[MemRequest]) -> _t.List[MemRequest]:
    """Copy a trace so each replay starts from clean runtime state."""
    return [MemRequest(r.op, r.addr) for r in requests]


def _row_interleaved_trace(
    config: MemSysConfig, n: int
) -> _t.List[MemRequest]:
    """Pages of two rows of one bank, interleaved — poison for FCFS."""
    amap = config.address_map()
    pages = [
        amap.encode(Coordinates(row=row, column=col))
        for col in range(config.timing.pages_per_row)
        for row in (1, 2)
    ]
    return [
        MemRequest(Op.READ, pages[i % len(pages)]) for i in range(n)
    ]


def _pim_trace(config: MemSysConfig, n: int) -> _t.List[MemRequest]:
    """All-bank PIM commands sweeping rows column-by-column."""
    amap = config.address_map()
    pages_per_row = config.timing.pages_per_row
    requests = []
    for i in range(n):
        row = (i // pages_per_row) % config.rows_per_bank
        column = i % pages_per_row
        addr = amap.encode(Coordinates(row=row, column=column))
        requests.append(MemRequest(Op.PIM, addr))
    return requests


@register(
    name="memsys_bandwidth",
    title="Trace-Driven Memory System vs. the §2.1 Bandwidth Model",
    paper_reference="§2.1 (simulated)",
    description=(
        "Replays synthetic traces through the banked repro.memsys "
        "simulator, sweeping address mappings, access patterns, and "
        "scheduling policies, and cross-validates sustained bandwidth "
        "against the analytic DRAM-macro model."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    n = 2_000 if config.quick else 20_000
    timing = DramMacroTiming()
    analytic_stream = macro_bandwidth_bits_per_sec(timing)

    # ------------------------------------------------------------------
    # 1. single-macro cross-validation against the closed forms
    # ------------------------------------------------------------------
    single = MemSysConfig(n_channels=1, bankgroups=1, banks_per_group=1)
    stream = _replay(
        single, synthesize_trace("sequential", n, single)
    )
    stream_err = (
        abs(stream.sustained_bits_per_sec - analytic_stream)
        / analytic_stream
    )
    random_stats = _replay(
        single,
        synthesize_trace("random", n, single, seed=config.seed),
    )
    analytic_random = timing.page_bits / (
        effective_access_time_ns(timing, random_stats.row_hit_rate) * 1e-9
    )
    random_err = (
        abs(random_stats.sustained_bits_per_sec - analytic_random)
        / analytic_random
    )
    cross_validation = [
        {
            "pattern": "sequential",
            "simulated_gbit_per_s": stream.sustained_bits_per_sec / 1e9,
            "analytic_gbit_per_s": analytic_stream / 1e9,
            "rel_err_pct": 100 * stream_err,
            "row_hit_rate": stream.row_hit_rate,
        },
        {
            "pattern": "random",
            "simulated_gbit_per_s": (
                random_stats.sustained_bits_per_sec / 1e9
            ),
            "analytic_gbit_per_s": analytic_random / 1e9,
            "rel_err_pct": 100 * random_err,
            "row_hit_rate": random_stats.row_hit_rate,
        },
    ]

    # ------------------------------------------------------------------
    # 2. address-mapping scheme x access-pattern sweep
    # ------------------------------------------------------------------
    sweep_rows = []
    scheme_bw: _t.Dict[_t.Tuple[str, str], float] = {}
    for scheme in sorted(SCHEMES):
        sys_config = MemSysConfig(scheme=scheme)
        for pattern in ("sequential", "strided", "random"):
            trace = synthesize_trace(
                pattern, n, sys_config, seed=config.seed
            )
            stats = _replay(sys_config, trace)
            scheme_bw[(scheme, pattern)] = stats.sustained_bits_per_sec
            sweep_rows.append(
                {
                    "scheme": scheme,
                    "pattern": pattern,
                    "gbit_per_s": stats.sustained_bits_per_sec / 1e9,
                    "row_hit_rate": stats.row_hit_rate,
                    "mean_latency_ns": stats.mean_queue_latency_ns,
                    "mean_queue_len": stats.mean_queue_length,
                }
            )
    interleave_gain = (
        scheme_bw[("channel-interleaved", "sequential")]
        / scheme_bw[("row-major", "sequential")]
    )

    # ------------------------------------------------------------------
    # 3. scheduling-policy comparison on a row-interleaved stream
    # ------------------------------------------------------------------
    policy_rows = []
    policy_hits = {}
    base = MemSysConfig(n_channels=1, bankgroups=1, banks_per_group=1)
    conflict_trace = _row_interleaved_trace(base, n)
    for policy in ("fcfs", "frfcfs"):
        sys_config = MemSysConfig(
            n_channels=1, bankgroups=1, banks_per_group=1, policy=policy
        )
        stats = _replay(sys_config, _fresh(conflict_trace))
        policy_hits[policy] = stats.row_hit_rate
        policy_rows.append(
            {
                "policy": policy,
                "row_hit_rate": stats.row_hit_rate,
                "gbit_per_s": stats.sustained_bits_per_sec / 1e9,
                "mean_latency_ns": stats.mean_queue_latency_ns,
            }
        )

    # ------------------------------------------------------------------
    # 4. PIM all-bank mode vs host streaming on one channel
    # ------------------------------------------------------------------
    one_channel = MemSysConfig(n_channels=1)
    host = _replay(
        one_channel, synthesize_trace("sequential", n, one_channel)
    )
    pim = _replay(one_channel, _pim_trace(one_channel, n))
    pim_speedup = (
        pim.sustained_bits_per_sec / host.sustained_bits_per_sec
    )
    pim_rows = [
        {
            "mode": "host streaming (1 bank at a time)",
            "gbit_per_s": host.sustained_bits_per_sec / 1e9,
            "speedup": 1.0,
        },
        {
            "mode": (
                f"PIM all-bank ({one_channel.banks_per_channel} banks)"
            ),
            "gbit_per_s": pim.sustained_bits_per_sec / 1e9,
            "speedup": pim_speedup,
        },
    ]

    # ------------------------------------------------------------------
    # 5. refresh overhead: tREFI/tRFC blackouts vs the ideal stream
    # ------------------------------------------------------------------
    #: HBM2-class refresh timings (ns).
    trefi, trfc = 3900.0, 350.0
    # bank-interleaved random traffic spreads over every bank, which is
    # what lets staggered per-bank refresh work around the refreshing
    # bank; the paper-default row-major random footprint stays inside
    # one bank, where the two granularities coincide
    refresh_base = MemSysConfig(n_channels=1, scheme="bank-interleaved")
    ideal = _replay(
        refresh_base,
        synthesize_trace("random", n, refresh_base, seed=config.seed),
    )
    refresh_rows = []
    refresh_bw = {}
    for granularity in ("per-rank", "per-bank"):
        refreshed_config = MemSysConfig(
            n_channels=1,
            scheme="bank-interleaved",
            trefi_ns=trefi,
            trfc_ns=trfc,
            refresh_granularity=granularity,
        )
        stats = _replay(
            refreshed_config,
            synthesize_trace(
                "random", n, refreshed_config, seed=config.seed
            ),
        )
        overhead = 1 - stats.sustained_bits_per_sec / ideal.sustained_bits_per_sec
        refresh_bw[granularity] = stats.sustained_bits_per_sec
        refresh_rows.append(
            {
                "granularity": granularity,
                "gbit_per_s": stats.sustained_bits_per_sec / 1e9,
                "overhead_pct": 100 * overhead,
                "blackout_pct": 100 * trfc / trefi,
                "row_hit_rate": stats.row_hit_rate,
            }
        )
    per_rank_overhead = (
        1 - refresh_bw["per-rank"] / ideal.sustained_bits_per_sec
    )
    blackout_fraction = trfc / trefi

    # ------------------------------------------------------------------
    # 6. timestamped arrivals: offered load below saturation
    # ------------------------------------------------------------------
    paced_config = MemSysConfig(n_channels=1)
    interarrival = 4 * paced_config.timing.page_access_ns  # ~25% load
    line_rate = _replay(
        paced_config, synthesize_trace("sequential", n, paced_config)
    )
    paced_trace = synthesize_trace(
        "sequential", n, paced_config, interarrival_ns=interarrival
    )
    paced = _replay(paced_config, paced_trace)
    offered = paced_config.timing.page_bits / (interarrival * 1e-9)
    paced_rows = [
        {
            "arrivals": "line-rate",
            "gbit_per_s": line_rate.sustained_bits_per_sec / 1e9,
        },
        {
            "arrivals": f"timestamped ({interarrival:g} ns spacing)",
            "gbit_per_s": paced.sustained_bits_per_sec / 1e9,
            "offered_gbit_per_s": offered / 1e9,
        },
    ]
    paced_err = abs(paced.sustained_bits_per_sec - offered) / offered

    # ------------------------------------------------------------------
    # 7. engine cross-validation: event vs. fast path on shared traces
    # ------------------------------------------------------------------
    engine_rows = []
    engines_agree = True
    eq_n = min(n, 5_000)  # the event engine is the slow side here
    eq_cases = [
        (pattern, MemSysConfig(scheme="channel-interleaved"), {})
        for pattern in ("sequential", "strided", "random")
    ]
    eq_cases.append(
        (
            "sequential+refresh",
            MemSysConfig(
                scheme="channel-interleaved",
                trefi_ns=trefi,
                trfc_ns=trfc,
            ),
            {},
        )
    )
    eq_cases.append(
        (
            "random+refresh(per-bank)",
            MemSysConfig(
                scheme="channel-interleaved",
                trefi_ns=trefi,
                trfc_ns=trfc,
                refresh_granularity="per-bank",
            ),
            {},
        )
    )
    eq_cases.append(
        (
            "sequential+timestamps",
            MemSysConfig(scheme="channel-interleaved"),
            {"interarrival_ns": interarrival},
        )
    )
    for pattern, eq_config, synth_kwargs in eq_cases:
        eq_trace = synthesize_trace(
            pattern.split("+", 1)[0],
            eq_n,
            eq_config,
            seed=config.seed,
            **synth_kwargs,
        )
        event_stats = MemorySystem(eq_config).replay(
            _fresh(eq_trace), engine="event"
        )
        fast_system = MemorySystem(eq_config)
        fast_stats = fast_system.replay(
            _fresh(eq_trace), engine="fast"
        )
        event_summary = event_stats.summary()
        fast_summary = fast_stats.summary()
        deviation = max(
            (
                abs(fast_summary[key] - value)
                / (abs(value) if value else 1.0)
                for key, value in event_summary.items()
            ),
            default=0.0,
        )
        counters_equal = (
            fast_stats.n_requests == event_stats.n_requests
            and fast_stats.total_bits == event_stats.total_bits
            and fast_stats.row_hits == event_stats.row_hits
            and fast_stats.row_misses == event_stats.row_misses
            and fast_stats.row_conflicts == event_stats.row_conflicts
        )
        engines_agree = (
            engines_agree and counters_equal and deviation < 1e-9
        )
        engine_rows.append(
            {
                "pattern": pattern,
                "fast_tier": fast_system.last_replay_engine,
                "event_gbit_per_s": (
                    event_stats.sustained_bits_per_sec / 1e9
                ),
                "fast_gbit_per_s": (
                    fast_stats.sustained_bits_per_sec / 1e9
                ),
                "max_rel_deviation": deviation,
            }
        )

    # ------------------------------------------------------------------
    # 8. per-request latency distributions (repro.telemetry)
    # ------------------------------------------------------------------
    from ..telemetry import ReplayTelemetry

    latency_rows = []
    latency_ordered = True
    queue_dominates = True
    for scheme in ("row-major", "channel-interleaved"):
        for policy in ("fcfs", "frfcfs"):
            lat_config = MemSysConfig(scheme=scheme, policy=policy)
            telemetry = ReplayTelemetry(profile=False)
            MemorySystem(lat_config).replay(
                synthesize_trace(
                    "random", n, lat_config, seed=config.seed
                ),
                telemetry=telemetry,
            )
            pct = telemetry.percentiles()
            queue = pct["queue_wait_ns"]
            service = pct["service_time_ns"]
            for summary in (queue, service):
                latency_ordered = latency_ordered and (
                    summary["p50"]
                    <= summary["p95"]
                    <= summary["p99"]
                    <= summary["max"]
                )
            # line-rate arrivals saturate the queue: even the fastest
            # service (a row hit) waits behind queue_depth-ish peers
            queue_dominates = queue_dominates and (
                queue["p50"] > service["p99"]
            )
            latency_rows.append(
                {
                    "scheme": scheme,
                    "policy": policy,
                    "queue_p50_ns": queue["p50"],
                    "queue_p95_ns": queue["p95"],
                    "queue_p99_ns": queue["p99"],
                    "queue_max_ns": queue["max"],
                    "service_p50_ns": service["p50"],
                    "service_p95_ns": service["p95"],
                    "service_p99_ns": service["p99"],
                    "service_max_ns": service["max"],
                }
            )

    # ------------------------------------------------------------------
    # 9. sharded replay farm equivalence (repro.farm)
    # ------------------------------------------------------------------
    import dataclasses as _dc

    from ..farm import Fault, FaultPlan, FarmConfig, replay_farm

    farm_rows = []
    farm_exact = True
    farm_n = min(n, 4000)
    farm_cases = [
        ("poisson", None),
        (
            "poisson+chaos",
            FaultPlan(
                {
                    (0, 0): Fault("kill"),
                    (1, 0): Fault("corrupt"),
                    (2, 0): Fault("hang"),
                }
            ),
        ),
    ]
    farm_config = MemSysConfig(
        n_channels=4, scheme="channel-interleaved", queue_depth=8
    )
    farm_trace = synthesize_trace(
        "random",
        farm_n,
        farm_config,
        seed=config.seed,
        packed=True,
        interarrival_ns=4.0 * interarrival,
        interarrival="poisson",
    )
    single = MemorySystem(farm_config).replay(
        farm_trace, engine="fast"
    )
    for label, faults in farm_cases:
        farm_result = replay_farm(
            farm_trace,
            farm_config,
            FarmConfig(
                mode="inprocess",
                engine="fast",
                backoff_base_s=0.001,
                backoff_cap_s=0.002,
            ),
            fault_plan=faults,
        )
        identical = repr(_dc.asdict(single)) == repr(
            _dc.asdict(farm_result.stats)
        )
        farm_exact = farm_exact and identical
        ledger = farm_result.report
        farm_rows.append(
            {
                "case": label,
                "shards": ledger.n_shards,
                "attempts": ledger.attempts,
                "retries": ledger.retries,
                "timeouts": ledger.timeouts,
                "crashes": ledger.crashes,
                "integrity_failures": ledger.integrity_failures,
                "degraded_shards": ledger.degraded_shards,
                "bit_identical": identical,
            }
        )

    checks = {
        "streaming FR-FCFS within 5% of analytic model": (
            stream_err < 0.05
        ),
        "random trace matches hit-ratio model within 10%": (
            random_err < 0.10
        ),
        "FR-FCFS row-hit rate exceeds FCFS": (
            policy_hits["frfcfs"] > policy_hits["fcfs"]
        ),
        "channel interleaving scales sequential bandwidth": (
            interleave_gain > 1.5
        ),
        "PIM all-bank reclaims multi-bank bandwidth": (
            pim_speedup > 0.9 * one_channel.banks_per_channel
        ),
        "per-rank refresh overhead tracks tRFC/tREFI": (
            0.5 * blackout_fraction
            < per_rank_overhead
            < 2.0 * blackout_fraction
        ),
        "per-bank refresh outperforms per-rank on host streams": (
            refresh_bw["per-bank"] > refresh_bw["per-rank"]
        ),
        "timestamped trace sustains its offered load within 5%": (
            paced_err < 0.05
        ),
        "fast-path engine matches event-engine stats": engines_agree,
        "latency percentiles are ordered (p50<=p95<=p99<=max)": (
            latency_ordered
        ),
        "queue wait dominates service time at line rate": (
            queue_dominates
        ),
        "sharded farm replay is bit-identical to single-process": (
            farm_exact
        ),
    }
    return ExperimentResult(
        name="memsys_bandwidth",
        title="Trace-Driven Memory System vs. the §2.1 Bandwidth Model",
        paper_reference="§2.1 (simulated)",
        tables={
            "cross_validation": cross_validation,
            "scheme_pattern_sweep": sweep_rows,
            "policy_comparison": policy_rows,
            "pim_mode": pim_rows,
            "refresh_overhead": refresh_rows,
            "timestamped_arrivals": paced_rows,
            "engine_equivalence": engine_rows,
            "latency_distributions": latency_rows,
            "farm_equivalence": farm_rows,
        },
        plots={},
        summary=[
            f"simulated streaming bandwidth "
            f"{stream.sustained_bits_per_sec / 1e9:.1f} Gbit/s vs "
            f"analytic {analytic_stream / 1e9:.1f} Gbit/s "
            f"({100 * stream_err:.2f}% off)",
            f"channel interleaving gains {interleave_gain:.2f}x on a "
            "sequential stream",
            f"FR-FCFS row-hit rate {policy_hits['frfcfs']:.2f} vs FCFS "
            f"{policy_hits['fcfs']:.2f} on a row-interleaved stream",
            f"PIM all-bank mode sustains {pim_speedup:.1f}x the host "
            "streaming bandwidth of the same channel",
            f"per-rank refresh (tREFI={trefi:g}, tRFC={trfc:g}) costs "
            f"{100 * per_rank_overhead:.1f}% of streaming bandwidth "
            f"(blackout fraction {100 * blackout_fraction:.1f}%); "
            "per-bank staggering costs "
            f"{100 * (1 - refresh_bw['per-bank'] / ideal.sustained_bits_per_sec):.1f}%",
            f"timestamped trace at {interarrival:g} ns spacing "
            f"sustains {paced.sustained_bits_per_sec / 1e9:.1f} Gbit/s "
            f"(offered {offered / 1e9:.1f} Gbit/s)",
            "fast-path replay engine "
            + ("matches" if engines_agree else "DIVERGES from")
            + " the event engine on every cross-checked trace",
            "sharded replay farm "
            + ("is" if farm_exact else "is NOT")
            + " bit-identical to single-process replay, with and "
            "without injected faults "
            f"({farm_rows[1]['crashes']} crash(es), "
            f"{farm_rows[1]['timeouts']} timeout(s), "
            f"{farm_rows[1]['integrity_failures']} corruption(s) "
            "absorbed)",
            f"line-rate random queue-wait p99 "
            f"{latency_rows[0]['queue_p99_ns']:.0f} ns vs service p99 "
            f"{latency_rows[0]['service_p99_ns']:.0f} ns "
            f"({latency_rows[0]['scheme']}/{latency_rows[0]['policy']}) "
            "— queueing dominates at saturation",
        ],
        checks=checks,
    )
