"""Extension experiments beyond the paper's model.

* ``extension-overlap`` — concurrent host/PIM phase execution (the
  paper's Fig. 4 serializes them); quantifies how much of the serial
  model's loss region disappears.
* ``ablation-imbalance`` — LWP thread load skew (the paper assumes
  uniform threads); shows the effective break-even node count shifting
  to ``(1+skew)·NB``.
* ``ablation-network`` — replaces the paper's flat-latency interconnect
  with a bandwidth-limited ingress-link model for the parcel study.
* ``extension-derived-tml`` — re-runs the Fig. 5 gain sweep with the
  LWP memory-access time ``TML`` *measured* on the simulated memory
  system (:func:`repro.core.hwlw.derive_tml_params`, PR 3) instead of
  the Table 1 constant of 30 cycles, making the simulated-TML vs
  Table-1-TML comparison a checked, runnable experiment.
"""

from __future__ import annotations

import numpy as np

from ..core.hwlw import (
    HwlwSimConfig,
    derive_tml_params,
    figure5_gain_sweep,
    nb_parameter,
    simulate_hybrid,
    time_relative,
    time_relative_overlapped,
    time_relative_skewed,
)
from ..core.params import ParcelParams, Table1Params
from ..core.parcels import (
    LinkContentionNetwork,
    simulate_message_passing,
    simulate_parcels,
)
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="extension-overlap",
    title="Extension: Overlapped Host/PIM Execution",
    paper_reference="Fig. 4 assumption, relaxed",
    description=(
        "Runs each section's HWP and LWP regions concurrently instead "
        "of alternating, in both the closed form and the DES."
    ),
)
def run_overlap(config: ExperimentConfig) -> ExperimentResult:
    params = Table1Params()
    fractions = (0.2, 0.5, 0.8)
    nodes = (2, 8, 64)
    sim_cfg_serial = HwlwSimConfig(
        stochastic=False, overlap=False
    )
    sim_cfg_overlap = HwlwSimConfig(
        stochastic=False, overlap=True
    )
    rows = []
    base_cycles = params.total_work * 4.0  # 0% WL reference
    agreement = []
    for f in fractions:
        for n in nodes:
            serial = float(time_relative(f, n, params))
            overlapped = float(time_relative_overlapped(f, n, params))
            sim_serial = simulate_hybrid(
                params, f, n, sim_cfg_serial
            ).completion_cycles / base_cycles
            sim_overlap = simulate_hybrid(
                params, f, n, sim_cfg_overlap
            ).completion_cycles / base_cycles
            agreement.append(abs(sim_overlap - overlapped) / overlapped)
            rows.append(
                {
                    "lwp_fraction": f,
                    "n_nodes": n,
                    "serial_T_rel": serial,
                    "overlap_T_rel": overlapped,
                    "overlap_speedup_vs_serial": serial / overlapped,
                    "sim_overlap_T_rel": sim_overlap,
                }
            )
    checks = {
        "overlap never slower than serial": all(
            r["overlap_T_rel"] <= r["serial_T_rel"] + 1e-12 for r in rows
        ),
        "DES with overlap matches the overlapped closed form": max(
            agreement
        )
        < 1e-9,
        "loss region shrinks: overlap beats control at N=2, f=0.5 "
        "where serial loses": (
            float(time_relative_overlapped(0.5, 2, params)) < 1.0
            < float(time_relative(0.5, 2, params))
        ),
    }
    return ExperimentResult(
        name="extension-overlap",
        title="Extension: Overlapped Host/PIM Execution",
        paper_reference="Fig. 4 assumption, relaxed",
        tables={"overlap": rows},
        plots={},
        summary=[
            "overlapped sections take max(host, PIM) instead of the sum",
            "at %WL=50, N=2 the serial model loses to the control "
            f"({float(time_relative(0.5, 2, params)):.3f} > 1) while "
            "the overlapped system wins "
            f"({float(time_relative_overlapped(0.5, 2, params)):.3f})",
        ],
        checks=checks,
    )


@register(
    name="ablation-imbalance",
    title="Ablation: LWP Thread Load Imbalance",
    paper_reference="§3.1 uniform-thread assumption",
    description=(
        "Linearly skews the LWP thread lengths and measures the shift "
        "of the break-even node count to (1+skew)*NB."
    ),
)
def run_imbalance(config: ExperimentConfig) -> ExperimentResult:
    params = Table1Params()
    nb = nb_parameter(params)
    skews = (0.0, 0.25, 0.5, 0.75)
    rows = []
    agreement = []
    for skew in skews:
        analytic8 = float(time_relative_skewed(1.0, 8, skew, params))
        sim8 = (
            simulate_hybrid(
                params,
                1.0,
                8,
                HwlwSimConfig(stochastic=False, thread_skew=skew),
            ).completion_cycles
            / (params.total_work * 4.0)
        )
        agreement.append(abs(sim8 - analytic8) / analytic8)
        rows.append(
            {
                "skew": skew,
                "effective_NB": (1.0 + skew) * nb,
                "T_rel(f=1, N=8) analytic": analytic8,
                "T_rel(f=1, N=8) simulated": sim8,
            }
        )
    checks = {
        "simulation matches the skewed closed form": max(agreement)
        < 1e-9,
        "imbalance monotonically degrades the array": all(
            rows[i]["T_rel(f=1, N=8) analytic"]
            <= rows[i + 1]["T_rel(f=1, N=8) analytic"] + 1e-12
            for i in range(len(rows) - 1)
        ),
        "skew=0 reproduces the paper's model": abs(
            rows[0]["T_rel(f=1, N=8) analytic"]
            - float(time_relative(1.0, 8, params))
        )
        < 1e-12,
    }
    return ExperimentResult(
        name="ablation-imbalance",
        title="Ablation: LWP Thread Load Imbalance",
        paper_reference="§3.1 uniform-thread assumption",
        tables={"imbalance": rows},
        plots={},
        summary=[
            f"uniform threads give NB = {nb}; a skew of s shifts the "
            "effective break-even array size to (1+s)*NB",
            "the fork/join completes with its slowest thread, so "
            "imbalance directly erodes the PIM-side speedup",
        ],
        checks=checks,
    )


@register(
    name="ablation-network",
    title="Ablation: Interconnect Contention vs Flat Latency",
    paper_reference="§4.2 flat-latency assumption",
    description=(
        "Swaps the paper's fixed-delay network for one with bandwidth-"
        "limited ingress links and re-measures the Fig. 11 work ratio."
    ),
)
def run_network(config: ExperimentConfig) -> ExperimentResult:
    params = ParcelParams(
        n_nodes=8, parallelism=32, remote_fraction=0.5,
        latency_cycles=300.0,
    )
    horizon = 8_000.0 if config.quick else 20_000.0
    control = simulate_message_passing(
        params, horizon, seed=config.seed
    ).total_work
    rows = []
    for cycles_per_word in (0.0, 1.0, 4.0, 16.0, 64.0):

        def factory(sim, p, _cpw=cycles_per_word):
            return LinkContentionNetwork(
                sim, p.n_nodes, p.latency_cycles, cycles_per_word=_cpw
            )

        test = simulate_parcels(
            params,
            horizon,
            seed=config.seed,
            network_factory=factory,
        )
        rows.append(
            {
                "cycles_per_word": cycles_per_word,
                "work_ratio": test.total_work / control,
                "test_idle": test.idle_fraction,
            }
        )
    ratios = [r["work_ratio"] for r in rows]
    checks = {
        "zero-bandwidth-cost matches the flat model regime": ratios[0]
        > 5.0,
        "link serialization erodes the parcel advantage": ratios[-1]
        < ratios[0],
        "moderate link costs preserve the order-of-magnitude story":
            ratios[1] > 5.0,
    }
    return ExperimentResult(
        name="ablation-network",
        title="Ablation: Interconnect Contention vs Flat Latency",
        paper_reference="§4.2 flat-latency assumption",
        tables={"network": rows},
        plots={},
        summary=[
            "the paper's flat fixed-delay network is the "
            "cycles_per_word=0 row; ingress serialization models "
            "finite link bandwidth",
            f"ratio {ratios[0]:.1f}x (flat) -> {ratios[-1]:.1f}x at "
            "64 cycles/word: congestion, not latency, becomes the "
            "limiter",
        ],
        checks=checks,
    )


@register(
    name="extension-derived-tml",
    title="Extension: Fig. 5 Sweep with Simulated TML",
    paper_reference="Fig. 5 + Table 1 TML, derived",
    description=(
        "Re-runs the Fig. 5 performance-gain sweep with the LWP "
        "memory-access time TML measured on the simulated memory "
        "system (repro.core.hwlw.derive_tml_params) instead of the "
        "Table 1 constant, and quantifies the break-even shift."
    ),
)
def run_derived_tml(config: ExperimentConfig) -> ExperimentResult:
    base = Table1Params()
    n_requests = 2_048 if config.quick else 8_192
    derivations = {
        pattern: derive_tml_params(
            base, pattern=pattern, n=n_requests, seed=config.seed
        )
        for pattern in ("random", "sequential")
    }
    derived = derivations["random"]  # the paper's LWP traffic class
    tml_rows = [
        {
            "pattern": pattern,
            "tml_cycles": d.tml_cycles,
            "tml_ns": d.tml_ns,
            "row_hit_rate": d.row_hit_rate,
            "NB": nb_parameter(d.params),
        }
        for pattern, d in derivations.items()
    ] + [
        {
            "pattern": "table1-constant",
            "tml_cycles": float(base.lwp_memory_cycles),
            "tml_ns": base.lwp_memory_cycles * base.hwp_cycle_ns,
            "row_hit_rate": float("nan"),
            "NB": nb_parameter(base),
        }
    ]

    grid_base = figure5_gain_sweep(base, use_simulation=False)
    grid_derived = figure5_gain_sweep(
        derived.params, use_simulation=False
    )
    gain_rows = []
    for i, nodes in enumerate(grid_base.rows):
        for j, fraction in enumerate(grid_base.cols):
            if fraction not in (0.2, 0.5, 1.0):
                continue
            gain_rows.append(
                {
                    "n_nodes": int(nodes),
                    "lwp_fraction": fraction,
                    "gain_table1_tml": float(grid_base.values[i, j]),
                    "gain_derived_tml": float(
                        grid_derived.values[i, j]
                    ),
                }
            )

    # the derived variant must also run through the DES, not just the
    # closed form: spot-check their agreement at one grid point
    sim = simulate_hybrid(
        derived.params,
        1.0,
        8,
        HwlwSimConfig(stochastic=False),
    ).completion_cycles / (derived.params.total_work * 4.0)
    analytic8 = float(time_relative(1.0, 8, derived.params))
    nb_base = nb_parameter(base)
    nb_derived = nb_parameter(derived.params)
    positive = grid_base.values[:, 1:]  # f > 0 columns
    checks = {
        "random-traffic TML measures below the Table 1 constant": (
            derivations["random"].tml_cycles < base.lwp_memory_cycles
        ),
        "streaming TML is the lower bound (sequential < random)": (
            derivations["sequential"].tml_cycles
            < derivations["random"].tml_cycles
        ),
        "faster measured memory lowers the break-even node count": (
            nb_derived < nb_base
        ),
        "derived TML never reduces the gain at f > 0": bool(
            np.all(
                grid_derived.values[:, 1:] >= positive - 1e-12
            )
        ),
        "DES with derived params matches the closed form": (
            abs(sim - analytic8) / analytic8 < 1e-9
        ),
    }
    return ExperimentResult(
        name="extension-derived-tml",
        title="Extension: Fig. 5 Sweep with Simulated TML",
        paper_reference="Fig. 5 + Table 1 TML, derived",
        tables={"tml": tml_rows, "gain": gain_rows},
        plots={},
        summary=[
            f"measured TML on random traffic: "
            f"{derived.tml_cycles:.2f} cycles vs the Table 1 "
            f"constant {base.lwp_memory_cycles} — the paper's "
            "assumption is conservative",
            f"break-even node count NB: {nb_base:.3f} (Table 1) -> "
            f"{nb_derived:.3f} (derived): the measured memory system "
            "moves the PIM win earlier",
            f"gain at %WL=100, N=64: "
            f"{float(grid_base.values[-1, -1]):.1f}x -> "
            f"{float(grid_derived.values[-1, -1]):.1f}x",
        ],
        checks=checks,
    )
