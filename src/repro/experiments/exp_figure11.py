"""Experiment ``figure11``: parcel latency hiding (work ratio sweeps)."""

from __future__ import annotations

from ..core.params import ParcelParams
from ..core.parcels import figure11_sweep
from ..viz import grid_plot
from .registry import ExperimentConfig, ExperimentResult, register

_QUICK = dict(
    parallelism_levels=(1, 4, 64),
    remote_fractions=(0.1, 0.5),
    latencies=(10.0, 100.0, 1000.0),
    horizon_cycles=10_000.0,
)
_FULL = dict(
    parallelism_levels=(1, 2, 4, 16, 64, 256),
    remote_fractions=(0.05, 0.1, 0.2, 0.5),
    latencies=(10.0, 100.0, 1000.0, 10000.0),
    horizon_cycles=20_000.0,
)


@register(
    name="figure11",
    title="Figure 11: Latency Hiding with Parcels",
    paper_reference="Fig. 11, §4.3",
    description=(
        "Ratio of work done by the parcel split-transaction system to the "
        "blocking message-passing control in equal simulated time, vs "
        "system-wide latency, per remote-access fraction, one panel per "
        "degree of parallelism."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    kwargs = _QUICK if config.quick else _FULL
    result = figure11_sweep(
        ParcelParams(), seed=config.seed, **kwargs
    )
    p_levels = list(result.panels)
    low_p = result.panels[p_levels[0]]
    high_p = result.panels[p_levels[-1]]
    checks = {
        "order-of-magnitude gains at high parallelism & latency":
            float(high_p.values[-1, -1]) > 10.0,
        "no meaningful gain at P=1 with short latency":
            float(low_p.values[0, 0]) < 1.1,
        "ratio grows with latency at high parallelism": bool(
            (high_p.values[-1, 1:] >= high_p.values[-1, :-1]).all()
        ),
        "high parallelism beats low at max latency": bool(
            (high_p.values[:, -1] > low_p.values[:, -1]).all()
        ),
    }
    plots = {
        f"ratio_P{p}": grid_plot(
            result.panels[p],
            row_format=lambda v: f"{v:.0%}",
            logx=True,
            logy=True,
            title=f"Fig 11 panel: parallelism={p} "
            "(curves: remote fraction)",
            xlabel="one-way latency (cycles, log)",
            ylabel="ratio",
        )
        for p in (p_levels[0], p_levels[-1])
    }
    return ExperimentResult(
        name="figure11",
        title="Figure 11: Latency Hiding with Parcels",
        paper_reference="Fig. 11, §4.3",
        tables={"work_ratio": result.to_rows()},
        plots=plots,
        summary=[
            f"parallelism panels: {p_levels} "
            "(paper: 'six major experiments')",
            f"max ratio {result.max_ratio():.1f}x "
            "(paper: 'sometimes exceeding an order of magnitude')",
            f"min ratio {result.min_ratio():.2f} "
            "(paper: 'performance advantage is small or in fact "
            "reversed' at low parallelism / short latency)",
        ],
        checks=checks,
    )
