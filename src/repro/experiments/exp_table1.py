"""Experiment ``table1``: reproduce paper Table 1 and its derived anchors."""

from __future__ import annotations

from ..core.hwlw import (
    hwp_cycles_per_op,
    lwp_cycles_per_op,
    nb_parameter,
)
from ..core.params import Table1Params
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="table1",
    title="Table 1: Parametric Assumptions and Metrics",
    paper_reference="Table 1, §3.1",
    description=(
        "Transcribes the paper's parameter table and reports the derived "
        "per-op costs and the break-even node count NB."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    params = Table1Params()
    rows = [
        {"parameter": sym, "description": desc, "value": val}
        for sym, desc, val in Table1Params.paper_rows()
    ]
    derived = [
        {
            "quantity": "HWP cycles per operation",
            "formula": "1 + mix*(TCH-1+Pmiss*TMH)",
            "value": hwp_cycles_per_op(params),
        },
        {
            "quantity": "LWP cycles per operation",
            "formula": "TLcycle + mix*(TML-TLcycle)",
            "value": lwp_cycles_per_op(params),
        },
        {
            "quantity": "HWP cycles/op at no-reuse (control)",
            "formula": "1 + mix*(TCH-1+1.0*TMH)",
            "value": hwp_cycles_per_op(params, miss_rate=1.0),
        },
        {
            "quantity": "NB (break-even node count)",
            "formula": "LWP cpo / HWP cpo",
            "value": nb_parameter(params),
        },
    ]
    checks = {
        "HWP costs 4.0 cycles/op": abs(hwp_cycles_per_op(params) - 4.0)
        < 1e-12,
        "LWP costs 12.5 cycles/op": abs(lwp_cycles_per_op(params) - 12.5)
        < 1e-12,
        "NB equals 3.125": abs(nb_parameter(params) - 3.125) < 1e-12,
    }
    return ExperimentResult(
        name="table1",
        title="Table 1: Parametric Assumptions and Metrics",
        paper_reference="Table 1, §3.1",
        tables={"table1": rows, "derived_anchors": derived},
        plots={},
        summary=[
            "Parameter set transcribed exactly from the paper.",
            f"Derived break-even node count NB = {nb_parameter(params)}.",
        ],
        checks=checks,
    )
