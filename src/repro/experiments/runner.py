"""Experiment execution, report rendering, artifact export."""

from __future__ import annotations

import pathlib
import time
import typing as _t

from ..viz import format_table, write_csv
from .registry import (
    ExperimentConfig,
    ExperimentResult,
    all_experiments,
    get_experiment,
)

__all__ = ["run_experiment", "run_all", "render_report", "save_artifacts"]


def render_report(result: ExperimentResult) -> str:
    """Human-readable report: summary, checks, tables, plots."""
    lines: _t.List[str] = []
    lines.append("=" * 72)
    lines.append(f"{result.title}   [{result.paper_reference}]")
    lines.append("=" * 72)
    for item in result.summary:
        lines.append(f"  * {item}")
    if result.checks:
        lines.append("")
        lines.append("  shape checks:")
        for name, ok in result.checks.items():
            lines.append(f"    [{'PASS' if ok else 'FAIL'}] {name}")
    for table_name, rows in result.tables.items():
        lines.append("")
        lines.append(f"  -- {table_name} --")
        lines.append(format_table(rows, indent="  "))
    for plot_name, plot in result.plots.items():
        lines.append("")
        lines.append(f"  -- {plot_name} --")
        lines.append(plot)
    lines.append("")
    return "\n".join(lines)


def save_artifacts(
    result: ExperimentResult, out_dir: _t.Union[str, pathlib.Path]
) -> _t.List[pathlib.Path]:
    """Write each table as CSV and the rendered report as markdown."""
    out = pathlib.Path(out_dir) / result.name
    out.mkdir(parents=True, exist_ok=True)
    written: _t.List[pathlib.Path] = []
    for table_name, rows in result.tables.items():
        written.append(write_csv(out / f"{table_name}.csv", rows))
    report = out / "report.txt"
    report.write_text(render_report(result))
    written.append(report)
    return written


def run_experiment(
    name: str,
    config: _t.Optional[ExperimentConfig] = None,
    echo: _t.Optional[_t.Callable[[str], None]] = None,
) -> ExperimentResult:
    """Run one experiment; optionally echo the report and save artifacts."""
    config = config or ExperimentConfig()
    experiment = get_experiment(name)
    start = time.perf_counter()
    result = experiment.run(config)
    elapsed = time.perf_counter() - start
    result.summary.append(f"wall-clock: {elapsed:.2f}s")
    if config.out_dir is not None:
        save_artifacts(result, config.out_dir)
    if echo is not None:
        echo(render_report(result))
    return result


def run_all(
    config: _t.Optional[ExperimentConfig] = None,
    echo: _t.Optional[_t.Callable[[str], None]] = None,
) -> _t.List[ExperimentResult]:
    """Run every registered experiment in registration order."""
    return [
        run_experiment(e.name, config, echo) for e in all_experiments()
    ]
