"""Experiment ``figure7``: the analytic normalized-runtime surface."""

from __future__ import annotations

import numpy as np

from ..core.hwlw import (
    figure7_normalized_time_sweep,
    nb_parameter,
    time_relative,
)
from ..core.params import Table1Params
from ..viz import grid_plot
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="figure7",
    title="Figure 7: Effect of PIM on Execution Time (Normalized)",
    paper_reference="Fig. 7, §3.1.2",
    description=(
        "The closed-form Time_relative model, exposing the third "
        "orthogonal parameter NB: all %WL curves coincide at N = NB."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    params = Table1Params()
    nb = nb_parameter(params)
    nodes = (1.0, 2.0, nb, 4.0, 8.0, 16.0, 32.0, 64.0)
    fractions = tuple(round(0.1 * i, 1) for i in range(11))
    grid = figure7_normalized_time_sweep(
        params, node_counts=nodes, lwp_fractions=fractions
    )
    at_nb = np.asarray(
        time_relative(np.asarray(fractions), nb, params)
    )
    checks = {
        "all curves coincide at N = NB (Time_relative == 1)": bool(
            np.allclose(at_nb, 1.0, atol=1e-12)
        ),
        "PIM always wins beyond NB (f>0, N>NB)": bool(
            np.all(
                np.asarray(
                    time_relative(
                        np.asarray(fractions[1:])[:, None],
                        np.asarray([4.0, 8.0, 64.0])[None, :],
                        params,
                    )
                )
                < 1.0
            )
        ),
        "PIM always loses below NB (f>0, N<NB)": bool(
            np.all(
                np.asarray(
                    time_relative(
                        np.asarray(fractions[1:])[:, None],
                        np.asarray([1.0, 2.0])[None, :],
                        params,
                    )
                )
                > 1.0
            )
        ),
    }
    plot = grid_plot(
        grid,
        row_format=lambda v: f"{v:.0%}",
        logx=True,
        title="Fig 7: Time_relative vs nodes (curves: %WL); NB=3.125",
        xlabel="number of PIM nodes (log)",
        ylabel="T_rel",
    )
    return ExperimentResult(
        name="figure7",
        title="Figure 7: Effect of PIM on Execution Time (Normalized)",
        paper_reference="Fig. 7, §3.1.2",
        tables={"time_relative": grid.to_rows()},
        plots={"time_relative": plot},
        summary=[
            f"coincidence point at N = NB = {nb} for every %WL "
            "(the paper's 'remarkable property')",
            "N > NB guarantees PIM superiority independent of %WL",
        ],
        checks=checks,
    )
