"""Experiment ``validation``: queuing simulation vs closed-form accuracy."""

from __future__ import annotations

from ..core.hwlw import validate_against_analytic
from ..core.params import Table1Params
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="validation",
    title="Validation: Simulation vs Analytical Model",
    paper_reference="§3.1.2 ('accuracy of between 5% and 18%')",
    description=(
        "Reruns the paper's analytic-vs-simulation comparison over a "
        "(%WL, N) grid in both deterministic and stochastic sampling "
        "modes."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    params = (
        Table1Params(total_work=4_000_000)
        if config.quick
        else Table1Params()
    )
    chunk = 20_000 if config.quick else 100_000
    deterministic = validate_against_analytic(
        params, stochastic=False, seed=config.seed, chunk_ops=chunk
    )
    stochastic = validate_against_analytic(
        params, stochastic=True, seed=config.seed, chunk_ops=chunk
    )
    checks = {
        "deterministic mode exact (<1e-9 relative)":
            deterministic.max_relative_error < 1e-9,
        "stochastic mode inside the paper's 18% envelope":
            stochastic.within_paper_envelope,
        "stochastic mode in fact under 5%":
            stochastic.max_relative_error < 0.05,
    }
    return ExperimentResult(
        name="validation",
        title="Validation: Simulation vs Analytical Model",
        paper_reference="§3.1.2",
        tables={
            "stochastic": stochastic.to_rows(),
            "deterministic": deterministic.to_rows(),
        },
        plots={},
        summary=[
            f"deterministic max error {deterministic.max_relative_error:.2e}",
            f"stochastic max error {stochastic.max_relative_error:.2%} "
            f"(mean {stochastic.mean_relative_error:.2%}); the paper "
            "reported 5-18% against its SES model",
            "our sim and closed form share statistical assumptions "
            "exactly, hence the tighter agreement",
        ],
        checks=checks,
    )
