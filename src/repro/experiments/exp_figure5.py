"""Experiment ``figure5``: simulated performance gain of PIM vs control."""

from __future__ import annotations

import numpy as np

from ..core.hwlw import HwlwSimConfig, figure5_gain_sweep
from ..core.params import Table1Params
from ..viz import grid_plot
from .registry import ExperimentConfig, ExperimentResult, register

_QUICK_NODES = (1, 4, 16, 64)
_QUICK_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
_FULL_NODES = (1, 2, 4, 8, 16, 32, 64)
_FULL_FRACTIONS = tuple(round(0.1 * i, 1) for i in range(11))


@register(
    name="figure5",
    title="Figure 5: Simulation of Performance Gain",
    paper_reference="Fig. 5, §3.1.1",
    description=(
        "Queuing-simulation sweep of the gain of the PIM-augmented system "
        "over the all-HWP control, vs %LWP workload, per node count."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    params = Table1Params()
    nodes = _QUICK_NODES if config.quick else _FULL_NODES
    fractions = _QUICK_FRACTIONS if config.quick else _FULL_FRACTIONS
    sim_config = HwlwSimConfig(
        stochastic=True,
        seed=config.seed,
        chunk_ops=1_000_000 if config.quick else 100_000,
    )
    grid = figure5_gain_sweep(
        params,
        node_counts=nodes,
        lwp_fractions=fractions,
        config=sim_config,
        use_simulation=True,
    )
    max_gain = float(grid.values.max())
    gain_small_f = float(
        grid.values[-1, min(1, grid.values.shape[1] - 1)]
    )  # largest N, smallest non-zero fraction
    checks = {
        "extreme corner exceeds 100x ('factor of 100X gain')":
            max_gain > 100.0,
        "small LWP fraction already helps (gain > 1.3 at largest N)":
            gain_small_f > 1.3,
        "gain grows monotonically with node count (f>0)": bool(
            np.all(np.diff(grid.values[:, 1:], axis=0) > -1e-9)
        ),
        # control and test use independent RNG streams, so the f=0 gain
        # carries a little binomial sampling noise around 1.0
        "gain is ~1.0 with no LWP work": bool(
            np.allclose(grid.values[:, 0], 1.0, rtol=2e-3)
        ),
    }
    plot = grid_plot(
        grid,
        row_format=lambda v: f"{int(v)}",
        transpose=False,
        logy=True,
        title="Fig 5: performance gain vs %WL (curves: N nodes)",
        xlabel="fraction of low-locality (LWP) work",
        ylabel="gain",
    )
    return ExperimentResult(
        name="figure5",
        title="Figure 5: Simulation of Performance Gain",
        paper_reference="Fig. 5, §3.1.1",
        tables={"gain": grid.to_rows()},
        plots={"gain_vs_fraction": plot},
        summary=[
            f"max simulated gain {max_gain:.1f}x at %WL=100, N={nodes[-1]} "
            "(paper: 'a factor of 100X gain is observed')",
            "gain at 20% LWP work already "
            f"{float(grid.values[-1, list(fractions).index(0.2) if 0.2 in fractions else 1]):.2f}x "
            "(paper: 'may double the performance')",
        ],
        checks=checks,
    )
