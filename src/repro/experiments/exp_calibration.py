"""Experiment ``calibration``: derive the studies' parameters from kernels.

The paper assumes its workload parameters (Table 1's ``Pmiss``/``mix``,
§4's remote fractions) and notes calibrating them for specific designs is
hard.  This experiment derives them from the model kernel suite — trace-
driven cache simulation for miss rates, reuse-distance analysis for the
HWP/LWP split — then feeds the calibrated parameters back into the
closed-form model to show where a data-intensive workload mix actually
lands in the design space.
"""

from __future__ import annotations

from ..core.hwlw import nb_parameter, performance_gain, time_relative
from ..workloads import calibrate, standard_kernels
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="calibration",
    title="Calibration: Workload-Derived Study Parameters",
    paper_reference="§2.3, §5.1 (machine/application-dependent parameters)",
    description=(
        "Measures temporal locality and cache behavior of five kernel "
        "archetypes, classifies them onto HWP/LWP, and derives %WL, "
        "Pmiss, mix and remote fraction — the values Table 1 assumes."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    accesses = 4_000 if config.quick else 20_000
    result = calibrate(standard_kernels(accesses=accesses, seed=config.seed))

    table1 = result.table1
    nb = nb_parameter(table1)
    gain64 = float(
        performance_gain(result.lwp_fraction, 64, table1)
    )
    trel8 = float(time_relative(result.lwp_fraction, 8, table1))

    classification_ok = all(
        k.locality == k.kernel.expected_locality for k in result.kernels
    )
    checks = {
        "kernels classify onto the expected HWP/LWP sides":
            classification_ok,
        "high-locality side cache-friendly (Pmiss < 0.2)":
            result.hwp_miss_rate < 0.2,
        "no-reuse side cache-hostile (miss rate > 0.6)":
            result.control_miss_rate > 0.6,
        "derived mix within 2x of Table 1's 0.30":
            0.15 <= result.ls_mix <= 0.6,
        "derived point still shows PIM wins beyond NB": trel8 < 1.0,
    }
    derived_rows = [
        {"parameter": "%WL (low-locality share)",
         "derived": result.lwp_fraction, "paper_assumed": "swept 0..1"},
        {"parameter": "Pmiss (high-locality side)",
         "derived": result.hwp_miss_rate, "paper_assumed": 0.1},
        {"parameter": "control miss rate (no-reuse side)",
         "derived": result.control_miss_rate, "paper_assumed": 1.0},
        {"parameter": "mix l/s",
         "derived": result.ls_mix, "paper_assumed": 0.30},
        {"parameter": "remote fraction (distributed)",
         "derived": result.remote_fraction, "paper_assumed": "swept"},
        {"parameter": "NB at calibrated parameters",
         "derived": nb, "paper_assumed": 3.125},
        {"parameter": "gain at derived %WL, N=64",
         "derived": gain64, "paper_assumed": "(figure 5 family)"},
    ]
    return ExperimentResult(
        name="calibration",
        title="Calibration: Workload-Derived Study Parameters",
        paper_reference="§2.3, §5.1",
        tables={
            "kernels": result.to_rows(),
            "derived_parameters": derived_rows,
        },
        plots={},
        summary=[
            f"derived %WL = {result.lwp_fraction:.2f}, "
            f"Pmiss = {result.hwp_miss_rate:.3f}, "
            f"mix = {result.ls_mix:.2f}, r = {result.remote_fraction:.2f}",
            f"calibrated NB = {nb:.2f} "
            "(Table 1 assumptions gave 3.125)",
            f"at the derived operating point, N=64 yields "
            f"{gain64:.1f}x over the all-host control",
        ],
        checks=checks,
    )
