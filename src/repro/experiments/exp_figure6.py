"""Experiment ``figure6``: unnormalized response time vs node count."""

from __future__ import annotations

import numpy as np

from ..core.hwlw import HwlwSimConfig, figure6_response_time_sweep
from ..core.params import Table1Params
from ..viz import grid_plot
from .registry import ExperimentConfig, ExperimentResult, register

_QUICK_NODES = (1, 2, 8, 64)
_QUICK_FRACTIONS = (0.0, 0.3, 0.6, 1.0)
_FULL_NODES = (1, 2, 4, 8, 16, 32, 64)
_FULL_FRACTIONS = tuple(round(0.1 * i, 1) for i in range(11))


@register(
    name="figure6",
    title="Figure 6: Effect of PIM on Execution Time (Unnormalized)",
    paper_reference="Fig. 6, §3.1.2",
    description=(
        "Simulated single-thread/node response time versus the number of "
        "smart-memory nodes, one curve per %LWT workload."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    params = Table1Params()
    nodes = _QUICK_NODES if config.quick else _FULL_NODES
    fractions = _QUICK_FRACTIONS if config.quick else _FULL_FRACTIONS
    sim_config = HwlwSimConfig(
        stochastic=True,
        seed=config.seed,
        chunk_ops=1_000_000 if config.quick else 100_000,
    )
    grid = figure6_response_time_sweep(
        params,
        node_counts=nodes,
        lwp_fractions=fractions,
        config=sim_config,
        use_simulation=True,
    )
    flat0 = grid.row(0.0)
    n1_100 = float(grid.values[-1, 0])
    checks = {
        "0% LWT curve flat at ~4e8 ns": bool(
            np.allclose(flat0, 4.0e8, rtol=5e-3)
        ),
        "100% LWT at N=1 is ~1.25e9 ns": abs(n1_100 - 1.25e9) / 1.25e9
        < 5e-3,
        "response time decreases with N for f>0": bool(
            np.all(np.diff(grid.values[1:], axis=1) < 0)
        ),
    }
    plot = grid_plot(
        grid,
        row_format=lambda v: f"{v:.0%}",
        logy=False,
        logx=True,
        title="Fig 6: response time (ns) vs nodes (curves: %LWT)",
        xlabel="number of smart memory nodes",
        ylabel="resp ns",
    )
    return ExperimentResult(
        name="figure6",
        title="Figure 6: Effect of PIM on Execution Time (Unnormalized)",
        paper_reference="Fig. 6, §3.1.2",
        tables={"response_time": grid.to_rows()},
        plots={"response_time": plot},
        summary=[
            f"0% LWT flat line at {flat0[0]:.3e} ns (paper chart: 4e8)",
            f"100% LWT, N=1 point {n1_100:.3e} ns (paper chart: 1.25e9)",
        ],
        checks=checks,
    )
