"""Experiment ``nn``: transformer-layer kernels on the PIM machine.

The paper's question — when does moving compute into the memory win —
is only answered at scale by application workloads, and related
large-scale benchmarking (see PAPERS.md) shows the host-vs-PIM
crossover *flips between kernel families*.  This experiment runs the
:mod:`repro.nn` transformer kernel library through the executable PIM
machine and closes four loops:

* **fp16-faithful execution** — every kernel (GEMM, softmax,
  LayerNorm, attention layer, FFN) runs under ``dtype="fp16"`` and
  must match its IEEE-binary16 NumPy reference *bit-exactly*;
* **precision** — the same kernels under ``dtype="fp64"`` quantify the
  binary16 rounding error (it must be present, and bounded);
* **bank-group granularity** — the half-bank execution mode must
  produce bit-identical results while costing measurably more all-bank
  column accesses (the modeled timing difference);
* **workload traces** — a generated transformer-layer program trace
  (fixed-cadence and Poisson arrivals) must replay with bit-identical
  statistics through the event engine and the fast path;
* **energy crossover** — command-level
  :mod:`repro.telemetry.energy` accounting of every kernel and its
  host-only twin must flip host-vs-PIM *energy* advantage exactly
  where the *time* advantage flips (the kernel family decides both
  axes), cross-validating the coefficients against the analytic
  :mod:`repro.arch.energy` argument at application scale.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..memsys import MemorySystem, MemSysConfig
from ..nn import (
    NN_KERNEL_NAMES,
    NnKernel,
    TransformerLayerSpec,
    build_nn_kernel,
    run_nn_kernel,
    transformer_layer_program,
)
from ..telemetry import ReplayTelemetry, build_energy
from .registry import ExperimentConfig, ExperimentResult, register

#: Per-kernel shape arguments: (quick, full).
_SHAPES: _t.Dict[str, _t.Tuple[dict, dict]] = {
    "gemm": (dict(m=128, k=8, n=8), dict(m=256, k=32, n=32)),
    "softmax": (dict(m=128, c=8), dict(m=256, c=32)),
    "layernorm": (dict(m=128, c=8), dict(m=256, c=32)),
    "attention": (
        dict(seq_len=128, d_head=4, n_heads=2),
        dict(seq_len=128, d_head=16, n_heads=2),
    ),
    "ffn": (
        dict(seq_len=128, d_model=8, d_ff=16),
        dict(seq_len=128, d_model=16, d_ff=64),
    ),
}


def _shape(name: str, quick: bool) -> dict:
    quick_shape, full_shape = _SHAPES[name]
    return dict(quick_shape if quick else full_shape)


def _functional_output(kernel: NnKernel) -> np.ndarray:
    """Run a kernel functionally (no replay) and return its output."""
    machine = kernel.machine()
    kernel.setup(machine)
    kernel.execute(machine)
    assert kernel.check(machine)
    return kernel.output(machine)


@register(
    name="nn",
    title="Transformer Kernels: fp16 PIM Execution at Layer Scale",
    paper_reference="§2.1-2.2 at application scale",
    description=(
        "Runs the repro.nn transformer kernel library (tiled GEMM, "
        "softmax, LayerNorm, attention, FFN) on the per-bank PIM "
        "machine under IEEE-binary16 arithmetic with bit-exact NumPy "
        "references, quantifies fp16-vs-fp64 rounding error and the "
        "bank-group timing difference, and replays a generated "
        "transformer-layer trace identically through both memory-"
        "system engines."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    sys_config = MemSysConfig()

    # ------------------------------------------------------------------
    # 1. host vs PIM per kernel, fp16, bit-exact
    # ------------------------------------------------------------------
    telemetries = {
        name: (ReplayTelemetry(), ReplayTelemetry())
        for name in NN_KERNEL_NAMES
    }
    comparisons = {
        name: run_nn_kernel(
            build_nn_kernel(
                name,
                config=sys_config,
                dtype="fp16",
                seed=config.seed,
                **_shape(name, config.quick),
            ),
            telemetry=telemetries[name][0],
            host_telemetry=telemetries[name][1],
        )
        for name in NN_KERNEL_NAMES
    }
    # the GEMV-shaped GEMM (one output column): the regime where the
    # scalar broadcasts amortize over every row in the banks — the
    # kernel family that favors PIM, per the large-scale benchmarking
    # papers whose crossover conclusions flip between families
    gemv_telemetry = (ReplayTelemetry(), ReplayTelemetry())
    gemv_shaped = run_nn_kernel(
        build_nn_kernel(
            "gemm",
            config=sys_config,
            dtype="fp16",
            seed=config.seed,
            m=128 if config.quick else 256,
            k=32 if config.quick else 64,
            n=1,
        ),
        telemetry=gemv_telemetry[0],
        host_telemetry=gemv_telemetry[1],
    )
    kernel_rows = [c.row() for c in comparisons.values()]
    gemv_row = gemv_shaped.row()
    gemv_row["kernel"] = "gemm (gemv-shaped)"
    kernel_rows.append(gemv_row)
    all_exact = (
        all(c.correct for c in comparisons.values())
        and gemv_shaped.correct
    )
    speedups = [c.speedup for c in comparisons.values()]
    speedups.append(gemv_shaped.speedup)

    # ------------------------------------------------------------------
    # 2. fp16 vs fp64 rounding error
    # ------------------------------------------------------------------
    precision_rows = []
    errors_present = True
    errors_bounded = True
    for name, comparison in comparisons.items():
        f64 = _functional_output(
            build_nn_kernel(
                name,
                config=sys_config,
                dtype="fp64",
                seed=config.seed,
                **_shape(name, config.quick),
            )
        )
        f16 = comparison.output.astype(np.float64)
        err = np.abs(f16 - f64)
        scale = max(float(np.abs(f64).max()), 1e-12)
        max_rel = float(err.max()) / scale
        precision_rows.append(
            {
                "kernel": name,
                "max_abs_err": float(err.max()),
                "max_err_rel_to_peak": max_rel,
                "fp64_peak": float(np.abs(f64).max()),
            }
        )
        errors_present = errors_present and float(err.max()) > 0.0
        errors_bounded = errors_bounded and max_rel < 0.05

    # ------------------------------------------------------------------
    # 3. bank-group (half-bank) execution mode
    # ------------------------------------------------------------------
    group_rows = []
    group_exact = True
    group_slower = True
    for name in ("gemm", "ffn"):
        shape = _shape(name, config.quick)
        per_bank = comparisons[name]
        grouped = run_nn_kernel(
            build_nn_kernel(
                name,
                config=sys_config,
                dtype="fp16",
                bank_groups=True,
                seed=config.seed,
                **shape,
            )
        )
        group_exact = group_exact and grouped.correct and bool(
            np.array_equal(
                grouped.output, per_bank.output, equal_nan=True
            )
        )
        group_slower = group_slower and (
            grouped.pim.makespan_ns > per_bank.pim.makespan_ns
            and grouped.pim.n_pim > per_bank.pim.n_pim
        )
        group_rows.append(
            {
                "kernel": name,
                "per_bank_ns": per_bank.pim.makespan_ns,
                "bank_group_ns": grouped.pim.makespan_ns,
                "slowdown": (
                    grouped.pim.makespan_ns
                    / per_bank.pim.makespan_ns
                ),
                "per_bank_pim_cmds": per_bank.pim.n_pim,
                "bank_group_pim_cmds": grouped.pim.n_pim,
                "outputs_bit_equal": bool(
                    np.array_equal(
                        grouped.output,
                        per_bank.output,
                        equal_nan=True,
                    )
                ),
            }
        )

    # ------------------------------------------------------------------
    # 4. transformer-layer trace through both engines
    # ------------------------------------------------------------------
    spec = (
        TransformerLayerSpec(
            d_model=16, n_heads=2, seq_len=16, d_ff=32
        )
        if config.quick
        else TransformerLayerSpec(
            d_model=32, n_heads=2, seq_len=32, d_ff=64
        )
    )
    trace_rows = []
    engines_identical = True
    for mode in ("fixed", "poisson"):
        program = transformer_layer_program(
            spec,
            sys_config,
            interarrival_ns=4.0,
            interarrival=mode,
            seed=config.seed,
        )
        requests = program.to_requests(sys_config)
        event = MemorySystem(sys_config).replay(
            program.to_requests(sys_config), engine="event"
        )
        fast = MemorySystem(sys_config).replay(
            requests, engine="fast"
        )
        identical = (
            event.makespan_ns == fast.makespan_ns
            and event.summary() == fast.summary()
        )
        engines_identical = engines_identical and identical
        trace_rows.append(
            {
                "arrivals": mode,
                "records": len(program),
                "requests": len(requests),
                "makespan_ns": event.makespan_ns,
                "row_hit_rate": event.row_hit_rate,
                "engines_bit_identical": identical,
            }
        )

    # ------------------------------------------------------------------
    # 5. energy crossover: energy advantage flips with time advantage
    # ------------------------------------------------------------------
    energy_rows = []
    energy_tracks_time = True
    named = [
        (name, comparisons[name], telemetries[name])
        for name in NN_KERNEL_NAMES
    ]
    named.append(("gemm (gemv-shaped)", gemv_shaped, gemv_telemetry))
    for label, comparison, (pim_t, host_t) in named:
        pim_energy = build_energy(pim_t)
        host_energy = build_energy(host_t)
        ratio = host_energy["total_pj"] / pim_energy["total_pj"]
        energy_tracks_time = energy_tracks_time and (
            (ratio > 1.0) == (comparison.speedup > 1.0)
        )
        energy_rows.append(
            {
                "kernel": label,
                "time_speedup": comparison.speedup,
                "energy_ratio": ratio,
                "pim_pj_per_bit": pim_energy["pj_per_bit"],
                "host_pj_per_bit": host_energy["pj_per_bit"],
                "pim_mean_power_w": pim_energy["mean_power_w"],
            }
        )

    checks = {
        "every fp16 kernel matches its binary16 reference bit-"
        "exactly": all_exact,
        "binary16 rounding is visible in every kernel "
        "(fp16 != fp64)": errors_present,
        "binary16 error stays below 5% of the output peak":
            errors_bounded,
        "bank-group mode is bit-identical but measurably slower":
            group_exact and group_slower,
        "host-vs-PIM crossover flips between kernel families": (
            any(s > 1.0 for s in speedups)
            and any(s < 1.0 for s in speedups)
        ),
        "transformer trace replays identically through both "
        "engines": engines_identical,
        "the energy crossover flips with the time crossover on "
        "every kernel": energy_tracks_time,
    }
    contenders = list(comparisons.values()) + [gemv_shaped]
    best = max(contenders, key=lambda c: c.speedup)
    worst = min(contenders, key=lambda c: c.speedup)
    return ExperimentResult(
        name="nn",
        title="Transformer Kernels: fp16 PIM Execution at Layer Scale",
        paper_reference="§2.1-2.2 at application scale",
        tables={
            "kernel_comparison": kernel_rows,
            "fp16_precision": precision_rows,
            "bank_group": group_rows,
            "transformer_trace": trace_rows,
            "energy_crossover": energy_rows,
        },
        plots={},
        summary=[
            f"{len(comparisons)} transformer kernels executed "
            "in-bank under IEEE binary16, "
            + ("all bit-exact" if all_exact else "WITH MISMATCHES"),
            f"crossover: {best.kernel} favors PIM "
            f"({best.speedup:.2f}x) while {worst.kernel} favors the "
            f"host ({worst.speedup:.2f}x) — kernel family decides",
            "bank-group mode: same results, "
            f"{group_rows[0]['slowdown']:.2f}x the GEMM makespan "
            "(half the units need twice the column accesses)",
            f"transformer trace ({trace_rows[0]['records']} records) "
            "replays bit-identically through event and fast engines",
            "energy crossover tracks the time crossover: "
            f"gemv-shaped GEMM saves "
            f"{energy_rows[-1]['energy_ratio']:.2f}x energy in-bank",
        ],
        checks=checks,
    )
