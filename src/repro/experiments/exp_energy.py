"""Experiment ``extension-energy``: the partitioning tradeoff in joules.

The paper's §2.1 background cites IRAM's finding that PIM "could also
have much lower energy consumption than conventional organizations".
This extension reruns the §3 partitioning model with per-event energy
accounting: the control run pays off-chip DRAM energy on the no-reuse
fraction's misses, while the PIM system pays on-chip row-buffer energy.
"""

from __future__ import annotations

import numpy as np

from ..arch.energy import (
    EnergyParams,
    control_energy_nj,
    energy_delay_ratio,
    energy_ratio,
    pim_energy_nj,
)
from ..core.params import Table1Params
from .registry import ExperimentConfig, ExperimentResult, register


@register(
    name="extension-energy",
    title="Extension: Energy of Host-Only vs PIM-Augmented Execution",
    paper_reference="§2.1 background (IRAM energy claim [12])",
    description=(
        "Per-event energy model over the %WL axis: control (all work on "
        "the host, off-chip misses) vs PIM-augmented (no-reuse work on "
        "LWPs beside their banks)."
    ),
)
def run(config: ExperimentConfig) -> ExperimentResult:
    params = Table1Params()
    energy = EnergyParams()
    fractions = np.round(np.linspace(0.0, 1.0, 11), 2)
    rows = []
    for f in fractions:
        rows.append(
            {
                "lwp_fraction": float(f),
                "control_joules": float(control_energy_nj(f, params, energy))
                * 1e-9,
                "pim_joules": float(pim_energy_nj(f, params, energy))
                * 1e-9,
                "energy_ratio": float(energy_ratio(f, params, energy)),
                "edp_ratio_N8": float(
                    energy_delay_ratio(f, 8, params, energy)
                ),
                "edp_ratio_N64": float(
                    energy_delay_ratio(f, 64, params, energy)
                ),
            }
        )
    ratios = np.array([r["energy_ratio"] for r in rows])
    checks = {
        "no offload, no difference": abs(ratios[0] - 1.0) < 1e-12,
        "energy savings grow with the data-intensive fraction": bool(
            np.all(np.diff(ratios) > 0)
        ),
        "full offload saves well over 2x energy": ratios[-1] > 2.0,
        "EDP gains compound beyond either axis alone": rows[-1][
            "edp_ratio_N64"
        ]
        > rows[-1]["energy_ratio"],
    }
    return ExperimentResult(
        name="extension-energy",
        title="Extension: Energy of Host-Only vs PIM-Augmented Execution",
        paper_reference="§2.1 background",
        tables={"energy": rows},
        plots={},
        summary=[
            f"full offload saves {ratios[-1]:.1f}x energy "
            "(control pays off-chip DRAM energy on no-reuse misses)",
            f"energy-delay product ratio at %WL=100, N=64: "
            f"{rows[-1]['edp_ratio_N64']:.0f}x — performance and energy "
            "gains compound, the IRAM argument in this paper's setting",
            "coefficients are relative and parametric; the checks hold "
            "for any ordering with cheap PIM ops and expensive off-chip "
            "access",
        ],
        checks=checks,
    )
