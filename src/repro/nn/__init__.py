"""repro.nn — transformer-layer workloads on the PIM machine.

PR 3 made the memory system an *executable* PIM machine; PR 5 makes it
run model layers.  The package supplies the three pieces the paper's
"when does in-memory compute win" question needs at application scale:

* :mod:`~repro.nn.kernels` — a kernel library built from the pimexec
  primitives: tiled GEMM (from the GEMV recipe), row-wise softmax and
  LayerNorm (reductions and elementwise passes split between PIM and
  host, as HBM-PIMulator's transformer traces do), and composed
  ``attention``/``ffn`` layers that chain through bank state.  Every
  kernel carries a *dtype-exact* NumPy reference — ``"fp16"`` kernels
  are checked bit-for-bit against an IEEE binary16 reference — and a
  host-only twin trace for the host-vs-PIM timing comparison;
* :mod:`~repro.nn.models` — a workload generator emitting timestamped
  host+PIM traces for a parameterized transformer layer (``d_model``,
  ``n_heads``, ``seq_len``, ``d_ff``) in the HBM-PIMulator program
  dialect of :mod:`repro.pimexec.program`, with fixed-cadence or
  seeded-Poisson arrivals, replayable identically through both
  :mod:`repro.memsys` engines.

Example
-------
>>> from repro.nn import build_nn_kernel, run_nn_kernel
>>> comparison = run_nn_kernel(build_nn_kernel("gemm", k=4, n=4))
>>> comparison.correct
True
"""

from .kernels import (
    NN_KERNEL_NAMES,
    Layout,
    NnComparison,
    NnKernel,
    attention_kernel,
    build_nn_kernel,
    ffn_kernel,
    gemm_kernel,
    layernorm_kernel,
    run_nn_kernel,
    softmax_kernel,
)
from .models import (
    TransformerLayerSpec,
    transformer_layer_program,
    transformer_layer_trace,
)

__all__ = [
    "NN_KERNEL_NAMES",
    "Layout",
    "NnComparison",
    "NnKernel",
    "attention_kernel",
    "build_nn_kernel",
    "ffn_kernel",
    "gemm_kernel",
    "layernorm_kernel",
    "run_nn_kernel",
    "softmax_kernel",
    "TransformerLayerSpec",
    "transformer_layer_program",
    "transformer_layer_trace",
]
