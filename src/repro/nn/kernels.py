"""Transformer-layer kernel library over the PIM machine.

Every builder returns an :class:`NnKernel`: closures that stage input
data into the banks, execute the kernel on a
:class:`~repro.pimexec.machine.PimExecMachine`, verify the machine's
bank/register state **bit-exactly** against a NumPy reference that
performs the same operations in the same order *and the same dtype*
(``"fp16"`` = IEEE binary16 per-operation rounding, ``"fp64"`` = the
idealized model), and produce the host-only twin request stream for
the host-vs-PIM timing comparison of ``exp_nn``.

Kernels
-------
``gemm``
    ``C = A @ B``, tiled from the GEMV primitive: ``A`` row-striped
    across the execution units (one output row per lane), ``B``
    broadcast scalar-by-scalar into the SRF, output columns tiled
    ``GRF_REGS`` at a time into the GRF_B accumulators and ``MOV``-ed
    back to the banks.
``softmax``
    Row-wise softmax, split between host and PIM the way
    HBM-PIMulator's transformer traces are: the host performs the max
    reduction and the exponentials (PIM has no ``exp``), PIM performs
    the sum reduction (``ADD`` loop into GRF_B0) and the normalization
    pass (``MUL`` by the broadcast per-row reciprocal page).
``layernorm``
    Row-wise LayerNorm: PIM reduces the sum (``ADD`` loop) and the sum
    of squares (``MAC BANK*BANK`` loop); the host turns them into
    ``-mean`` and ``1/std`` pages; PIM then applies the elementwise
    affine pass (``ADD``/``MUL``/``MAD`` with per-column gamma/beta in
    the SRF).
``attention``
    One attention layer per head: ``scores = (Q/sqrt(d)) @ K^T``
    (GEMM), row-wise softmax, ``P @ V`` (GEMM) — all chained through
    bank state: the softmax normalizes the score pages in place and
    the second GEMM reads them back as its ``A`` operand.
``ffn``
    The transformer feed-forward block: ``relu(X @ W1) @ W2`` with a
    host ReLU pass between the two GEMMs (exact in fp16 — a sign
    test).

Data layout
-----------
Matrices are *row-striped*: within tile ``t`` (``rows_per_tile =
units * lanes`` rows), unit ``u`` holds rows ``[t*R + u*lanes,
t*R + (u+1)*lanes)``; column ``k`` of tile ``t`` is one page per unit
at slot ``base + t*K + k``, and slot ``s`` lives at ``(row, col) =
(s // pages_per_row, s % pages_per_row)``.  Matrices whose row count
is not a multiple of ``rows_per_tile`` are zero-padded (references pad
identically, so checks stay bit-exact).  In bank-group mode the unit
count halves, so the same matrix needs twice the tiles — twice the
all-bank column accesses — which is exactly how the bank-group timing
difference surfaces in ``exp_nn``.

Host-only twins move every *logical* operand one page at a time over
the host interface (inputs read once, outputs written once —
intermediates of composed kernels stay host-side), spread round-robin
over all banks.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

import numpy as np

from ..memsys import MemRequest, MemSysConfig, MemorySystem, MemSysStats, Op
from ..pimexec import DTYPES, Operand, PimCommand, PimOpcode
from ..pimexec.commands import GRF_REGS
from ..pimexec.machine import LANE_BITS, PimExecMachine, page_encoder

__all__ = [
    "NN_KERNEL_NAMES",
    "Layout",
    "NnKernel",
    "NnComparison",
    "build_nn_kernel",
    "gemm_kernel",
    "softmax_kernel",
    "layernorm_kernel",
    "attention_kernel",
    "ffn_kernel",
    "run_nn_kernel",
]


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
class Layout:
    """Row-striped tile layout of one machine mode over one geometry."""

    def __init__(
        self, config: MemSysConfig, bank_groups: bool = False
    ) -> None:
        self.config = config
        self.bank_groups = bool(bank_groups)
        self.ports = 2 if bank_groups else 1
        if config.banks_per_channel % self.ports:
            raise ValueError(
                "bank-group mode needs an even banks_per_channel, got "
                f"{config.banks_per_channel}"
            )
        self.lanes = config.timing.page_bits // LANE_BITS
        self.n_channels = config.n_channels
        self.units_per_channel = config.banks_per_channel // self.ports
        self.units = self.n_channels * self.units_per_channel
        #: Rows one tile spans: one row per lane per unit.
        self.rows_per_tile = self.units * self.lanes
        self.ppr = config.timing.pages_per_row
        self.capacity_slots = config.rows_per_bank * self.ppr

    def unit_coords(self, u: int) -> _t.Tuple[int, int]:
        """``(channel, unit_index)`` of global unit ``u``."""
        return divmod(u, self.units_per_channel)

    def data_bank(self, u: int) -> int:
        """Flat bank carrying global unit ``u``'s data pages (port 0)."""
        return (u % self.units_per_channel) * self.ports

    def slot_addr(self, s: int) -> _t.Tuple[int, int]:
        return divmod(s, self.ppr)

    def tiles(self, matrix: np.ndarray) -> np.ndarray:
        """Row-striped pages ``(T, K, units, lanes)`` of ``matrix``.

        Rows are zero-padded to a whole number of tiles; the dtype is
        preserved (pad before casting to keep references bit-exact).
        """
        m, k = matrix.shape
        r = self.rows_per_tile
        t = -(-m // r)
        padded = np.zeros((t * r, k), dtype=matrix.dtype)
        padded[:m] = matrix
        return padded.reshape(
            t, self.units, self.lanes, k
        ).transpose(0, 3, 1, 2)

    def untile(self, pages: np.ndarray, m: int) -> np.ndarray:
        """Inverse of :meth:`tiles`: ``(T, K, units, lanes)`` -> (m, K)."""
        t, k = pages.shape[0], pages.shape[1]
        matrix = pages.transpose(0, 2, 3, 1).reshape(
            t * self.rows_per_tile, k
        )
        return matrix[:m]

    def check_capacity(self, slots: int) -> None:
        if slots > self.capacity_slots:
            raise ValueError(
                f"kernel needs {slots} slots per bank; geometry holds "
                f"{self.capacity_slots}"
            )


# ----------------------------------------------------------------------
# kernel containers
# ----------------------------------------------------------------------
@dataclasses.dataclass
class NnKernel:
    """A runnable transformer kernel with reference and host twin."""

    name: str
    description: str
    config: MemSysConfig
    dtype: str
    bank_groups: bool
    n_values: int
    flops: int
    setup: _t.Callable[[PimExecMachine], None]
    execute: _t.Callable[[PimExecMachine], None]
    check: _t.Callable[[PimExecMachine], bool]
    output: _t.Callable[[PimExecMachine], np.ndarray]
    #: The dtype-exact NumPy reference of :attr:`output`.
    expected: np.ndarray
    host_trace: _t.Callable[[], _t.List[MemRequest]]

    def machine(self, unit_mode: str = "vectorized") -> PimExecMachine:
        """A fresh machine in this kernel's dtype and execution mode.

        ``unit_mode`` selects the execution-unit tier (``"vectorized"``
        or ``"scalar"``); both tiers are bit-identical, so the choice
        only affects wall-clock speed.
        """
        return PimExecMachine(
            self.config,
            dtype=self.dtype,
            bank_groups=self.bank_groups,
            unit_mode=unit_mode,
        )


@dataclasses.dataclass
class NnComparison:
    """Host-only vs PIM-mode execution of one transformer kernel."""

    kernel: str
    dtype: str
    bank_groups: bool
    correct: bool
    output: np.ndarray
    expected: np.ndarray
    pim: _t.Any
    host: MemSysStats
    #: The executed machine (sequencer counters for telemetry).
    machine: _t.Optional[PimExecMachine] = None

    @property
    def speedup(self) -> float:
        """Host-only over PIM-mode execution time."""
        return self.host.makespan_ns / self.pim.makespan_ns

    def row(self) -> dict:
        return {
            "kernel": self.kernel,
            "dtype": self.dtype,
            "bank_groups": self.bank_groups,
            "host_ns": self.host.makespan_ns,
            "pim_ns": self.pim.makespan_ns,
            "speedup": self.speedup,
            "pim_requests": self.pim.n_requests,
            "host_requests": self.host.n_requests,
            "bit_exact": self.correct,
        }


def run_nn_kernel(
    kernel: NnKernel,
    engine: str = "auto",
    telemetry: _t.Optional[_t.Any] = None,
    host_telemetry: _t.Optional[_t.Any] = None,
) -> NnComparison:
    """Execute ``kernel`` in PIM mode and replay its host-only twin.

    Data staging is untimed (both systems start with operands
    resident); the timed PIM stream covers microcode downloads,
    broadcasts, all-bank steps, host passes over intermediates, and
    result readback.

    ``telemetry`` (a :class:`~repro.telemetry.ReplayTelemetry`)
    instruments the *PIM-mode* replay — the host-only twin runs
    uninstrumented unless ``host_telemetry`` asks for its own
    recording (for side-by-side energy accounting) — so the recorded
    latencies describe each kernel's actual command stream.
    """
    machine = kernel.machine()
    kernel.setup(machine)
    machine.reset_requests()
    kernel.execute(machine)
    pim = machine.replay(engine=engine, telemetry=telemetry)
    host = MemorySystem(kernel.config).replay(
        kernel.host_trace(), engine=engine, telemetry=host_telemetry
    )
    return NnComparison(
        kernel=kernel.name,
        dtype=kernel.dtype,
        bank_groups=kernel.bank_groups,
        correct=kernel.check(machine),
        output=kernel.output(machine),
        expected=kernel.expected,
        pim=pim,
        host=host,
        machine=machine,
    )


# ----------------------------------------------------------------------
# shared machine-side phases (each has a dtype-exact reference twin)
# ----------------------------------------------------------------------
def _stage_tiles(
    machine: PimExecMachine,
    layout: Layout,
    base: int,
    tiles: np.ndarray,
) -> None:
    """Write ``(T, K, units, lanes)`` pages into the banks."""
    t_count, k_count = tiles.shape[0], tiles.shape[1]
    for t in range(t_count):
        for k in range(k_count):
            row, col = layout.slot_addr(base + t * k_count + k)
            for u in range(layout.units):
                ch, _ = layout.unit_coords(u)
                machine.write_bank(
                    ch, layout.data_bank(u), row, col, tiles[t, k, u]
                )


def _read_tile_pages(
    machine: PimExecMachine,
    layout: Layout,
    base: int,
    t: int,
    k_count: int,
) -> np.ndarray:
    """Host READ of one tile's pages -> ``(k_count, units, lanes)``."""
    pages = np.empty(
        (k_count, layout.units, layout.lanes), dtype=machine.np_dtype
    )
    for k in range(k_count):
        row, col = layout.slot_addr(base + t * k_count + k)
        for u in range(layout.units):
            ch, _ = layout.unit_coords(u)
            pages[k, u] = machine.read_bank(
                ch, layout.data_bank(u), row, col
            )
    return pages


def _write_tile_pages(
    machine: PimExecMachine,
    layout: Layout,
    base: int,
    t: int,
    pages: np.ndarray,
) -> None:
    """Host WRITE of one tile's pages from ``(k_count, units, lanes)``."""
    k_count = pages.shape[0]
    for k in range(k_count):
        row, col = layout.slot_addr(base + t * k_count + k)
        for u in range(layout.units):
            ch, _ = layout.unit_coords(u)
            machine.write_bank(
                ch, layout.data_bank(u), row, col, pages[k, u]
            )


def _collect_pages(
    machine: PimExecMachine,
    layout: Layout,
    base: int,
    t_count: int,
    k_count: int,
) -> np.ndarray:
    """Functional (request-free) peek at ``(T, K, units, lanes)`` pages."""
    pages = np.empty(
        (t_count, k_count, layout.units, layout.lanes),
        dtype=machine.np_dtype,
    )
    for t in range(t_count):
        for k in range(k_count):
            row, col = layout.slot_addr(base + t * k_count + k)
            for u in range(layout.units):
                ch, index = layout.unit_coords(u)
                pages[t, k, u] = machine.unit(ch, index).load_page(
                    row, col
                )
    return pages


def _read_grfs(
    machine: PimExecMachine, layout: Layout, space: str, index: int
) -> np.ndarray:
    """AB readback of one GRF register from every unit -> (units, lanes)."""
    values = np.empty(
        (layout.units, layout.lanes), dtype=machine.np_dtype
    )
    for u in range(layout.units):
        ch, k = layout.unit_coords(u)
        values[u] = machine.read_grf(ch, k, space, index)
    return values


def _write_unit_pages(
    machine: PimExecMachine, layout: Layout, slot: int, pages: np.ndarray
) -> None:
    """Host WRITE of one per-unit page array ``(units, lanes)``."""
    row, col = layout.slot_addr(slot)
    for u in range(layout.units):
        ch, _ = layout.unit_coords(u)
        machine.write_bank(ch, layout.data_bank(u), row, col, pages[u])


def _reduce_kernel(
    accumulator: Operand, n_slots: int, square: bool = False
) -> _t.List[PimCommand]:
    """CRF microkernel: FILL-zero then ADD (or MAC x*x) over n slots."""
    if square:
        step = PimCommand(
            PimOpcode.MAC,
            dst=accumulator,
            src0=Operand.bank(),
            src1=Operand.bank(),
        )
    else:
        step = PimCommand(
            PimOpcode.ADD,
            dst=accumulator,
            src0=Operand.bank(),
            src1=accumulator,
        )
    return [
        PimCommand(PimOpcode.FILL, dst=accumulator, src0=Operand.bank()),
        step,
        PimCommand(PimOpcode.JUMP, target=1, count=n_slots - 1),
        PimCommand(PimOpcode.EXIT),
    ]


def _run_gemm(
    machine: PimExecMachine,
    layout: Layout,
    a_base: int,
    t_count: int,
    b: np.ndarray,
    result_base: int,
    zero_slot: int,
) -> None:
    """Emit the host+PIM stream for ``C_pages = A_tiles @ b``.

    ``b`` is host-resident ``(K, N)`` in the machine dtype; its values
    enter the banks as SRF scalar broadcasts, ``GRF_REGS`` output
    columns at a time, exactly like the reference
    :func:`_ref_gemm` accumulates them.
    """
    k_count, n = b.shape
    channels = range(machine.n_channels)
    zrow, zcol = layout.slot_addr(zero_slot)
    for t in range(t_count):
        for j0 in range(0, n, GRF_REGS):
            width = min(GRF_REGS, n - j0)
            for c in range(width):
                fill = PimCommand(
                    PimOpcode.FILL,
                    dst=Operand.grf_b(c),
                    src0=Operand.bank(),
                )
                for ch in channels:
                    machine.pim_step(ch, fill, zrow, zcol)
            for k in range(k_count):
                arow, acol = layout.slot_addr(a_base + t * k_count + k)
                for c in range(width):
                    for ch in channels:
                        machine.broadcast_scalar(
                            ch, c, float(b[k, j0 + c]), arow, acol
                        )
                for c in range(width):
                    mac = PimCommand(
                        PimOpcode.MAC,
                        dst=Operand.grf_b(c),
                        src0=Operand.bank(),
                        src1=Operand.srf(c),
                    )
                    for ch in channels:
                        machine.pim_step(ch, mac, arow, acol)
            for c in range(width):
                rrow, rcol = layout.slot_addr(
                    result_base + t * n + j0 + c
                )
                mov = PimCommand(
                    PimOpcode.MOV,
                    dst=Operand.bank(),
                    src0=Operand.grf_b(c),
                )
                for ch in channels:
                    machine.pim_step(ch, mov, rrow, rcol)


def _ref_gemm(
    a_tiles: np.ndarray, b: np.ndarray, np_dtype: np.dtype
) -> np.ndarray:
    """Reference of :func:`_run_gemm`: pages ``(T, N, units, lanes)``.

    Performs exactly the MAC's expression ``acc + page * scalar_lanes``
    in slot order, in ``np_dtype``.
    """
    t_count, k_count, units, lanes = a_tiles.shape
    n = b.shape[1]
    out = np.zeros((t_count, n, units, lanes), dtype=np_dtype)
    for t in range(t_count):
        for j in range(n):
            acc = np.zeros((units, lanes), dtype=np_dtype)
            for k in range(k_count):
                acc = acc + a_tiles[t, k] * np.full(
                    lanes, b[k, j], dtype=np_dtype
                )
            out[t, j] = acc
    return out


def _softmax_exp(pages: np.ndarray) -> np.ndarray:
    """Host pass of the softmax: ``exp(x - rowmax)`` in the input dtype.

    ``pages`` is ``(C, units, lanes)``; the max reduction is exact in
    any dtype, the subtraction and exponential round per element.
    """
    m = pages.max(axis=0)
    return np.exp(pages - m[None])


def _recip(values: np.ndarray) -> np.ndarray:
    """Elementwise reciprocal in the input dtype."""
    return np.ones_like(values) / values


def _run_softmax(
    machine: PimExecMachine,
    layout: Layout,
    x_base: int,
    t_count: int,
    c_count: int,
    zero_slot: int,
    scratch_base: int,
) -> None:
    """Row-wise softmax of the pages at ``x_base``, in place.

    Host: max + exp pass (READ/WRITE every page).  PIM: sum reduction
    (``ADD`` loop into GRF_B0) and normalization (``MUL`` by the
    reciprocal page FILLed into GRF_A0 from ``scratch_base + t``).
    """
    zero_addr = layout.slot_addr(zero_slot)
    for t in range(t_count):
        pages = _read_tile_pages(machine, layout, x_base, t, c_count)
        _write_tile_pages(
            machine, layout, x_base, t, _softmax_exp(pages)
        )
        machine.load_kernel(
            _reduce_kernel(Operand.grf_b(0), c_count)
        )
        walk = [zero_addr] + [
            layout.slot_addr(x_base + t * c_count + s)
            for s in range(c_count)
        ]
        machine.run_kernel(walk)
        sums = _read_grfs(machine, layout, "grf_b", 0)
        _write_unit_pages(
            machine, layout, scratch_base + t, _recip(sums)
        )
        machine.load_kernel(
            [
                PimCommand(
                    PimOpcode.FILL,
                    dst=Operand.grf_a(0),
                    src0=Operand.bank(),
                ),
                PimCommand(
                    PimOpcode.MUL,
                    dst=Operand.bank(),
                    src0=Operand.bank(),
                    src1=Operand.grf_a(0),
                ),
                PimCommand(PimOpcode.JUMP, target=1, count=c_count - 1),
                PimCommand(PimOpcode.EXIT),
            ]
        )
        machine.run_kernel(
            [layout.slot_addr(scratch_base + t)] + walk[1:]
        )


def _ref_softmax(x_pages: np.ndarray) -> np.ndarray:
    """Reference of :func:`_run_softmax` on ``(T, C, units, lanes)``."""
    out = np.empty_like(x_pages)
    for t in range(x_pages.shape[0]):
        e = _softmax_exp(x_pages[t])
        acc = np.zeros_like(e[0])
        for s in range(e.shape[0]):
            acc = e[s] + acc  # the ADD's operand order: page + GRF
        inv = _recip(acc)
        for s in range(e.shape[0]):
            out[t, s] = e[s] * inv  # the MUL's order: page * GRF
        # note: FILLing the accumulator from the zero slot reproduces
        # np.zeros_like exactly — unwritten pages read as zeros
    return out


def _run_layernorm(
    machine: PimExecMachine,
    layout: Layout,
    x_base: int,
    t_count: int,
    c_count: int,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
    zero_slot: int,
    scratch_base: int,
) -> None:
    """Row-wise LayerNorm of the pages at ``x_base``, in place.

    PIM reduces sum and sum-of-squares; the host computes ``-mean``
    and ``1/std`` pages (written to ``scratch_base + 2t`` and
    ``+ 2t + 1``); PIM applies ``(x - mean) * invstd * gamma + beta``
    with gamma/beta broadcast per column into SRF0/SRF1.
    """
    np_dtype = machine.np_dtype
    inv_c = np_dtype.type(1.0) / np_dtype.type(c_count)
    eps_d = np_dtype.type(eps)
    zero_addr = layout.slot_addr(zero_slot)
    channels = range(machine.n_channels)
    affine = [
        PimCommand(
            PimOpcode.FILL, dst=Operand.grf_b(0), src0=Operand.bank()
        ),
        PimCommand(
            PimOpcode.ADD,
            dst=Operand.grf_b(0),
            src0=Operand.grf_b(0),
            src1=Operand.grf_a(0),
        ),
        PimCommand(
            PimOpcode.MUL,
            dst=Operand.grf_b(0),
            src0=Operand.grf_b(0),
            src1=Operand.grf_a(1),
        ),
        # MAD's implicit third operand is SRF1 (HBM-PIM's SRF_M)
        PimCommand(
            PimOpcode.MAD,
            dst=Operand.grf_b(0),
            src0=Operand.grf_b(0),
            src1=Operand.srf(0),
        ),
        PimCommand(
            PimOpcode.MOV, dst=Operand.bank(), src0=Operand.grf_b(0)
        ),
    ]
    for t in range(t_count):
        walk = [zero_addr] + [
            layout.slot_addr(x_base + t * c_count + s)
            for s in range(c_count)
        ]
        machine.load_kernel(_reduce_kernel(Operand.grf_b(0), c_count))
        machine.run_kernel(walk)
        sums = _read_grfs(machine, layout, "grf_b", 0)
        machine.load_kernel(
            _reduce_kernel(Operand.grf_b(1), c_count, square=True)
        )
        machine.run_kernel(walk)
        sumsq = _read_grfs(machine, layout, "grf_b", 1)
        mean = sums * inv_c
        var = sumsq * inv_c - mean * mean
        invstd = _recip(np.sqrt(var + eps_d))
        _write_unit_pages(machine, layout, scratch_base + 2 * t, -mean)
        _write_unit_pages(
            machine, layout, scratch_base + 2 * t + 1, invstd
        )
        machine.load_kernel(
            [
                PimCommand(
                    PimOpcode.FILL,
                    dst=Operand.grf_a(0),
                    src0=Operand.bank(),
                ),
                PimCommand(
                    PimOpcode.FILL,
                    dst=Operand.grf_a(1),
                    src0=Operand.bank(),
                ),
                PimCommand(PimOpcode.EXIT),
            ]
        )
        machine.run_kernel(
            [
                layout.slot_addr(scratch_base + 2 * t),
                layout.slot_addr(scratch_base + 2 * t + 1),
            ]
        )
        for s in range(c_count):
            row, col = layout.slot_addr(x_base + t * c_count + s)
            for ch in channels:
                machine.broadcast_scalar(
                    ch, 0, float(gamma[s]), row, col
                )
            for ch in channels:
                machine.broadcast_scalar(
                    ch, 1, float(beta[s]), row, col
                )
            for command in affine:
                for ch in channels:
                    machine.pim_step(ch, command, row, col)


def _ref_layernorm(
    x_pages: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
    np_dtype: np.dtype,
) -> np.ndarray:
    """Reference of :func:`_run_layernorm` on ``(T, C, units, lanes)``."""
    t_count, c_count, units, lanes = x_pages.shape
    inv_c = np_dtype.type(1.0) / np_dtype.type(c_count)
    eps_d = np_dtype.type(eps)
    out = np.empty_like(x_pages)
    for t in range(t_count):
        acc = np.zeros((units, lanes), dtype=np_dtype)
        for s in range(c_count):
            acc = x_pages[t, s] + acc  # ADD: page + GRF
        sums = acc
        acc = np.zeros((units, lanes), dtype=np_dtype)
        for s in range(c_count):
            # MAC: GRF + page * page
            acc = acc + x_pages[t, s] * x_pages[t, s]
        mean = sums * inv_c
        var = acc * inv_c - mean * mean
        invstd = _recip(np.sqrt(var + eps_d))
        negmean = -mean
        for s in range(c_count):
            g = np.full(lanes, gamma[s], dtype=np_dtype)
            b = np.full(lanes, beta[s], dtype=np_dtype)
            t1 = x_pages[t, s] + negmean  # ADD: GRF + negmean page
            t2 = t1 * invstd  # MUL
            out[t, s] = t2 * g + b  # MAD: product, then addend
    return out


def _relu_pass(
    machine: PimExecMachine,
    layout: Layout,
    base: int,
    t_count: int,
    c_count: int,
) -> None:
    """Host ReLU over the pages at ``base`` (READ + WRITE per page)."""
    zero = machine.np_dtype.type(0.0)
    for t in range(t_count):
        pages = _read_tile_pages(machine, layout, base, t, c_count)
        _write_tile_pages(
            machine, layout, base, t, np.maximum(pages, zero)
        )


# ----------------------------------------------------------------------
# host-only twins
# ----------------------------------------------------------------------
def _pages_for(values: int, lanes: int) -> int:
    return -(-values // lanes)


def _host_twin(
    config: MemSysConfig,
    read_values: _t.Sequence[int],
    write_values: _t.Sequence[int],
) -> _t.List[MemRequest]:
    """Host-only request stream: operands one page at a time.

    Each entry of ``read_values``/``write_values`` is one operand's
    value count; its pages spread round-robin over all banks at
    sequential slots (streaming row locality, like the PR-3 twins).
    """
    lanes = config.timing.page_bits // LANE_BITS
    encode = page_encoder(config)
    ppr = config.timing.pages_per_row
    total_banks = config.n_channels * config.banks_per_channel
    requests: _t.List[MemRequest] = []
    slot_base = 0
    for op, operands in ((Op.READ, read_values), (Op.WRITE, write_values)):
        for values in operands:
            n_pages = _pages_for(values, lanes)
            for p in range(n_pages):
                bank = p % total_banks
                slot = slot_base + p // total_banks
                ch, flat = divmod(bank, config.banks_per_channel)
                row, col = divmod(slot, ppr)
                requests.append(
                    MemRequest(op, encode(ch, flat, row, col))
                )
            slot_base += -(-n_pages // total_banks)
    return requests


# ----------------------------------------------------------------------
# kernel builders
# ----------------------------------------------------------------------
def _cast(
    values: _t.Optional[np.ndarray],
    shape: _t.Tuple[int, ...],
    np_dtype: np.dtype,
    rng: np.random.Generator,
    scale: float = 0.5,
) -> np.ndarray:
    """Draw (or cast) an operand and round it to the kernel dtype."""
    if values is None:
        values = scale * rng.standard_normal(shape)
    values = np.asarray(values, dtype=np.float64)
    if values.shape != shape:
        raise ValueError(
            f"operand shape {values.shape} != expected {shape}"
        )
    return values.astype(np_dtype)


def _resolve(
    config: _t.Optional[MemSysConfig], dtype: str, bank_groups: bool
) -> _t.Tuple[MemSysConfig, np.dtype, Layout]:
    config = config or MemSysConfig()
    if dtype not in DTYPES:
        raise ValueError(
            f"unknown dtype {dtype!r}; available: {tuple(DTYPES)}"
        )
    return config, DTYPES[dtype], Layout(config, bank_groups)


def gemm_kernel(
    m: _t.Optional[int] = None,
    k: int = 8,
    n: int = 8,
    config: _t.Optional[MemSysConfig] = None,
    dtype: str = "fp16",
    bank_groups: bool = False,
    seed: int = 0,
    a: _t.Optional[np.ndarray] = None,
    b: _t.Optional[np.ndarray] = None,
) -> NnKernel:
    """``C = A @ B`` for ``A (m, k)``, ``B (k, n)``, tiled from GEMV."""
    config, np_dtype, layout = _resolve(config, dtype, bank_groups)
    if m is None:
        m = layout.rows_per_tile
    if m < 1 or k < 1 or n < 1:
        raise ValueError("m, k, and n must all be >= 1")
    rng = np.random.default_rng(seed)
    a_mat = _cast(a, (m, k), np_dtype, rng)
    b_mat = _cast(b, (k, n), np_dtype, rng)
    a_tiles = layout.tiles(a_mat)
    t_count = a_tiles.shape[0]
    a_base, result_base = 0, t_count * k
    zero_slot = result_base + t_count * n
    layout.check_capacity(zero_slot + 1)
    expected_pages = _ref_gemm(a_tiles, b_mat, np_dtype)
    expected = layout.untile(expected_pages, m)

    def setup(machine: PimExecMachine) -> None:
        _stage_tiles(machine, layout, a_base, a_tiles)

    def execute(machine: PimExecMachine) -> None:
        _run_gemm(
            machine, layout, a_base, t_count, b_mat, result_base,
            zero_slot,
        )
        for t in range(t_count):
            _read_tile_pages(machine, layout, result_base, t, n)

    def check(machine: PimExecMachine) -> bool:
        pages = _collect_pages(
            machine, layout, result_base, t_count, n
        )
        return bool(
            np.array_equal(pages, expected_pages, equal_nan=True)
        )

    def output(machine: PimExecMachine) -> np.ndarray:
        return layout.untile(
            _collect_pages(machine, layout, result_base, t_count, n), m
        )

    return NnKernel(
        name="gemm",
        description=f"C = A @ B for ({m}x{k}) @ ({k}x{n}), {dtype}",
        config=config,
        dtype=dtype,
        bank_groups=bank_groups,
        n_values=m * k + k * n,
        flops=2 * m * k * n,
        setup=setup,
        execute=execute,
        check=check,
        output=output,
        expected=expected,
        host_trace=lambda: _host_twin(
            config, [m * k, k * n], [m * n]
        ),
    )


def softmax_kernel(
    m: _t.Optional[int] = None,
    c: int = 16,
    config: _t.Optional[MemSysConfig] = None,
    dtype: str = "fp16",
    bank_groups: bool = False,
    seed: int = 0,
    x: _t.Optional[np.ndarray] = None,
) -> NnKernel:
    """Row-wise softmax of ``X (m, c)`` (host max/exp, PIM sum/scale)."""
    config, np_dtype, layout = _resolve(config, dtype, bank_groups)
    if m is None:
        m = layout.rows_per_tile
    if m < 1 or c < 1:
        raise ValueError("m and c must be >= 1")
    rng = np.random.default_rng(seed)
    x_mat = _cast(x, (m, c), np_dtype, rng, scale=1.0)
    x_tiles = layout.tiles(x_mat)
    t_count = x_tiles.shape[0]
    x_base = 0
    scratch_base = t_count * c
    zero_slot = scratch_base + t_count
    layout.check_capacity(zero_slot + 1)
    expected_pages = _ref_softmax(x_tiles)
    expected = layout.untile(expected_pages, m)

    def setup(machine: PimExecMachine) -> None:
        _stage_tiles(machine, layout, x_base, x_tiles)

    def execute(machine: PimExecMachine) -> None:
        _run_softmax(
            machine, layout, x_base, t_count, c, zero_slot,
            scratch_base,
        )
        for t in range(t_count):
            _read_tile_pages(machine, layout, x_base, t, c)

    def check(machine: PimExecMachine) -> bool:
        pages = _collect_pages(machine, layout, x_base, t_count, c)
        return bool(
            np.array_equal(pages, expected_pages, equal_nan=True)
        )

    def output(machine: PimExecMachine) -> np.ndarray:
        return layout.untile(
            _collect_pages(machine, layout, x_base, t_count, c), m
        )

    return NnKernel(
        name="softmax",
        description=f"row-wise softmax of ({m}x{c}), {dtype}",
        config=config,
        dtype=dtype,
        bank_groups=bank_groups,
        n_values=m * c,
        flops=4 * m * c,
        setup=setup,
        execute=execute,
        check=check,
        output=output,
        expected=expected,
        host_trace=lambda: _host_twin(config, [m * c], [m * c]),
    )


def layernorm_kernel(
    m: _t.Optional[int] = None,
    c: int = 16,
    config: _t.Optional[MemSysConfig] = None,
    dtype: str = "fp16",
    bank_groups: bool = False,
    seed: int = 0,
    x: _t.Optional[np.ndarray] = None,
    eps: float = 1e-3,
) -> NnKernel:
    """Row-wise LayerNorm of ``X (m, c)`` with learned gamma/beta."""
    config, np_dtype, layout = _resolve(config, dtype, bank_groups)
    if m is None:
        m = layout.rows_per_tile
    if m < 1 or c < 1:
        raise ValueError("m and c must be >= 1")
    rng = np.random.default_rng(seed)
    x_mat = _cast(x, (m, c), np_dtype, rng, scale=1.0)
    gamma = _cast(None, (c,), np_dtype, rng, scale=0.5)
    gamma = gamma + np_dtype.type(1.0)
    beta = _cast(None, (c,), np_dtype, rng, scale=0.25)
    x_tiles = layout.tiles(x_mat)
    t_count = x_tiles.shape[0]
    x_base = 0
    scratch_base = t_count * c
    zero_slot = scratch_base + 2 * t_count
    layout.check_capacity(zero_slot + 1)
    expected_pages = _ref_layernorm(x_tiles, gamma, beta, eps, np_dtype)
    expected = layout.untile(expected_pages, m)

    def setup(machine: PimExecMachine) -> None:
        _stage_tiles(machine, layout, x_base, x_tiles)

    def execute(machine: PimExecMachine) -> None:
        _run_layernorm(
            machine, layout, x_base, t_count, c, gamma, beta, eps,
            zero_slot, scratch_base,
        )
        for t in range(t_count):
            _read_tile_pages(machine, layout, x_base, t, c)

    def check(machine: PimExecMachine) -> bool:
        pages = _collect_pages(machine, layout, x_base, t_count, c)
        return bool(
            np.array_equal(pages, expected_pages, equal_nan=True)
        )

    def output(machine: PimExecMachine) -> np.ndarray:
        return layout.untile(
            _collect_pages(machine, layout, x_base, t_count, c), m
        )

    return NnKernel(
        name="layernorm",
        description=f"row-wise LayerNorm of ({m}x{c}), {dtype}",
        config=config,
        dtype=dtype,
        bank_groups=bank_groups,
        n_values=m * c + 2 * c,
        flops=8 * m * c,
        setup=setup,
        execute=execute,
        check=check,
        output=output,
        expected=expected,
        host_trace=lambda: _host_twin(
            config, [m * c, 2 * c], [m * c]
        ),
    )


def attention_kernel(
    seq_len: _t.Optional[int] = None,
    d_head: int = 4,
    n_heads: int = 2,
    config: _t.Optional[MemSysConfig] = None,
    dtype: str = "fp16",
    bank_groups: bool = False,
    seed: int = 0,
) -> NnKernel:
    """One attention layer: per head ``softmax(QK^T / sqrt(d)) @ V``.

    The three stages chain through bank state: the score pages the
    first GEMM ``MOV``\\ s back are normalized in place by the softmax
    and read back as the second GEMM's ``A`` operand.  ``1/sqrt(d)``
    is folded into ``Q`` at staging (one dtype multiply per element).
    """
    config, np_dtype, layout = _resolve(config, dtype, bank_groups)
    if seq_len is None:
        seq_len = layout.rows_per_tile
    if seq_len < 1 or d_head < 1 or n_heads < 1:
        raise ValueError("seq_len, d_head, and n_heads must be >= 1")
    rng = np.random.default_rng(seed)
    scale = np_dtype.type(1.0 / math.sqrt(d_head))
    q = _cast(None, (n_heads, seq_len, d_head), np_dtype, rng)
    k_mat = _cast(None, (n_heads, seq_len, d_head), np_dtype, rng)
    v = _cast(None, (n_heads, seq_len, d_head), np_dtype, rng)
    q_scaled = q * scale
    q_tiles = [layout.tiles(q_scaled[h]) for h in range(n_heads)]
    t_count = q_tiles[0].shape[0]
    # slot map: per head [q | scores | out | softmax scratch], then zero
    per_head = t_count * (2 * d_head + seq_len) + t_count
    bases = []
    cursor = 0
    for _ in range(n_heads):
        q_base = cursor
        scores_base = q_base + t_count * d_head
        out_base = scores_base + t_count * seq_len
        scratch_base = out_base + t_count * d_head
        bases.append((q_base, scores_base, out_base, scratch_base))
        cursor += per_head
    zero_slot = cursor
    layout.check_capacity(zero_slot + 1)

    expected_pages = []
    for h in range(n_heads):
        scores = _ref_gemm(q_tiles[h], k_mat[h].T, np_dtype)
        # _ref_gemm pages are (T, N, units, lanes): slot-major, the
        # same layout _ref_softmax and the next GEMM's tiles consume
        probs = _ref_softmax(scores)
        expected_pages.append(_ref_gemm(probs, v[h], np_dtype))
    expected = np.concatenate(
        [layout.untile(pages, seq_len) for pages in expected_pages],
        axis=1,
    )

    def setup(machine: PimExecMachine) -> None:
        for h in range(n_heads):
            _stage_tiles(machine, layout, bases[h][0], q_tiles[h])

    def execute(machine: PimExecMachine) -> None:
        for h in range(n_heads):
            q_base, scores_base, out_base, scratch_base = bases[h]
            _run_gemm(
                machine, layout, q_base, t_count, k_mat[h].T,
                scores_base, zero_slot,
            )
            _run_softmax(
                machine, layout, scores_base, t_count, seq_len,
                zero_slot, scratch_base,
            )
            _run_gemm(
                machine, layout, scores_base, t_count, v[h],
                out_base, zero_slot,
            )
            for t in range(t_count):
                _read_tile_pages(machine, layout, out_base, t, d_head)

    def check(machine: PimExecMachine) -> bool:
        return all(
            np.array_equal(
                _collect_pages(
                    machine, layout, bases[h][2], t_count, d_head
                ),
                expected_pages[h],
                equal_nan=True,
            )
            for h in range(n_heads)
        )

    def output(machine: PimExecMachine) -> np.ndarray:
        return np.concatenate(
            [
                layout.untile(
                    _collect_pages(
                        machine, layout, bases[h][2], t_count, d_head
                    ),
                    seq_len,
                )
                for h in range(n_heads)
            ],
            axis=1,
        )

    d_model = n_heads * d_head
    return NnKernel(
        name="attention",
        description=(
            f"attention layer: seq={seq_len} heads={n_heads} "
            f"d_head={d_head}, {dtype}"
        ),
        config=config,
        dtype=dtype,
        bank_groups=bank_groups,
        n_values=3 * n_heads * seq_len * d_head,
        flops=n_heads * (4 * seq_len * seq_len * d_head
                         + 4 * seq_len * seq_len),
        setup=setup,
        execute=execute,
        check=check,
        output=output,
        expected=expected,
        host_trace=lambda: _host_twin(
            config,
            [n_heads * seq_len * d_head] * 3,
            [seq_len * d_model],
        ),
    )


def ffn_kernel(
    seq_len: _t.Optional[int] = None,
    d_model: int = 8,
    d_ff: int = 16,
    config: _t.Optional[MemSysConfig] = None,
    dtype: str = "fp16",
    bank_groups: bool = False,
    seed: int = 0,
) -> NnKernel:
    """Feed-forward block ``relu(X @ W1) @ W2`` with a host ReLU pass."""
    config, np_dtype, layout = _resolve(config, dtype, bank_groups)
    if seq_len is None:
        seq_len = layout.rows_per_tile
    if seq_len < 1 or d_model < 1 or d_ff < 1:
        raise ValueError("seq_len, d_model, and d_ff must be >= 1")
    rng = np.random.default_rng(seed)
    x = _cast(None, (seq_len, d_model), np_dtype, rng)
    w1 = _cast(None, (d_model, d_ff), np_dtype, rng)
    w2 = _cast(None, (d_ff, d_model), np_dtype, rng)
    x_tiles = layout.tiles(x)
    t_count = x_tiles.shape[0]
    x_base = 0
    h_base = t_count * d_model
    out_base = h_base + t_count * d_ff
    zero_slot = out_base + t_count * d_model
    layout.check_capacity(zero_slot + 1)

    h_pages = _ref_gemm(x_tiles, w1, np_dtype)
    relu_pages = np.maximum(h_pages, np_dtype.type(0.0))
    expected_pages = _ref_gemm(relu_pages, w2, np_dtype)
    expected = layout.untile(expected_pages, seq_len)

    def setup(machine: PimExecMachine) -> None:
        _stage_tiles(machine, layout, x_base, x_tiles)

    def execute(machine: PimExecMachine) -> None:
        _run_gemm(
            machine, layout, x_base, t_count, w1, h_base, zero_slot
        )
        _relu_pass(machine, layout, h_base, t_count, d_ff)
        _run_gemm(
            machine, layout, h_base, t_count, w2, out_base, zero_slot
        )
        for t in range(t_count):
            _read_tile_pages(machine, layout, out_base, t, d_model)

    def check(machine: PimExecMachine) -> bool:
        pages = _collect_pages(
            machine, layout, out_base, t_count, d_model
        )
        return bool(
            np.array_equal(pages, expected_pages, equal_nan=True)
        )

    def output(machine: PimExecMachine) -> np.ndarray:
        return layout.untile(
            _collect_pages(machine, layout, out_base, t_count, d_model),
            seq_len,
        )

    return NnKernel(
        name="ffn",
        description=(
            f"FFN relu(X @ W1) @ W2: seq={seq_len} d={d_model} "
            f"d_ff={d_ff}, {dtype}"
        ),
        config=config,
        dtype=dtype,
        bank_groups=bank_groups,
        n_values=seq_len * d_model + 2 * d_model * d_ff,
        flops=4 * seq_len * d_model * d_ff,
        setup=setup,
        execute=execute,
        check=check,
        output=output,
        expected=expected,
        host_trace=lambda: _host_twin(
            config,
            [seq_len * d_model, 2 * d_model * d_ff],
            [seq_len * d_model],
        ),
    )


#: Kernel registry for the CLI / experiment / benchmark.
NN_KERNEL_NAMES = ("gemm", "softmax", "layernorm", "attention", "ffn")

_BUILDERS: _t.Dict[str, _t.Callable[..., NnKernel]] = {
    "gemm": gemm_kernel,
    "softmax": softmax_kernel,
    "layernorm": layernorm_kernel,
    "attention": attention_kernel,
    "ffn": ffn_kernel,
}


def build_nn_kernel(name: str, **kwargs: _t.Any) -> NnKernel:
    """Build a named transformer kernel (see :data:`NN_KERNEL_NAMES`)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown nn kernel {name!r}; available: {NN_KERNEL_NAMES}"
        ) from None
    return builder(**kwargs)
