"""Transformer-layer workload generator: program-dialect traces.

:func:`transformer_layer_trace` emits the *timing-level* host+PIM
request schedule of one full transformer layer — LayerNorm, Q/K/V
projections, per-head attention (scores GEMM, softmax, ``P @ V``),
output projection, a second LayerNorm, and the feed-forward block —
in the HBM-PIMulator program-trace dialect that
:mod:`repro.pimexec.program` parses (``R/W <address>``, ``R/W GPR``,
``AB W``, ``PIM …`` records), the way HBM-PIMulator's ``Tracegen``
scripts emit transformer traces for Ramulator-style replay.

The schedule mirrors the :mod:`repro.nn.kernels` library exactly:

* GEMMs are tiled from the GEMV primitive — the ``A`` operand is
  row-striped across the representative channel's banks, ``B`` enters
  as SRF scalar broadcasts (``AB W``), and output columns accumulate
  ``GRF_REGS`` at a time in GRF_B before a ``MOV`` writes them back;
* softmax and LayerNorm split work between host passes (``R``/``W``
  raw-address records over the affected pages) and in-bank reductions
  (unrolled ``PIM ADD``/``MAC`` streams) with ``R GPR`` readbacks;
* intermediates chain through bank state like the library's composed
  layers — only the layer's final output is host-read back;
* every request-lowering record carries an ``@<ns>`` issue timestamp
  from :func:`repro.memsys.trace.arrival_times` — a fixed cadence or
  seeded-Poisson (bursty) arrival process — so the trace replays under
  its recorded traffic intensity through **both** memsys engines with
  bit-identical statistics (``exp_nn`` checks this).

The trace is *unrolled* (one line per dynamic PIM instruction, no
``JUMP``), matching the HBM-PIMulator convention, and purely
timing-level: it carries no data payloads, so it replays through
:meth:`PimProgram.to_requests` / :meth:`MemorySystem.replay` without a
functional machine.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from ..errors import ConfigError
from ..memsys import MemSysConfig
from ..memsys.trace import INTERARRIVALS, arrival_times
from ..pimexec.commands import GRF_REGS
from ..pimexec.machine import LANE_BITS, page_encoder
from ..pimexec.program import PimProgram, parse_pim_program

__all__ = [
    "TransformerLayerSpec",
    "transformer_layer_trace",
    "transformer_layer_program",
]


@dataclasses.dataclass(frozen=True)
class TransformerLayerSpec:
    """Shape of one transformer layer.

    Attributes
    ----------
    d_model:
        Model width (divisible by ``n_heads``).
    n_heads:
        Attention heads; ``d_head = d_model // n_heads``.
    seq_len:
        Tokens per sequence.
    d_ff:
        Feed-forward width; ``None`` (default) means ``4 * d_model``.
    """

    d_model: int = 32
    n_heads: int = 2
    seq_len: int = 32
    d_ff: _t.Optional[int] = None

    def __post_init__(self) -> None:
        if self.d_model < 1 or self.n_heads < 1 or self.seq_len < 1:
            raise ConfigError(
                "d_model, n_heads, and seq_len must all be >= 1"
            )
        if self.d_model % self.n_heads:
            raise ConfigError(
                f"d_model={self.d_model} must be divisible by "
                f"n_heads={self.n_heads}"
            )
        if self.d_ff is not None and self.d_ff < 1:
            raise ConfigError("d_ff must be >= 1")

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads

    @property
    def ff_width(self) -> int:
        return 4 * self.d_model if self.d_ff is None else self.d_ff


class _TraceBuilder:
    """Collects dialect lines; stamps request-lowering records at the end."""

    def __init__(self, config: MemSysConfig, channel: int) -> None:
        if not 0 <= channel < config.n_channels:
            raise ConfigError(
                f"channel {channel} out of range "
                f"[0, {config.n_channels})"
            )
        self.config = config
        self.channel = channel
        self.banks = config.banks_per_channel
        self.lanes = config.timing.page_bits // LANE_BITS
        self.ppr = config.timing.pages_per_row
        self._encode = page_encoder(config)
        #: ``(text, lowers_to_a_request)`` per line.
        self.lines: _t.List[_t.Tuple[str, bool]] = []
        self._slots = 0

    # -- slot / address helpers ---------------------------------------
    def alloc(self, slots: int) -> int:
        base = self._slots
        self._slots += slots
        capacity = self.config.rows_per_bank * self.ppr
        # the GPR/CFR apertures occupy the two highest rows
        if self._slots > capacity - 2 * self.ppr:
            raise ConfigError(
                f"transformer layer needs {self._slots} slots per "
                f"bank; geometry holds {capacity - 2 * self.ppr}"
            )
        return base

    def slot_addr(self, slot: int) -> _t.Tuple[int, int]:
        return divmod(slot, self.ppr)

    def page_address(self, bank: int, slot: int) -> int:
        row, col = self.slot_addr(slot)
        return self._encode(self.channel, bank, row, col)

    # -- record emitters ----------------------------------------------
    def comment(self, text: str) -> None:
        self.lines.append((f"# {text}", False))

    def host(self, write: bool, bank: int, slot: int) -> None:
        op = "W" if write else "R"
        self.lines.append(
            (f"{op} {self.page_address(bank, slot):#010x}", True)
        )

    def host_pages(self, write: bool, base: int, slots: int) -> None:
        """One host transaction per bank per slot of a page region."""
        for slot in range(base, base + slots):
            for bank in range(self.banks):
                self.host(write, bank, slot)

    def gpr(self, write: bool, index: int) -> None:
        self.lines.append(
            (f"{'W' if write else 'R'} GPR {index}", True)
        )

    def broadcast(self, gpr_index: int) -> None:
        """Stage + all-bank broadcast (one SRF/GRF register write)."""
        self.gpr(True, gpr_index)
        self.lines.append(("AB W", True))

    def pim(self, text: str) -> None:
        self.lines.append((f"PIM {text}", True))

    def grf_readback(self) -> None:
        """Per-bank GRF readback, modeled as staging-register reads."""
        for bank in range(self.banks):
            self.gpr(False, bank)

    # -- composite schedules ------------------------------------------
    def bank_op(self, slot: int) -> str:
        row, col = self.slot_addr(slot)
        return f"BANK,{row},{col}"

    def gemm(
        self,
        t_count: int,
        a_slot: _t.Callable[[int, int], int],
        k: int,
        n: int,
        result_base: int,
        zero_slot: int,
        readback: bool = False,
    ) -> None:
        """The kernel library's tiled GEMM schedule, unrolled.

        ``readback`` adds a host read of the result region — only the
        layer's *final* output is read back; intermediates chain
        through bank state exactly as the kernel library's composed
        layers do.
        """
        zero = self.bank_op(zero_slot)
        for t in range(t_count):
            for j0 in range(0, n, GRF_REGS):
                width = min(GRF_REGS, n - j0)
                for c in range(width):
                    self.pim(f"FILL GRF,{GRF_REGS + c} {zero}")
                for kk in range(k):
                    a = self.bank_op(a_slot(t, kk))
                    for c in range(width):
                        self.broadcast(c)
                    for c in range(width):
                        self.pim(
                            f"MAC GRF,{GRF_REGS + c} {a} SRF,{c}"
                        )
                for c in range(width):
                    out = self.bank_op(result_base + t * n + j0 + c)
                    self.pim(f"MOV {out} GRF,{GRF_REGS + c}")
        if readback:
            self.host_pages(False, result_base, t_count * n)

    def reduction(
        self,
        base: int,
        t: int,
        c_count: int,
        accumulator: int,
        zero_slot: int,
        square: bool = False,
    ) -> None:
        """Unrolled FILL-zero + ADD (or MAC x*x) over one tile's slots."""
        self.pim(
            f"FILL GRF,{GRF_REGS + accumulator} "
            f"{self.bank_op(zero_slot)}"
        )
        for s in range(c_count):
            operand = self.bank_op(base + t * c_count + s)
            if square:
                self.pim(
                    f"MAC GRF,{GRF_REGS + accumulator} {operand} "
                    f"{operand}"
                )
            else:
                self.pim(
                    f"ADD GRF,{GRF_REGS + accumulator} {operand} "
                    f"GRF,{GRF_REGS + accumulator}"
                )

    def softmax(
        self,
        base: int,
        t_count: int,
        c_count: int,
        scratch_base: int,
        zero_slot: int,
    ) -> None:
        """Host max/exp pass + PIM sum reduction + PIM scale pass."""
        for t in range(t_count):
            self.host_pages(False, base + t * c_count, c_count)
            self.host_pages(True, base + t * c_count, c_count)
            self.reduction(base, t, c_count, 0, zero_slot)
            self.grf_readback()
            for bank in range(self.banks):
                self.host(True, bank, scratch_base + t)
            self.pim(f"FILL GRF,0 {self.bank_op(scratch_base + t)}")
            for s in range(c_count):
                operand = self.bank_op(base + t * c_count + s)
                self.pim(f"MUL {operand} {operand} GRF,0")

    def layernorm(
        self,
        base: int,
        t_count: int,
        c_count: int,
        scratch_base: int,
        zero_slot: int,
    ) -> None:
        """PIM sum + sum-of-squares, host stats, PIM affine pass."""
        for t in range(t_count):
            self.reduction(base, t, c_count, 0, zero_slot)
            self.grf_readback()
            self.reduction(base, t, c_count, 1, zero_slot, square=True)
            self.grf_readback()
            for bank in range(self.banks):
                self.host(True, bank, scratch_base + 2 * t)
            for bank in range(self.banks):
                self.host(True, bank, scratch_base + 2 * t + 1)
            self.pim(
                f"FILL GRF,0 {self.bank_op(scratch_base + 2 * t)}"
            )
            self.pim(
                f"FILL GRF,1 {self.bank_op(scratch_base + 2 * t + 1)}"
            )
            for s in range(c_count):
                operand = self.bank_op(base + t * c_count + s)
                self.broadcast(0)  # gamma[s] -> SRF
                self.broadcast(1)  # beta[s] -> SRF
                self.pim(f"FILL GRF,{GRF_REGS} {operand}")
                self.pim(
                    f"ADD GRF,{GRF_REGS} GRF,{GRF_REGS} GRF,0"
                )
                self.pim(
                    f"MUL GRF,{GRF_REGS} GRF,{GRF_REGS} GRF,1"
                )
                self.pim(f"MAD GRF,{GRF_REGS} GRF,{GRF_REGS} SRF,0")
                self.pim(f"MOV {operand} GRF,{GRF_REGS}")

    # -- finalization -------------------------------------------------
    def render(
        self,
        interarrival_ns: _t.Optional[float],
        interarrival: str,
        seed: int,
        start_ns: float,
    ) -> str:
        n_requests = sum(1 for _, lowers in self.lines if lowers)
        stamps: _t.Optional[_t.List[float]] = None
        if interarrival_ns is not None:
            stamps = arrival_times(
                n_requests,
                interarrival_ns,
                mode=interarrival,
                start_ns=start_ns,
                seed=seed,
            ).tolist()
        out: _t.List[str] = []
        cursor = 0
        for text, lowers in self.lines:
            if lowers and stamps is not None:
                out.append(f"{text} @{stamps[cursor]!r}")
                cursor += 1
            else:
                out.append(text)
        return "\n".join(out) + "\n"


def transformer_layer_trace(
    spec: _t.Optional[TransformerLayerSpec] = None,
    config: _t.Optional[MemSysConfig] = None,
    *,
    channel: int = 0,
    interarrival_ns: _t.Optional[float] = 4.0,
    interarrival: str = "fixed",
    seed: int = 0,
    start_ns: float = 0.0,
) -> str:
    """Emit one transformer layer as a program-dialect trace.

    Parameters
    ----------
    spec:
        Layer shape (defaults: ``d_model=32, n_heads=2, seq_len=32``).
    config:
        Memory-system geometry the addresses are encoded against
        (paper defaults if omitted).
    channel:
        Representative channel carrying the lockstep PIM stream.
    interarrival_ns:
        Mean issue interarrival; every request-lowering record gets an
        ``@<ns>`` stamp.  ``None`` emits an untimestamped (line-rate)
        trace.
    interarrival:
        ``"fixed"`` cadence or ``"poisson"`` bursty arrivals (seeded
        exponential gaps) — see
        :data:`repro.memsys.trace.INTERARRIVALS`.
    seed:
        Seed of the Poisson arrival process.
    start_ns:
        Issue time of the first record.

    Returns
    -------
    str
        Trace text for :func:`repro.pimexec.parse_pim_program`.
    """
    spec = spec or TransformerLayerSpec()
    config = config or MemSysConfig()
    if interarrival not in INTERARRIVALS:
        raise ConfigError(
            f"unknown interarrival mode {interarrival!r}; available: "
            f"{INTERARRIVALS}"
        )
    if interarrival != "fixed" and interarrival_ns is None:
        raise ConfigError(
            f"interarrival={interarrival!r} needs interarrival_ns "
            "(the mean gap of the arrival process)"
        )
    builder = _TraceBuilder(config, channel)
    d, heads, seq = spec.d_model, spec.n_heads, spec.seq_len
    d_head, d_ff = spec.d_head, spec.ff_width
    rows_per_tile = builder.banks * builder.lanes
    t_count = -(-seq // rows_per_tile)

    x_base = builder.alloc(t_count * d)
    ln_scratch = builder.alloc(2 * t_count)
    qkv_base = [builder.alloc(t_count * d) for _ in range(3)]
    scores_base = [builder.alloc(t_count * seq) for _ in range(heads)]
    sm_scratch = [builder.alloc(t_count) for _ in range(heads)]
    attn_base = [builder.alloc(t_count * d_head) for _ in range(heads)]
    proj_base = builder.alloc(t_count * d)
    ln2_scratch = builder.alloc(2 * t_count)
    ffn_hidden = builder.alloc(t_count * d_ff)
    ffn_out = builder.alloc(t_count * d)
    zero_slot = builder.alloc(1)

    builder.comment(
        f"transformer layer: d_model={d} heads={heads} seq={seq} "
        f"d_ff={d_ff} (channel {channel}, "
        f"{t_count} tile(s) of {rows_per_tile} rows)"
    )
    builder.comment("stage activations X")
    builder.host_pages(True, x_base, t_count * d)
    builder.comment("layernorm 1 (in place)")
    builder.layernorm(x_base, t_count, d, ln_scratch, zero_slot)
    for name, base in zip("QKV", qkv_base):
        builder.comment(f"{name} projection: X @ W{name.lower()}")
        builder.gemm(
            t_count,
            lambda t, kk: x_base + t * d + kk,
            d,
            d,
            base,
            zero_slot,
        )
    for h in range(heads):
        builder.comment(f"head {h}: scores = Q_h @ K_h^T / sqrt(d)")
        builder.gemm(
            t_count,
            lambda t, kk, _h=h: qkv_base[0] + t * d + _h * d_head + kk,
            d_head,
            seq,
            scores_base[h],
            zero_slot,
        )
        builder.comment(f"head {h}: row-wise softmax")
        builder.softmax(
            scores_base[h], t_count, seq, sm_scratch[h], zero_slot
        )
        builder.comment(f"head {h}: P @ V_h")
        builder.gemm(
            t_count,
            lambda t, kk, _h=h: scores_base[_h] + t * seq + kk,
            seq,
            d_head,
            attn_base[h],
            zero_slot,
        )
    builder.comment("output projection: concat(heads) @ Wo")

    def proj_slot(t: int, kk: int) -> int:
        head, offset = divmod(kk, d_head)
        return attn_base[head] + t * d_head + offset

    builder.gemm(t_count, proj_slot, d, d, proj_base, zero_slot)
    builder.comment("layernorm 2 (in place)")
    builder.layernorm(proj_base, t_count, d, ln2_scratch, zero_slot)
    builder.comment("ffn: H = X @ W1")
    builder.gemm(
        t_count,
        lambda t, kk: proj_base + t * d + kk,
        d,
        d_ff,
        ffn_hidden,
        zero_slot,
    )
    builder.comment("ffn: host ReLU pass over H")
    builder.host_pages(False, ffn_hidden, t_count * d_ff)
    builder.host_pages(True, ffn_hidden, t_count * d_ff)
    builder.comment("ffn: out = relu(H) @ W2, host readback of the layer output")
    builder.gemm(
        t_count,
        lambda t, kk: ffn_hidden + t * d_ff + kk,
        d_ff,
        d,
        ffn_out,
        zero_slot,
        readback=True,
    )
    return builder.render(interarrival_ns, interarrival, seed, start_ns)


def transformer_layer_program(
    spec: _t.Optional[TransformerLayerSpec] = None,
    config: _t.Optional[MemSysConfig] = None,
    **kwargs: _t.Any,
) -> PimProgram:
    """Parsed :class:`~repro.pimexec.program.PimProgram` of the trace."""
    return parse_pim_program(
        transformer_layer_trace(spec, config, **kwargs)
    )
