"""repro — reproduction of *Analysis and Modeling of Advanced PIM
Architecture Design Tradeoffs* (Upchurch, Sterling, Brockman; SC 2004).

The package provides:

* :mod:`repro.desim` — a from-scratch discrete-event simulation engine
  (substitute for the commercial SES/workbench tool the paper used);
* :mod:`repro.arch` — DRAM row-buffer bandwidth and cache substrates;
* :mod:`repro.core` — the paper's two parametric studies: the
  heavyweight/lightweight (HWP/LWP) partitioning tradeoff (§3) and the
  parcel split-transaction latency-hiding study (§4), each as both a
  queuing simulation and a closed-form analytic model;
* :mod:`repro.isa` — a functional multithreaded PIM ISA simulator
  ("PIM Lite"-style) used to ground the statistical parameters;
* :mod:`repro.workloads` — synthetic kernels (GUPS, pointer-chase, SpMV,
  dense) with measurable locality used for calibration;
* :mod:`repro.experiments` — one registered experiment per paper table and
  figure, regenerating its data as CSV/ASCII plots;
* :mod:`repro.viz` — plotting/table helpers; :mod:`repro.cli` — the
  ``repro-pim`` command-line interface.

Quickstart
----------
>>> from repro import Table1Params, nb_parameter, time_relative
>>> p = Table1Params()
>>> round(nb_parameter(p), 3)          # break-even PIM node count
3.125
>>> float(time_relative(0.5, 8, p))    # %WL=50%, N=8 -> below 1: PIM wins
0.6953125
"""

from .core.params import Table1Params, ParcelParams
from .core.hwlw.analytic import (
    hwp_cycles_per_op,
    lwp_cycles_per_op,
    nb_parameter,
    time_relative,
    performance_gain,
    control_time,
    test_time,
)
from .core.hwlw.simulation import HybridSystemModel, simulate_hybrid
from .core.parcels.systems import (
    simulate_message_passing,
    simulate_parcels,
)
from .core.parcels.analytic import (
    multithreading_efficiency,
    saturation_parallelism,
)
from .arch.dram import DramMacroTiming, macro_bandwidth_bits_per_sec

__version__ = "1.0.0"

__all__ = [
    "Table1Params",
    "ParcelParams",
    "hwp_cycles_per_op",
    "lwp_cycles_per_op",
    "nb_parameter",
    "time_relative",
    "performance_gain",
    "control_time",
    "test_time",
    "HybridSystemModel",
    "simulate_hybrid",
    "simulate_message_passing",
    "simulate_parcels",
    "multithreading_efficiency",
    "saturation_parallelism",
    "DramMacroTiming",
    "macro_bandwidth_bits_per_sec",
    "__version__",
]
