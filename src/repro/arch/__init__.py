"""repro.arch — architecture substrates for the PIM studies.

* :mod:`repro.arch.dram` — DRAM macro / PIM-chip row-buffer bandwidth
  models reproducing the §2.1 "hidden bandwidth" analysis;
* :mod:`repro.arch.cache` — the study's statistical cache plus a real
  set-associative LRU simulator for deriving hit rates from traces;
* :mod:`repro.arch.energy` — per-event energy accounting extending the
  partitioning study onto the energy axis (the IRAM claim of §2.1).
"""

from .cache import (
    CacheStats,
    SetAssociativeCache,
    StatisticalCache,
    simulate_trace_hit_rate,
)
from .energy import (
    EnergyParams,
    control_energy_nj,
    energy_delay_ratio,
    energy_ratio,
    pim_energy_nj,
)
from .dram import (
    DramMacroTiming,
    PimChipConfig,
    chip_bandwidth_bits_per_sec,
    effective_access_time_ns,
    macro_bandwidth_bits_per_sec,
    min_macros_for_bandwidth,
)

__all__ = [
    "CacheStats",
    "SetAssociativeCache",
    "StatisticalCache",
    "simulate_trace_hit_rate",
    "EnergyParams",
    "control_energy_nj",
    "energy_delay_ratio",
    "energy_ratio",
    "pim_energy_nj",
    "DramMacroTiming",
    "PimChipConfig",
    "chip_bandwidth_bits_per_sec",
    "effective_access_time_ns",
    "macro_bandwidth_bits_per_sec",
    "min_macros_for_bandwidth",
]
