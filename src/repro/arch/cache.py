"""Cache models: the study's statistical cache and a real LRU simulator.

The HWP/LWP study abstracts the heavyweight processor's cache to a single
hit-rate parameter (``Pmiss``).  :class:`StatisticalCache` implements that
abstraction with reproducible Bernoulli draws.  :class:`SetAssociativeCache`
is a functional set-associative LRU cache simulator used to *derive* hit
rates from address traces — closing the loop between the paper's assumed
``Pmiss = 0.1`` (high-locality work) / ``1.0`` (no-reuse work) and concrete
access patterns (see :mod:`repro.workloads.locality`).
"""

from __future__ import annotations

import dataclasses
import typing as _t
from collections import OrderedDict

import numpy as np

__all__ = [
    "CacheStats",
    "StatisticalCache",
    "SetAssociativeCache",
    "simulate_trace_hit_rate",
]


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else float("nan")

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else float("nan")

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


class StatisticalCache:
    """The study's cache abstraction: i.i.d. misses at a fixed rate.

    Examples
    --------
    >>> c = StatisticalCache(0.1, np.random.default_rng(0))
    >>> _ = [c.access() for _ in range(10_000)]
    >>> abs(c.stats.miss_rate - 0.1) < 0.02
    True
    """

    def __init__(
        self, miss_rate: float, rng: _t.Optional[np.random.Generator] = None
    ) -> None:
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss_rate must be in [0, 1], got {miss_rate}")
        self.miss_rate = float(miss_rate)
        self.rng = rng
        self.stats = CacheStats()

    def access(self, address: int = 0) -> bool:
        """Perform one access; returns True on hit.

        The address is ignored — locality lives entirely in the rate.
        """
        if self.miss_rate == 0.0:
            miss = False
        elif self.miss_rate == 1.0:
            miss = True
        else:
            if self.rng is None:
                raise ValueError(
                    "probabilistic StatisticalCache requires an rng"
                )
            miss = bool(self.rng.random() < self.miss_rate)
        if miss:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        return True

    def access_many(self, count: int) -> int:
        """Vectorized: perform ``count`` accesses, return miss count."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return 0
        if self.miss_rate == 0.0:
            misses = 0
        elif self.miss_rate == 1.0:
            misses = count
        else:
            if self.rng is None:
                raise ValueError(
                    "probabilistic StatisticalCache requires an rng"
                )
            misses = int(self.rng.binomial(count, self.miss_rate))
        self.stats.misses += misses
        self.stats.hits += count - misses
        return misses


class SetAssociativeCache:
    """Functional set-associative cache with true-LRU replacement.

    Parameters
    ----------
    size_bytes:
        Total capacity.
    line_bytes:
        Cache-line size (power of two).
    associativity:
        Ways per set; ``size_bytes / (line_bytes * associativity)`` sets
        (must divide evenly; one set = fully associative).

    Notes
    -----
    Addresses are byte addresses.  Only presence is tracked (no data, no
    dirty bits) — sufficient for hit-rate derivation.
    """

    def __init__(
        self,
        size_bytes: int = 64 * 1024,
        line_bytes: int = 64,
        associativity: int = 4,
    ) -> None:
        if line_bytes < 1 or (line_bytes & (line_bytes - 1)) != 0:
            raise ValueError("line_bytes must be a positive power of two")
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        if size_bytes < line_bytes * associativity:
            raise ValueError("cache smaller than one set")
        if size_bytes % (line_bytes * associativity) != 0:
            raise ValueError(
                "size_bytes must be a multiple of line_bytes*associativity"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.n_sets = size_bytes // (line_bytes * associativity)
        # each set: OrderedDict tag -> None, LRU at the front
        self._sets: _t.List[OrderedDict] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    def _locate(self, address: int) -> _t.Tuple[int, int]:
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def access(self, address: int) -> bool:
        """Access a byte address; returns True on hit, updating LRU."""
        if address < 0:
            raise ValueError("addresses must be non-negative")
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.move_to_end(tag)
            self.stats.hits += 1
            return True
        if len(ways) >= self.associativity:
            ways.popitem(last=False)  # evict LRU
        ways[tag] = None
        self.stats.misses += 1
        return False

    def access_trace(self, addresses: _t.Iterable[int]) -> CacheStats:
        """Run a whole address trace; returns the cumulative stats."""
        for address in addresses:
            self.access(int(address))
        return self.stats

    def contains(self, address: int) -> bool:
        """Presence check without LRU side effects."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    @property
    def lines_resident(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        return (
            f"<SetAssociativeCache {self.size_bytes}B "
            f"{self.associativity}-way {self.line_bytes}B-lines "
            f"hit_rate={self.stats.hit_rate:.3f}>"
            if self.stats.accesses
            else f"<SetAssociativeCache {self.size_bytes}B>"
        )


def simulate_trace_hit_rate(
    addresses: _t.Iterable[int],
    size_bytes: int = 64 * 1024,
    line_bytes: int = 64,
    associativity: int = 4,
    warmup_fraction: float = 0.0,
) -> float:
    """Hit rate of an address trace on a fresh cache.

    Parameters
    ----------
    warmup_fraction:
        Leading fraction of the trace used only to warm the cache
        (excluded from statistics), for steady-state rates.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    trace = [int(a) for a in addresses]
    cache = SetAssociativeCache(size_bytes, line_bytes, associativity)
    split = int(len(trace) * warmup_fraction)
    for address in trace[:split]:
        cache.access(address)
    cache.stats.reset()
    for address in trace[split:]:
        cache.access(address)
    return cache.stats.hit_rate
