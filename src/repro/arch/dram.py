"""DRAM macro and PIM-chip bandwidth models (paper §2.1).

The paper's case for PIM rests on "reclaiming the hidden bandwidth" of
on-chip DRAM: a macro organized in 2048-bit rows, latched into a row
buffer in one *row access* (conservatively 20 ns), then paged out to
processing logic in wide words of 256 bits every *page access* (2 ns).
Under those numbers "a single on-chip DRAM macro could sustain a bandwidth
of over 50 Gbit/s", and with many independent banks per chip "an on-chip
peak memory bandwidth of greater than 1 Tbit/s is possible per chip".

This module reproduces those derivations as an explicit timing model, plus
sustained-bandwidth calculations under imperfect row reuse (a row-hit
ratio parameter) that the cache/locality experiments feed.
"""

from __future__ import annotations

import dataclasses
import math
import typing as _t

__all__ = [
    "DramMacroTiming",
    "PimChipConfig",
    "macro_bandwidth_bits_per_sec",
    "chip_bandwidth_bits_per_sec",
    "min_macros_for_bandwidth",
    "effective_access_time_ns",
]


@dataclasses.dataclass(frozen=True)
class DramMacroTiming:
    """Timing/geometry of one on-chip DRAM macro.

    Defaults are the paper's conservative values.

    Attributes
    ----------
    row_bits:
        Bits latched per row activation (2048).
    page_bits:
        Bits delivered to logic per page access out of the row buffer
        (256).
    row_access_ns:
        Time to latch a new row into the row buffer (20 ns).
    page_access_ns:
        Time per wide-word page transfer from the row buffer (2 ns).
    """

    row_bits: int = 2048
    page_bits: int = 256
    row_access_ns: float = 20.0
    page_access_ns: float = 2.0

    def __post_init__(self) -> None:
        if self.row_bits < 1 or self.page_bits < 1:
            raise ValueError("row_bits and page_bits must be positive")
        if self.page_bits > self.row_bits:
            raise ValueError("page cannot be wider than the row")
        if self.row_bits % self.page_bits != 0:
            raise ValueError("row_bits must be a multiple of page_bits")
        if self.row_access_ns <= 0 or self.page_access_ns <= 0:
            raise ValueError("access times must be positive")

    @property
    def pages_per_row(self) -> int:
        """Wide words obtainable from one activated row (2048/256 = 8)."""
        return self.row_bits // self.page_bits

    def full_row_drain_ns(self) -> float:
        """Time to activate a row and page out all of it."""
        return self.row_access_ns + self.pages_per_row * self.page_access_ns

    def random_word_ns(self) -> float:
        """Worst case: activate a row for a single page (no reuse)."""
        return self.row_access_ns + self.page_access_ns


def macro_bandwidth_bits_per_sec(
    timing: _t.Optional[DramMacroTiming] = None,
    row_hit_ratio: float = 0.0,
) -> float:
    """Sustained bandwidth of one macro, in bits per second.

    Parameters
    ----------
    timing:
        Macro timing (paper defaults if omitted).
    row_hit_ratio:
        Fraction of page accesses that hit the already-open row, beyond
        the streaming pattern's single activation per row.  ``0.0``
        reproduces the paper's sequential-drain analysis: each row is
        activated once and fully paged out — 2048 bits per
        (20 + 8×2) ns = 56.9 Gbit/s, "over 50 Gbit/s".  ``1.0`` is the
        row-buffer-resident limit (page rate only).

    Notes
    -----
    The general form charges each page access ``page_access_ns`` plus an
    amortized share ``(1 - row_hit_ratio)`` of … ``row_access_ns``; the
    streaming case corresponds to ``row_hit_ratio = 1 - 1/pages_per_row``
    amortization built in via whole-row draining, which is what the
    default computes.
    """
    timing = timing or DramMacroTiming()
    if not 0.0 <= row_hit_ratio <= 1.0:
        raise ValueError("row_hit_ratio must be in [0, 1]")
    if row_hit_ratio == 0.0:
        # the paper's sequential drain: one activation per full row
        seconds = timing.full_row_drain_ns() * 1e-9
        return timing.row_bits / seconds
    # generalized: each page pays its transfer plus (1-hit) activations
    per_page_ns = timing.page_access_ns + (
        (1.0 - row_hit_ratio) * timing.row_access_ns
    )
    return timing.page_bits / (per_page_ns * 1e-9)


@dataclasses.dataclass(frozen=True)
class PimChipConfig:
    """A PIM chip: many independent macro+logic nodes.

    Attributes
    ----------
    n_nodes:
        Independent memory/processor banks on the chip, each with "its
        own arithmetic and control logic" acting concurrently.
    timing:
        Per-macro timing.
    """

    n_nodes: int = 32
    timing: DramMacroTiming = dataclasses.field(
        default_factory=DramMacroTiming
    )

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")


def chip_bandwidth_bits_per_sec(
    config: _t.Optional[PimChipConfig] = None,
    row_hit_ratio: float = 0.0,
) -> float:
    """On-chip peak bandwidth: nodes × per-macro sustained bandwidth.

    With the default 32 nodes this exceeds 1.8 Tbit/s, supporting the
    paper's "greater than 1 Tbit/s is possible per chip".
    """
    config = config or PimChipConfig()
    return config.n_nodes * macro_bandwidth_bits_per_sec(
        config.timing, row_hit_ratio
    )


def min_macros_for_bandwidth(
    target_bits_per_sec: float,
    timing: _t.Optional[DramMacroTiming] = None,
    row_hit_ratio: float = 0.0,
) -> int:
    """Smallest node count whose aggregate bandwidth meets the target.

    Examples
    --------
    >>> min_macros_for_bandwidth(1e12)   # 1 Tbit/s with paper timings
    18
    """
    if target_bits_per_sec <= 0:
        raise ValueError("target bandwidth must be positive")
    per_macro = macro_bandwidth_bits_per_sec(timing, row_hit_ratio)
    return int(math.ceil(target_bits_per_sec / per_macro))


def effective_access_time_ns(
    timing: _t.Optional[DramMacroTiming] = None,
    row_hit_ratio: float = 0.0,
) -> float:
    """Mean per-page access time under a given row-hit ratio.

    The LWP's 30-cycle (30 ns) ``TML`` of Table 1 corresponds to a
    conservative access path on top of the raw macro numbers; this helper
    exposes the raw-model component of that figure.
    """
    timing = timing or DramMacroTiming()
    if not 0.0 <= row_hit_ratio <= 1.0:
        raise ValueError("row_hit_ratio must be in [0, 1]")
    return timing.page_access_ns + (
        (1.0 - row_hit_ratio) * timing.row_access_ns
    )
