"""Energy model for host-vs-PIM execution (background §2.1).

The paper's background cites the Berkeley IRAM result that "in addition
to improved performance-per-area, PIM could also have much lower energy
consumption than conventional organizations" [12].  This module extends
the §3 partitioning model with a per-event energy accounting so that the
tradeoff can be examined on the energy axis with the same workload
parameterization (Table 1's operation counts and access statistics).

The default coefficients are *relative* values chosen to reflect the
structural argument, not a measured technology point: a wide superscalar
host burns more energy per operation than a simple in-order PIM core,
and an off-chip DRAM access (I/O drivers, long wires) costs an order of
magnitude more than an on-chip row-buffer access.  All coefficients are
parameters; the conclusions tested are monotonicity/shape claims that
hold across any coefficients with those orderings.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from ..core.params import Table1Params

__all__ = [
    "EnergyParams",
    "control_energy_nj",
    "pim_energy_nj",
    "energy_ratio",
    "energy_delay_ratio",
]

ArrayLike = _t.Union[float, _t.Sequence[float], np.ndarray]


@dataclasses.dataclass(frozen=True)
class EnergyParams:
    """Per-event energy coefficients (nanojoules, relative scale).

    Attributes
    ----------
    hwp_op_nj:
        Heavyweight core energy per non-memory operation (wide issue,
        speculation, big register files).
    hwp_cache_nj:
        Energy per cache access (hit path).
    hwp_dram_nj:
        Energy per off-chip DRAM access on a miss (the expensive event:
        I/O pads, bus drivers, DIMM access).
    lwp_op_nj:
        Lightweight PIM core energy per non-memory operation.
    lwp_mem_nj:
        Energy per on-chip row-buffer access from a PIM node.
    """

    hwp_op_nj: float = 1.0
    hwp_cache_nj: float = 0.5
    hwp_dram_nj: float = 20.0
    lwp_op_nj: float = 0.2
    lwp_mem_nj: float = 2.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be non-negative")


def _hwp_energy_per_op(
    params: Table1Params, energy: EnergyParams, miss_rate: float
) -> float:
    """Expected host energy per operation at a given miss rate."""
    return (
        energy.hwp_op_nj
        + params.ls_mix
        * (energy.hwp_cache_nj + miss_rate * energy.hwp_dram_nj)
    )


def _lwp_energy_per_op(
    params: Table1Params, energy: EnergyParams
) -> float:
    """Expected PIM energy per operation (no cache; row-buffer access)."""
    return energy.lwp_op_nj + params.ls_mix * energy.lwp_mem_nj


def control_energy_nj(
    lwp_fraction: ArrayLike,
    params: _t.Optional[Table1Params] = None,
    energy: _t.Optional[EnergyParams] = None,
) -> np.ndarray:
    """Total energy of the control run (all work on the host).

    The no-reuse fraction misses at ``control_miss_rate``, so it pays
    the off-chip DRAM energy on (almost) every access — energy tracks
    the same locality cliff the §3 time model exposes.
    """
    params = params or Table1Params()
    energy = energy or EnergyParams()
    f = np.asarray(lwp_fraction, dtype=float)
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValueError("lwp_fraction must lie in [0, 1]")
    high = _hwp_energy_per_op(params, energy, params.miss_rate)
    low = _hwp_energy_per_op(params, energy, params.control_miss_rate)
    return params.total_work * ((1.0 - f) * high + f * low)


def pim_energy_nj(
    lwp_fraction: ArrayLike,
    params: _t.Optional[Table1Params] = None,
    energy: _t.Optional[EnergyParams] = None,
) -> np.ndarray:
    """Total energy of the PIM-augmented system.

    High-locality work stays on the host at ``Pmiss``; the no-reuse
    fraction runs on LWPs next to their banks.  Node count does not
    appear: energy is per-operation, not per-unit-time (more nodes
    finish sooner at the same total energy under this model).
    """
    params = params or Table1Params()
    energy = energy or EnergyParams()
    f = np.asarray(lwp_fraction, dtype=float)
    if np.any(f < 0.0) or np.any(f > 1.0):
        raise ValueError("lwp_fraction must lie in [0, 1]")
    high = _hwp_energy_per_op(params, energy, params.miss_rate)
    low = _lwp_energy_per_op(params, energy)
    return params.total_work * ((1.0 - f) * high + f * low)


def energy_ratio(
    lwp_fraction: ArrayLike,
    params: _t.Optional[Table1Params] = None,
    energy: _t.Optional[EnergyParams] = None,
) -> np.ndarray:
    """Control energy over PIM energy (> 1 means PIM saves energy).

    Examples
    --------
    >>> float(energy_ratio(0.0))   # no offload, no difference
    1.0
    """
    return control_energy_nj(lwp_fraction, params, energy) / pim_energy_nj(
        lwp_fraction, params, energy
    )


def energy_delay_ratio(
    lwp_fraction: ArrayLike,
    n_nodes: ArrayLike,
    params: _t.Optional[Table1Params] = None,
    energy: _t.Optional[EnergyParams] = None,
) -> np.ndarray:
    """Energy-delay product ratio (control / PIM system).

    Combines this module's energy model with the §3 time model; since
    PIM wins on both axes in the data-intensive regime, EDP gains
    compound (the IRAM argument in the paper's setting).
    """
    from ..core.hwlw.analytic import control_time, test_time

    e_ratio = energy_ratio(lwp_fraction, params, energy)
    t_ratio = np.asarray(
        control_time(lwp_fraction, params)
    ) / np.asarray(test_time(lwp_fraction, n_nodes, params))
    return e_ratio * t_ratio
