"""``repro-pim`` — command-line interface to the reproduction harness.

Commands
--------
``repro-pim list``
    Show all registered experiments with their paper references.
``repro-pim run NAME [NAME ...]``
    Run experiments and print their reports.
``repro-pim all``
    Run every experiment.
``repro-pim replay TRACE``
    Replay a text trace file through the banked memory system and print
    its summary statistics (engine selectable: ``event``, ``fast``, or
    ``auto``; optional timestamped arrivals from the trace's third
    column, refresh modeling via ``--trefi``/``--trfc``/
    ``--refresh-granularity``).
``repro-pim farm TRACE [--workers N] [--mode ...] [--report FILE]``
    Replay a timestamped trace on the fault-tolerant sharded farm
    (multi-process channel sharding with retries, deadlines, and
    graceful degradation — statistics bit-identical to a
    single-process replay) and print the per-shard fault ledger; the
    plain ``replay`` verb's ``--workers N`` uses the same farm with
    default fault-tolerance policy.  See ``docs/robustness.md``.
``repro-pim report TRACE [--workers N] [--json FILE]``
    Replay a trace once and render one unified run report — metrics
    snapshot, exact latency percentiles, windowed time series, and
    (with ``--workers``) the farm fault ledger and supervisor event
    counts — as text tables plus a ``repro.telemetry/report-v2`` JSON
    document.
``repro-pim pimexec [--kernel NAME | --trace FILE]``
    Execute built-in PIM kernels on the per-bank execution units and
    compare against host-only twins, or replay an HBM-PIMulator-style
    program trace (``R/W GPR|CFR|MEM``, ``AB W``, ``PIM …``).
``repro-pim nn [--kernel NAME] [--dtype fp16|fp64] [--bank-groups]``
    Run the transformer kernel library (GEMM/softmax/LayerNorm/
    attention/FFN) on the PIM machine — IEEE-binary16 by default, with
    bit-exact reference checks — or emit a transformer-layer workload
    trace (``--emit-trace FILE``, fixed or Poisson arrivals) in the
    program dialect.

Options: ``--full`` (paper-size grids instead of quick ones), ``--seed``,
``--out DIR`` (write CSV tables + reports per experiment).  The replay
verbs (``replay``/``farm``/``pimexec``/``nn``) accept ``--metrics FILE``
(a ``repro.telemetry/v1`` metrics snapshot with exact latency
percentiles), ``--timeline FILE`` (a Chrome-trace-event command timeline
viewable in Perfetto), ``--timeseries FILE`` (a
``repro.telemetry/timeseries-v2`` windowed-metrics document,
bit-identical across engines), and ``--energy FILE`` (a
``repro.telemetry/energy-v1`` command-level energy accounting with
pJ/bit and perf-per-watt); see ``docs/observability.md``.

Examples
--------
``repro-pim run table1``
    Regenerate the paper's Table 1 parameters.
``repro-pim run memsys_bandwidth``
    Replay synthetic traces through the banked :mod:`repro.memsys`
    simulator and cross-validate against the analytic DRAM model.
``repro-pim replay app.trace --engine fast --scheme channel-interleaved``
    Replay a million-request trace in well under a second through the
    event-free fast path.
``repro-pim pimexec --kernel gemv --n 128``
    Run the GEMV microkernel on the per-bank execution units and report
    the host-vs-PIM execution times.
``repro-pim all --full --out results/``
    Full-size grids for every artifact, with CSV + report export.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t

from .experiments import (
    ExperimentConfig,
    all_experiments,
    experiment_names,
    run_experiment,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-pim",
        description=(
            "Reproduction of 'Analysis and Modeling of Advanced PIM "
            "Architecture Design Tradeoffs' (SC 2004): regenerate every "
            "table and figure."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one or more experiments")
    run_p.add_argument(
        "names",
        nargs="+",
        metavar="NAME",
        help="experiment name(s); see 'repro-pim list'",
    )
    all_p = sub.add_parser("all", help="run every experiment")

    for p in (run_p, all_p):
        p.add_argument(
            "--full",
            action="store_true",
            help="use the full paper-size parameter grids (slower)",
        )
        p.add_argument(
            "--seed", type=int, default=0, help="root RNG seed"
        )
        p.add_argument(
            "--out",
            type=pathlib.Path,
            default=None,
            metavar="DIR",
            help="write CSV tables and reports under DIR/<experiment>/",
        )

    replay_p = sub.add_parser(
        "replay",
        help="replay a text trace file through the memory system",
    )
    _add_memsys_flags(replay_p)
    replay_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="replay on the sharded farm with N worker processes "
        "(default: 0 — plain single-process replay); the farm's "
        "statistics are bit-identical to a single-process replay",
    )
    _add_telemetry_flags(replay_p)

    farm_p = sub.add_parser(
        "farm",
        help="replay a trace on the fault-tolerant sharded farm "
        "and print the per-shard fault ledger",
    )
    _add_memsys_flags(farm_p)
    farm_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="worker-process cap (default: 0 — one per shard, up to "
        "the CPU count)",
    )
    farm_p.add_argument(
        "--mode", choices=("auto", "process", "inprocess"),
        default="auto",
        help="worker isolation: real processes, in-process (the "
        "degraded path), or auto (default)",
    )
    farm_p.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="cap on shard count (channels fold round-robin)",
    )
    farm_p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="failed-attempt budget per shard before degrading to an "
        "in-process replay (default: 2)",
    )
    farm_p.add_argument(
        "--deadline", type=float, default=120.0, metavar="S",
        help="hard wall-clock ceiling per shard attempt in seconds "
        "(default: 120)",
    )
    farm_p.add_argument(
        "--heartbeat-timeout", type=float, default=10.0, metavar="S",
        help="heartbeat silence that marks a worker hung (default: 10)",
    )
    farm_p.add_argument(
        "--farm-seed", type=int, default=0, metavar="N",
        help="seed for the deterministic retry-backoff jitter",
    )
    farm_p.add_argument(
        "--report", type=pathlib.Path, default=None, metavar="FILE",
        help="write the farm report (attempts, retries, timeouts, "
        "per-shard outcomes) to FILE as JSON",
    )
    _add_telemetry_flags(farm_p)

    report_p = sub.add_parser(
        "report",
        help="replay a trace once and render one unified run report "
        "(metrics + exact percentiles + time series + farm ledger)",
    )
    _add_memsys_flags(report_p)
    report_p.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="replay on the sharded farm with N worker processes and "
        "include the fault ledger + supervisor event counts "
        "(default: 0 — plain single-process replay)",
    )
    report_p.add_argument(
        "--windows", type=int, default=None, metavar="N",
        help="number of time-series windows (default: 64)",
    )
    report_p.add_argument(
        "--json", type=pathlib.Path, default=None, metavar="FILE",
        help="write the repro.telemetry/report-v2 document to FILE",
    )
    report_p.add_argument(
        "--timeseries", type=pathlib.Path, default=None, metavar="FILE",
        help="also write the embedded repro.telemetry/timeseries-v2 "
        "document on its own to FILE",
    )
    report_p.add_argument(
        "--energy", type=pathlib.Path, default=None, metavar="FILE",
        help="also write the embedded repro.telemetry/energy-v1 "
        "document on its own to FILE",
    )

    pimexec_p = sub.add_parser(
        "pimexec",
        help=(
            "run PIM kernels on the per-bank execution units, or "
            "replay an HBM-PIMulator program trace"
        ),
    )
    pimexec_p.add_argument(
        "--kernel", default="all", metavar="NAME",
        help="kernel to run: vector-sum, axpy, gemv, or all (default)",
    )
    pimexec_p.add_argument(
        "--n", type=int, default=4096, metavar="N",
        help="problem size: vector length (vector-sum/axpy) or matrix "
        "columns for gemv scaled as N/32 (default: 4096)",
    )
    pimexec_p.add_argument(
        "--trace", type=pathlib.Path, default=None, metavar="FILE",
        help="replay an HBM-PIMulator-style program trace instead of "
        "running built-in kernels",
    )
    pimexec_p.add_argument(
        "--engine", choices=("event", "fast", "auto"), default="auto",
        help="replay engine (default: auto)",
    )
    pimexec_p.add_argument(
        "--seed", type=int, default=0, help="kernel data RNG seed"
    )
    _add_telemetry_flags(pimexec_p)

    nn_p = sub.add_parser(
        "nn",
        help=(
            "run transformer kernels (GEMM/softmax/LayerNorm/"
            "attention/FFN) on the PIM machine, or emit a "
            "transformer-layer workload trace"
        ),
    )
    nn_p.add_argument(
        "--kernel", default="all", metavar="NAME",
        help="kernel to run: gemm, softmax, layernorm, attention, "
        "ffn, or all (default)",
    )
    nn_p.add_argument(
        "--dtype", choices=("fp16", "fp64"), default="fp16",
        help="arithmetic dtype: IEEE binary16 (default) or the "
        "idealized float64 model",
    )
    nn_p.add_argument(
        "--bank-groups", action="store_true",
        help="half-bank execution: one unit per even/odd bank pair",
    )
    nn_p.add_argument(
        "--engine", choices=("event", "fast", "auto"), default="auto",
        help="replay engine (default: auto)",
    )
    nn_p.add_argument(
        "--seed", type=int, default=0, help="kernel data RNG seed"
    )
    nn_p.add_argument(
        "--emit-trace", type=pathlib.Path, default=None,
        metavar="FILE",
        help="write a transformer-layer program trace to FILE "
        "instead of running kernels",
    )
    nn_p.add_argument(
        "--d-model", type=int, default=32, metavar="N",
        help="trace model width (default: 32)",
    )
    nn_p.add_argument(
        "--heads", type=int, default=2, metavar="N",
        help="trace attention heads (default: 2)",
    )
    nn_p.add_argument(
        "--seq-len", type=int, default=32, metavar="N",
        help="trace sequence length (default: 32)",
    )
    nn_p.add_argument(
        "--d-ff", type=int, default=None, metavar="N",
        help="trace feed-forward width (default: 4 * d_model)",
    )
    nn_p.add_argument(
        "--interarrival", choices=("fixed", "poisson"),
        default="fixed",
        help="trace arrival process (default: fixed cadence)",
    )
    nn_p.add_argument(
        "--interarrival-ns", type=float, default=4.0, metavar="NS",
        help="mean issue interarrival of the trace (default: 4)",
    )
    _add_telemetry_flags(nn_p)
    return parser


def _add_memsys_flags(parser: argparse.ArgumentParser) -> None:
    """Trace + memory-system geometry flags shared by replay/farm."""
    parser.add_argument(
        "trace", type=pathlib.Path, metavar="TRACE",
        help="trace file (OP ADDRESS [TIMESTAMP_NS] per line; see "
        "docs/trace-formats.md)",
    )
    parser.add_argument(
        "--engine", choices=("event", "fast", "auto"), default="auto",
        help="replay engine (default: auto — the fast path unless "
        "per-event observation is requested)",
    )
    parser.add_argument(
        "--scheme", default="row-major",
        help="address-interleaving scheme (default: row-major)",
    )
    parser.add_argument(
        "--policy", choices=("fcfs", "frfcfs"), default="frfcfs",
        help="controller scheduling policy (default: frfcfs)",
    )
    parser.add_argument(
        "--channels", type=int, default=2, metavar="N",
        help="number of channels (default: 2)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="per-channel request-queue depth (default: 16)",
    )
    parser.add_argument(
        "--trefi", type=float, default=0.0, metavar="NS",
        help="refresh interval tREFI in ns (0 disables refresh "
        "modeling; HBM2-class: 3900)",
    )
    parser.add_argument(
        "--trfc", type=float, default=0.0, metavar="NS",
        help="refresh cycle time tRFC in ns (HBM2-class: 350)",
    )
    parser.add_argument(
        "--refresh-granularity",
        choices=("per-rank", "per-bank"),
        default="per-rank",
        help="all-bank refresh stalling the channel (per-rank, "
        "default) or staggered per-bank refresh the scheduler works "
        "around (per-bank)",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """``--metrics``/``--timeline``/``--timeseries``/``--energy``
    shared by the replay verbs."""
    parser.add_argument(
        "--metrics", type=pathlib.Path, default=None, metavar="FILE",
        help="write a repro.telemetry/v1 metrics snapshot (counters, "
        "gauges, exact latency percentiles) to FILE as JSON",
    )
    parser.add_argument(
        "--timeline", type=pathlib.Path, default=None, metavar="FILE",
        help="write a Chrome-trace-event command timeline (per-bank "
        "busy spans, row open/close, refresh blackouts) to FILE — "
        "open it in Perfetto / chrome://tracing",
    )
    parser.add_argument(
        "--timeseries", type=pathlib.Path, default=None, metavar="FILE",
        help="write a repro.telemetry/timeseries-v2 windowed-metrics "
        "document (offered/served load, bandwidth, queue depth, busy "
        "and refresh fractions, power over time) to FILE as JSON",
    )
    parser.add_argument(
        "--energy", type=pathlib.Path, default=None, metavar="FILE",
        help="write a repro.telemetry/energy-v1 command-level energy "
        "accounting (per-class breakdown, pJ/bit, mean power, "
        "perf-per-watt, windowed power series) to FILE as JSON",
    )


def _make_telemetry(args: argparse.Namespace) -> _t.Optional[_t.Any]:
    """A :class:`~repro.telemetry.ReplayTelemetry` if any flag asks."""
    if (
        args.metrics is None
        and args.timeline is None
        and getattr(args, "timeseries", None) is None
        and getattr(args, "energy", None) is None
    ):
        return None
    from .telemetry import ReplayTelemetry

    return ReplayTelemetry()


def _write_telemetry(
    args: argparse.Namespace,
    telemetry: _t.Optional[_t.Any],
    registry: _t.Optional[_t.Any] = None,
    **tags: _t.Any,
) -> None:
    """Write the requested ``--metrics``/``--timeline``/``--timeseries``
    files."""
    if telemetry is None:
        return
    if args.metrics is not None:
        from .telemetry import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry(source="repro-pim")
        telemetry.metrics_into(registry, **tags)
        registry.write(args.metrics)
        print(f"metrics:  wrote {args.metrics} ({len(registry)} entries)")
    if args.timeline is not None:
        from .telemetry import build_timeline

        document = build_timeline(telemetry)
        args.timeline.parent.mkdir(parents=True, exist_ok=True)
        args.timeline.write_text(json.dumps(document) + "\n")
        print(
            f"timeline: wrote {args.timeline} "
            f"({len(document['traceEvents'])} events)"
        )
    if getattr(args, "timeseries", None) is not None:
        from .telemetry import build_timeseries

        document = build_timeseries(telemetry)
        args.timeseries.parent.mkdir(parents=True, exist_ok=True)
        args.timeseries.write_text(json.dumps(document) + "\n")
        print(
            f"timeseries: wrote {args.timeseries} "
            f"({document['n_windows']} windows)"
        )
    if getattr(args, "energy", None) is not None:
        from .telemetry import build_energy

        document = build_energy(telemetry)
        args.energy.parent.mkdir(parents=True, exist_ok=True)
        args.energy.write_text(json.dumps(document) + "\n")
        print(
            f"energy:   wrote {args.energy} "
            f"({document['total_pj']:.6g} pJ, "
            f"{document['pj_per_bit']:.6g} pJ/bit)"
        )


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        quick=not args.full, seed=args.seed, out_dir=args.out
    )


def _memsys_config_and_trace(
    args: argparse.Namespace,
) -> _t.Tuple[_t.Any, _t.Any]:
    """Build (MemSysConfig, PackedTrace) from shared CLI flags."""
    from .memsys import MemSysConfig, parse_trace

    config = MemSysConfig(
        n_channels=args.channels,
        scheme=args.scheme,
        policy=args.policy,
        queue_depth=args.queue_depth,
        trefi_ns=args.trefi,
        trfc_ns=args.trfc,
        refresh_granularity=args.refresh_granularity,
    )
    return config, parse_trace(args.trace, packed=True)


#: Every bad-input failure a replay verb can hit: config/trace
#: validation (ValueError subclasses), replay/farm state errors
#: (RuntimeError subclasses), unreadable files, and binary garbage
#: where text was expected.  One line on stderr, exit code 2 — never
#: a traceback.
_BAD_INPUT = (ValueError, RuntimeError, OSError, UnicodeDecodeError)


def _replay_command(args: argparse.Namespace) -> int:
    """Replay a trace file and print the summary statistics."""
    import time

    from .memsys import MemorySystem

    if not args.trace.exists():
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    try:
        config, trace = _memsys_config_and_trace(args)
        if len(trace) == 0:
            print(f"empty trace: {args.trace}", file=sys.stderr)
            return 2
        telemetry = _make_telemetry(args)
        if args.workers:
            from .farm import FarmConfig, replay_farm

            farm = FarmConfig(workers=args.workers, engine=args.engine)
            started = time.perf_counter()
            result = replay_farm(
                trace, config, farm, telemetry=telemetry
            )
            elapsed = time.perf_counter() - started
            stats = result.stats
            system = MemorySystem(config)
            engine_label = (
                "farm"
                if not result.report.fell_back_to_single
                else "farm (single-process fallback)"
            )
        else:
            system = MemorySystem(config)
            started = time.perf_counter()
            stats = system.replay(
                trace, engine=args.engine, telemetry=telemetry
            )
            elapsed = time.perf_counter() - started
            engine_label = str(system.last_replay_engine)
    except _BAD_INPUT as error:
        print(f"replay failed: {error}", file=sys.stderr)
        return 2
    print(f"trace:    {args.trace} ({stats.n_requests} requests)")
    print(f"system:   {system!r}")
    print(
        f"engine:   {engine_label} "
        f"({stats.n_requests / elapsed:,.0f} requests/s wall-clock)"
    )
    if args.workers:
        report = result.report
        print(
            f"farm:     {report.n_shards} shard(s), "
            f"{report.workers} worker(s), {report.attempts} "
            f"attempt(s), {report.retries} retrie(s)"
        )
    for key, value in stats.summary().items():
        print(f"{key:22s} {value:.6g}")
    if telemetry is not None:
        registry = None
        if args.metrics is not None:
            from .telemetry import MetricsRegistry, memsys_metrics

            registry = MetricsRegistry(
                source=f"repro-pim replay {args.trace}"
            )
            memsys_metrics(
                registry=registry,
                stats=stats,
                # the farm merges into a throwaway system; its
                # per-channel snapshots live in the farm report
                system=None if args.workers else system,
                scheme=args.scheme,
                policy=args.policy,
            )
            if args.workers:
                from .telemetry import farm_metrics

                farm_metrics(result.report, registry)
        _write_telemetry(
            args, telemetry, registry,
            scheme=args.scheme, policy=args.policy,
        )
    return 0


def _farm_command(args: argparse.Namespace) -> int:
    """Replay on the sharded farm; print the fault ledger."""
    import time

    if not args.trace.exists():
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    try:
        from .farm import FarmConfig, replay_farm

        config, trace = _memsys_config_and_trace(args)
        if len(trace) == 0:
            print(f"empty trace: {args.trace}", file=sys.stderr)
            return 2
        farm = FarmConfig(
            workers=args.workers,
            mode=args.mode,
            engine=args.engine,
            max_shards=args.max_shards,
            max_retries=args.max_retries,
            deadline_s=args.deadline,
            heartbeat_timeout_s=args.heartbeat_timeout,
            seed=args.farm_seed,
        )
        telemetry = _make_telemetry(args)
        started = time.perf_counter()
        result = replay_farm(trace, config, farm, telemetry=telemetry)
        elapsed = time.perf_counter() - started
    except _BAD_INPUT as error:
        print(f"farm replay failed: {error}", file=sys.stderr)
        return 2
    stats, report = result.stats, result.report
    print(f"trace:    {args.trace} ({stats.n_requests} requests)")
    print(
        f"farm:     mode={report.mode} workers={report.workers} "
        f"shards={report.n_shards} "
        f"({stats.n_requests / elapsed:,.0f} requests/s wall-clock)"
    )
    print(
        f"ledger:   attempts={report.attempts} "
        f"retries={report.retries} timeouts={report.timeouts} "
        f"crashes={report.crashes} "
        f"integrity={report.integrity_failures} "
        f"degraded={report.degraded_shards}"
    )
    if report.fell_back_to_single:
        print(f"fallback: {report.fallback_reason}")
    from .telemetry import replay_tier

    tiers = sorted(
        {replay_tier(shard.engine) or "unknown" for shard in report.shards}
    )
    if tiers:
        print(f"tiers:    {', '.join(tiers)}")
    for shard in report.shards:
        flags = " degraded" if shard.degraded else ""
        print(
            f"shard {shard.shard_id}: channels={list(shard.channels)} "
            f"requests={shard.n_requests} attempts={shard.attempts} "
            f"engine={shard.engine} "
            f"tier={replay_tier(shard.engine)}{flags}"
        )
    for key, value in stats.summary().items():
        print(f"{key:22s} {value:.6g}")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"report:   wrote {args.report}")
    if telemetry is not None:
        registry = None
        if args.metrics is not None:
            from .telemetry import (
                MetricsRegistry,
                farm_metrics,
                memsys_metrics,
            )

            registry = MetricsRegistry(
                source=f"repro-pim farm {args.trace}"
            )
            memsys_metrics(
                registry=registry,
                stats=stats,
                scheme=args.scheme,
                policy=args.policy,
            )
            farm_metrics(report, registry)
        _write_telemetry(
            args, telemetry, registry,
            scheme=args.scheme, policy=args.policy,
        )
    return 0


def _report_command(args: argparse.Namespace) -> int:
    """Replay once; render the unified run report."""
    from .memsys import MemorySystem
    from .telemetry import (
        MetricsRegistry,
        ReplayTelemetry,
        build_energy,
        build_report,
        build_timeseries,
        farm_metrics,
        memsys_metrics,
        render_report,
        write_report,
    )

    if not args.trace.exists():
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    try:
        config, trace = _memsys_config_and_trace(args)
        if len(trace) == 0:
            print(f"empty trace: {args.trace}", file=sys.stderr)
            return 2
        telemetry = ReplayTelemetry()
        farm_report = None
        system = None
        if args.workers:
            from .farm import FarmConfig, replay_farm

            farm = FarmConfig(workers=args.workers, engine=args.engine)
            result = replay_farm(trace, config, farm, telemetry=telemetry)
            stats, farm_report = result.stats, result.report
        else:
            system = MemorySystem(config)
            stats = system.replay(
                trace, engine=args.engine, telemetry=telemetry
            )
        source = f"repro-pim report {args.trace}"
        registry = MetricsRegistry(source=source)
        memsys_metrics(
            registry=registry,
            stats=stats,
            system=system,
            scheme=args.scheme,
            policy=args.policy,
        )
        if farm_report is not None:
            farm_metrics(farm_report, registry)
        telemetry.metrics_into(
            registry, scheme=args.scheme, policy=args.policy
        )
        timeseries = build_timeseries(telemetry, n_windows=args.windows)
        energy = build_energy(telemetry)
        document = build_report(
            telemetry,
            registry=registry,
            timeseries=timeseries,
            farm_report=farm_report,
            source=source,
            energy=energy,
        )
    except _BAD_INPUT as error:
        print(f"report failed: {error}", file=sys.stderr)
        return 2
    print(render_report(document))
    if args.json is not None:
        write_report(document, args.json)
        print(f"report:   wrote {args.json}")
    if args.timeseries is not None:
        args.timeseries.parent.mkdir(parents=True, exist_ok=True)
        args.timeseries.write_text(json.dumps(timeseries) + "\n")
        print(
            f"timeseries: wrote {args.timeseries} "
            f"({timeseries['n_windows']} windows)"
        )
    if args.energy is not None:
        args.energy.parent.mkdir(parents=True, exist_ok=True)
        args.energy.write_text(json.dumps(energy) + "\n")
        print(
            f"energy:   wrote {args.energy} "
            f"({energy['total_pj']:.6g} pJ, "
            f"{energy['pj_per_bit']:.6g} pJ/bit)"
        )
    return 0


def _pimexec_command(args: argparse.Namespace) -> int:
    """Run PIM kernels (or replay a program trace); print a report."""
    from .pimexec import (
        KERNEL_NAMES,
        PimExecMachine,
        build_kernel,
        compare_host_pim,
        parse_pim_program,
    )

    if args.trace is not None:
        if not args.trace.exists():
            print(f"no such trace file: {args.trace}", file=sys.stderr)
            return 2
        try:
            program = parse_pim_program(args.trace)
            machine = PimExecMachine()
            program.execute(machine)
            telemetry = _make_telemetry(args)
            result = machine.replay(
                engine=args.engine, telemetry=telemetry
            )
        except _BAD_INPUT as error:
            print(f"pimexec replay failed: {error}", file=sys.stderr)
            return 2
        print(f"trace:    {args.trace} ({len(program)} records)")
        print(f"records:  {program.counts()}")
        print(
            f"requests: {result.n_requests} "
            f"(pim={result.n_pim} broadcast={result.n_broadcast} "
            f"host={result.n_host})"
        )
        print(f"engine:   {result.engine}")
        print(f"units:    {machine.unit_mode}")
        print(f"makespan: {result.makespan_ns:.1f} ns")
        if telemetry is not None:
            registry = None
            if args.metrics is not None:
                from .telemetry import MetricsRegistry, pimexec_metrics

                registry = MetricsRegistry(
                    source=f"repro-pim pimexec --trace {args.trace}"
                )
                pimexec_metrics(result, registry, machine=machine)
            _write_telemetry(args, telemetry, registry)
        return 0

    names = (
        list(KERNEL_NAMES) if args.kernel == "all" else [args.kernel]
    )
    unknown = [n for n in names if n not in KERNEL_NAMES]
    if unknown:
        print(
            f"unknown kernel(s): {', '.join(unknown)}\n"
            f"available: {', '.join(KERNEL_NAMES)}",
            file=sys.stderr,
        )
        return 2
    if (
        args.metrics or args.timeline or args.timeseries or args.energy
    ) and len(names) != 1:
        print(
            "--metrics/--timeline/--timeseries/--energy instrument one "
            "replay: pick a single kernel with --kernel NAME",
            file=sys.stderr,
        )
        return 2
    failures = []
    header = (
        f"{'kernel':12s} {'host_ns':>10s} {'pim_ns':>10s} "
        f"{'speedup':>8s} {'correct':>8s}"
    )
    print(header)
    for name in names:
        kwargs = (
            {"n_cols": max(1, args.n // 32)}
            if name == "gemv"
            else {"n": args.n}
        )
        try:
            kernel = build_kernel(name, seed=args.seed, **kwargs)
            telemetry = _make_telemetry(args)
            comparison = compare_host_pim(
                kernel, engine=args.engine, telemetry=telemetry
            )
        except (ValueError, RuntimeError) as error:
            print(f"pimexec {name} failed: {error}", file=sys.stderr)
            return 2
        print(
            f"{name:12s} {comparison.host.makespan_ns:10.0f} "
            f"{comparison.pim.makespan_ns:10.0f} "
            f"{comparison.speedup:8.2f} "
            f"{'yes' if comparison.correct else 'NO':>8s}"
        )
        if telemetry is not None:
            registry = None
            if args.metrics is not None:
                from .telemetry import MetricsRegistry, pimexec_metrics

                registry = MetricsRegistry(
                    source=f"repro-pim pimexec --kernel {name}"
                )
                pimexec_metrics(
                    comparison.pim,
                    registry,
                    machine=comparison.machine,
                    kernel=name,
                )
            _write_telemetry(args, telemetry, registry, kernel=name)
        if not comparison.correct:
            failures.append(name)
    if failures:
        print(
            f"bank state diverged from NumPy for: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _nn_command(args: argparse.Namespace) -> int:
    """Run transformer kernels (or emit a workload trace)."""
    from .nn import (
        NN_KERNEL_NAMES,
        TransformerLayerSpec,
        build_nn_kernel,
        run_nn_kernel,
        transformer_layer_trace,
    )

    if args.emit_trace is not None:
        if (
            args.metrics is not None
            or args.timeline is not None
            or args.timeseries is not None
            or args.energy is not None
        ):
            print(
                "--metrics/--timeline/--timeseries/--energy instrument "
                "a replay; they do not apply to --emit-trace",
                file=sys.stderr,
            )
            return 2
        try:
            spec = TransformerLayerSpec(
                d_model=args.d_model,
                n_heads=args.heads,
                seq_len=args.seq_len,
                d_ff=args.d_ff,
            )
            text = transformer_layer_trace(
                spec,
                interarrival_ns=args.interarrival_ns,
                interarrival=args.interarrival,
                seed=args.seed,
            )
        except ValueError as error:
            print(f"nn trace generation failed: {error}", file=sys.stderr)
            return 2
        try:
            args.emit_trace.parent.mkdir(parents=True, exist_ok=True)
            args.emit_trace.write_text(text)
        except OSError as error:
            print(
                f"cannot write {args.emit_trace}: {error}",
                file=sys.stderr,
            )
            return 2
        lines = sum(
            1
            for line in text.splitlines()
            if line and not line.startswith("#")
        )
        print(
            f"wrote {args.emit_trace}: {lines} records "
            f"(d_model={spec.d_model} heads={spec.n_heads} "
            f"seq={spec.seq_len} d_ff={spec.ff_width}, "
            f"{args.interarrival} arrivals @ "
            f"{args.interarrival_ns} ns)"
        )
        return 0

    names = (
        list(NN_KERNEL_NAMES) if args.kernel == "all" else [args.kernel]
    )
    unknown = [n for n in names if n not in NN_KERNEL_NAMES]
    if unknown:
        print(
            f"unknown kernel(s): {', '.join(unknown)}\n"
            f"available: {', '.join(NN_KERNEL_NAMES)}",
            file=sys.stderr,
        )
        return 2
    if (
        args.metrics or args.timeline or args.timeseries or args.energy
    ) and len(names) != 1:
        print(
            "--metrics/--timeline/--timeseries/--energy instrument one "
            "replay: pick a single kernel with --kernel NAME",
            file=sys.stderr,
        )
        return 2
    mode = "bank-group" if args.bank_groups else "per-bank"
    print(f"dtype={args.dtype} mode={mode}")
    print(
        f"{'kernel':12s} {'host_ns':>10s} {'pim_ns':>10s} "
        f"{'speedup':>8s} {'bit_exact':>10s}"
    )
    failures = []
    for name in names:
        try:
            kernel = build_nn_kernel(
                name,
                dtype=args.dtype,
                bank_groups=args.bank_groups,
                seed=args.seed,
            )
            telemetry = _make_telemetry(args)
            comparison = run_nn_kernel(
                kernel, engine=args.engine, telemetry=telemetry
            )
        except (ValueError, RuntimeError) as error:
            print(f"nn {name} failed: {error}", file=sys.stderr)
            return 2
        print(
            f"{name:12s} {comparison.host.makespan_ns:10.0f} "
            f"{comparison.pim.makespan_ns:10.0f} "
            f"{comparison.speedup:8.2f} "
            f"{'yes' if comparison.correct else 'NO':>10s}"
        )
        if telemetry is not None:
            registry = None
            if args.metrics is not None:
                from .telemetry import MetricsRegistry, pimexec_metrics

                registry = MetricsRegistry(
                    source=f"repro-pim nn --kernel {name}"
                )
                pimexec_metrics(
                    comparison.pim,
                    registry,
                    machine=comparison.machine,
                    kernel=name,
                    dtype=args.dtype,
                    mode=mode,
                )
            _write_telemetry(
                args, telemetry, registry,
                kernel=name, dtype=args.dtype, mode=mode,
            )
        if not comparison.correct:
            failures.append(name)
    if failures:
        print(
            f"bank state diverged from the {args.dtype} reference "
            f"for: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: _t.Optional[_t.Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "replay":
        return _replay_command(args)

    if args.command == "farm":
        return _farm_command(args)

    if args.command == "report":
        return _report_command(args)

    if args.command == "pimexec":
        return _pimexec_command(args)

    if args.command == "nn":
        return _nn_command(args)

    if args.command == "list":
        for exp in all_experiments():
            print(f"{exp.name:20s} {exp.paper_reference:32s} {exp.title}")
        return 0

    names = (
        experiment_names() if args.command == "all" else list(args.names)
    )
    unknown = [n for n in names if n not in experiment_names()]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}\n"
            f"available: {', '.join(experiment_names())}",
            file=sys.stderr,
        )
        return 2

    config = _config(args)
    failures: _t.List[str] = []
    for name in names:
        result = run_experiment(name, config, echo=print)
        if not result.passed:
            failures.append(
                f"{name}: {', '.join(result.failed_checks())}"
            )
    if failures:
        print("FAILED shape checks:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"all shape checks passed for: {', '.join(names)}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
