"""The unified metrics registry: one snapshot schema for every layer.

Every subsystem that reports numbers — :class:`~repro.memsys.MemSysStats`
replays, :class:`~repro.pimexec.PimExecResult` kernel runs, the
:mod:`repro.nn` comparisons, the replay engines' self-profiling phase
timers, and the ``benchmarks/bench_*.py`` records — emits through the
same three primitives:

* **counters** — monotone totals (requests completed, bits delivered,
  dynamic PIM instructions executed);
* **gauges** — point-in-time values (sustained bandwidth, row-hit rate,
  channel utilization, makespan);
* **histograms** — distribution summaries with *exact* order-statistic
  percentiles (queue-wait and service latency p50/p95/p99/max).

Each entry carries a name plus free-form string ``tags`` (channel,
scheme, policy, phase, kernel, ...), so one snapshot can hold the whole
cross product of an experiment without inventing ad-hoc dict shapes per
call site.  :meth:`MetricsRegistry.snapshot` serializes to the
``repro.telemetry/v1`` JSON document described in
``docs/observability.md``, which is what ``repro-pim ... --metrics
out.json`` writes and what CI uploads as a build artifact.

Percentiles are *exact* in the order-statistic sense: ``pXX`` is the
nearest-rank element of the sorted sample (``sorted[ceil(q/100 * n) -
1]``), always an actually-observed value — never an interpolation — so
two bit-identical latency arrays produce bit-identical percentile
fields (the property the cross-engine equivalence suite leans on).
"""

from __future__ import annotations

import json
import math
import pathlib
import typing as _t

import numpy as np

__all__ = [
    "SCHEMA",
    "MetricsRegistry",
    "exact_percentile",
    "latency_summary",
    "farm_metrics",
    "memsys_metrics",
    "pimexec_metrics",
]

#: Snapshot schema identifier (bump on breaking changes).
SCHEMA = "repro.telemetry/v1"

#: The percentile grid every latency histogram reports.
PERCENTILES = (50, 95, 99)


def exact_percentile(values: np.ndarray, q: float) -> float:
    """Nearest-rank percentile: an actually-observed order statistic.

    ``q`` is in percent.  For a sorted sample ``x[0..n-1]`` the
    nearest-rank definition returns ``x[ceil(q/100 * n) - 1]`` (clamped
    to the sample), so the result is always an element of ``values`` —
    bit-identical inputs give bit-identical percentiles.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return math.nan
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    rank = max(0, min(n - 1, math.ceil(q / 100.0 * n) - 1))
    return float(np.partition(values, rank)[rank])


def latency_summary(values: np.ndarray) -> _t.Dict[str, float]:
    """Exact distribution summary of one latency array (ns).

    Returns ``count`` / ``mean`` / ``min`` / ``p50`` / ``p95`` /
    ``p99`` / ``max`` — the shape every histogram entry of the metrics
    snapshot carries.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        nan = math.nan
        return {
            "count": 0, "mean": nan, "min": nan,
            "p50": nan, "p95": nan, "p99": nan, "max": nan,
        }
    ordered = np.sort(values)
    summary: _t.Dict[str, float] = {
        "count": int(n),
        "mean": float(ordered.mean()),
        "min": float(ordered[0]),
    }
    for q in PERCENTILES:
        rank = max(0, min(n - 1, math.ceil(q / 100.0 * n) - 1))
        summary[f"p{q}"] = float(ordered[rank])
    summary["max"] = float(ordered[-1])
    return summary


def _entry(name: str, tags: _t.Mapping[str, _t.Any]) -> dict:
    return {
        "name": str(name),
        "tags": {key: str(value) for key, value in sorted(tags.items())},
    }


class MetricsRegistry:
    """Counters + gauges + histograms behind one snapshot schema.

    Parameters
    ----------
    source:
        Free-form provenance string recorded in the snapshot (e.g.
        ``"repro-pim replay app.trace"`` or ``"bench_memsys"``).
    """

    def __init__(self, source: str = "") -> None:
        self.source = source
        self._counters: _t.List[dict] = []
        self._gauges: _t.List[dict] = []
        self._histograms: _t.List[dict] = []

    # ------------------------------------------------------------------
    def counter(self, name: str, value: float, **tags: _t.Any) -> None:
        """Record one monotone total."""
        entry = _entry(name, tags)
        entry["value"] = value
        self._counters.append(entry)

    def gauge(self, name: str, value: float, **tags: _t.Any) -> None:
        """Record one point-in-time value."""
        entry = _entry(name, tags)
        entry["value"] = float(value)
        self._gauges.append(entry)

    def histogram(
        self,
        name: str,
        values: _t.Union[np.ndarray, _t.Sequence[float]],
        **tags: _t.Any,
    ) -> _t.Dict[str, float]:
        """Record one distribution; returns its exact summary."""
        summary = latency_summary(np.asarray(values, dtype=np.float64))
        entry = _entry(name, tags)
        entry.update(summary)
        self._histograms.append(entry)
        return summary

    def summary_histogram(
        self, name: str, summary: _t.Mapping[str, float], **tags: _t.Any
    ) -> None:
        """Record an already-summarized distribution verbatim."""
        entry = _entry(name, tags)
        entry.update(
            {key: summary[key] for key in latency_summary(np.empty(0))}
        )
        self._histograms.append(entry)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Append ``other``'s entries to this registry (returns self)."""
        self._counters.extend(other._counters)
        self._gauges.extend(other._gauges)
        self._histograms.extend(other._histograms)
        return self

    # ------------------------------------------------------------------
    @property
    def counters(self) -> _t.List[dict]:
        return list(self._counters)

    @property
    def gauges(self) -> _t.List[dict]:
        return list(self._gauges)

    @property
    def histograms(self) -> _t.List[dict]:
        return list(self._histograms)

    def snapshot(self) -> dict:
        """The serializable ``repro.telemetry/v1`` document."""
        return {
            "schema": SCHEMA,
            "source": self.source,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
        }

    def write(self, path: _t.Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the snapshot as JSON; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2) + "\n")
        return path

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
        )

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {self.source!r} "
            f"counters={len(self._counters)} gauges={len(self._gauges)} "
            f"histograms={len(self._histograms)}>"
        )


# ----------------------------------------------------------------------
# adapters: existing result records -> the unified schema
# ----------------------------------------------------------------------
def memsys_metrics(
    stats: _t.Any,
    registry: _t.Optional[MetricsRegistry] = None,
    system: _t.Optional[_t.Any] = None,
    **tags: _t.Any,
) -> MetricsRegistry:
    """Emit one :class:`~repro.memsys.MemSysStats` into a registry.

    ``system`` (the replayed :class:`~repro.memsys.MemorySystem`) adds
    the per-channel collector snapshots of
    :meth:`~repro.memsys.ChannelController.metrics` — latency extremes
    and queue-occupancy peaks that the flat summary reduces away.
    """
    # explicit None test: an empty registry is falsy (it has __len__)
    if registry is None:
        registry = MetricsRegistry(source="memsys")
    registry.counter("memsys.requests", stats.n_requests, **tags)
    registry.counter("memsys.bits_delivered", stats.total_bits, **tags)
    registry.counter("memsys.row_hits", stats.row_hits, **tags)
    registry.counter("memsys.row_misses", stats.row_misses, **tags)
    registry.counter("memsys.row_conflicts", stats.row_conflicts, **tags)
    registry.gauge("memsys.makespan_ns", stats.makespan_ns, **tags)
    registry.gauge(
        "memsys.sustained_gbit_per_s",
        stats.sustained_bits_per_sec / 1e9,
        **tags,
    )
    registry.gauge("memsys.row_hit_rate", stats.row_hit_rate, **tags)
    registry.gauge(
        "memsys.mean_latency_ns", stats.mean_queue_latency_ns, **tags
    )
    registry.gauge(
        "memsys.mean_queue_length", stats.mean_queue_length, **tags
    )
    registry.gauge(
        "memsys.channel_utilization", stats.channel_utilization, **tags
    )
    for row in stats.per_channel:
        channel_tags = dict(tags, channel=row["channel"])
        registry.counter(
            "memsys.channel.requests", row["requests"], **channel_tags
        )
        registry.gauge(
            "memsys.channel.row_hit_rate",
            row["row_hit_rate"],
            **channel_tags,
        )
        registry.gauge(
            "memsys.channel.gbit_delivered",
            row["gbit_delivered"],
            **channel_tags,
        )
    if system is not None:
        now = stats.makespan_ns
        for controller in system.controllers:
            snap = controller.metrics(now)
            channel_tags = dict(tags, channel=controller.channel_id)
            registry.gauge(
                "memsys.channel.max_queue_length",
                snap["queue_max"],
                **channel_tags,
            )
            registry.gauge(
                "memsys.channel.min_latency_ns",
                snap["latency_min_ns"],
                **channel_tags,
            )
            registry.gauge(
                "memsys.channel.max_latency_ns",
                snap["latency_max_ns"],
                **channel_tags,
            )
            registry.gauge(
                "memsys.channel.busy_fraction",
                snap["busy_fraction"],
                **channel_tags,
            )
    return registry


def pimexec_metrics(
    result: _t.Any,
    registry: _t.Optional[MetricsRegistry] = None,
    machine: _t.Optional[_t.Any] = None,
    **tags: _t.Any,
) -> MetricsRegistry:
    """Emit one :class:`~repro.pimexec.PimExecResult` into a registry.

    ``machine`` (the generating :class:`~repro.pimexec.PimExecMachine`)
    adds its per-channel sequencer statistics — dynamic instructions,
    control steps, kernels loaded — plus the ``pimexec.unit_commands``
    counter tagged with the execution-unit tier (``unit_mode``) that
    actually ran the kernel, so dashboards can tell a vectorized run
    from a scalar one.
    """
    # explicit None test: an empty registry is falsy (it has __len__)
    if registry is None:
        registry = MetricsRegistry(source="pimexec")
    engine = result.engine or "unknown"
    registry.counter(
        "pimexec.requests", result.n_requests, engine=engine, **tags
    )
    registry.counter("pimexec.pim_commands", result.n_pim, **tags)
    registry.counter("pimexec.broadcasts", result.n_broadcast, **tags)
    registry.counter("pimexec.host_requests", result.n_host, **tags)
    memsys_metrics(result.stats, registry, **tags)
    if machine is not None:
        registry.counter(
            "pimexec.unit_commands",
            sum(
                unit.commands_executed
                for _ch, _index, unit in machine.iter_units()
            ),
            unit_mode=machine.unit_mode,
            **tags,
        )
        for channel, stats in enumerate(machine.sequencer_stats()):
            channel_tags = dict(tags, channel=channel)
            registry.counter(
                "pimexec.sequencer.instructions",
                stats["instructions"],
                **channel_tags,
            )
            registry.counter(
                "pimexec.sequencer.control_steps",
                stats["control_steps"],
                **channel_tags,
            )
            registry.counter(
                "pimexec.sequencer.kernels_loaded",
                stats["kernels_loaded"],
                **channel_tags,
            )
    return registry


def farm_metrics(
    report: _t.Any,
    registry: _t.Optional[MetricsRegistry] = None,
    **tags: _t.Any,
) -> MetricsRegistry:
    """Emit one :class:`~repro.farm.FarmReport` into a registry.

    Surfaces the robustness ledger of a sharded replay — retries,
    timeouts, crashes, integrity failures, and degradations — as
    counters, so fleet dashboards can alert on silent degradation (a
    farm that keeps falling back to in-process replay still returns
    exact results, but has stopped being a farm).
    """
    # explicit None test: an empty registry is falsy (it has __len__)
    if registry is None:
        registry = MetricsRegistry(source="farm")
    tags = dict(tags, mode=report.mode)
    registry.gauge("farm.workers", report.workers, **tags)
    registry.counter("farm.shards", report.n_shards, **tags)
    registry.counter("farm.attempts", report.attempts, **tags)
    registry.counter("farm.retries", report.retries, **tags)
    registry.counter("farm.timeouts", report.timeouts, **tags)
    registry.counter("farm.crashes", report.crashes, **tags)
    registry.counter(
        "farm.integrity_failures", report.integrity_failures, **tags
    )
    registry.counter(
        "farm.degraded_shards", report.degraded_shards, **tags
    )
    registry.counter(
        "farm.harmonized_shards", report.harmonized_shards, **tags
    )
    registry.counter(
        "farm.single_process_fallbacks",
        int(report.fell_back_to_single),
        **tags,
    )
    if report.fallback_reason:
        registry.gauge(
            "farm.degraded",
            1.0,
            reason=report.fallback_reason,
            **tags,
        )
    return registry
