"""repro.telemetry — observability for the replay engines.

An off-by-default, bit-exactness-preserving layer over the memory
system, the PIM machine, and the transformer-kernel workloads:

* :class:`LatencyRecorder` / :class:`ReplayTelemetry` — per-request
  arrival/start/finish arrays with exact p50/p95/p99/max queue-wait and
  service-time percentiles, bit-identical across both replay engines
  (:mod:`repro.telemetry.latency`);
* :class:`MetricsRegistry` — the unified counters + gauges +
  histograms snapshot schema every subsystem emits through
  (:mod:`repro.telemetry.registry`);
* :func:`build_timeline` / :func:`write_timeline` — Chrome-trace-event
  export of per-bank busy spans, row open/close, refresh blackouts, and
  AB barriers for Perfetto (:mod:`repro.telemetry.timeline`);
* :func:`build_energy` / :class:`EnergyCoefficients` — DRAM-command-
  level energy accounting and windowed power derived post-replay from
  the recorder arrays, cross-validated against the analytic
  :mod:`repro.arch.energy` model (:mod:`repro.telemetry.energy`);
* :class:`PhaseProfiler` — coarse per-phase wall-clock timers inside
  the replay engines (:mod:`repro.telemetry.profile`).

See ``docs/observability.md`` for the schema reference and usage.
"""

from .energy import (
    ENERGY_CLASSES,
    ENERGY_SCHEMA,
    EnergyCoefficients,
    build_energy,
    energy_metrics,
    validate_energy,
    write_energy,
)
from .latency import ALL_BANKS, OUTCOME_NAMES, LatencyRecorder, ReplayTelemetry
from .profile import PhaseProfiler
from .registry import (
    SCHEMA,
    MetricsRegistry,
    exact_percentile,
    farm_metrics,
    latency_summary,
    memsys_metrics,
    pimexec_metrics,
)
from .report import (
    REPORT_SCHEMA,
    build_report,
    render_report,
    replay_tier,
    write_report,
)
from .timeline import (
    MAX_EVENTS,
    TIMELINE_SCHEMA,
    build_timeline,
    validate_timeline,
    write_timeline,
)
from .timeseries import (
    TIMESERIES_SCHEMA,
    build_timeseries,
    validate_timeseries,
    write_timeseries,
)

__all__ = [
    "ALL_BANKS",
    "OUTCOME_NAMES",
    "LatencyRecorder",
    "ReplayTelemetry",
    "PhaseProfiler",
    "SCHEMA",
    "MetricsRegistry",
    "exact_percentile",
    "farm_metrics",
    "latency_summary",
    "memsys_metrics",
    "pimexec_metrics",
    "MAX_EVENTS",
    "TIMELINE_SCHEMA",
    "build_timeline",
    "validate_timeline",
    "write_timeline",
    "TIMESERIES_SCHEMA",
    "build_timeseries",
    "validate_timeseries",
    "write_timeseries",
    "ENERGY_CLASSES",
    "ENERGY_SCHEMA",
    "EnergyCoefficients",
    "build_energy",
    "energy_metrics",
    "validate_energy",
    "write_energy",
    "REPORT_SCHEMA",
    "build_report",
    "render_report",
    "replay_tier",
    "write_report",
]
