"""Command-timeline export in the Chrome trace-event format.

Converts one recorded replay into a JSON document that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` open directly:
every memory channel becomes a *process*, and each channel carries one
*thread* track per bank (service spans), an ``all-banks`` track
(lockstep PIM row ops and AB register-broadcast barriers), a ``queue``
track (per-request admission-to-service waits), a ``refresh`` track
(deterministic tREFI/tRFC blackout windows), and one ``rows.*`` track
per bank showing which row the bank held open over time.  The AB
barrier spans make the FR-FCFS serialization that caps pimexec
throughput directly visible — the bottleneck the ROADMAP describes.

All spans are *complete events* (``ph == "X"``): simulated nanoseconds
map to trace microseconds (``ts = ns / 1000``) with
``displayTimeUnit: "ns"`` so viewers display the original resolution.
``repro-pim replay --timeline out.json`` (and the ``pimexec`` / ``nn``
verbs) write this document; :func:`validate_timeline` is the schema
check the test suite runs against every export path.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

import numpy as np

from .latency import ALL_BANKS, OUTCOME_NAMES

if _t.TYPE_CHECKING:  # pragma: no cover
    from .latency import ReplayTelemetry

__all__ = [
    "TIMELINE_SCHEMA",
    "MAX_EVENTS",
    "build_timeline",
    "validate_timeline",
    "write_timeline",
]

#: Schema identifier recorded in the document's ``otherData``.
TIMELINE_SCHEMA = "repro.telemetry/timeline-v1"

#: Default cap on emitted span events (metadata excluded): a full
#: bank/queue/row rendering of a million-request trace would dwarf what
#: trace viewers load comfortably.  Spans are kept earliest-first and
#: the number dropped is recorded in ``otherData.truncated_events``.
MAX_EVENTS = 200_000

_BROADCAST = OUTCOME_NAMES.index("broadcast")


def _thread_layout(n_banks: int) -> _t.Dict[str, _t.Any]:
    """tid assignment for one channel's tracks."""
    return {
        "banks": list(range(n_banks)),
        "all_banks": n_banks,
        "queue": n_banks + 1,
        "refresh": n_banks + 2,
        "rows": [n_banks + 3 + b for b in range(n_banks)],
        "rows_all_banks": 2 * n_banks + 3,
        "energy": 2 * n_banks + 4,
    }


def _metadata_events(
    channels: _t.Iterable[int], n_banks: int
) -> _t.List[dict]:
    layout = _thread_layout(n_banks)
    events = []
    for ch in channels:
        events.append(
            {
                "ph": "M", "pid": ch, "tid": 0,
                "name": "process_name",
                "args": {"name": f"channel {ch}"},
            }
        )
        names: _t.List[_t.Tuple[int, str]] = [
            (tid, f"bank {b}") for b, tid in enumerate(layout["banks"])
        ]
        names.append((layout["all_banks"], "all-banks"))
        names.append((layout["queue"], "queue"))
        names.append((layout["refresh"], "refresh"))
        names.extend(
            (tid, f"rows.b{b}")
            for b, tid in enumerate(layout["rows"])
        )
        names.append((layout["rows_all_banks"], "rows.all-banks"))
        names.append((layout["energy"], "energy"))
        for tid, name in names:
            events.append(
                {
                    "ph": "M", "pid": ch, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": name},
                }
            )
    return events


def _span(
    name: str,
    cat: str,
    pid: int,
    tid: int,
    start_ns: float,
    end_ns: float,
    args: _t.Optional[dict] = None,
) -> dict:
    event = {
        "ph": "X",
        "name": name,
        "cat": cat,
        "pid": pid,
        "tid": tid,
        "ts": start_ns / 1000.0,
        "dur": max(0.0, end_ns - start_ns) / 1000.0,
    }
    if args:
        event["args"] = args
    return event


def build_timeline(
    telemetry: "ReplayTelemetry", max_events: int = MAX_EVENTS
) -> dict:
    """Build the Chrome-trace document from one recorded replay."""
    recorder = telemetry.recorder
    if recorder is None or not recorder.captured:
        raise RuntimeError(
            "timeline export needs a captured replay: pass "
            "ReplayTelemetry(latency=True) to replay(..., telemetry=...)"
        )
    config = telemetry.config
    if config is None:
        raise RuntimeError(
            "timeline export needs a finished replay (no config "
            "recorded yet)"
        )
    from ..memsys.request import OPS_BY_CODE, Op

    n_banks = config.banks_per_channel
    layout = _thread_layout(n_banks)
    makespan = telemetry.makespan_ns

    arrival = recorder.arrival
    start = recorder.start_service
    finish = recorder.finish
    channel = recorder.channel
    bank = recorder.bank
    row = recorder.row
    op = recorder.op_code
    outcome = recorder.outcome_code
    n = arrival.shape[0]

    ab_code = Op.AB.code
    pim_code = Op.PIM.code
    spans: _t.List[dict] = []

    # --- service spans (one per request, on its bank track) -----------
    for i in range(n):
        ch = int(channel[i])
        b = int(bank[i])
        code = int(op[i])
        out = int(outcome[i])
        if code == ab_code:
            name, cat, tid = "AB barrier", "barrier", layout["all_banks"]
        elif code == pim_code:
            name = f"PIM {OUTCOME_NAMES[out]}"
            cat, tid = "service", layout["all_banks"]
        else:
            name, cat, tid = OUTCOME_NAMES[out], "service", b
        spans.append(
            _span(
                name, cat, ch, tid, float(start[i]), float(finish[i]),
                args={"row": int(row[i]), "op": OPS_BY_CODE[code].value},
            )
        )
        # --- queue-wait spans (admission -> service start) ------------
        wait = float(start[i]) - float(arrival[i])
        if wait > 0.0:
            spans.append(
                _span(
                    "queue-wait",
                    "queue",
                    ch,
                    layout["queue"],
                    float(arrival[i]),
                    float(start[i]),
                    args={"op": OPS_BY_CODE[code].value},
                )
            )

    # --- row open/close spans (derived from outcome boundaries) -------
    # A row opens at the start of each miss/conflict and stays latched
    # until the next miss/conflict on the same track (or the track's
    # last service); AB broadcasts never touch row buffers and all-bank
    # PIM ops get their own track.  Refresh precharges are already
    # reflected in the recorded outcomes (the next access is a miss),
    # so span boundaries line up with the blackout track.
    touches = op != ab_code
    order = np.lexsort(
        (start[touches], bank[touches], channel[touches])
    )
    t_idx = np.nonzero(touches)[0][order]
    span_open: _t.Optional[_t.Tuple[int, int, int, float]] = None
    last_finish = 0.0
    hit_code = OUTCOME_NAMES.index("hit")
    for i in t_idx.tolist():
        ch, b = int(channel[i]), int(bank[i])
        tid = (
            layout["rows_all_banks"]
            if b == ALL_BANKS
            else layout["rows"][b]
        )
        if span_open is not None and span_open[:2] != (ch, tid):
            o_ch, o_tid, o_row, o_start = (
                span_open[0], span_open[1], span_open[2], span_open[3],
            )
            spans.append(
                _span(
                    f"row {o_row}", "row", o_ch, o_tid, o_start,
                    last_finish,
                )
            )
            span_open = None
        if int(outcome[i]) != hit_code:  # miss/conflict: row turnover
            if span_open is not None:
                spans.append(
                    _span(
                        f"row {span_open[2]}", "row", span_open[0],
                        span_open[1], span_open[3], float(start[i]),
                    )
                )
            span_open = (ch, tid, int(row[i]), float(start[i]))
        last_finish = float(finish[i])
    if span_open is not None:
        spans.append(
            _span(
                f"row {span_open[2]}", "row", span_open[0],
                span_open[1], span_open[3], last_finish,
            )
        )

    # --- refresh blackout spans ---------------------------------------
    schedule = config.refresh_schedule()
    if schedule is not None and makespan == makespan:
        blackouts = list(schedule.blackouts(makespan))
        for ch in range(config.n_channels):
            for begin, end, which in blackouts:
                name = (
                    "refresh"
                    if which is None
                    else f"refresh b{which}"
                )
                spans.append(
                    _span(
                        name, "refresh", ch, layout["refresh"],
                        begin, end,
                    )
                )

    # --- energy breakdown track (one per channel) ---------------------
    # Windowed power spans from the command-level energy accounting:
    # each span covers one window of the default grid and carries the
    # channel's event energy plus its share of refresh/background, so
    # Perfetto shows where the power went next to the busy spans that
    # caused it.
    if makespan == makespan and makespan > 0:
        from .energy import EnergyCoefficients, _event_components
        from .energy import _refresh_events
        from .timeseries import DEFAULT_WINDOWS, _window_index

        coefficients = EnergyCoefficients()
        count = DEFAULT_WINDOWS
        window_ns = makespan / count
        components = _event_components(recorder, config, coefficients)
        finish_idx = _window_index(finish, window_ns, count)
        begins, refresh_pj = _refresh_events(
            config, makespan, coefficients
        )
        refresh_per_window = np.zeros(count)
        if begins.shape[0]:
            refresh_per_window = np.bincount(
                _window_index(begins, window_ns, count),
                weights=refresh_pj,
                minlength=count,
            ) / config.n_channels
        for ch in range(config.n_channels):
            mine = channel == ch
            event_per_window = np.bincount(
                finish_idx[mine],
                weights=components["event"][mine],
                minlength=count,
            )
            total = event_per_window + refresh_per_window
            for w in range(count):
                begin_ns = w * window_ns
                spans.append(
                    _span(
                        f"{total[w] / window_ns:.3g} mW",
                        "energy",
                        ch,
                        layout["energy"],
                        begin_ns,
                        begin_ns + window_ns,
                        args={
                            "event_pj": float(event_per_window[w]),
                            "refresh_pj": float(
                                refresh_per_window[w]
                            ),
                        },
                    )
                )

    # --- farm worker/shard tracks (distributed replays only) ----------
    # The supervisor's span log renders as one extra process past the
    # channel tracks: supervisor + per-shard threads on wall-clock
    # microseconds (the simulation tracks stay on simulated time; the
    # process name says which clock a track runs on).
    farm_metadata: _t.List[dict] = []
    farm_log = getattr(telemetry, "farm_events", None)
    if farm_log is not None and len(farm_log) > 0:
        rendered = farm_log.timeline_events(config.n_channels)
        farm_metadata = [e for e in rendered if e["ph"] == "M"]
        spans.extend(e for e in rendered if e["ph"] == "X")

    truncated = 0
    spans.sort(key=lambda event: (event["ts"], event["tid"]))
    if len(spans) > max_events:
        truncated = len(spans) - max_events
        spans = spans[:max_events]

    events = _metadata_events(range(config.n_channels), n_banks)
    events.extend(farm_metadata)
    events.extend(spans)
    return {
        "displayTimeUnit": "ns",
        "traceEvents": events,
        "otherData": {
            "schema": TIMELINE_SCHEMA,
            "engine": telemetry.engine,
            "makespan_ns": makespan,
            "n_requests": int(n),
            "truncated_events": truncated,
        },
    }


def write_timeline(
    telemetry: "ReplayTelemetry",
    path: _t.Union[str, pathlib.Path],
    max_events: _t.Optional[int] = None,
) -> pathlib.Path:
    """Build and write the timeline JSON; returns the path."""
    document = build_timeline(
        telemetry,
        max_events=MAX_EVENTS if max_events is None else max_events,
    )
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document) + "\n")
    return path


def validate_timeline(document: _t.Any) -> _t.List[str]:
    """Schema-check one timeline document; returns problem strings.

    An empty list means the document is a well-formed Chrome
    trace-event JSON of this exporter's dialect (the test suite asserts
    exactly that on every export path).
    """
    problems: _t.List[str] = []
    if not isinstance(document, dict):
        return [f"document must be an object, got {type(document).__name__}"]
    if document.get("displayTimeUnit") != "ns":
        problems.append("displayTimeUnit must be 'ns'")
    other = document.get("otherData")
    if not isinstance(other, dict):
        problems.append("otherData must be an object")
    elif other.get("schema") != TIMELINE_SCHEMA:
        problems.append(
            f"otherData.schema must be {TIMELINE_SCHEMA!r}, "
            f"got {other.get('schema')!r}"
        )
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        problems.append("traceEvents must be a non-empty array")
        return problems
    n_spans = 0
    last_ts: _t.Optional[float] = None
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("M", "X"):
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if ph == "M":
            if event.get("name") not in (
                "process_name", "thread_name"
            ):
                problems.append(
                    f"{where}: metadata name must be process_name or "
                    f"thread_name"
                )
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: metadata needs args.name")
            continue
        n_spans += 1
        ts = event.get("ts")
        dur = event.get("dur")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            problems.append(f"{where}: ts must be a finite number >= 0")
        else:
            # the exporter emits spans globally sorted by start time
            # (overlap on a track is fine — banks genuinely overlap
            # queue waits — but start times must never run backwards)
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"{where}: ts {ts:g} out of order (previous span "
                    f"started at {last_ts:g})"
                )
            last_ts = float(ts)
        if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
            problems.append(f"{where}: dur must be a finite number >= 0")
        if "cat" not in event:
            problems.append(f"{where}: complete event missing cat")
    if n_spans > MAX_EVENTS:
        problems.append(
            f"span count {n_spans} exceeds the {MAX_EVENTS} cap "
            "(the exporter truncates earliest-first; a larger document "
            "was built with the cap overridden)"
        )
    return problems
