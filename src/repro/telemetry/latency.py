"""Per-request latency recording across both replay engines.

Both engines already *know* every request's arrival, service start, and
finish: the event engine stamps them onto :class:`MemRequest` objects as
its calendar advances, and the vectorized fast-path tier solves them in
closed form as per-channel arrays.  :class:`LatencyRecorder` exposes
those times as trace-ordered numpy arrays without changing either
engine's arithmetic — the capture stores *references* (the request list,
or the fast path's plan arrays) during replay and defers all array
assembly to first access, so recording costs nothing measurable while
the clock is hot (the <5% overhead floor of ``bench_memsys``).

Because the fast path is certified bit-exact against the event engine,
the recorded ``arrival`` / ``start_service`` / ``finish`` arrays are
**bit-identical** between engines for the same trace and configuration —
a certificate-strength guarantee the cross-engine equivalence suite
(``tests/telemetry/test_equivalence.py``) checks with
``np.array_equal`` over the full refresh × arrival × scheme × policy
matrix.

:class:`ReplayTelemetry` is the handle callers pass to
:meth:`MemorySystem.replay(..., telemetry=...)
<repro.memsys.MemorySystem.replay>`: it bundles the recorder with a
:class:`~repro.telemetry.profile.PhaseProfiler`, remembers which engine
ran, and fans out to the metrics registry and the Chrome-trace timeline
exporter.
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np

from .profile import PhaseProfiler
from .registry import MetricsRegistry, latency_summary

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..memsys.request import MemRequest
    from ..memsys.system import MemorySystem, MemSysConfig, MemSysStats

__all__ = ["OUTCOME_NAMES", "LatencyRecorder", "ReplayTelemetry"]

#: Outcome vocabulary: codes 0-2 align with
#: :data:`repro.memsys.bank.OUTCOMES`; 3 is the AB register broadcast
#: (which never touches a row buffer, so the bank module doesn't know
#: it).
OUTCOME_NAMES = ("hit", "miss", "conflict", "broadcast")
_OUTCOME_CODE = {name: code for code, name in enumerate(OUTCOME_NAMES)}

#: Pseudo bank index for all-bank operations (PIM row ops, AB
#: broadcasts), which occupy every bank of their channel at once.
ALL_BANKS = -1


class LatencyRecorder:
    """Trace-ordered per-request times, captured lazily from a replay.

    Populated by the replay engines through one of the two private
    capture hooks; everything public is derived on first access:

    * :attr:`arrival`, :attr:`start_service`, :attr:`finish` — the
      engine's exact per-request instants (ns, trace order);
    * :attr:`queue_wait`, :attr:`service_time`, :attr:`total_latency` —
      the derived durations;
    * :attr:`channel`, :attr:`bank`, :attr:`row`, :attr:`op_code`,
      :attr:`outcome_code` — routing and outcome context
      (``bank == ALL_BANKS`` for all-bank PIM/AB operations).
    """

    def __init__(self) -> None:
        self._requests: _t.Optional[_t.Sequence["MemRequest"]] = None
        self._plan: _t.Optional[dict] = None
        self._arrays: _t.Optional[_t.Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # capture hooks (called by the replay engines)
    # ------------------------------------------------------------------
    def _guard_single_capture(self) -> None:
        if self._requests is not None or self._plan is not None:
            raise RuntimeError(
                "this LatencyRecorder already captured a replay; use a "
                "fresh ReplayTelemetry per replay"
            )

    def _capture_requests(
        self, requests: _t.Sequence["MemRequest"]
    ) -> None:
        """Adopt a fully-replayed request list (event engine, or the
        fast path's exact tier — both fill every runtime field)."""
        self._guard_single_capture()
        self._requests = requests

    def _capture_plan(
        self,
        op_codes: np.ndarray,
        channel: np.ndarray,
        row: np.ndarray,
        flat_bank: np.ndarray,
        plan: _t.Sequence[_t.Optional[dict]],
    ) -> None:
        """Adopt the vectorized tier's closed-form plan arrays."""
        self._guard_single_capture()
        self._plan = {
            "op_codes": op_codes,
            "channel": channel,
            "row": row,
            "flat_bank": flat_bank,
            "plan": plan,
        }

    def _capture_arrays(
        self, arrays: _t.Dict[str, np.ndarray]
    ) -> None:
        """Adopt already-assembled trace-ordered arrays.

        The replay farm's merge path: shard workers record through
        their own recorders, the supervisor scatters the shard arrays
        back to trace order and hands the merged dict here — the same
        eight keys :meth:`_assemble` produces, so every derived
        property behaves identically.
        """
        self._guard_single_capture()
        expected = {
            "arrival", "start_service", "finish", "outcome",
            "channel", "bank", "row", "op",
        }
        if set(arrays) != expected:
            raise ValueError(
                f"merged capture needs keys {sorted(expected)}, got "
                f"{sorted(arrays)}"
            )
        self._plan = {}  # mark as captured for the guard
        self._arrays = dict(arrays)

    @property
    def captured(self) -> bool:
        return self._requests is not None or self._plan is not None

    # ------------------------------------------------------------------
    # lazy assembly
    # ------------------------------------------------------------------
    def _assemble(self) -> _t.Dict[str, np.ndarray]:
        if self._arrays is not None:
            return self._arrays
        if self._plan is not None:
            self._arrays = self._assemble_from_plan(self._plan)
        elif self._requests is not None:
            self._arrays = self._assemble_from_requests(self._requests)
        else:
            raise RuntimeError(
                "no replay captured; pass this telemetry to "
                "MemorySystem.replay(..., telemetry=...) first"
            )
        return self._arrays

    @staticmethod
    def _assemble_from_plan(
        captured: dict,
    ) -> _t.Dict[str, np.ndarray]:
        from ..memsys.request import Op

        op_codes = captured["op_codes"]
        n = op_codes.shape[0]
        arrival = np.empty(n)
        start = np.empty(n)
        finish = np.empty(n)
        outcome = np.empty(n, dtype=np.int64)
        for data in captured["plan"]:
            if data is None:
                continue
            idx = data["idx"]
            arrival[idx] = data["arrival"]
            start[idx] = data["start"]
            finish[idx] = data["finish"]
            outcome[idx] = data["outcome"]
        all_bank = (op_codes == Op.PIM.code) | (op_codes == Op.AB.code)
        bank = np.where(all_bank, ALL_BANKS, captured["flat_bank"])
        return {
            "arrival": arrival,
            "start_service": start,
            "finish": finish,
            "outcome": outcome,
            "channel": captured["channel"].astype(np.int64),
            "bank": bank.astype(np.int64),
            "row": captured["row"].astype(np.int64),
            "op": op_codes.astype(np.int64),
        }

    @staticmethod
    def _assemble_from_requests(
        requests: _t.Sequence["MemRequest"],
    ) -> _t.Dict[str, np.ndarray]:
        n = len(requests)
        arrival = np.empty(n)
        start = np.empty(n)
        finish = np.empty(n)
        outcome = np.empty(n, dtype=np.int64)
        channel = np.empty(n, dtype=np.int64)
        bank = np.empty(n, dtype=np.int64)
        row = np.empty(n, dtype=np.int64)
        op = np.empty(n, dtype=np.int64)
        for i, request in enumerate(requests):
            arrival[i] = request.arrival
            start[i] = request.start_service
            finish[i] = request.finish
            outcome[i] = _OUTCOME_CODE[request.outcome]
            coords = request.coords
            channel[i] = coords.channel
            index = request.bank_index
            bank[i] = ALL_BANKS if index is None else index
            row[i] = coords.row
            op[i] = request.op.code
        return {
            "arrival": arrival,
            "start_service": start,
            "finish": finish,
            "outcome": outcome,
            "channel": channel,
            "bank": bank,
            "row": row,
            "op": op,
        }

    # ------------------------------------------------------------------
    # recorded arrays (trace order)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self._assemble()["arrival"].shape[0])

    @property
    def arrival(self) -> np.ndarray:
        return self._assemble()["arrival"]

    @property
    def start_service(self) -> np.ndarray:
        return self._assemble()["start_service"]

    @property
    def finish(self) -> np.ndarray:
        return self._assemble()["finish"]

    @property
    def outcome_code(self) -> np.ndarray:
        return self._assemble()["outcome"]

    @property
    def channel(self) -> np.ndarray:
        return self._assemble()["channel"]

    @property
    def bank(self) -> np.ndarray:
        """Flat bank index per request; :data:`ALL_BANKS` for PIM/AB."""
        return self._assemble()["bank"]

    @property
    def row(self) -> np.ndarray:
        return self._assemble()["row"]

    @property
    def op_code(self) -> np.ndarray:
        return self._assemble()["op"]

    # ------------------------------------------------------------------
    # derived durations
    # ------------------------------------------------------------------
    @property
    def queue_wait(self) -> np.ndarray:
        """Admission-to-service wait per request (ns)."""
        arrays = self._assemble()
        return arrays["start_service"] - arrays["arrival"]

    @property
    def service_time(self) -> np.ndarray:
        """Service occupancy per request (ns)."""
        arrays = self._assemble()
        return arrays["finish"] - arrays["start_service"]

    @property
    def total_latency(self) -> np.ndarray:
        """Arrival-to-finish latency per request (ns)."""
        arrays = self._assemble()
        return arrays["finish"] - arrays["arrival"]

    def percentiles(self) -> _t.Dict[str, _t.Dict[str, float]]:
        """Exact p50/p95/p99/max summaries of the three durations."""
        return {
            "queue_wait_ns": latency_summary(self.queue_wait),
            "service_time_ns": latency_summary(self.service_time),
            "total_latency_ns": latency_summary(self.total_latency),
        }

    def __repr__(self) -> str:
        if not self.captured:
            return "<LatencyRecorder (no replay captured)>"
        return f"<LatencyRecorder n={self.n}>"


class ReplayTelemetry:
    """One replay's worth of observability: recorder + profiler.

    Pass an instance to :meth:`MemorySystem.replay(..., telemetry=...)
    <repro.memsys.MemorySystem.replay>` (or through
    ``PimExecMachine.replay`` / ``compare_host_pim`` /
    ``run_nn_kernel``); afterwards it holds the per-request latency
    arrays, the per-phase wall-clock profile, and enough context
    (engine, config, makespan) to export the command timeline.

    Parameters
    ----------
    latency:
        Record per-request times (default on).
    profile:
        Record per-phase wall-clock timers (default on).
    """

    def __init__(self, latency: bool = True, profile: bool = True) -> None:
        self.recorder = LatencyRecorder() if latency else None
        self.profiler = PhaseProfiler() if profile else None
        #: Engine that served the replay (``"event"`` /
        #: ``"fast-vectorized"`` / ``"fast-exact"``).
        self.engine: _t.Optional[str] = None
        self.config: _t.Optional["MemSysConfig"] = None
        self.stats: _t.Optional["MemSysStats"] = None
        self.makespan_ns: float = math.nan
        #: Set by :func:`repro.farm.replay_farm`: the supervisor's
        #: span log, merged into the timeline as worker/shard tracks.
        self.farm_events: _t.Optional[_t.Any] = None

    # ------------------------------------------------------------------
    def _finish(
        self, system: "MemorySystem", stats: "MemSysStats"
    ) -> None:
        """Called by :meth:`MemorySystem.replay` once stats exist."""
        self.engine = system.last_replay_engine
        self.config = system.config
        self.stats = stats
        self.makespan_ns = stats.makespan_ns

    @property
    def finished(self) -> bool:
        return self.stats is not None

    # ------------------------------------------------------------------
    def percentiles(self) -> _t.Dict[str, _t.Dict[str, float]]:
        if self.recorder is None:
            raise RuntimeError(
                "latency recording was disabled for this telemetry"
            )
        return self.recorder.percentiles()

    def metrics_into(
        self, registry: MetricsRegistry, **tags: _t.Any
    ) -> MetricsRegistry:
        """Emit this replay's telemetry into a metrics registry."""
        if self.engine is not None:
            tags = dict(tags, engine=self.engine)
        if self.recorder is not None and self.recorder.captured:
            recorder = self.recorder
            registry.counter(
                "telemetry.requests_recorded", recorder.n, **tags
            )
            registry.histogram(
                "telemetry.queue_wait_ns", recorder.queue_wait, **tags
            )
            registry.histogram(
                "telemetry.service_time_ns",
                recorder.service_time,
                **tags,
            )
            registry.histogram(
                "telemetry.total_latency_ns",
                recorder.total_latency,
                **tags,
            )
        if self.profiler is not None:
            self.profiler.metrics_into(registry, **tags)
        return registry

    # ------------------------------------------------------------------
    def timeline(
        self, max_events: _t.Optional[int] = None
    ) -> dict:
        """The Chrome-trace-event document for this replay."""
        from .timeline import build_timeline

        if max_events is None:
            return build_timeline(self)
        return build_timeline(self, max_events=max_events)

    def write_timeline(
        self,
        path: _t.Any,
        max_events: _t.Optional[int] = None,
    ):
        """Write the timeline JSON; returns the path."""
        from .timeline import write_timeline

        return write_timeline(self, path, max_events=max_events)

    # ------------------------------------------------------------------
    def timeseries(
        self,
        window_ns: _t.Optional[float] = None,
        n_windows: _t.Optional[int] = None,
    ) -> dict:
        """The ``timeseries-v2`` windowed-metrics document."""
        from .timeseries import build_timeseries

        return build_timeseries(
            self, window_ns=window_ns, n_windows=n_windows
        )

    def write_timeseries(
        self,
        path: _t.Any,
        window_ns: _t.Optional[float] = None,
        n_windows: _t.Optional[int] = None,
    ):
        """Write the time-series JSON; returns the path."""
        from .timeseries import write_timeseries

        return write_timeseries(
            self, path, window_ns=window_ns, n_windows=n_windows
        )

    # ------------------------------------------------------------------
    def energy(
        self,
        coefficients: _t.Optional[_t.Any] = None,
        window_ns: _t.Optional[float] = None,
        n_windows: _t.Optional[int] = None,
    ) -> dict:
        """The ``energy-v1`` command-level energy document."""
        from .energy import build_energy

        return build_energy(
            self,
            coefficients=coefficients,
            window_ns=window_ns,
            n_windows=n_windows,
        )

    def write_energy(
        self,
        path: _t.Any,
        coefficients: _t.Optional[_t.Any] = None,
        window_ns: _t.Optional[float] = None,
        n_windows: _t.Optional[int] = None,
    ):
        """Write the energy JSON; returns the path."""
        from .energy import write_energy

        return write_energy(
            self,
            path,
            coefficients=coefficients,
            window_ns=window_ns,
            n_windows=n_windows,
        )

    def __repr__(self) -> str:
        return (
            f"<ReplayTelemetry engine={self.engine!r} "
            f"latency={self.recorder is not None} "
            f"profile={self.profiler is not None}>"
        )
