"""Self-profiling: coarse per-phase wall-clock timers.

The replay engines time their own phases — ``decode`` (array extraction
and address decode), ``certificate`` (the closed-form certificates),
``tier-execute`` (committing the vectorized plan, or the exact/event
replay loop), ``stats-gather`` (collector reduction) — so a metrics
snapshot shows *where the simulator itself spends wall-clock time*.
This quantifies the Python-loop cost that motivates the ROADMAP's
vectorized-pimexec item: on certified traces nearly all time is
``decode`` + ``tier-execute`` array arithmetic, while a certificate
fallback shifts the profile into the per-request exact tier.

The profiler is deliberately coarse (a handful of
:func:`time.perf_counter` pairs per replay, never per request) so it is
free at the <5% telemetry-overhead floor ``bench_memsys`` enforces.
"""

from __future__ import annotations

import contextlib
import time
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from .registry import MetricsRegistry

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates wall-clock seconds per named phase, in entry order."""

    def __init__(self) -> None:
        self._seconds: _t.Dict[str, float] = {}

    @contextlib.contextmanager
    def phase(self, name: str) -> _t.Iterator[None]:
        """Time one phase; nested/repeated phases accumulate."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - begin)

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` to ``name`` directly."""
        if seconds < 0:
            raise ValueError(f"negative phase time: {seconds!r}")
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds

    # ------------------------------------------------------------------
    @property
    def phases(self) -> _t.Dict[str, float]:
        """Phase -> accumulated seconds (insertion order preserved)."""
        return dict(self._seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self._seconds.values())

    def metrics_into(
        self, registry: "MetricsRegistry", **tags: _t.Any
    ) -> "MetricsRegistry":
        """Emit one ``profile.phase_seconds`` gauge per phase."""
        for name, seconds in self._seconds.items():
            registry.gauge(
                "profile.phase_seconds", seconds, phase=name, **tags
            )
        return registry

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={seconds:.3g}s"
            for name, seconds in self._seconds.items()
        )
        return f"<PhaseProfiler {inner or '(empty)'}>"
