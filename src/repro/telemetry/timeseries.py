"""Windowed time-series derived from one recorded replay.

The PR-6 telemetry layer answers *what did each request experience*;
this module answers *where did the time go* — the question the paper's
tradeoff analysis (and the ROADMAP serving study) actually asks.  A
single end-of-run p99 cannot show refresh-induced latency waves,
per-channel load imbalance, or AB-barrier stall regimes; a windowed
series can.

Every series is computed **purely from the
:class:`~repro.telemetry.latency.LatencyRecorder` arrays**
(arrival/start/finish/outcome/channel/bank/op) plus the replay's
configuration.  Those arrays are bit-identical across the event
engine, both fast-path tiers, and the farm's merged shards, and every
derivation here is a deterministic numpy reduction over them — so the
series are **bit-identical across engines by construction**
(``tests/telemetry/test_timeseries.py`` checks ``repr`` equality of
whole documents over the scheme x policy x refresh x arrival matrix).

Per window the document carries:

* ``offered_per_s`` / ``served_per_s`` — arrival and completion rates;
* ``achieved_gbit_per_s`` — delivered bandwidth (host/AB accesses move
  one page, PIM all-bank operations move one page per bank);
* ``row_hit_rate`` — among row-touching completions (NaN when none);
* ``queue_depth_mean`` / ``queue_depth_max`` — **exact**, from the
  arrival/start crossing step function, not sampled;
* ``refresh_overhead_fraction`` — deterministic tREFI/tRFC blackout
  coverage (per-bank slices weighted by the refreshing-bank fraction);
* ``ab_stall_fraction`` — AB register-broadcast barrier occupancy,
  averaged over channels — the FR-FCFS serialization the ROADMAP
  names as the pimexec bottleneck, now visible over time;
* ``power_w`` / ``energy_pj_to_date`` — windowed power draw and the
  cumulative energy of the run, from the command-level accounting of
  :mod:`repro.telemetry.energy` on this document's own window grid
  (schema ``v2`` adds these two series);
* per-channel and per-bank ``busy_fraction`` — service-span union
  occupancy (all-bank PIM operations occupy every bank of their
  channel).

Derivation happens **post-replay, off the hot path**: nothing here
runs while the simulated clock advances, so the <5% telemetry-overhead
floor of ``benchmarks/bench_*.py`` is untouched (the benchmarks derive
a series after the timed region to prove it).

``validate_timeseries`` is the schema check
(``repro.telemetry/timeseries-v2``) mirroring
:func:`~repro.telemetry.timeline.validate_timeline`.
"""

from __future__ import annotations

import json
import math
import pathlib
import typing as _t

import numpy as np

from .latency import ALL_BANKS, OUTCOME_NAMES

if _t.TYPE_CHECKING:  # pragma: no cover
    from .latency import ReplayTelemetry

__all__ = [
    "TIMESERIES_SCHEMA",
    "DEFAULT_WINDOWS",
    "build_timeseries",
    "validate_timeseries",
    "write_timeseries",
]

#: Schema identifier carried in every document (v2 added the
#: ``power_w`` / ``energy_pj_to_date`` series of the energy layer).
TIMESERIES_SCHEMA = "repro.telemetry/timeseries-v2"

#: Default window count when no ``window_ns`` is given: fine enough to
#: resolve refresh waves at HBM2-class tREFI on realistic makespans,
#: coarse enough that every window holds a meaningful sample.
DEFAULT_WINDOWS = 64

#: The series every document must carry, in emission order.
SERIES_KEYS = (
    "offered_per_s",
    "served_per_s",
    "achieved_gbit_per_s",
    "row_hit_rate",
    "queue_depth_mean",
    "queue_depth_max",
    "refresh_overhead_fraction",
    "ab_stall_fraction",
    "power_w",
    "energy_pj_to_date",
)

_BROADCAST = OUTCOME_NAMES.index("broadcast")
_HIT = OUTCOME_NAMES.index("hit")


# ----------------------------------------------------------------------
# exact step-function machinery
# ----------------------------------------------------------------------
def _step_function(
    plus: np.ndarray, minus: np.ndarray
) -> _t.Tuple[np.ndarray, np.ndarray]:
    """Collapse +1/-1 events into ``(times, values)``.

    ``values[k]`` is the step function's value on
    ``[times[k], times[k+1])`` after *all* events at ``times[k]`` have
    been applied — coincident events collapse through
    ``np.add.reduceat``, so the result is independent of any sort
    tie-breaking (the property the bit-identity guarantee needs).
    """
    times = np.concatenate([plus, minus])
    deltas = np.concatenate(
        [
            np.ones(plus.shape[0], dtype=np.int64),
            np.full(minus.shape[0], -1, dtype=np.int64),
        ]
    )
    if times.shape[0] == 0:
        return times, deltas.astype(np.float64)
    order = np.argsort(times, kind="stable")
    times = times[order]
    unique, starts = np.unique(times, return_index=True)
    sums = np.add.reduceat(deltas[order], starts)
    return unique, np.cumsum(sums).astype(np.float64)


def _integral_at(
    t: np.ndarray, times: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """``I(t) = integral_0^t f`` for the step function ``(times, values)``
    (``f == 0`` before the first event)."""
    if times.shape[0] == 0:
        return np.zeros(t.shape[0])
    segment = np.zeros(times.shape[0])
    if times.shape[0] > 1:
        segment[1:] = np.cumsum(values[:-1] * np.diff(times))
    pos = np.searchsorted(times, t, side="right") - 1
    safe = np.maximum(pos, 0)
    out = segment[safe] + values[safe] * (t - times[safe])
    return np.where(pos >= 0, out, 0.0)


def _window_index(
    t: np.ndarray, window_ns: float, n_windows: int
) -> np.ndarray:
    """Window owning each instant (the final edge folds into the last
    window so ``finish == makespan`` is never dropped)."""
    idx = np.floor_divide(t, window_ns).astype(np.int64)
    return np.clip(idx, 0, n_windows - 1)


def _mean_per_window(
    times: np.ndarray,
    values: np.ndarray,
    edges: np.ndarray,
    window_ns: float,
) -> np.ndarray:
    return np.diff(_integral_at(edges, times, values)) / window_ns


def _max_per_window(
    times: np.ndarray,
    values: np.ndarray,
    edges: np.ndarray,
    window_ns: float,
    n_windows: int,
) -> np.ndarray:
    """Exact per-window maximum of the step function: the value
    carried in at each window start joined with every in-window
    event value."""
    if times.shape[0] == 0:
        return np.zeros(n_windows)
    pos = np.searchsorted(times, edges[:-1], side="right") - 1
    maxes = np.where(pos >= 0, values[np.maximum(pos, 0)], 0.0)
    widx = _window_index(times, window_ns, n_windows)
    np.maximum.at(maxes, widx, values)
    return maxes


def _occupancy_per_window(
    starts: np.ndarray,
    finishes: np.ndarray,
    edges: np.ndarray,
    window_ns: float,
) -> np.ndarray:
    """Per-window fraction covered by the union of ``[start, finish)``
    intervals (overlaps counted once)."""
    times, values = _step_function(starts, finishes)
    busy = (values > 0).astype(np.float64)
    return _mean_per_window(times, busy, edges, window_ns)


def _coverage_per_window(
    begins: np.ndarray,
    ends: np.ndarray,
    weights: np.ndarray,
    edges: np.ndarray,
    window_ns: float,
) -> np.ndarray:
    """Per-window weighted coverage of non-overlapping intervals."""
    if begins.shape[0] == 0:
        return np.zeros(edges.shape[0] - 1)
    clipped = np.clip(
        edges[:, None] - begins[None, :], 0.0, (ends - begins)[None, :]
    )
    integral = (clipped * weights[None, :]).sum(axis=1)
    return np.diff(integral) / window_ns


# ----------------------------------------------------------------------
# the builder
# ----------------------------------------------------------------------
def build_timeseries(
    telemetry: "ReplayTelemetry",
    window_ns: _t.Optional[float] = None,
    n_windows: _t.Optional[int] = None,
) -> dict:
    """Derive the ``timeseries-v2`` document from one recorded replay.

    ``window_ns`` fixes the window width explicitly; otherwise the
    makespan is divided into ``n_windows`` (default
    :data:`DEFAULT_WINDOWS`) equal windows.  Both choices are
    deterministic functions of bit-identical inputs, so either way the
    document is bit-identical across engines.
    """
    recorder = telemetry.recorder
    if recorder is None or not recorder.captured:
        raise RuntimeError(
            "time-series derivation needs a captured replay: pass "
            "ReplayTelemetry(latency=True) to replay(..., telemetry=...)"
        )
    config = telemetry.config
    if config is None:
        raise RuntimeError(
            "time-series derivation needs a finished replay (no "
            "config recorded yet)"
        )
    makespan = float(telemetry.makespan_ns)
    if not makespan > 0 or math.isnan(makespan):
        raise RuntimeError(
            f"cannot window a replay with makespan {makespan!r} ns"
        )
    if window_ns is not None:
        if not window_ns > 0:
            raise ValueError(f"window_ns must be > 0, got {window_ns}")
        window_ns = float(window_ns)
        count = max(1, int(math.ceil(makespan / window_ns)))
    else:
        count = int(n_windows if n_windows is not None else DEFAULT_WINDOWS)
        if count < 1:
            raise ValueError(f"n_windows must be >= 1, got {count}")
        window_ns = makespan / count
    from ..memsys.request import Op

    arrival = recorder.arrival
    start = recorder.start_service
    finish = recorder.finish
    outcome = recorder.outcome_code
    channel = recorder.channel
    bank = recorder.bank
    op = recorder.op_code
    n = arrival.shape[0]

    edges = np.arange(count + 1, dtype=np.float64) * window_ns
    window_s = window_ns * 1e-9

    arrive_idx = _window_index(arrival, window_ns, count)
    finish_idx = _window_index(finish, window_ns, count)
    offered = np.bincount(arrive_idx, minlength=count) / window_s
    served = np.bincount(finish_idx, minlength=count) / window_s

    # delivered bits: one page per host access and AB broadcast, one
    # page per bank for all-bank PIM operations (mirrors the
    # controller's bits_delivered accounting)
    page_bits = float(config.timing.page_bits)
    bits = np.where(
        op == Op.PIM.code,
        page_bits * config.banks_per_channel,
        page_bits,
    )
    gbit = (
        np.bincount(finish_idx, weights=bits, minlength=count)
        / window_s
        / 1e9
    )

    touches = outcome != _BROADCAST
    touched = np.bincount(finish_idx[touches], minlength=count)
    hits = np.bincount(
        finish_idx[touches & (outcome == _HIT)], minlength=count
    )
    hit_rate = np.divide(
        hits,
        touched,
        out=np.full(count, math.nan),
        where=touched > 0,
    )

    # exact queue depth: +1 at each arrival, -1 at each service start
    q_times, q_values = _step_function(arrival, start)
    depth_mean = _mean_per_window(q_times, q_values, edges, window_ns)
    depth_max = _max_per_window(
        q_times, q_values, edges, window_ns, count
    )

    # refresh blackout coverage (per-bank slices refresh one bank, so
    # they weigh 1/n_banks of a full-channel blackout)
    schedule = config.refresh_schedule()
    if schedule is None:
        refresh = np.zeros(count)
    else:
        blackouts = list(schedule.blackouts(makespan))
        begins = np.array([b for b, _, _ in blackouts], dtype=np.float64)
        ends = np.array([e for _, e, _ in blackouts], dtype=np.float64)
        weights = np.array(
            [
                1.0 if which is None else 1.0 / config.banks_per_channel
                for _, _, which in blackouts
            ],
            dtype=np.float64,
        )
        refresh = _coverage_per_window(
            begins, ends, weights, edges, window_ns
        )

    # AB barrier stall + per-channel/per-bank busy fractions
    ab = op == Op.AB.code
    pim_all = bank == ALL_BANKS
    ab_stall = np.zeros(count)
    channels: _t.List[dict] = []
    for ch in range(config.n_channels):
        on_channel = channel == ch
        ab_stall += _occupancy_per_window(
            start[on_channel & ab], finish[on_channel & ab],
            edges, window_ns,
        )
        banks = []
        for b in range(config.banks_per_channel):
            mine = on_channel & (
                (bank == b) | (pim_all & (op == Op.PIM.code))
            )
            banks.append(
                {
                    "bank": b,
                    "busy_fraction": _occupancy_per_window(
                        start[mine], finish[mine], edges, window_ns
                    ).tolist(),
                }
            )
        channels.append(
            {
                "channel": ch,
                "busy_fraction": _occupancy_per_window(
                    start[on_channel], finish[on_channel],
                    edges, window_ns,
                ).tolist(),
                "served_per_s": (
                    np.bincount(finish_idx[on_channel], minlength=count)
                    / window_s
                ).tolist(),
                "banks": banks,
            }
        )
    ab_stall /= config.n_channels

    # windowed power + cumulative energy from the command-level
    # accounting, on this document's own grid (1 pJ/ns == 1 mW)
    from .energy import window_energy_pj

    energy_per_window = window_energy_pj(telemetry, edges, window_ns)
    power_w = energy_per_window / window_ns * 1e-3
    energy_to_date = np.cumsum(energy_per_window)

    return {
        "schema": TIMESERIES_SCHEMA,
        "engine": telemetry.engine,
        "window_ns": window_ns,
        "n_windows": count,
        "makespan_ns": makespan,
        "n_requests": int(n),
        "t_start_ns": edges[:-1].tolist(),
        "series": {
            "offered_per_s": offered.tolist(),
            "served_per_s": served.tolist(),
            "achieved_gbit_per_s": gbit.tolist(),
            "row_hit_rate": hit_rate.tolist(),
            "queue_depth_mean": depth_mean.tolist(),
            "queue_depth_max": depth_max.tolist(),
            "refresh_overhead_fraction": refresh.tolist(),
            "ab_stall_fraction": ab_stall.tolist(),
            "power_w": power_w.tolist(),
            "energy_pj_to_date": energy_to_date.tolist(),
        },
        "channels": channels,
    }


def write_timeseries(
    telemetry: "ReplayTelemetry",
    path: _t.Union[str, pathlib.Path],
    window_ns: _t.Optional[float] = None,
    n_windows: _t.Optional[int] = None,
) -> pathlib.Path:
    """Build and write the time-series JSON; returns the path."""
    document = build_timeseries(
        telemetry, window_ns=window_ns, n_windows=n_windows
    )
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document) + "\n")
    return path


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _check_series(
    name: str,
    values: _t.Any,
    count: int,
    problems: _t.List[str],
    nan_ok: bool = False,
) -> None:
    if not isinstance(values, list):
        problems.append(f"{name}: must be an array")
        return
    if len(values) != count:
        problems.append(
            f"{name}: length {len(values)} != n_windows {count}"
        )
        return
    for index, value in enumerate(values):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{name}[{index}]: not a number")
            return
        if math.isinf(value):
            problems.append(f"{name}[{index}]: must be finite")
            return
        if math.isnan(value):
            if not nan_ok:
                problems.append(f"{name}[{index}]: NaN not allowed")
                return
        elif value < 0:
            problems.append(f"{name}[{index}]: must be >= 0")
            return


def validate_timeseries(document: _t.Any) -> _t.List[str]:
    """Schema-check one time-series document; returns problem strings.

    Mirrors :func:`~repro.telemetry.timeline.validate_timeline`: an
    empty list means a well-formed ``timeseries-v2`` document — the
    test suite asserts exactly that on every export path.
    """
    problems: _t.List[str] = []
    if not isinstance(document, dict):
        return [f"document must be an object, got {type(document).__name__}"]
    if document.get("schema") != TIMESERIES_SCHEMA:
        problems.append(
            f"schema must be {TIMESERIES_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    window_ns = document.get("window_ns")
    if (
        not isinstance(window_ns, (int, float))
        or isinstance(window_ns, bool)
        or not window_ns > 0
        or math.isinf(window_ns)
    ):
        problems.append("window_ns must be a finite number > 0")
    count = document.get("n_windows")
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        problems.append("n_windows must be an integer >= 1")
        return problems
    t_start = document.get("t_start_ns")
    _check_series("t_start_ns", t_start, count, problems)
    if isinstance(t_start, list) and len(t_start) == count:
        numeric = [
            v for v in t_start if isinstance(v, (int, float))
        ]
        if len(numeric) == count and any(
            b <= a for a, b in zip(numeric, numeric[1:])
        ):
            problems.append("t_start_ns must be strictly increasing")
    series = document.get("series")
    if not isinstance(series, dict):
        problems.append("series must be an object")
        return problems
    for key in SERIES_KEYS:
        if key not in series:
            problems.append(f"series missing {key!r}")
            continue
        _check_series(
            f"series.{key}",
            series[key],
            count,
            problems,
            nan_ok=(key == "row_hit_rate"),
        )
    channels = document.get("channels")
    if not isinstance(channels, list) or not channels:
        problems.append("channels must be a non-empty array")
        return problems
    for entry in channels:
        if not isinstance(entry, dict) or "channel" not in entry:
            problems.append("channels[]: each entry needs a channel id")
            continue
        where = f"channels[{entry['channel']}]"
        _check_series(
            f"{where}.busy_fraction",
            entry.get("busy_fraction"),
            count,
            problems,
        )
        _check_series(
            f"{where}.served_per_s",
            entry.get("served_per_s"),
            count,
            problems,
        )
        banks = entry.get("banks")
        if not isinstance(banks, list):
            problems.append(f"{where}.banks must be an array")
            continue
        for bank_entry in banks:
            if not isinstance(bank_entry, dict) or "bank" not in bank_entry:
                problems.append(
                    f"{where}.banks[]: each entry needs a bank id"
                )
                continue
            _check_series(
                f"{where}.banks[{bank_entry['bank']}].busy_fraction",
                bank_entry.get("busy_fraction"),
                count,
                problems,
            )
    return problems
