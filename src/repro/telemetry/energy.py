"""DRAM-command-level energy accounting derived from one replay.

The paper's background argues PIM's win is as much about *energy* as
performance (the Berkeley IRAM argument §2.1 cites), and
:mod:`repro.arch.energy` models that claim analytically.  This module
makes it **observable**: every recorded replay yields a
``repro.telemetry/energy-v1`` document with per-event energy for the
DRAM command classes the replay implies, refresh energy, background
power integrated over busy/idle time, a windowed power series (W), and
the derived figures of merit — pJ/bit and perf-per-watt.

Like the time-series layer it mirrors, everything is computed **purely
from the** :class:`~repro.telemetry.latency.LatencyRecorder` **arrays**
(arrival/start/finish/outcome/channel/bank/op) plus the replay's
configuration, strictly post-replay:

* ``read`` / ``write`` — one column burst per host access, plus an
  ``activate`` on every miss and an ``activate`` + ``precharge`` on
  every conflict (the closed-row turnaround);
* ``broadcast`` — an AB register broadcast moves command/register bits
  without touching a row buffer (no activate energy, matching how the
  bank model treats the outcome);
* ``pim_compute`` — one lockstep CRF instruction runs in **every**
  bank of its channel: per dynamic instruction the banks each pay an
  in-bank column access plus ``lanes`` per-lane ALU operations
  (``lanes = page_bits / 16``, the execution-unit width
  ``pimexec.unit_commands`` counts), and all-bank row turnarounds pay
  activate/precharge in every bank;
* ``refresh`` — each tREFI/tRFC blackout refreshes every bank of the
  rank (per-rank granularity) or one bank per channel (per-bank);
* ``background`` — standby power integrated over each channel's exact
  busy/idle split (service-span union vs. the rest of the makespan).

Because the recorder arrays are bit-identical across the event engine,
both fast-path tiers, and the farm's merged shards, and every
derivation here is a deterministic numpy reduction over them, the
totals, breakdowns, and power series are **bit-identical across
engines by construction** (``tests/telemetry/test_energy.py`` pins
``repr`` equality over the engine x unit-tier x farm x refresh x dtype
matrix).  Nothing runs while the simulated clock advances, so the <5%
telemetry-overhead floor of ``benchmarks/bench_*.py`` is untouched.

The :class:`EnergyCoefficients` table is pluggable; the defaults are
*relative* values consistent with the orderings of
:class:`repro.arch.energy.EnergyParams` (an off-chip host column burst
costs ~10x an in-bank PIM column access, mirroring
``hwp_dram_nj / lwp_mem_nj``; a per-lane PIM ALU operation is cheap the
way ``lwp_op_nj`` is), so the simulated host-vs-PIM energy ratios can
be cross-validated against the analytic model — the ``pimexec`` and
``nn`` experiments do exactly that.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
import typing as _t

import numpy as np

from ..errors import ConfigError
from .latency import ALL_BANKS, OUTCOME_NAMES
from .registry import MetricsRegistry
from .timeseries import _mean_per_window, _step_function, _window_index

if _t.TYPE_CHECKING:  # pragma: no cover
    from .latency import ReplayTelemetry

__all__ = [
    "ENERGY_SCHEMA",
    "ENERGY_CLASSES",
    "EnergyCoefficients",
    "build_energy",
    "energy_metrics",
    "validate_energy",
    "write_energy",
]

#: Schema identifier carried in every document.
ENERGY_SCHEMA = "repro.telemetry/energy-v1"

#: Breakdown classes every document carries, in emission order.
ENERGY_CLASSES = (
    "activate",
    "precharge",
    "read",
    "write",
    "broadcast",
    "pim_compute",
    "refresh",
    "background",
)

#: Execution-unit lane width in bits (mirrors
#: ``repro.pimexec.machine.LANE_BITS`` without importing the machine —
#: the telemetry layer stays dependency-light).
_LANE_BITS = 16

_HIT = OUTCOME_NAMES.index("hit")
_MISS = OUTCOME_NAMES.index("miss")
_CONFLICT = OUTCOME_NAMES.index("conflict")


@dataclasses.dataclass(frozen=True)
class EnergyCoefficients:
    """Per-event energy table (picojoules / milliwatts, relative scale).

    Like :class:`repro.arch.energy.EnergyParams`, these are *relative*
    values chosen to reflect the structural argument, not a measured
    technology point: an off-chip host access (I/O drivers, long
    wires) costs an order of magnitude more than an in-bank access,
    and a lockstep PIM lane operation is far cheaper than anything
    that crosses a pin.  All conclusions tested against them are
    ordering/sign claims that hold for any coefficients with those
    orderings.

    Attributes
    ----------
    act_pj:
        Row activation (wordline + sense amplifiers), per bank.
    pre_pj:
        Row precharge, per bank (charged on conflicts: close + open).
    rd_pj / wr_pj:
        Off-chip column burst of one page for a host READ/WRITE,
        including I/O energy (writes cost slightly more, as in every
        DRAM datasheet).
    ab_pj:
        AB register broadcast: command/register distribution to every
        bank, no row-buffer or I/O-burst energy.
    pim_cmd_pj:
        In-bank column access of one lockstep CRF instruction, per
        bank — roughly ``rd_pj / 10``, the on-chip vs off-chip gap
        ``arch/energy.py`` encodes as ``hwp_dram_nj / lwp_mem_nj``.
    pim_lane_pj:
        One PIM ALU lane operation (MAC/ADD/MUL on one 16-bit lane).
    refresh_bank_pj:
        Refreshing one bank once (a per-rank blackout refreshes every
        bank of every channel at once).
    background_busy_mw / background_idle_mw:
        Standby power per channel while servicing / idle (1 mW over
        1 ns integrates to exactly 1 pJ).
    """

    act_pj: float = 900.0
    pre_pj: float = 450.0
    rd_pj: float = 2000.0
    wr_pj: float = 2100.0
    ab_pj: float = 150.0
    pim_cmd_pj: float = 200.0
    pim_lane_pj: float = 2.0
    refresh_bank_pj: float = 350.0
    background_busy_mw: float = 60.0
    background_idle_mw: float = 30.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if not isinstance(value, (int, float)) or isinstance(
                value, bool
            ):
                raise ConfigError(
                    f"energy coefficient {field.name} must be a "
                    f"number, got {value!r}"
                )
            if math.isnan(value) or math.isinf(value):
                raise ConfigError(
                    f"energy coefficient {field.name} must be finite, "
                    f"got {value!r}"
                )
            if value < 0:
                raise ConfigError(
                    f"energy coefficient {field.name} must be "
                    f">= 0, got {value!r}"
                )

    def to_dict(self) -> _t.Dict[str, float]:
        """The serializable coefficient table."""
        return {
            field.name: float(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }


# ----------------------------------------------------------------------
# per-event derivation
# ----------------------------------------------------------------------
def _event_components(
    recorder: _t.Any,
    config: _t.Any,
    coefficients: EnergyCoefficients,
) -> _t.Dict[str, np.ndarray]:
    """Per-request energy components (pJ, trace order).

    Returns the per-request arrays for each event class plus their sum
    (``event``); the split lets totals, per-channel/bank rollups, and
    windowed series all come from one derivation.
    """
    from ..memsys.request import Op

    outcome = recorder.outcome_code
    op = recorder.op_code
    n = op.shape[0]
    banks = float(config.banks_per_channel)
    lanes = float(config.timing.page_bits // _LANE_BITS)

    is_read = op == Op.READ.code
    is_write = op == Op.WRITE.code
    is_ab = op == Op.AB.code
    is_pim = op == Op.PIM.code
    # all-bank lockstep operations turn rows in every bank of their
    # channel at once, so their activate/precharge energy scales with
    # the bank count; AB broadcasts never reach a row buffer
    row_scale = np.where(is_pim, banks, 1.0)
    row_scale = np.where(is_ab, 0.0, row_scale)

    activate = (
        coefficients.act_pj
        * row_scale
        * ((outcome == _MISS) | (outcome == _CONFLICT))
    )
    precharge = (
        coefficients.pre_pj * row_scale * (outcome == _CONFLICT)
    )
    read = np.where(is_read, coefficients.rd_pj, 0.0)
    write = np.where(is_write, coefficients.wr_pj, 0.0)
    broadcast = np.where(is_ab, coefficients.ab_pj, 0.0)
    pim_compute = np.where(
        is_pim,
        banks
        * (
            coefficients.pim_cmd_pj
            + lanes * coefficients.pim_lane_pj
        ),
        0.0,
    )
    event = (
        activate + precharge + read + write + broadcast + pim_compute
    )
    assert event.shape[0] == n
    return {
        "activate": activate,
        "precharge": precharge,
        "read": read,
        "write": write,
        "broadcast": broadcast,
        "pim_compute": pim_compute,
        "event": event,
    }


def _refresh_events(
    config: _t.Any,
    makespan: float,
    coefficients: EnergyCoefficients,
) -> _t.Tuple[np.ndarray, np.ndarray]:
    """(begin_ns, energy_pj) of every refresh event over the run.

    A per-rank blackout refreshes every bank of every channel; a
    per-bank blackout refreshes its one bank in every channel (the
    schedule is channel-symmetric, as the timeline renders it).
    """
    schedule = config.refresh_schedule()
    if schedule is None:
        return np.empty(0), np.empty(0)
    blackouts = list(schedule.blackouts(makespan))
    begins = np.array([b for b, _, _ in blackouts], dtype=np.float64)
    banks_refreshed = np.array(
        [
            config.banks_per_channel if which is None else 1
            for _, _, which in blackouts
        ],
        dtype=np.float64,
    )
    energy = (
        banks_refreshed
        * config.n_channels
        * coefficients.refresh_bank_pj
    )
    return begins, energy


def _busy_ns_per_window(
    starts: np.ndarray,
    finishes: np.ndarray,
    edges: np.ndarray,
    window_ns: float,
) -> np.ndarray:
    """Per-window busy nanoseconds of the union of service spans."""
    times, values = _step_function(starts, finishes)
    busy = (values > 0).astype(np.float64)
    return (
        _mean_per_window(times, busy, edges, window_ns) * window_ns
    )


def window_energy_pj(
    telemetry: "ReplayTelemetry",
    edges: np.ndarray,
    window_ns: float,
    coefficients: _t.Optional[EnergyCoefficients] = None,
) -> np.ndarray:
    """Per-window total energy (pJ) on an existing window grid.

    The hook :func:`~repro.telemetry.timeseries.build_timeseries` uses
    to merge the ``power_w`` / ``energy_pj_to_date`` series into the
    ``timeseries-v2`` document on *its* grid, guaranteeing both
    documents carry the same numbers.  Event energy bins by finish
    instant, refresh energy by blackout start, background power
    integrates each window's exact busy/idle split (idle time past the
    makespan is never charged).
    """
    coefficients = coefficients or EnergyCoefficients()
    recorder = telemetry.recorder
    config = telemetry.config
    makespan = float(telemetry.makespan_ns)
    count = edges.shape[0] - 1

    components = _event_components(recorder, config, coefficients)
    finish_idx = _window_index(recorder.finish, window_ns, count)
    per_window = np.bincount(
        finish_idx, weights=components["event"], minlength=count
    )

    begins, refresh_pj = _refresh_events(
        config, makespan, coefficients
    )
    if begins.shape[0]:
        refresh_idx = _window_index(begins, window_ns, count)
        per_window = per_window + np.bincount(
            refresh_idx, weights=refresh_pj, minlength=count
        )

    # background: covered nanoseconds of each window (the grid may
    # overhang the makespan when window_ns is explicit), split into
    # the busy union and the idle remainder, per channel
    covered = np.clip(
        np.minimum(edges[1:], makespan) - edges[:-1], 0.0, window_ns
    )
    start = recorder.start_service
    finish = recorder.finish
    channel = recorder.channel
    for ch in range(config.n_channels):
        mine = channel == ch
        busy = _busy_ns_per_window(
            start[mine], finish[mine], edges, window_ns
        )
        idle = np.maximum(covered - busy, 0.0)
        per_window = per_window + (
            busy * coefficients.background_busy_mw
            + idle * coefficients.background_idle_mw
        )
    return per_window


# ----------------------------------------------------------------------
# the builder
# ----------------------------------------------------------------------
def build_energy(
    telemetry: "ReplayTelemetry",
    coefficients: _t.Optional[EnergyCoefficients] = None,
    window_ns: _t.Optional[float] = None,
    n_windows: _t.Optional[int] = None,
) -> dict:
    """Derive the ``energy-v1`` document from one recorded replay.

    The windowing contract matches
    :func:`~repro.telemetry.timeseries.build_timeseries` (explicit
    ``window_ns`` or ``n_windows`` equal windows over the makespan,
    default :data:`~repro.telemetry.timeseries.DEFAULT_WINDOWS`).
    Totals are independent of the grid: binning only distributes the
    same event/refresh/background energies over windows.
    """
    from .timeseries import DEFAULT_WINDOWS

    coefficients = coefficients or EnergyCoefficients()
    recorder = telemetry.recorder
    if recorder is None or not recorder.captured:
        raise RuntimeError(
            "energy accounting needs a captured replay: pass "
            "ReplayTelemetry(latency=True) to replay(..., telemetry=...)"
        )
    config = telemetry.config
    if config is None:
        raise RuntimeError(
            "energy accounting needs a finished replay (no config "
            "recorded yet)"
        )
    makespan = float(telemetry.makespan_ns)
    if not makespan > 0 or math.isnan(makespan):
        raise RuntimeError(
            f"cannot account energy over makespan {makespan!r} ns"
        )
    if window_ns is not None:
        if not window_ns > 0:
            raise ValueError(f"window_ns must be > 0, got {window_ns}")
        window_ns = float(window_ns)
        count = max(1, int(math.ceil(makespan / window_ns)))
    else:
        count = int(n_windows if n_windows is not None else DEFAULT_WINDOWS)
        if count < 1:
            raise ValueError(f"n_windows must be >= 1, got {count}")
        window_ns = makespan / count
    from ..memsys.request import Op

    edges = np.arange(count + 1, dtype=np.float64) * window_ns
    n = recorder.n

    components = _event_components(recorder, config, coefficients)
    begins, refresh_pj = _refresh_events(
        config, makespan, coefficients
    )

    # background totals over the full [0, makespan] — exact busy union
    # per channel, idle as the remainder
    start = recorder.start_service
    finish = recorder.finish
    channel = recorder.channel
    bank = recorder.bank
    op = recorder.op_code
    background_total = 0.0
    busy_by_channel: _t.List[float] = []
    whole = np.array([0.0, makespan])
    for ch in range(config.n_channels):
        mine = channel == ch
        busy = float(
            _busy_ns_per_window(
                start[mine], finish[mine], whole, makespan
            )[0]
        )
        busy_by_channel.append(busy)
        background_total += (
            busy * coefficients.background_busy_mw
            + (makespan - busy) * coefficients.background_idle_mw
        )

    breakdown = {
        name: float(np.sum(components[name]))
        for name in ENERGY_CLASSES[:6]
    }
    breakdown["refresh"] = float(np.sum(refresh_pj))
    breakdown["background"] = background_total
    total_pj = float(
        math.fsum(breakdown[name] for name in ENERGY_CLASSES)
    )

    # per-channel / per-bank event rollup: banked requests charge
    # their bank; all-bank operations spread evenly across the banks
    # they occupy in lockstep
    event = components["event"]
    banks_n = config.banks_per_channel
    per_bank_share = np.where(
        bank == ALL_BANKS, event / banks_n, event
    )
    channels: _t.List[dict] = []
    for ch in range(config.n_channels):
        mine = channel == ch
        bank_rows = []
        for b in range(banks_n):
            on_bank = mine & (
                (bank == b) | (bank == ALL_BANKS)
            )
            bank_rows.append(
                {
                    "bank": b,
                    "event_pj": float(
                        np.sum(per_bank_share[on_bank])
                    ),
                }
            )
        channels.append(
            {
                "channel": ch,
                "event_pj": float(np.sum(event[mine])),
                "busy_ns": busy_by_channel[ch],
                "background_pj": (
                    busy_by_channel[ch]
                    * coefficients.background_busy_mw
                    + (makespan - busy_by_channel[ch])
                    * coefficients.background_idle_mw
                ),
                "banks": bank_rows,
            }
        )

    # delivered bits mirror the controller's accounting (and the
    # timeseries bandwidth series): one page per host access and AB
    # broadcast, one page per bank for all-bank PIM operations
    page_bits = float(config.timing.page_bits)
    bits = np.where(
        op == Op.PIM.code, page_bits * banks_n, page_bits
    )
    total_bits = float(np.sum(bits))

    per_window = window_energy_pj(
        telemetry, edges, window_ns, coefficients
    )
    # 1 pJ / 1 ns = 1 mW, so the windowed power series in watts is
    # pJ/ns scaled by 1e-3
    power_w = per_window / window_ns * 1e-3
    to_date = np.cumsum(per_window)

    makespan_s = makespan * 1e-9
    mean_power_w = total_pj / makespan / 1e3
    return {
        "schema": ENERGY_SCHEMA,
        "engine": telemetry.engine,
        "window_ns": window_ns,
        "n_windows": count,
        "makespan_ns": makespan,
        "n_requests": int(n),
        "coefficients": coefficients.to_dict(),
        "total_pj": total_pj,
        "breakdown_pj": breakdown,
        "total_bits": total_bits,
        "pj_per_bit": total_pj / total_bits,
        "mean_power_w": mean_power_w,
        "requests_per_s_per_w": (n / makespan_s) / mean_power_w,
        "channels": channels,
        "t_start_ns": edges[:-1].tolist(),
        "series": {
            "power_w": power_w.tolist(),
            "energy_pj_to_date": to_date.tolist(),
        },
    }


def write_energy(
    telemetry: "ReplayTelemetry",
    path: _t.Union[str, pathlib.Path],
    coefficients: _t.Optional[EnergyCoefficients] = None,
    window_ns: _t.Optional[float] = None,
    n_windows: _t.Optional[int] = None,
) -> pathlib.Path:
    """Build and write the energy JSON; returns the path."""
    document = build_energy(
        telemetry,
        coefficients=coefficients,
        window_ns=window_ns,
        n_windows=n_windows,
    )
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document) + "\n")
    return path


# ----------------------------------------------------------------------
# metrics adapter
# ----------------------------------------------------------------------
def energy_metrics(
    document: _t.Mapping[str, _t.Any],
    registry: _t.Optional[MetricsRegistry] = None,
    **tags: _t.Any,
) -> MetricsRegistry:
    """Emit one ``energy-v1`` document into a metrics registry.

    Surfaces the totals as ``energy_*`` counters (one per breakdown
    class, tagged ``class=...``) and the figures of merit — pJ/bit,
    mean power, perf-per-watt — as gauges, so dashboards can track the
    energy axis next to the latency one.
    """
    # explicit None test: an empty registry is falsy (it has __len__)
    if registry is None:
        registry = MetricsRegistry(source="energy")
    registry.counter("energy_total_pj", document["total_pj"], **tags)
    for name in ENERGY_CLASSES:
        registry.counter(
            "energy_breakdown_pj",
            document["breakdown_pj"][name],
            **dict(tags, **{"class": name}),
        )
    registry.gauge("energy_pj_per_bit", document["pj_per_bit"], **tags)
    registry.gauge(
        "energy_mean_power_w", document["mean_power_w"], **tags
    )
    registry.gauge(
        "energy_requests_per_s_per_w",
        document["requests_per_s_per_w"],
        **tags,
    )
    for entry in document.get("channels", []):
        registry.counter(
            "energy_channel_event_pj",
            entry["event_pj"],
            **dict(tags, channel=entry["channel"]),
        )
    return registry


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _check_number(
    name: str,
    value: _t.Any,
    problems: _t.List[str],
    minimum: float = 0.0,
) -> bool:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        problems.append(f"{name}: not a number")
        return False
    if math.isnan(value) or math.isinf(value):
        problems.append(f"{name}: must be finite")
        return False
    if value < minimum:
        problems.append(f"{name}: must be >= {minimum:g}")
        return False
    return True


def validate_energy(document: _t.Any) -> _t.List[str]:
    """Schema-check one energy document; returns problem strings.

    Mirrors :func:`~repro.telemetry.timeseries.validate_timeseries`:
    an empty list means a well-formed ``energy-v1`` document.  Beyond
    shape, it cross-foots the books — the breakdown must sum to the
    total, and the energy-to-date series must be non-decreasing and
    end at the total.
    """
    problems: _t.List[str] = []
    if not isinstance(document, dict):
        return [f"document must be an object, got {type(document).__name__}"]
    if document.get("schema") != ENERGY_SCHEMA:
        problems.append(
            f"schema must be {ENERGY_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    coefficients = document.get("coefficients")
    if not isinstance(coefficients, dict):
        problems.append("coefficients must be an object")
    else:
        expected = {
            field.name for field in dataclasses.fields(EnergyCoefficients)
        }
        if set(coefficients) != expected:
            problems.append(
                f"coefficients must carry keys {sorted(expected)}"
            )
        for key, value in coefficients.items():
            _check_number(f"coefficients.{key}", value, problems)
    count = document.get("n_windows")
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        problems.append("n_windows must be an integer >= 1")
        return problems
    total_ok = _check_number(
        "total_pj", document.get("total_pj"), problems
    )
    breakdown = document.get("breakdown_pj")
    if not isinstance(breakdown, dict):
        problems.append("breakdown_pj must be an object")
    else:
        footed = 0.0
        complete = True
        for name in ENERGY_CLASSES:
            if name not in breakdown:
                problems.append(f"breakdown_pj missing {name!r}")
                complete = False
                continue
            if _check_number(
                f"breakdown_pj.{name}", breakdown[name], problems
            ):
                footed += float(breakdown[name])
            else:
                complete = False
        if complete and total_ok:
            total = float(document["total_pj"])
            if abs(footed - total) > 1e-6 * max(1.0, abs(total)):
                problems.append(
                    f"breakdown_pj sums to {footed:g}, "
                    f"total_pj is {total:g}"
                )
    for key in ("pj_per_bit", "mean_power_w", "requests_per_s_per_w"):
        _check_number(key, document.get(key), problems)
    series = document.get("series")
    if not isinstance(series, dict):
        problems.append("series must be an object")
        return problems
    for key in ("power_w", "energy_pj_to_date"):
        values = series.get(key)
        if not isinstance(values, list):
            problems.append(f"series.{key}: must be an array")
            continue
        if len(values) != count:
            problems.append(
                f"series.{key}: length {len(values)} != "
                f"n_windows {count}"
            )
            continue
        previous: _t.Optional[float] = None
        for index, value in enumerate(values):
            if not _check_number(
                f"series.{key}[{index}]", value, problems
            ):
                break
            if (
                key == "energy_pj_to_date"
                and previous is not None
                and value < previous
            ):
                problems.append(
                    f"series.{key}[{index}]: must be non-decreasing"
                )
                break
            previous = float(value)
    to_date = series.get("energy_pj_to_date")
    if (
        total_ok
        and isinstance(to_date, list)
        and len(to_date) == count
        and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in to_date
        )
    ):
        total = float(document["total_pj"])
        if abs(float(to_date[-1]) - total) > 1e-6 * max(
            1.0, abs(total)
        ):
            problems.append(
                f"energy_pj_to_date ends at {to_date[-1]:g}, "
                f"total_pj is {total:g}"
            )
    channels = document.get("channels")
    if not isinstance(channels, list) or not channels:
        problems.append("channels must be a non-empty array")
        return problems
    for entry in channels:
        if not isinstance(entry, dict) or "channel" not in entry:
            problems.append("channels[]: each entry needs a channel id")
            continue
        where = f"channels[{entry['channel']}]"
        for key in ("event_pj", "background_pj", "busy_ns"):
            _check_number(f"{where}.{key}", entry.get(key), problems)
        banks = entry.get("banks")
        if not isinstance(banks, list):
            problems.append(f"{where}.banks must be an array")
            continue
        for bank_entry in banks:
            if not isinstance(bank_entry, dict) or "bank" not in bank_entry:
                problems.append(
                    f"{where}.banks[]: each entry needs a bank id"
                )
                continue
            _check_number(
                f"{where}.banks[{bank_entry['bank']}].event_pj",
                bank_entry.get("event_pj"),
                problems,
            )
    return problems
