"""One unified run report: metrics + percentiles + time series + farm.

``repro-pim report TRACE`` replays a trace once and renders everything
the observability layer knows about the run — the
``repro.telemetry/v1`` metrics snapshot, the exact latency
percentiles, the ``timeseries-v2`` windowed series, the ``energy-v1``
command-level energy accounting (pJ/bit, mean power, perf-per-watt),
and (for farm runs) the fault ledger and supervisor event counts — as
one text table on stdout and one JSON document
(``repro.telemetry/report-v2``) on disk.  The JSON is a pure
composition of the existing schemas: every section is exactly what
the dedicated exporter would have written, so a report is
bit-identical across engines wherever its inputs are.

:func:`render_report` is a pure function of the JSON document, so a
stored report re-renders identically anywhere.
"""

from __future__ import annotations

import json
import math
import pathlib
import typing as _t

from .registry import MetricsRegistry

if _t.TYPE_CHECKING:  # pragma: no cover
    from .latency import ReplayTelemetry

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "render_report",
    "replay_tier",
    "write_report",
]

#: Schema identifier carried in every report document (v2 added the
#: ``energy`` section).
REPORT_SCHEMA = "repro.telemetry/report-v2"


def replay_tier(engine: _t.Optional[str]) -> _t.Optional[str]:
    """Map a replay-engine label onto the execution-tier taxonomy.

    The memory system picks among three tiers per stream (see
    ``docs/architecture.md``): the closed-form **fastpath** tier
    (``fast-vectorized``, admitted by the certificate), the
    vectorized-but-sequential **exact** tier (``fast-exact``), and the
    discrete-**event** engine.  Farm runs and other composite labels
    pass through unchanged; ``None`` (no replay recorded) stays
    ``None``.
    """
    if engine is None:
        return None
    label = str(engine)
    if label.startswith("fast-vectorized"):
        return "fastpath"
    if label.startswith("fast"):
        return "exact"
    if label.startswith("event"):
        return "event"
    return label


def build_report(
    telemetry: "ReplayTelemetry",
    registry: _t.Optional[MetricsRegistry] = None,
    timeseries: _t.Optional[dict] = None,
    farm_report: _t.Optional[_t.Any] = None,
    source: str = "",
    energy: _t.Optional[dict] = None,
) -> dict:
    """Compose the report document from one recorded replay.

    ``registry`` defaults to the telemetry's own emission;
    ``timeseries`` defaults to a fresh :func:`build_timeseries` over
    the default window grid; ``energy`` defaults to a fresh
    :func:`~repro.telemetry.energy.build_energy` with the default
    coefficients; ``farm_report`` (a :class:`~repro.farm.FarmReport`)
    adds the fault ledger.
    """
    if not telemetry.finished:
        raise RuntimeError(
            "report needs a finished replay: pass this telemetry to a "
            "replay first"
        )
    if registry is None:
        registry = MetricsRegistry(source=source or "report")
        telemetry.metrics_into(registry)
    if timeseries is None:
        from .timeseries import build_timeseries

        timeseries = build_timeseries(telemetry)
    if energy is None and (
        telemetry.recorder is not None and telemetry.recorder.captured
    ):
        from .energy import build_energy

        energy = build_energy(telemetry)
    percentiles = (
        telemetry.percentiles()
        if telemetry.recorder is not None and telemetry.recorder.captured
        else None
    )
    stats = telemetry.stats
    farm_events = telemetry.farm_events
    return {
        "schema": REPORT_SCHEMA,
        "source": source,
        "engine": telemetry.engine,
        "replay_tier": replay_tier(telemetry.engine),
        "n_requests": None if stats is None else stats.n_requests,
        "makespan_ns": telemetry.makespan_ns,
        "stats": None if stats is None else stats.summary(),
        "metrics": registry.snapshot(),
        "percentiles": percentiles,
        "timeseries": timeseries,
        "energy": energy,
        "farm": (
            None if farm_report is None else farm_report.to_dict()
        ),
        "farm_event_counts": (
            None if farm_events is None else farm_events.counts()
        ),
    }


def _fmt(value: _t.Any) -> str:
    if value is None or (
        isinstance(value, float) and math.isnan(value)
    ):
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _series_rows(timeseries: dict) -> _t.List[_t.Tuple[str, str, str, str]]:
    rows = []
    for name, values in timeseries.get("series", {}).items():
        finite = [
            v
            for v in values
            if isinstance(v, (int, float)) and not math.isnan(v)
        ]
        if finite:
            rows.append(
                (
                    name,
                    _fmt(min(finite)),
                    _fmt(sum(finite) / len(finite)),
                    _fmt(max(finite)),
                )
            )
        else:
            rows.append((name, "-", "-", "-"))
    return rows


def render_report(document: dict) -> str:
    """Render one report document as the CLI's text tables."""
    lines: _t.List[str] = []
    lines.append(f"run report — {document.get('source') or 'replay'}")
    tier = document.get("replay_tier")
    lines.append(
        f"engine: {document.get('engine')}   "
        + (f"tier: {tier}   " if tier is not None else "")
        + f"requests: {_fmt(document.get('n_requests'))}   "
        f"makespan: {_fmt(document.get('makespan_ns'))} ns"
    )
    stats = document.get("stats")
    if stats:
        lines.append("")
        lines.append("replay statistics")
        for key, value in stats.items():
            lines.append(f"  {key:24s} {_fmt(value)}")
    percentiles = document.get("percentiles")
    if percentiles:
        lines.append("")
        lines.append("latency percentiles (ns, exact)")
        header = ("metric", "count", "mean", "p50", "p95", "p99", "max")
        lines.append(
            f"  {header[0]:18s}"
            + "".join(f"{h:>12s}" for h in header[1:])
        )
        for name, summary in percentiles.items():
            lines.append(
                f"  {name:18s}"
                + "".join(
                    f"{_fmt(summary.get(key)):>12s}"
                    for key in ("count", "mean", "p50", "p95", "p99", "max")
                )
            )
    timeseries = document.get("timeseries")
    if timeseries:
        lines.append("")
        lines.append(
            f"time series ({timeseries.get('n_windows')} windows x "
            f"{_fmt(timeseries.get('window_ns'))} ns)"
        )
        lines.append(
            f"  {'series':28s}{'min':>12s}{'mean':>12s}{'max':>12s}"
        )
        for name, lo, mean, hi in _series_rows(timeseries):
            lines.append(
                f"  {name:28s}{lo:>12s}{mean:>12s}{hi:>12s}"
            )
    energy = document.get("energy")
    if energy:
        lines.append("")
        lines.append(
            f"energy ({_fmt(energy.get('total_pj'))} pJ total, "
            f"{_fmt(energy.get('pj_per_bit'))} pJ/bit, "
            f"{_fmt(energy.get('mean_power_w'))} W mean, "
            f"{_fmt(energy.get('requests_per_s_per_w'))} requests/s/W)"
        )
        breakdown = energy.get("breakdown_pj") or {}
        total = energy.get("total_pj") or math.nan
        for name, value in breakdown.items():
            share = (
                value / total
                if isinstance(value, (int, float)) and total
                else math.nan
            )
            lines.append(
                f"  {name:24s} {_fmt(value):>14s} pJ "
                f"({_fmt(100 * share)}%)"
            )
    farm = document.get("farm")
    if farm:
        lines.append("")
        lines.append(
            f"farm ledger: mode={farm.get('mode')} "
            f"workers={farm.get('workers')} "
            f"shards={farm.get('n_shards')} "
            f"attempts={farm.get('attempts')} "
            f"retries={farm.get('retries')} "
            f"timeouts={farm.get('timeouts')} "
            f"crashes={farm.get('crashes')} "
            f"degraded={farm.get('degraded_shards')}"
        )
        if farm.get("fell_back_to_single"):
            lines.append(
                f"  fallback: {farm.get('fallback_reason')}"
            )
    counts = document.get("farm_event_counts")
    if counts:
        rendered = " ".join(
            f"{kind}={count}" for kind, count in sorted(counts.items())
        )
        lines.append(f"farm events: {rendered}")
    return "\n".join(lines)


def write_report(
    document: dict, path: _t.Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write one report document as JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document) + "\n")
    return path
