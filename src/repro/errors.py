"""The shared error taxonomy of the reproduction harness.

Every layer used to raise ad-hoc :class:`ValueError` / ``RuntimeError``;
this module gives those raises a common base so callers (the CLI, the
replay farm supervisor) can map *any* harness failure to an exit code or
a retry decision uniformly, without string-matching messages.

Design constraints:

* **Backward compatible.**  :class:`TraceFormatError` is still a
  ``ValueError`` and :class:`ReplayStateError` is still a
  ``RuntimeError``, so every existing ``except ValueError`` /
  ``pytest.raises(ValueError)`` keeps working — the hierarchy adds
  structure, it does not move exceptions out from under callers.
* **Machine-readable codes.**  Every error carries a stable ``code``
  string (``error.code``) suitable for metrics tags and structured
  logs; messages stay human-oriented and unchanged.
* **Typed farm failures.**  The fault-tolerant replay farm
  (:mod:`repro.farm`) never surfaces a raw ``multiprocessing`` artifact:
  a worker that dies is a :class:`WorkerCrash`, one that stops
  heartbeating is a :class:`ShardTimeout`, and a result whose checksum
  does not match is a :class:`ResultIntegrityError` — each tagged with
  the shard and attempt it came from, so the supervisor's retry /
  degradation ledger is exact.

See ``docs/robustness.md`` for the failure-semantics table.
"""

from __future__ import annotations

import typing as _t

__all__ = [
    "ReproError",
    "ConfigError",
    "TraceFormatError",
    "ProgramFormatError",
    "ReplayStateError",
    "FarmError",
    "ShardTimeout",
    "WorkerCrash",
    "ResultIntegrityError",
]


class ReproError(Exception):
    """Base of every typed error the harness raises.

    Attributes
    ----------
    code:
        Stable machine-readable identifier (class attribute, may be
        overridden per instance via the ``code`` keyword).
    """

    code: str = "REPRO"

    def __init__(self, *args: _t.Any, code: _t.Optional[str] = None):
        super().__init__(*args)
        if code is not None:
            self.code = code


class ConfigError(ReproError, ValueError):
    """Invalid configuration or parameter value (still a ValueError)."""

    code = "CONFIG"


class TraceFormatError(ReproError, ValueError):
    """Malformed trace input (still a ValueError).

    Raised with the 1-based line number in the message by both text
    parsers; ``lineno`` carries it structurally when known.
    """

    code = "TRACE_FORMAT"

    def __init__(
        self,
        *args: _t.Any,
        lineno: _t.Optional[int] = None,
        code: _t.Optional[str] = None,
    ):
        super().__init__(*args, code=code)
        self.lineno = lineno


class ProgramFormatError(TraceFormatError):
    """Malformed HBM-PIMulator program-trace input."""

    code = "PROGRAM_FORMAT"


class ReplayStateError(ReproError, RuntimeError):
    """A replay was driven from an invalid state (still RuntimeError)."""

    code = "REPLAY_STATE"


class FarmError(ReproError, RuntimeError):
    """Base of the replay-farm failure taxonomy.

    Attributes
    ----------
    shard_id, attempt:
        Which shard replay failed, and on which attempt (0-based);
        ``None`` when the failure is not shard-scoped.
    """

    code = "FARM"

    def __init__(
        self,
        *args: _t.Any,
        shard_id: _t.Optional[int] = None,
        attempt: _t.Optional[int] = None,
        code: _t.Optional[str] = None,
    ):
        super().__init__(*args, code=code)
        self.shard_id = shard_id
        self.attempt = attempt


class ShardTimeout(FarmError):
    """A shard worker missed its deadline (no result, no heartbeat)."""

    code = "FARM_TIMEOUT"


class WorkerCrash(FarmError):
    """A shard worker process died before delivering a result."""

    code = "FARM_CRASH"


class ResultIntegrityError(FarmError):
    """A shard result failed its checksum — the data cannot be trusted."""

    code = "FARM_INTEGRITY"
