"""Configurable bit-field physical-address mapping.

A physical address is split, MSB to LSB, into a permutation of the five
architectural fields — channel, bankgroup, bank, row, column — followed
by a fixed low-order *offset* field (the byte position inside one
transaction, never used for mapping).  This mirrors the HBM-PIM layout
``[Channel][Bankgroup][Bank][Row][Column][Offset]`` while letting the
field *order* vary, which is exactly what classic DRAM interleaving
studies (and Ramulator-style simulators) sweep: putting channel or bank
bits near the LSBs spreads a sequential stream across parallel
resources, putting row bits low keeps it inside one row buffer.

The map is a bijection between addresses (with zero offset) and
:class:`Coordinates`; :meth:`AddressMap.decode` and
:meth:`AddressMap.encode` are exact inverses, which the test suite
checks over random address samples.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

__all__ = ["FIELDS", "SCHEMES", "Coordinates", "AddressMap"]

#: Architectural fields, in the *reference* MSB->LSB order.
FIELDS = ("channel", "bankgroup", "bank", "row", "column")

#: Named interleaving schemes: field order from MSB to LSB.
#:
#: ``row-major``
#:     Resource bits on top: a sequential stream drains one row of one
#:     bank completely before touching the next — maximum row-buffer
#:     locality, no parallelism (the single-macro regime of §2.1).
#: ``channel-interleaved``
#:     Channel bits just above the offset (Ramulator's ``RoBaRaCoCh``):
#:     consecutive transactions round-robin the channels.
#: ``bank-interleaved``
#:     Bankgroup/bank bits lowest: consecutive transactions round-robin
#:     the banks of one channel, row bits above column bits.
SCHEMES: _t.Dict[str, _t.Tuple[str, ...]] = {
    "row-major": ("channel", "bankgroup", "bank", "row", "column"),
    "channel-interleaved": ("row", "bankgroup", "bank", "column", "channel"),
    "bank-interleaved": ("channel", "row", "column", "bankgroup", "bank"),
}


@dataclasses.dataclass(frozen=True)
class Coordinates:
    """Decoded position of one transaction in the memory system."""

    channel: int = 0
    bankgroup: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0

    def flat_bank(self, banks_per_group: int) -> int:
        """Bank index flattened across bankgroups within the channel."""
        return self.bankgroup * banks_per_group + self.bank


@dataclasses.dataclass(frozen=True)
class AddressMap:
    """Bit-field address map with a pluggable field order.

    Attributes
    ----------
    channel_bits, bankgroup_bits, bank_bits, row_bits, column_bits:
        Width of each architectural field; a width of 0 means the system
        has exactly one instance of that resource.
    offset_bits:
        Low-order bits inside one transaction (e.g. 5 for 32-byte
        transactions); ignored by decode, zeroed by encode.
    order:
        Permutation of :data:`FIELDS`, MSB to LSB.
    """

    channel_bits: int = 1
    bankgroup_bits: int = 1
    bank_bits: int = 1
    row_bits: int = 14
    column_bits: int = 3
    offset_bits: int = 5
    order: _t.Tuple[str, ...] = SCHEMES["row-major"]

    def __post_init__(self) -> None:
        for field in FIELDS:
            if self._width(field) < 0:
                raise ValueError(f"{field}_bits must be >= 0")
        if self.offset_bits < 0:
            raise ValueError("offset_bits must be >= 0")
        if sorted(self.order) != sorted(FIELDS):
            raise ValueError(
                f"order must be a permutation of {FIELDS}, got {self.order}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_scheme(cls, scheme: str, **widths: int) -> "AddressMap":
        """Build a map from a named interleaving scheme.

        ``widths`` are passed through as field-width overrides, e.g.
        ``AddressMap.from_scheme("channel-interleaved", channel_bits=2)``.
        """
        try:
            order = SCHEMES[scheme]
        except KeyError:
            raise KeyError(
                f"unknown scheme {scheme!r}; available: {sorted(SCHEMES)}"
            ) from None
        return cls(order=order, **widths)

    # ------------------------------------------------------------------
    def _width(self, field: str) -> int:
        return int(getattr(self, f"{field}_bits"))

    @property
    def mapped_bits(self) -> int:
        """Total mapped width, offset included."""
        return self.offset_bits + sum(self._width(f) for f in FIELDS)

    @property
    def capacity_bytes(self) -> int:
        """Bytes addressable by the map."""
        return 1 << self.mapped_bits

    @property
    def transaction_bytes(self) -> int:
        """Bytes moved per transaction (the offset granule)."""
        return 1 << self.offset_bits

    def counts(self) -> _t.Dict[str, int]:
        """Number of instances of each resource (2**width)."""
        return {f: 1 << self._width(f) for f in FIELDS}

    # ------------------------------------------------------------------
    def decode(self, addr: int) -> Coordinates:
        """Split a byte address into architectural coordinates.

        Addresses beyond :attr:`capacity_bytes` wrap (the high bits are
        ignored), so arbitrary synthetic traces stay valid.
        """
        if addr < 0:
            raise ValueError(f"address must be non-negative, got {addr}")
        bits = int(addr) >> self.offset_bits
        values: _t.Dict[str, int] = {}
        for field in reversed(self.order):  # LSB first
            width = self._width(field)
            values[field] = bits & ((1 << width) - 1)
            bits >>= width
        return Coordinates(**values)

    def decode_fields(
        self, addrs: "np.ndarray"
    ) -> _t.Dict[str, "np.ndarray"]:
        """Vectorized :meth:`decode`: one array per architectural field.

        Applies the same shift/mask arithmetic as :meth:`decode` to a
        whole address array at once (the fast-path replay engine decodes
        million-request traces this way).  Returns ``int64`` arrays keyed
        by field name; high bits beyond :attr:`capacity_bytes` wrap
        exactly as in the scalar decoder.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size and int(addrs.min()) < 0:
            raise ValueError("addresses must be non-negative")
        bits = addrs >> self.offset_bits
        values: _t.Dict[str, np.ndarray] = {}
        for field in reversed(self.order):  # LSB first
            width = self._width(field)
            values[field] = bits & ((1 << width) - 1)
            bits = bits >> width
        return values

    def encode_fields(
        self, fields: _t.Mapping[str, "np.ndarray"]
    ) -> "np.ndarray":
        """Vectorized :meth:`encode`: field arrays to byte addresses.

        The exact inverse of :meth:`decode_fields` — applies the same
        MSB-first shift/or arithmetic as the scalar encoder to whole
        coordinate arrays at once (the PIM machine packs million-request
        streams this way).  Missing fields default to zero, matching
        :class:`Coordinates` defaults.

        Raises
        ------
        ValueError
            If any coordinate does not fit its field width.
        """
        arrays = {
            name: np.asarray(values, dtype=np.int64)
            for name, values in fields.items()
        }
        shape = next(iter(arrays.values())).shape if arrays else (0,)
        addr = np.zeros(shape, dtype=np.int64)
        for field in self.order:  # MSB first
            width = self._width(field)
            values = arrays.get(field)
            if values is None:
                addr = addr << width
                continue
            if values.size and not (
                int(values.min()) >= 0 and int(values.max()) < (1 << width)
            ):
                raise ValueError(
                    f"{field} values do not fit in {width} bit(s)"
                )
            addr = (addr << width) | values
        return addr << self.offset_bits

    def encode(self, coords: Coordinates) -> int:
        """Inverse of :meth:`decode` (offset bits zero).

        Raises
        ------
        ValueError
            If any coordinate does not fit its field width.
        """
        addr = 0
        for field in self.order:  # MSB first
            width = self._width(field)
            value = int(getattr(coords, field))
            if not 0 <= value < (1 << width):
                raise ValueError(
                    f"{field}={value} does not fit in {width} bit(s)"
                )
            addr = (addr << width) | value
        return addr << self.offset_bits

    _LABELS = {
        "channel": "Ch", "bankgroup": "Bg", "bank": "Ba",
        "row": "Ro", "column": "Co",
    }

    def __str__(self) -> str:
        parts = [
            f"{self._LABELS[f]}:{self._width(f)}" for f in self.order
        ]
        return "[" + "][".join(parts) + f"][Off:{self.offset_bits}]"
