"""Memory-system request records.

A :class:`MemRequest` is one transaction presented to the memory system:
a host read or write of one transaction granule, or a PIM all-bank
operation that commands every bank of the target channel in lockstep
(the HBM-PIM "AB mode" — the mechanism by which processing-in-memory
reclaims the aggregate row-buffer bandwidth of all banks at once).

Requests double as trace records: the trace layer serializes
``(op, addr)`` plus an optional arrival *timestamp* (ns); the runtime
fields (coordinates, service times, completion event) are filled in
during replay.  An untimestamped request is injected at line rate (as
soon as its queue has space); a timestamped one is additionally held
back until its timestamp — the trace-driven arrival mode that replays
application traces under their recorded traffic intensity instead of
the saturation regime.
"""

from __future__ import annotations

import dataclasses
import enum
import math
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from ..desim.events import Event
    from .addrmap import Coordinates

__all__ = ["Op", "OPS_BY_CODE", "MemRequest"]


class Op(enum.Enum):
    """Request kind, with its single-letter trace mnemonic as value.

    ``READ`` / ``WRITE`` are host transactions of one granule; ``PIM``
    is an all-bank row operation (every bank of the channel in
    lockstep); ``AB`` is an all-bank *register broadcast* — the
    HBM-PIM ``AB W`` command that writes CRF microcode, SRF scalars, or
    GRF vectors into every bank's PIM execution unit.  A broadcast
    occupies the channel for one column access but never touches the
    row buffers (no activation), which is how real HBM-PIM register
    writes behave.
    """

    READ = "R"
    WRITE = "W"
    PIM = "P"
    AB = "A"

    @classmethod
    def from_mnemonic(cls, token: str) -> "Op":
        try:
            return cls(token.upper())
        except ValueError:
            raise ValueError(
                f"unknown trace op {token!r}; expected one of "
                f"{[op.value for op in cls]}"
            ) from None

    @property
    def code(self) -> int:
        """Small-integer encoding used by packed (array-backed) traces."""
        return _OP_CODES[self]


#: ``Op`` in packed-code order: ``OPS_BY_CODE[op.code] is op``.
OPS_BY_CODE = (Op.READ, Op.WRITE, Op.PIM, Op.AB)
_OP_CODES = {op: code for code, op in enumerate(OPS_BY_CODE)}


@dataclasses.dataclass
class MemRequest:
    """One transaction, from trace record to completed access.

    Attributes
    ----------
    op, addr:
        The trace-visible payload: request kind and byte address.
    timestamp:
        Optional trace arrival time in ns: the earliest instant the
        injector may present this request to its channel queue.
        ``None`` (the default) means line-rate injection.  Part of the
        trace payload, serialized by the trace layer; a replayed stream
        must be uniformly timestamped or uniformly line-rate.
    coords:
        Decoded coordinates, set when the system routes the request.
    bank_index:
        Flat in-channel bank index, cached by the controller at
        admission (``None`` for all-bank PIM/AB requests) so the
        FR-FCFS scan does not re-derive it per selection.
    queued_hit:
        Whether this *queued* request currently hits its bank's open
        row — the controller's per-bank open-row table entry,
        maintained at admission and on every open-row change so the
        FR-FCFS selection can skip the queue scan when no queued
        request hits (see ``ChannelController._rescan_bank``).
    arrival, start_service, finish:
        Simulation timestamps (ns), ``nan`` until reached.
    outcome:
        Row-buffer outcome ("hit" / "miss" / "conflict"), set at service.
    bits:
        Data bits moved by the completed access (PIM all-bank requests
        move one page per bank).
    done:
        Completion event, created by the controller at enqueue.
    """

    op: Op
    addr: int
    timestamp: _t.Optional[float] = None
    coords: _t.Optional["Coordinates"] = None
    bank_index: _t.Optional[int] = None
    queued_hit: bool = dataclasses.field(
        default=False, repr=False, compare=False
    )
    arrival: float = math.nan
    start_service: float = math.nan
    finish: float = math.nan
    outcome: _t.Optional[str] = None
    bits: int = 0
    done: _t.Optional["Event"] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.op, Op):
            self.op = Op.from_mnemonic(str(self.op))
        self.addr = int(self.addr)
        if self.addr < 0:
            raise ValueError(f"address must be non-negative, got {self.addr}")
        if self.timestamp is not None:
            self.timestamp = float(self.timestamp)
            if not (
                self.timestamp >= 0.0
                and math.isfinite(self.timestamp)
            ):
                raise ValueError(
                    f"timestamp must be a non-negative finite value, "
                    f"got {self.timestamp}"
                )

    @property
    def latency(self) -> float:
        """Arrival-to-finish latency in ns (``nan`` until completed)."""
        return self.finish - self.arrival

    def same_payload(self, other: "MemRequest") -> bool:
        """Trace-level equality: op, address, and timestamp only."""
        return (
            self.op is other.op
            and self.addr == other.addr
            and self.timestamp == other.timestamp
        )

    def __repr__(self) -> str:
        return f"<MemRequest {self.op.value} {self.addr:#x}>"
